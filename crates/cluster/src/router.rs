//! The cluster router: classification, forwarding, and the two-phase
//! cross-shard admission protocol.
//!
//! One router instance fronts `N` shard primaries. Every submission is
//! classified against the [`ShardMap`]:
//!
//! * **single-shard** — both endpoint ports owned by one shard: the
//!   request is forwarded verbatim and decided by that shard's own
//!   admission rounds, exactly as a solo daemon would decide it. On a
//!   partition-respecting workload the union of shard decisions is
//!   bit-identical to a single node's (`tests/cluster_equivalence.rs`
//!   proves it), because requests on disjoint ports never contend.
//! * **cross-shard** — the endpoints are owned by different shards: the
//!   router runs §5.4's two-phase protocol as a real inter-node
//!   exchange. The ingress shard computes the earliest max-rate window
//!   on its port and pins it (`HoldOpen` → `HoldOpened`), the egress
//!   shard confirms the same window on its port (`HoldAttach` →
//!   `HoldAck`), and the router commits both halves or releases
//!   whatever may be held. The decision logic is the shared sans-IO
//!   [`HoldTxn`] machine — the same one `gridband-control`'s simulated
//!   plane runs — so a lost frame resolves identically here and there:
//!   pessimistic release, never over-commit.
//!
//! Every hold placement, commit, and release is a WAL record on the
//! shard that owns the port, so crash recovery and WAL-streaming
//! replication compose with clustering unchanged.

use std::collections::BTreeMap;
use std::time::Duration;

use crossbeam::channel::bounded;
use gridband_algos::BandwidthPolicy;
use gridband_control::{HoldInput, HoldOutcome, HoldTxn, HoldWindow};
use gridband_net::{IngressId, Topology};
use gridband_serve::engine::Command;
use gridband_serve::{
    ClientMsg, Engine, EngineConfig, MetricsRegistry, RejectReason, Role, ServerMsg, StoreConfig,
    SubmitReq, TimeMode,
};
use gridband_store::EngineSnapshot;

use crate::link::{EngineLink, ShardLink};
use crate::loss::LossSchedule;
use crate::shard::{Placement, ShardMap};

/// Sentinel transaction id for the clock-advance no-op (`HoldRelease`
/// of a transaction no engine will ever hold).
const CLOCK_TXN: u64 = u64::MAX;

/// How long the final drain may wait per decision before the run is
/// declared wedged.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(30);

/// Cluster-wide configuration for an in-process shard set.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Port topology, shared by every shard (ownership is by index).
    pub topology: Topology,
    /// Number of shard primaries.
    pub shards: usize,
    /// Admission interval `t_step` of every shard engine.
    pub step: f64,
    /// Bandwidth policy of every shard engine.
    pub policy: BandwidthPolicy,
    /// Virtual seconds an uncommitted hold survives on a shard.
    pub hold_timeout: f64,
    /// Per-engine command queue bound.
    pub queue_capacity: usize,
    /// Probability each `HoldOpen`/`HoldAttach` leg (request or reply)
    /// is lost.
    pub loss: f64,
    /// Seed of the loss schedule.
    pub loss_seed: u64,
    /// Whether release legs are also subject to loss. Off by default —
    /// the paper's protocol only loses prepare legs — but turning it on
    /// orphans holds on purpose so the shard-side expiry sweep (and the
    /// `holds_expired` counter) carries the conservation guarantee.
    pub drop_releases: bool,
    /// Per-shard durability; empty means all shards run in memory.
    /// When non-empty the length must equal `shards`.
    pub stores: Vec<Option<StoreConfig>>,
    /// Leftover-bandwidth redistribution overlay, run independently by
    /// every shard over the ports it owns. Pure overlay: admission
    /// decisions are identical with or without it.
    pub qos: Option<gridband_qos::QosConfig>,
    /// Ledger GC horizon of every shard engine: each shard advances its
    /// own watermark `now - horizon` and truncates independently (shards
    /// share no profiles, so per-shard watermarks need no coordination).
    /// `None` (the default) never truncates.
    pub gc_horizon: Option<f64>,
    /// Accept malleable (variable-rate) submissions on every shard.
    /// Only single-shard routes qualify: a cross-shard malleable
    /// submission is rejected `Invalid` by the router — the two-phase
    /// hold protocol prepares one constant-rate window, not a stepwise
    /// plan, and half-holding a segmented grant would break the
    /// conservation guarantee the protocol exists for.
    pub malleable: bool,
}

impl ClusterConfig {
    /// Defaults matching [`EngineConfig::new`], lossless, in memory.
    pub fn new(topology: Topology, shards: usize) -> ClusterConfig {
        let base = EngineConfig::new(topology.clone());
        ClusterConfig {
            topology,
            shards,
            step: base.step,
            policy: base.policy,
            hold_timeout: base.hold_timeout,
            queue_capacity: base.queue_capacity,
            loss: 0.0,
            loss_seed: 0,
            drop_releases: false,
            stores: Vec::new(),
            qos: None,
            gc_horizon: None,
            malleable: false,
        }
    }

    /// The engine configuration shard `s` runs.
    pub fn engine_config(&self, s: usize) -> EngineConfig {
        let mut cfg = EngineConfig::new(self.topology.clone());
        cfg.step = self.step;
        cfg.policy = self.policy;
        cfg.mode = TimeMode::Virtual;
        cfg.queue_capacity = self.queue_capacity;
        cfg.hold_timeout = self.hold_timeout;
        cfg.role = Role::Shard;
        cfg.store = self.stores.get(s).cloned().flatten();
        cfg.qos = self.qos;
        cfg.gc_horizon = self.gc_horizon;
        cfg.malleable = self.malleable;
        cfg
    }
}

/// The set of in-process shard engines a router fronts.
pub struct EngineShards {
    engines: Vec<Engine>,
}

impl EngineShards {
    /// Spawn one engine per shard.
    pub fn spawn(cfg: &ClusterConfig) -> EngineShards {
        assert!(
            cfg.stores.is_empty() || cfg.stores.len() == cfg.shards,
            "stores must be empty or one per shard"
        );
        let engines = (0..cfg.shards)
            .map(|s| Engine::spawn(cfg.engine_config(s)))
            .collect();
        EngineShards { engines }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Whether the set is empty (it never is for a spawned cluster).
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// The shard engines' handles.
    pub fn engine(&self, s: usize) -> &Engine {
        &self.engines[s]
    }

    /// One router link per shard.
    pub fn links(&self) -> Vec<EngineLink> {
        self.engines.iter().map(EngineLink::new).collect()
    }

    /// Metrics registry of shard `s`.
    pub fn metrics(&self, s: usize) -> std::sync::Arc<MetricsRegistry> {
        self.engines[s].metrics()
    }

    /// Durable-state snapshot of shard `s` (what its next WAL snapshot
    /// would hold).
    pub fn export(&self, s: usize) -> EngineSnapshot {
        let (tx, rx) = bounded(1);
        self.engines[s]
            .sender()
            .send(Command::Export { reply: tx })
            .expect("shard engine is gone");
        rx.recv_timeout(DRAIN_TIMEOUT).expect("export reply")
    }

    /// Replace shard `s`'s engine (failover: the caller killed the old
    /// primary and recovered a successor from its WAL or a standby's
    /// mirror). Returns the old handle so the caller controls how it
    /// dies.
    pub fn replace(&mut self, s: usize, engine: Engine) -> Engine {
        std::mem::replace(&mut self.engines[s], engine)
    }

    /// Drain and stop every shard engine.
    pub fn shutdown(self) {
        for e in self.engines {
            e.shutdown();
        }
    }
}

/// The router's verdict on one submission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Admitted with this constant-bandwidth window.
    Granted {
        /// Bandwidth (MB/s).
        bw: f64,
        /// Start (virtual seconds).
        start: f64,
        /// Finish (virtual seconds).
        finish: f64,
    },
    /// Refused by a shard (or by the egress half of a cross-shard
    /// attach).
    Denied(RejectReason),
    /// A cross-shard protocol leg was lost and the transaction resolved
    /// by timeout: rejected pessimistically, all possibly-live holds
    /// ordered released.
    TimedOut,
}

/// What a finished cluster run decided, plus protocol counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Final decision per request id.
    pub decisions: BTreeMap<u64, Decision>,
    /// Submissions decided by a single shard.
    pub singles: u64,
    /// Submissions that ran the cross-shard protocol.
    pub crosses: u64,
    /// Cross-shard transactions that committed.
    pub cross_grants: u64,
    /// Cross-shard transactions resolved by timeout.
    pub timeouts: u64,
    /// Protocol legs the loss schedule dropped.
    pub dropped_legs: u64,
}

/// The router. Generic over the shard transport: tests and the bench
/// run it over [`EngineLink`]s, `gridband cluster --connect` over
/// [`crate::TcpShardLink`]s.
pub struct Cluster<L: ShardLink> {
    map: ShardMap,
    links: Vec<L>,
    loss: LossSchedule,
    drop_releases: bool,
    /// Router-side virtual clock: the latest submission start seen,
    /// stamped onto cross-shard protocol messages as `at`.
    clock: f64,
    /// Forwarded single-shard submissions per shard, in arrival order,
    /// kept until decided (failover resubmits the undecided tail).
    forwarded: Vec<Vec<SubmitReq>>,
    decisions: BTreeMap<u64, Decision>,
    singles: u64,
    crosses: u64,
    cross_grants: u64,
    timeouts: u64,
}

impl Cluster<EngineLink> {
    /// A router over an in-process shard set.
    pub fn in_process(cfg: &ClusterConfig, shards: &EngineShards) -> Cluster<EngineLink> {
        Cluster::new(
            ShardMap::new(&cfg.topology, cfg.shards),
            shards.links(),
            LossSchedule::new(cfg.loss, cfg.loss_seed),
            cfg.drop_releases,
        )
    }

    /// Swap the link of shard `s` onto a replacement engine and resubmit
    /// every forwarded submission the dead primary never decided, in
    /// original arrival order. Decisions the old primary already sent
    /// are kept (its WAL made them durable before any reply went out,
    /// so the successor recovered them too and would reject a resubmit
    /// as a duplicate).
    pub fn failover(&mut self, s: usize, engine: &Engine) -> Result<(), String> {
        self.collect_ready()?;
        self.links[s].reattach(engine);
        let undecided: Vec<SubmitReq> = self.forwarded[s]
            .iter()
            .filter(|r| !self.decisions.contains_key(&r.id))
            .cloned()
            .collect();
        for req in undecided {
            self.links[s].send(ClientMsg::Submit(req))?;
        }
        Ok(())
    }
}

impl<L: ShardLink> Cluster<L> {
    /// A router over arbitrary shard links. `links.len()` must equal
    /// the map's shard count.
    pub fn new(
        map: ShardMap,
        links: Vec<L>,
        loss: LossSchedule,
        drop_releases: bool,
    ) -> Cluster<L> {
        assert_eq!(links.len(), map.shards(), "one link per shard");
        let forwarded = (0..links.len()).map(|_| Vec::new()).collect();
        Cluster {
            map,
            links,
            loss,
            drop_releases,
            clock: 0.0,
            forwarded,
            decisions: BTreeMap::new(),
            singles: 0,
            crosses: 0,
            cross_grants: 0,
            timeouts: 0,
        }
    }

    /// The map this router classifies against.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Route one submission: forward it whole or run the two-phase
    /// protocol, depending on where its ports live.
    pub fn submit(&mut self, req: SubmitReq) -> Result<(), String> {
        if let Some(start) = req.start {
            if start.is_finite() {
                self.clock = self.clock.max(start);
            }
        }
        match self.map.placement(req.ingress, req.egress) {
            Placement::Single(s) => {
                self.singles += 1;
                self.links[s].send(ClientMsg::Submit(req.clone()))?;
                self.forwarded[s].push(req);
                // Keep the reply buffers small on long workloads.
                self.collect_shard(s)?;
                Ok(())
            }
            Placement::Cross { ingress, egress } => {
                // The two-phase protocol prepares one constant-rate
                // window per side; a stepwise malleable plan has no
                // such window, so the router refuses the combination
                // outright rather than half-holding it.
                if req.is_malleable() {
                    self.crosses += 1;
                    self.decisions
                        .insert(req.id, Decision::Denied(RejectReason::Invalid));
                    return Ok(());
                }
                self.two_phase(req, ingress, egress)
            }
        }
    }

    /// §5.4 as an inter-node protocol. The router is the coordinator;
    /// the sans-IO [`HoldTxn`] machine decides what every reply, denial,
    /// or lost leg means, and this method only moves messages.
    fn two_phase(&mut self, req: SubmitReq, a: usize, b: usize) -> Result<(), String> {
        let txn = req.id;
        let at = self.clock;
        self.crosses += 1;
        let mut fsm = HoldTxn::new();
        let mut deny = None;

        // Leg 1: prepare the ingress half. Loss can eat the request
        // (nothing held) or the reply (the ingress holds, we never
        // learn the window) — the machine treats both as Timeout.
        let opened = if self.loss.drop_next() {
            None
        } else {
            let reply = self.links[a].call(ClientMsg::HoldOpen(req.clone()))?;
            if self.loss.drop_next() {
                None
            } else {
                Some(reply)
            }
        };
        let input = match opened {
            Some(ServerMsg::HoldOpened {
                bw, start, finish, ..
            }) => HoldInput::Opened(HoldWindow { bw, start, finish }),
            Some(ServerMsg::HoldDenied { reason, .. }) => {
                deny = Some(reason);
                HoldInput::OpenDenied
            }
            Some(other) => return Err(format!("shard {a}: unexpected HoldOpen reply {other:?}")),
            None => HoldInput::Timeout,
        };

        let decision = match fsm.on(input) {
            HoldOutcome::Attach(w) => self.attach_phase(&mut fsm, txn, req.egress, w, at, a, b)?,
            HoldOutcome::Reject => Decision::Denied(deny.unwrap_or(RejectReason::Invalid)),
            HoldOutcome::Release { egress_may_hold } => {
                debug_assert!(!egress_may_hold, "no attach was ever sent");
                self.release(a, txn, at)?;
                self.timeouts += 1;
                Decision::TimedOut
            }
            HoldOutcome::Commit(_) | HoldOutcome::Stale => unreachable!("first input"),
        };
        self.decisions.insert(txn, decision);
        Ok(())
    }

    /// Leg 2 and resolution: attach the egress half, then commit both
    /// or release whatever may be held.
    #[allow(clippy::too_many_arguments)]
    fn attach_phase(
        &mut self,
        fsm: &mut HoldTxn,
        txn: u64,
        egress: u32,
        w: HoldWindow,
        at: f64,
        a: usize,
        b: usize,
    ) -> Result<Decision, String> {
        let acked = if self.loss.drop_next() {
            None
        } else {
            let reply = self.links[b].call(ClientMsg::HoldAttach {
                txn,
                egress,
                bw: w.bw,
                start: w.start,
                finish: w.finish,
                at,
            })?;
            if self.loss.drop_next() {
                None
            } else {
                Some(reply)
            }
        };
        let input = match acked {
            Some(ServerMsg::HoldAck { ok, .. }) => HoldInput::Ack { granted: ok },
            Some(ServerMsg::HoldDenied { .. }) => HoldInput::Ack { granted: false },
            Some(other) => return Err(format!("shard {b}: unexpected HoldAttach reply {other:?}")),
            None => HoldInput::Timeout,
        };
        let timed_out = input == HoldInput::Timeout;
        match fsm.on(input) {
            HoldOutcome::Commit(w) => {
                // Commit legs are reliable: the grant is already
                // promised to the client once both holds exist, so a
                // coordinator retries commits until they land — modeled
                // here as loss-exempt delivery.
                let _ = self.links[a].call(ClientMsg::HoldCommit { txn, at })?;
                let _ = self.links[b].call(ClientMsg::HoldCommit { txn, at })?;
                self.cross_grants += 1;
                Ok(Decision::Granted {
                    bw: w.bw,
                    start: w.start,
                    finish: w.finish,
                })
            }
            HoldOutcome::Release { egress_may_hold } => {
                self.release(a, txn, at)?;
                if egress_may_hold {
                    self.release(b, txn, at)?;
                }
                if timed_out {
                    self.timeouts += 1;
                    Ok(Decision::TimedOut)
                } else {
                    Ok(Decision::Denied(RejectReason::Saturated))
                }
            }
            HoldOutcome::Attach(_) | HoldOutcome::Reject | HoldOutcome::Stale => {
                unreachable!("second input")
            }
        }
    }

    /// Release a possibly-held half. A release for a hold the shard
    /// never placed (or already swept) acks `false`, which is fine;
    /// with `drop_releases` the leg itself may vanish, leaving the
    /// shard's expiry sweep to reclaim the hold.
    fn release(&mut self, shard: usize, txn: u64, at: f64) -> Result<(), String> {
        if self.drop_releases && self.loss.drop_next() {
            return Ok(());
        }
        let _ = self.links[shard].call(ClientMsg::HoldRelease { txn, at })?;
        Ok(())
    }

    /// Push every shard's virtual clock to `t`: rounds fire, pending
    /// work is decided, expired holds are swept — exactly what a
    /// later submission arriving at `t` would trigger, minus the
    /// submission. (A `HoldRelease` of a transaction nobody holds is
    /// the protocol's no-op; its `at` still advances the clock.)
    pub fn advance_to(&mut self, t: f64) -> Result<(), String> {
        self.clock = self.clock.max(t);
        for s in 0..self.links.len() {
            let _ = self.links[s].call(ClientMsg::HoldRelease {
                txn: CLOCK_TXN,
                at: t,
            })?;
        }
        self.collect_ready()
    }

    fn record(&mut self, msg: ServerMsg) {
        match msg {
            ServerMsg::Accepted {
                id,
                bw,
                start,
                finish,
            } => {
                self.decisions
                    .insert(id, Decision::Granted { bw, start, finish });
            }
            // A segmented grant folds down to its envelope: the report's
            // `Decision` stays `Copy`, and for the conservation checker
            // and decision dumps the peak-rate window is what matters.
            ServerMsg::AcceptedSegments { id, segments } => {
                let start = segments.first().map_or(0.0, |s| s.0);
                let finish = segments.last().map_or(0.0, |s| s.1);
                let bw = segments.iter().fold(0.0f64, |m, s| m.max(s.2));
                self.decisions
                    .insert(id, Decision::Granted { bw, start, finish });
            }
            ServerMsg::Rejected { id, reason, .. } => {
                self.decisions.insert(id, Decision::Denied(reason));
            }
            _ => {}
        }
    }

    fn collect_shard(&mut self, s: usize) -> Result<(), String> {
        for msg in self.links[s].poll_decisions()? {
            self.record(msg);
        }
        Ok(())
    }

    /// Sweep decisions that have already arrived, without blocking.
    pub fn collect_ready(&mut self) -> Result<(), String> {
        for s in 0..self.links.len() {
            self.collect_shard(s)?;
        }
        Ok(())
    }

    /// Drain every shard (one final round decides all pending
    /// submissions), wait for every forwarded submission's decision,
    /// and report.
    pub fn finish(mut self) -> Result<ClusterReport, String> {
        for link in &mut self.links {
            link.send(ClientMsg::Drain)?;
        }
        self.collect_ready()?;
        for s in 0..self.links.len() {
            while self.forwarded[s]
                .iter()
                .any(|r| !self.decisions.contains_key(&r.id))
            {
                match self.links[s].recv_decision(DRAIN_TIMEOUT)? {
                    Some(msg) => self.record(msg),
                    None => {
                        return Err(format!(
                            "shard {s} never decided {} forwarded submissions",
                            self.forwarded[s]
                                .iter()
                                .filter(|r| !self.decisions.contains_key(&r.id))
                                .count()
                        ))
                    }
                }
            }
        }
        Ok(ClusterReport {
            decisions: self.decisions,
            singles: self.singles,
            crosses: self.crosses,
            cross_grants: self.cross_grants,
            timeouts: self.timeouts,
            dropped_legs: self.loss.dropped(),
        })
    }
}

/// Check a shard snapshot for the two invariants the cross-shard
/// protocol must preserve no matter what was lost in flight: no port's
/// capacity profile above its limit, and no uncommitted hold alive past
/// its expiry. Returns human-readable violations (empty = clean).
pub fn conservation_violations(snap: &EngineSnapshot, topo: &Topology) -> Vec<String> {
    let mut out = Vec::new();
    let eps = 1e-9;
    for (i, prof) in snap.ledger.ingress.iter().enumerate() {
        let cap = topo.ingress_cap(IngressId(i as u32));
        for bp in prof.breakpoints() {
            if bp.alloc > cap + eps {
                out.push(format!(
                    "ingress {i} over-committed: {} > {cap} at t={}",
                    bp.alloc, bp.time
                ));
            }
        }
    }
    for (e, prof) in snap.ledger.egress.iter().enumerate() {
        let cap = topo.egress_cap(gridband_net::EgressId(e as u32));
        for bp in prof.breakpoints() {
            if bp.alloc > cap + eps {
                out.push(format!(
                    "egress {e} over-committed: {} > {cap} at t={}",
                    bp.alloc, bp.time
                ));
            }
        }
    }
    for h in &snap.holds {
        if !h.committed && h.expires <= snap.now {
            out.push(format!(
                "uncommitted hold txn {} outlived its expiry ({} <= now {})",
                h.txn, h.expires, snap.now
            ));
        }
    }
    out
}
