//! Property tests: every wire message survives an encode → decode
//! round-trip bit-for-bit — through the JSON-lines protocol *and*
//! through the binary frame codec, over the same message strategies.
//! The daemon and its clients only ever exchange these two encodings,
//! so this pins the whole protocol surface in both dialects.

use gridband_serve::metrics::{LatencySnapshot, StatsSnapshot};
use gridband_serve::protocol::{
    decode_client, decode_server, encode_client, encode_server, ClientMsg, RejectReason, ReqState,
    ServerMsg, ServiceClass, SubmitReq,
};
use gridband_serve::wire::{
    decode_client_payload, decode_server_payload, encode_client_frame, encode_server_frame,
    FrameBuf,
};
use proptest::prelude::*;

/// A finite, JSON-exact `f64`: round-trips through the wire format.
fn wire_f64() -> impl Strategy<Value = f64> {
    (0.0f64..1e9).prop_map(|v| (v * 1e3).round() / 1e3)
}

fn submit_req() -> impl Strategy<Value = SubmitReq> {
    (
        (0u64..1_000_000, 0u32..64, 0u32..64),
        (wire_f64(), wire_f64()),
        (0u8..8, wire_f64(), wire_f64()),
    )
        .prop_map(
            |((id, ingress, egress), (volume, max_rate), (opt, start, deadline))| {
                SubmitReq {
                    id,
                    ingress,
                    egress,
                    volume,
                    max_rate,
                    // Cycle through all the Some/None combinations.
                    start: (opt & 1 == 0).then_some(start),
                    deadline: (opt & 2 == 0).then_some(deadline),
                    class: ServiceClass::ALL[(id % 3) as usize],
                    malleable: (opt & 4 == 0).then_some(id % 2 == 0),
                }
            },
        )
}

fn client_msg() -> impl Strategy<Value = ClientMsg> {
    (0u8..11, submit_req()).prop_map(|(variant, sub)| match variant {
        0 => ClientMsg::Submit(sub),
        1 => ClientMsg::Cancel { id: sub.id },
        2 => ClientMsg::Query { id: sub.id },
        3 => ClientMsg::Stats,
        4 => ClientMsg::Promote,
        5 => ClientMsg::HoldOpen(sub),
        6 => ClientMsg::HoldAttach {
            txn: sub.id,
            egress: sub.egress,
            bw: sub.max_rate,
            start: sub.start.unwrap_or(0.5),
            finish: sub.deadline.unwrap_or(1.5),
            at: sub.volume,
        },
        7 => ClientMsg::HoldCommit {
            txn: sub.id,
            at: sub.volume,
        },
        8 => ClientMsg::HoldRelease {
            txn: sub.id,
            at: sub.volume,
        },
        9 => ClientMsg::Amend {
            id: sub.id,
            volume: sub.volume,
            max_rate: sub.max_rate,
            deadline: sub.deadline,
        },
        _ => ClientMsg::Drain,
    })
}

fn stats_snapshot() -> impl Strategy<Value = StatsSnapshot> {
    (
        (
            0u64..1000,
            0u64..1000,
            0u64..1000,
            0u64..1000,
            0u64..1000,
            0u64..1000,
        ),
        (
            0u64..1000,
            0u64..1000,
            0u64..1000,
            0u64..1000,
            0u64..1000,
            0u64..1000,
        ),
        (0u64..1000, 0u64..1000, wire_f64(), wire_f64()),
    )
        .prop_map(
            |(
                (submitted, accepted, rejected, refused_early, cancelled, queries),
                (queue_full, protocol_errors, connections, ticks, gc_reclaimed, pending),
                (replies_dropped, count, virtual_time, mean_ms),
            )| StatsSnapshot {
                role: match submitted % 3 {
                    0 => "solo".to_string(),
                    1 => "primary".to_string(),
                    _ => "follower".to_string(),
                },
                uptime_s: ticks * 3,
                protocol_version: 1 + (queries % 4) as u32,
                submitted,
                accepted,
                rejected,
                refused_early,
                cancelled,
                queries,
                queue_full,
                protocol_errors,
                connections,
                conns_json: connections / 2,
                conns_binary: connections - connections / 2,
                ticks,
                gc_reclaimed,
                replies_dropped,
                wal_appends: ticks,
                wal_bytes: ticks * 48,
                snapshots_written: ticks / 10,
                recovery_replayed_records: gc_reclaimed,
                admit_threads: 1 + ticks % 8,
                shards: pending % 16,
                largest_shard: pending % 16,
                repl_records_shipped: accepted + rejected,
                repl_bytes_shipped: (accepted + rejected) * 96,
                repl_snapshots_shipped: ticks / 100,
                repl_shipped_seq: accepted + rejected + 2,
                repl_acked_seq: accepted + rejected,
                repl_synced: queries % 2,
                repl_records_applied: accepted + rejected,
                repl_bytes_applied: (accepted + rejected) * 96,
                repl_snapshots_applied: ticks / 100,
                repl_resyncs: queue_full % 3,
                repl_frames_discarded: queue_full % 5,
                repl_frames_damaged: queue_full % 2,
                repl_beacons_checked: ticks / 4,
                repl_divergence: 0,
                holds_placed: cancelled + queries,
                holds_committed: cancelled,
                holds_released: queries / 2,
                holds_expired: queries % 7,
                accepted_gold: accepted / 3,
                accepted_silver: accepted / 2,
                accepted_besteffort: accepted - accepted / 2 - accepted / 3,
                submitted_malleable: submitted / 4,
                accepted_malleable: accepted / 4,
                rejected_malleable: rejected / 4,
                amend_requests: queries / 3,
                amends_granted: queries / 4,
                amends_rejected: queries / 3 - queries / 4,
                qos_boost_rounds: ticks / 2,
                qos_boosted_mb: gc_reclaimed * 17,
                qos_early_releases: accepted / 5,
                qos_finish_violations: 0,
                qos_oversubscriptions: 0,
                pending,
                live_reservations: count,
                gc_truncated_bps: gc_reclaimed * 9,
                breakpoints_live: ticks * 5 + 7,
                virtual_time,
                gc_watermark: (ticks % 2 == 0).then_some(virtual_time / 2.0),
                decision_latency: LatencySnapshot {
                    count,
                    mean_ms,
                    p50_ms: mean_ms,
                    p95_ms: mean_ms * 2.0,
                    p99_ms: mean_ms * 4.0,
                },
                fsync: LatencySnapshot {
                    count: ticks,
                    mean_ms,
                    p50_ms: mean_ms,
                    p95_ms: mean_ms * 3.0,
                    p99_ms: mean_ms * 5.0,
                },
            },
        )
}

fn server_msg() -> impl Strategy<Value = ServerMsg> {
    (
        (0u8..10, 0u64..1_000_000, 0u8..8, 0u8..5),
        (wire_f64(), wire_f64(), wire_f64()),
        stats_snapshot(),
    )
        .prop_map(
            |((variant, id, reason, state), (bw, start, finish), stats)| {
                let reason = match reason {
                    0 => RejectReason::Saturated,
                    1 => RejectReason::DeadlineUnreachable,
                    2 => RejectReason::Invalid,
                    3 => RejectReason::QueueFull,
                    4 => RejectReason::UnknownRoute,
                    5 => RejectReason::NotPrimary,
                    6 => RejectReason::Drained,
                    _ => RejectReason::ShuttingDown,
                };
                let state = match state {
                    0 => ReqState::Pending,
                    1 => ReqState::Accepted,
                    2 => ReqState::Rejected,
                    3 => ReqState::Cancelled,
                    _ => ReqState::Unknown,
                };
                match variant {
                    0 => ServerMsg::Accepted {
                        id,
                        bw,
                        start,
                        finish,
                    },
                    1 => ServerMsg::Rejected {
                        id,
                        reason,
                        retry_after: (id % 2 == 0).then_some(start),
                    },
                    2 => ServerMsg::CancelResult {
                        id,
                        freed: id % 2 == 0,
                    },
                    3 => ServerMsg::Status {
                        id,
                        state,
                        alloc: (id % 3 == 0).then_some((bw, start, finish)),
                    },
                    4 => ServerMsg::Stats(stats),
                    5 => ServerMsg::Draining { pending: id },
                    6 => match id % 3 {
                        0 => ServerMsg::HoldOpened {
                            txn: id,
                            bw,
                            start,
                            finish,
                            expires: finish,
                        },
                        1 => ServerMsg::HoldDenied { txn: id, reason },
                        _ => ServerMsg::HoldAck {
                            txn: id,
                            ok: id % 2 == 0,
                        },
                    },
                    7 => ServerMsg::Promoted { rounds: id },
                    8 => ServerMsg::AcceptedSegments {
                        id,
                        segments: (0..(id % 4))
                            .map(|k| {
                                let k = k as f64;
                                (start + 2.0 * k, start + 2.0 * k + 1.0, bw)
                            })
                            .collect(),
                    },
                    _ => ServerMsg::Error {
                        code: format!("code-{}", id % 7),
                        message: format!("detail {id}"),
                    },
                }
            },
        )
}

proptest! {
    #[test]
    fn client_messages_round_trip(msg in client_msg()) {
        let line = encode_client(&msg);
        prop_assert!(!line.contains('\n'), "wire lines must be single-line");
        let back = decode_client(&line).expect("decode own encoding");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn server_messages_round_trip(msg in server_msg()) {
        let line = encode_server(&msg);
        prop_assert!(!line.contains('\n'), "wire lines must be single-line");
        let back = decode_server(&line).expect("decode own encoding");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn client_messages_round_trip_in_binary(msg in client_msg()) {
        // Through the full framing path, not just the payload codec:
        // the splitter must hand back exactly the payload that went in.
        let mut fb = FrameBuf::new();
        fb.extend(&encode_client_frame(&msg));
        let payload = fb.next_frame().expect("frame ok").expect("one frame");
        let back = decode_client_payload(&payload).expect("decode own encoding");
        prop_assert_eq!(back, msg);
        prop_assert_eq!(fb.next_frame().expect("no error"), None);
    }

    #[test]
    fn server_messages_round_trip_in_binary(msg in server_msg()) {
        let mut fb = FrameBuf::new();
        fb.extend(&encode_server_frame(&msg));
        let payload = fb.next_frame().expect("frame ok").expect("one frame");
        let back = decode_server_payload(&payload).expect("decode own encoding");
        prop_assert_eq!(back, msg);
        prop_assert_eq!(fb.next_frame().expect("no error"), None);
    }

    #[test]
    fn binary_f64s_round_trip_bit_exactly(msg in client_msg(), bits in any::<u64>()) {
        // The JSON strategies stick to decimal-exact values; the binary
        // codec promises more — any bit pattern survives. Splice an
        // arbitrary f64 into a Submit and round-trip it.
        let v = f64::from_bits(bits);
        let patched = match msg {
            ClientMsg::Submit(mut s) => { s.volume = v; ClientMsg::Submit(s) }
            ClientMsg::HoldOpen(mut s) => { s.max_rate = v; ClientMsg::HoldOpen(s) }
            other => other,
        };
        let back = decode_client_payload(
            &gridband_serve::wire::encode_client_payload(&patched),
        ).expect("decode own encoding");
        match (&patched, &back) {
            (ClientMsg::Submit(a), ClientMsg::Submit(b)) => {
                prop_assert_eq!(a.volume.to_bits(), b.volume.to_bits());
            }
            (ClientMsg::HoldOpen(a), ClientMsg::HoldOpen(b)) => {
                prop_assert_eq!(a.max_rate.to_bits(), b.max_rate.to_bits());
            }
            _ => prop_assert_eq!(back, patched),
        }
    }
}
