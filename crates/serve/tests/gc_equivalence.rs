//! GC equivalence: watermark GC must never change a decision, and a
//! store-backed engine with GC active that is killed at a round boundary
//! (or mid-write) and restarted must finish a workload with exactly the
//! decisions — and exactly the final compacted state — of a GC'd engine
//! that never crashed.
//!
//! This mirrors `recovery_equivalence.rs` (same workload, same kill
//! machinery, same resubmission protocol) with `gc_horizon` set, so the
//! WAL now carries `Gc` records interleaved with the rounds. Recovery
//! replays them at exactly the same point in the decision stream, so the
//! recovered ledger is truncated at exactly the same cut.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{self, Receiver};
use gridband_net::Topology;
use gridband_serve::engine::Command;
use gridband_serve::{
    ClientMsg, Engine, EngineConfig, FsyncPolicy, MemDir, ServerMsg, StoreConfig, SubmitReq,
};
use gridband_store::{Dir, EngineSnapshot};
use rand::{rngs::StdRng, Rng, SeedableRng};

const STEP: f64 = 10.0;
const EVENTS: usize = 36;
/// Two rounds of grace history behind the clock.
const HORIZON: f64 = 2.0 * STEP;

#[derive(Debug, Clone)]
enum Event {
    Submit(SubmitReq),
    Cancel { id: u64 },
}

/// Same §5.3-style workload as `recovery_equivalence.rs`: Poisson-ish
/// arrivals on a 3×3 topology, with cancels only of requests decided
/// more than two rounds ago. With `HORIZON = 2·STEP` those cancels land
/// exactly at the watermark's edge — the case the ε-regression at the
/// ledger level guards.
fn workload(seed: u64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::with_capacity(EVENTS);
    let mut clock = 0.0f64;
    let mut submitted: Vec<(u64, f64)> = Vec::new();
    let mut cancelled: Vec<u64> = Vec::new();
    for i in 0..EVENTS {
        let cancel_target = if i % 6 == 5 {
            submitted
                .iter()
                .find(|(id, start)| *start < clock - 2.0 * STEP && !cancelled.contains(id))
                .map(|(id, _)| *id)
        } else {
            None
        };
        if let Some(id) = cancel_target {
            cancelled.push(id);
            events.push(Event::Cancel { id });
            continue;
        }
        clock += rng.gen_range(1.0..8.0);
        let id = i as u64 + 1;
        let volume = rng.gen_range(50.0..400.0);
        let max_rate = rng.gen_range(20.0..90.0);
        let slack = rng.gen_range(1.2..3.5);
        events.push(Event::Submit(SubmitReq {
            id,
            ingress: rng.gen_range(0u32..3),
            egress: rng.gen_range(0u32..3),
            volume,
            max_rate,
            start: Some(clock),
            deadline: Some(clock + slack * volume / max_rate),
            class: Default::default(),
            malleable: None,
        }));
        submitted.push((id, clock));
    }
    events
}

fn config(
    dir: Arc<MemDir>,
    fsync: FsyncPolicy,
    snapshot_every: u64,
    gc_horizon: Option<f64>,
) -> EngineConfig {
    let mut cfg = EngineConfig::new(Topology::uniform(3, 3, 100.0));
    cfg.step = STEP;
    cfg.gc_horizon = gc_horizon;
    cfg.store = Some(StoreConfig {
        dir,
        fsync,
        snapshot_every,
    });
    cfg
}

#[derive(Default)]
struct Session {
    submits: Vec<(u64, Receiver<ServerMsg>)>,
    cancels: Vec<(usize, Receiver<ServerMsg>)>,
}

impl Session {
    fn send(&mut self, engine: &Engine, idx: usize, event: &Event) -> bool {
        let (tx, rx) = channel::unbounded();
        let msg = match event {
            Event::Submit(s) => {
                self.submits.push((s.id, rx));
                ClientMsg::Submit(s.clone())
            }
            Event::Cancel { id } => {
                self.cancels.push((idx, rx));
                ClientMsg::Cancel { id: *id }
            }
        };
        engine
            .sender()
            .send(Command::Client {
                msg,
                reply: tx.into(),
            })
            .is_ok()
    }

    fn harvest(
        &mut self,
        decisions: &mut BTreeMap<u64, ServerMsg>,
        acked_cancels: &mut Vec<usize>,
    ) {
        for (id, rx) in &self.submits {
            if let Ok(msg) = rx.try_recv() {
                let prev = decisions.insert(*id, msg);
                assert!(prev.is_none(), "two decisions for request {id}");
            }
        }
        for (idx, rx) in &self.cancels {
            if rx.try_recv().is_ok() {
                acked_cancels.push(*idx);
            }
        }
    }
}

fn drain(engine: &Engine) {
    let (tx, rx) = channel::unbounded();
    engine
        .sender()
        .send(Command::Client {
            msg: ClientMsg::Drain,
            reply: tx.into(),
        })
        .expect("engine alive for drain");
    rx.recv_timeout(Duration::from_secs(10)).expect("drain ack");
}

fn export(engine: &Engine) -> EngineSnapshot {
    let (tx, rx) = channel::unbounded();
    engine
        .sender()
        .send(Command::Export { reply: tx })
        .expect("engine alive for export");
    rx.recv_timeout(Duration::from_secs(10)).expect("export")
}

fn run_uninterrupted(
    events: &[Event],
    fsync: FsyncPolicy,
    snapshot_every: u64,
    gc_horizon: Option<f64>,
) -> (BTreeMap<u64, ServerMsg>, EngineSnapshot) {
    let dir = Arc::new(MemDir::new());
    let engine = Engine::spawn(config(dir, fsync, snapshot_every, gc_horizon));
    let mut session = Session::default();
    for (idx, event) in events.iter().enumerate() {
        assert!(session.send(&engine, idx, event), "engine died mid-run");
    }
    drain(&engine);
    let mut decisions = BTreeMap::new();
    session.harvest(&mut decisions, &mut Vec::new());
    let snap = export(&engine);
    engine.shutdown();
    (decisions, snap)
}

#[derive(Clone, Copy, Debug)]
enum Kill {
    Clean(usize),
    Torn(usize),
}

fn run_with_crash(
    events: &[Event],
    kill: Kill,
    fsync: FsyncPolicy,
    snapshot_every: u64,
) -> (BTreeMap<u64, ServerMsg>, EngineSnapshot, u64) {
    let dir = Arc::new(MemDir::new());
    let engine = Engine::spawn(config(dir.clone(), fsync, snapshot_every, Some(HORIZON)));
    let mut session = Session::default();
    match kill {
        Kill::Clean(after) => {
            for (idx, event) in events.iter().enumerate().take(after) {
                assert!(session.send(&engine, idx, event), "engine died too early");
            }
        }
        Kill::Torn(after) => {
            for (idx, event) in events.iter().enumerate().take(after) {
                assert!(session.send(&engine, idx, event), "engine died too early");
            }
            // Room for the record header plus a few payload bytes: the
            // next append — a round record *or* a Gc record — lands torn.
            dir.set_write_budget(12);
            for (idx, event) in events.iter().enumerate().skip(after) {
                if !session.send(&engine, idx, event) {
                    break;
                }
            }
        }
    }
    engine.kill();
    dir.clear_write_budget();

    let mut decisions = BTreeMap::new();
    let mut acked_cancels = Vec::new();
    session.harvest(&mut decisions, &mut acked_cancels);

    let engine = Engine::try_spawn(config(dir, fsync, snapshot_every, Some(HORIZON)))
        .expect("recovery from a crash-consistent GC'd store must succeed");
    let replayed = engine
        .metrics()
        .recovery_replayed_records
        .load(std::sync::atomic::Ordering::Relaxed);
    let mut session = Session::default();
    for (idx, event) in events.iter().enumerate() {
        let answered = match event {
            Event::Submit(s) => decisions.contains_key(&s.id),
            Event::Cancel { .. } => acked_cancels.contains(&idx),
        };
        if !answered {
            assert!(session.send(&engine, idx, event), "recovered engine died");
        }
    }
    drain(&engine);
    session.harvest(&mut decisions, &mut Vec::new());
    let snap = export(&engine);
    engine.shutdown();
    (decisions, snap, replayed)
}

fn assert_equivalent(seed: u64, kill: Kill, fsync: FsyncPolicy, snapshot_every: u64) {
    let events = workload(seed);
    let (want_decisions, want_snap) =
        run_uninterrupted(&events, fsync, snapshot_every, Some(HORIZON));
    assert!(
        want_snap.ledger.watermark.is_some(),
        "seed {seed}: the workload must be long enough for GC to engage"
    );
    let (got_decisions, got_snap, _) = run_with_crash(&events, kill, fsync, snapshot_every);
    assert_eq!(
        got_decisions, want_decisions,
        "seed {seed} {kill:?}: decisions diverge after recovery with GC"
    );
    assert_eq!(
        got_snap, want_snap,
        "seed {seed} {kill:?}: final compacted state diverges after recovery"
    );
}

/// The tentpole invariant, end to end: turning GC on changes no decision
/// and no post-watermark breakpoint. The GC'd profiles, and the no-GC
/// profiles truncated at the same watermark, must be bit-identical.
#[test]
fn gc_changes_no_decision_and_no_post_watermark_breakpoint() {
    for seed in [11, 22, 33] {
        let events = workload(seed);
        let (plain_decisions, plain_snap) = run_uninterrupted(&events, FsyncPolicy::Round, 0, None);
        let (gc_decisions, gc_snap) =
            run_uninterrupted(&events, FsyncPolicy::Round, 0, Some(HORIZON));
        assert_eq!(
            gc_decisions, plain_decisions,
            "seed {seed}: GC changed a decision"
        );
        assert_eq!(plain_snap.ledger.watermark, None);
        let w = gc_snap.ledger.watermark.unwrap_or_else(|| {
            panic!("seed {seed}: the workload must be long enough for GC to engage")
        });

        // `truncate_before` composes: re-truncating the GC'd profile at
        // the watermark and truncating the full-history profile at the
        // watermark must meet at identical breakpoints.
        let pairs = gc_snap
            .ledger
            .ingress
            .iter()
            .zip(&plain_snap.ledger.ingress)
            .chain(gc_snap.ledger.egress.iter().zip(&plain_snap.ledger.egress));
        for (i, (gcd, plain)) in pairs.enumerate() {
            let mut gcd = gcd.clone();
            let mut plain = plain.clone();
            gcd.truncate_before(w);
            plain.truncate_before(w);
            assert_eq!(
                gcd, plain,
                "seed {seed} profile {i}: post-watermark breakpoints diverge"
            );
        }

        // The engine's per-round expiry sweep already releases expired
        // charge bit-exactly (levels snap back to base), so in a drained
        // engine the watermark truncation has nothing left to cut and
        // the two images carry the same breakpoints — the watermark's
        // job here is the *durable, replayable* bound, not extra
        // dropping. Equality (not `<=`) is asserted on purpose: if GC'd
        // profiles ever carried fewer breakpoints than eagerly-swept
        // ones, truncation would have cut into live charge.
        let count = |snap: &EngineSnapshot| -> usize {
            snap.ledger
                .ingress
                .iter()
                .chain(&snap.ledger.egress)
                .map(|p| p.breakpoints().len())
                .sum()
        };
        assert_eq!(
            count(&gc_snap),
            count(&plain_snap),
            "seed {seed}: GC'd and eagerly-swept profiles must agree at quiescence"
        );
    }
}

#[test]
fn clean_kills_recover_bit_identically_with_gc() {
    for kill in [Kill::Clean(9), Kill::Clean(18), Kill::Clean(27)] {
        assert_equivalent(11, kill, FsyncPolicy::Round, 0);
    }
}

#[test]
fn clean_kills_recover_bit_identically_with_gc_and_snapshots() {
    // Frequent snapshots: recovery restores a *compacted* snapshot, then
    // replays a WAL tail that itself carries Gc records.
    for kill in [Kill::Clean(9), Kill::Clean(18), Kill::Clean(27)] {
        assert_equivalent(22, kill, FsyncPolicy::Round, 3);
    }
}

#[test]
fn torn_writes_recover_bit_identically_with_gc() {
    for (seed, snapshot_every) in [(11, 0), (22, 3), (33, 1)] {
        for kill in [Kill::Torn(8), Kill::Torn(20)] {
            assert_equivalent(seed, kill, FsyncPolicy::Round, snapshot_every);
        }
    }
}

#[test]
fn recovery_replays_gc_records_from_the_wal_tail() {
    // With snapshots disabled the WAL holds every Gc record of the run;
    // a mid-run kill must leave records to replay, and the recovered
    // engine must report a watermark (proof the Gc arm actually ran).
    let events = workload(11);
    let (_, snap, replayed) = run_with_crash(&events, Kill::Clean(18), FsyncPolicy::Round, 0);
    assert!(replayed > 0, "mid-workload kill must leave a WAL tail");
    assert!(
        snap.ledger.watermark.is_some(),
        "recovered engine must carry the replayed watermark"
    );
}

/// Crash-prefix fuzz with GC active: every byte prefix of a GC'd WAL
/// must recover (arbitrary cuts are torn tails), and the recovered
/// engine must never hold capacity for a request the uninterrupted run
/// did not accept — even when the cut severs a Gc record from the round
/// it followed.
#[test]
fn every_gcd_wal_prefix_recovers_without_phantom_capacity() {
    let events = workload(22);
    let fsync = FsyncPolicy::Round;
    let dir = Arc::new(MemDir::new());
    let engine = Engine::spawn(config(dir.clone(), fsync, 4, Some(HORIZON)));
    let mut session = Session::default();
    for (idx, event) in events.iter().enumerate() {
        assert!(session.send(&engine, idx, event));
    }
    drain(&engine);
    let mut decisions = BTreeMap::new();
    session.harvest(&mut decisions, &mut Vec::new());
    engine.shutdown();

    let files = dir.list().expect("list MemDir");
    let wal_name = files
        .iter()
        .filter(|f| f.starts_with("wal-"))
        .max()
        .expect("a WAL file exists")
        .clone();
    let snap = files
        .iter()
        .filter(|f| f.starts_with("snap-"))
        .max()
        .map(|name| (name.clone(), dir.contents(name).unwrap()));
    let wal = dir.contents(&wal_name).unwrap();

    let mut cuts: Vec<usize> = (0..=wal.len()).step_by(11).collect();
    cuts.extend([wal.len().saturating_sub(1), wal.len()]);
    for cut in cuts {
        let prefix_dir = Arc::new(MemDir::new());
        if let Some((name, bytes)) = &snap {
            prefix_dir.put(name, bytes.clone());
        }
        prefix_dir.put(&wal_name, wal[..cut].to_vec());
        let engine = Engine::try_spawn(config(prefix_dir, fsync, 0, Some(HORIZON)))
            .unwrap_or_else(|e| panic!("prefix cut at {cut} must recover, got {e}"));
        let snap_state = export(&engine);
        for (id, _) in &snap_state.accepted {
            match decisions.get(id) {
                Some(ServerMsg::Accepted { .. }) => {}
                other => panic!(
                    "prefix cut at {cut}: recovered engine holds capacity for \
                     request {id}, which the full run decided as {other:?}"
                ),
            }
        }
        engine.kill();
    }
}
