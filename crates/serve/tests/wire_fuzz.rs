//! Fuzz-style sweep over the binary wire codec, mirroring the WAL's
//! `wal_fuzz` discipline: every prefix of a valid frame stream, and
//! every single-bit flip of it, must either decode a clean prefix of
//! the original messages or stop with a typed [`WireError`] — never a
//! panic, never a phantom or altered message, and never an allocation
//! driven by a hostile length prefix. The server's reader pool feeds
//! raw socket bytes straight into this code, so "any byte sequence has
//! a defined outcome" is a load-bearing property, not hygiene.

use gridband_serve::protocol::{ClientMsg, SubmitReq};
use gridband_serve::wire::{
    decode_client_payload, decode_server_payload, encode_client_frame, FrameBuf, WireError,
    MAX_FRAME,
};

/// A realistic stream: the message shapes a client actually sends,
/// including the awkward `f64`s (subnormals of JSON: non-terminating
/// decimals) the bit-pattern encoding must carry.
fn sample_msgs() -> Vec<ClientMsg> {
    vec![
        ClientMsg::Submit(SubmitReq {
            id: 1,
            ingress: 0,
            egress: 3,
            volume: 123.456_789_012_345,
            max_rate: 0.1 + 0.2,
            start: Some(5.0),
            deadline: Some(31.25),
            class: Default::default(),
            malleable: None,
        }),
        ClientMsg::HoldOpen(SubmitReq {
            id: 2,
            ingress: 1,
            egress: 2,
            volume: 1e9,
            max_rate: f64::MAX,
            start: None,
            deadline: Some(f64::INFINITY),
            class: Default::default(),
            malleable: None,
        }),
        ClientMsg::HoldAttach {
            txn: 2,
            egress: 2,
            bw: 50.0,
            start: 0.0,
            finish: 100.0,
            at: 10.0,
        },
        ClientMsg::HoldCommit { txn: 2, at: 12.5 },
        ClientMsg::Cancel { id: 1 },
        ClientMsg::Query { id: u64::MAX },
        ClientMsg::Stats,
        ClientMsg::Drain,
    ]
}

fn sample_stream() -> Vec<u8> {
    sample_msgs().iter().flat_map(encode_client_frame).collect()
}

/// Run the full reader-pool decode path over `bytes`: split frames,
/// decode payloads, stop at the first error. Returns the messages that
/// decoded cleanly before it.
fn decode_stream(bytes: &[u8]) -> (Vec<ClientMsg>, Option<WireError>) {
    let mut fb = FrameBuf::new();
    fb.extend(bytes);
    let mut out = Vec::new();
    loop {
        match fb.next_frame() {
            Ok(Some(payload)) => match decode_client_payload(&payload) {
                Ok(msg) => out.push(msg),
                Err(e) => return (out, Some(e)),
            },
            Ok(None) => return (out, None),
            Err(e) => return (out, Some(e)),
        }
    }
}

#[test]
fn every_stream_prefix_decodes_a_clean_message_prefix() {
    let stream = sample_stream();
    let originals = sample_msgs();
    for cut in 0..=stream.len() {
        let (got, err) = decode_stream(&stream[..cut]);
        assert!(
            err.is_none(),
            "cut at {cut}: a truncated stream is just incomplete, got {err:?}"
        );
        assert!(
            got.len() <= originals.len() && got == originals[..got.len()],
            "cut at {cut}: decoded messages are not a prefix of the originals"
        );
    }
    let (all, err) = decode_stream(&stream);
    assert!(err.is_none());
    assert_eq!(all, originals, "the full stream decodes everything");
}

#[test]
fn every_single_bit_flip_decodes_a_prefix_or_reports_an_error() {
    let stream = sample_stream();
    let originals = sample_msgs();
    for byte in 0..stream.len() {
        for bit in 0..8 {
            let mut damaged = stream.clone();
            damaged[byte] ^= 1 << bit;
            // Any outcome but a panic or a non-prefix result is legal:
            // the flip is either caught (CRC, length bound, version,
            // tag, field bounds) or it tore the stream short.
            let (got, _err) = decode_stream(&damaged);
            assert!(
                got.len() <= originals.len() && got == originals[..got.len()],
                "flip {byte}.{bit}: damaged stream yielded a phantom or altered message"
            );
        }
    }
}

#[test]
fn torn_mid_frame_then_continued_stream_decodes_everything() {
    // The poll loop hands the codec arbitrary read() chunk boundaries;
    // feeding the same stream one byte at a time must decode the same
    // messages as one big extend.
    let stream = sample_stream();
    let originals = sample_msgs();
    let mut fb = FrameBuf::new();
    let mut got = Vec::new();
    for b in &stream {
        fb.extend(std::slice::from_ref(b));
        while let Some(payload) = fb.next_frame().expect("valid stream") {
            got.push(decode_client_payload(&payload).expect("valid payload"));
        }
    }
    assert_eq!(got, originals);
}

#[test]
fn oversized_length_prefix_is_an_error_before_any_payload_arrives() {
    // A hostile header alone — no payload bytes behind it — must be
    // rejected from the 8 header bytes, not after buffering `len` bytes.
    let mut header = Vec::new();
    header.extend_from_slice(&(((MAX_FRAME + 1) as u32).to_le_bytes()));
    header.extend_from_slice(&0u32.to_le_bytes());
    let mut fb = FrameBuf::new();
    fb.extend(&header);
    match fb.next_frame() {
        Err(WireError::TooLarge(n)) => assert_eq!(n, MAX_FRAME + 1),
        other => panic!("expected TooLarge, got {other:?}"),
    }
}

#[test]
fn payload_decoders_never_panic_on_byte_soup() {
    // Deterministic pseudo-random byte strings straight into both
    // payload decoders (framing already stripped): every outcome must
    // be a value or a WireError.
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let mut soup = Vec::with_capacity(512);
    for len in 0..512usize {
        soup.truncate(0);
        for _ in 0..len {
            // xorshift64*
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            soup.push((x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 56) as u8);
        }
        let _ = decode_client_payload(&soup);
        let _ = decode_server_payload(&soup);
    }
    // And every 1-byte and 2-byte prefix of the tag space exhaustively.
    for a in 0..=u8::MAX {
        let _ = decode_client_payload(&[a]);
        let _ = decode_server_payload(&[a]);
        for b in [0u8, 1, 7, 255] {
            let _ = decode_client_payload(&[a, b]);
            let _ = decode_server_payload(&[a, b]);
        }
    }
}
