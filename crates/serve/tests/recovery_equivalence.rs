//! Recovery equivalence: a store-backed engine that is killed at a round
//! boundary (or mid-write, via an injected torn append) and restarted
//! must finish a workload with exactly the decisions — and exactly the
//! final ledger state — of an engine that never crashed.
//!
//! The client protocol under crash is the documented one: a submission or
//! cancel that never got a reply is resubmitted, in original order, after
//! the daemon comes back. Decisions the engine replied to before the
//! crash are durable by construction (log-before-reply), so the merged
//! reply set of the crashed run must equal the uninterrupted run's
//! bit-for-bit: same accepted ids, same `bw`/`start`/`finish` on each,
//! same rejection reasons and retry hints, same final port profiles.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{self, Receiver};
use gridband_net::Topology;
use gridband_serve::engine::Command;
use gridband_serve::{
    ClientMsg, Engine, EngineConfig, FsyncPolicy, MemDir, ServerMsg, StoreConfig, SubmitReq,
};
use gridband_store::{Dir, EngineSnapshot};
use rand::{rngs::StdRng, Rng, SeedableRng};

const STEP: f64 = 10.0;
const EVENTS: usize = 36;

#[derive(Debug, Clone)]
enum Event {
    Submit(SubmitReq),
    Cancel { id: u64 },
}

/// A §5.3-style workload: Poisson-ish arrivals on a 3×3 topology with
/// random volumes, rate caps and deadline slack, plus occasional cancels
/// of requests that are guaranteed already decided (start more than two
/// rounds in the past), so a cancel never races its target's round.
fn workload(seed: u64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::with_capacity(EVENTS);
    let mut clock = 0.0f64;
    let mut submitted: Vec<(u64, f64)> = Vec::new();
    let mut cancelled: Vec<u64> = Vec::new();
    for i in 0..EVENTS {
        let cancel_target = if i % 6 == 5 {
            submitted
                .iter()
                .find(|(id, start)| *start < clock - 2.0 * STEP && !cancelled.contains(id))
                .map(|(id, _)| *id)
        } else {
            None
        };
        if let Some(id) = cancel_target {
            cancelled.push(id);
            events.push(Event::Cancel { id });
            continue;
        }
        clock += rng.gen_range(1.0..8.0);
        let id = i as u64 + 1;
        let volume = rng.gen_range(50.0..400.0);
        let max_rate = rng.gen_range(20.0..90.0);
        let slack = rng.gen_range(1.2..3.5);
        events.push(Event::Submit(SubmitReq {
            id,
            ingress: rng.gen_range(0u32..3),
            egress: rng.gen_range(0u32..3),
            volume,
            max_rate,
            start: Some(clock),
            deadline: Some(clock + slack * volume / max_rate),
            class: Default::default(),
            malleable: None,
        }));
        submitted.push((id, clock));
    }
    events
}

fn config(dir: Arc<MemDir>, fsync: FsyncPolicy, snapshot_every: u64) -> EngineConfig {
    let mut cfg = EngineConfig::new(Topology::uniform(3, 3, 100.0));
    cfg.step = STEP;
    cfg.store = Some(StoreConfig {
        dir,
        fsync,
        snapshot_every,
    });
    cfg
}

/// Reply channels of one client session: submit decisions keyed by
/// request id, cancel acknowledgements keyed by event index.
#[derive(Default)]
struct Session {
    submits: Vec<(u64, Receiver<ServerMsg>)>,
    cancels: Vec<(usize, Receiver<ServerMsg>)>,
}

impl Session {
    /// Send one event to the engine; returns `false` if the engine is
    /// gone (crashed mid-run), in which case the event counts as never
    /// submitted.
    fn send(&mut self, engine: &Engine, idx: usize, event: &Event) -> bool {
        let (tx, rx) = channel::unbounded();
        let msg = match event {
            Event::Submit(s) => {
                self.submits.push((s.id, rx));
                ClientMsg::Submit(s.clone())
            }
            Event::Cancel { id } => {
                self.cancels.push((idx, rx));
                ClientMsg::Cancel { id: *id }
            }
        };
        engine
            .sender()
            .send(Command::Client {
                msg,
                reply: tx.into(),
            })
            .is_ok()
    }

    /// Harvest every reply that has arrived. Call only after the engine
    /// thread is joined (kill/shutdown) or after a `Drain` reply, so all
    /// sends have happened-before.
    fn harvest(
        &mut self,
        decisions: &mut BTreeMap<u64, ServerMsg>,
        acked_cancels: &mut Vec<usize>,
    ) {
        for (id, rx) in &self.submits {
            if let Ok(msg) = rx.try_recv() {
                let prev = decisions.insert(*id, msg);
                assert!(prev.is_none(), "two decisions for request {id}");
            }
        }
        for (idx, rx) in &self.cancels {
            if rx.try_recv().is_ok() {
                acked_cancels.push(*idx);
            }
        }
    }
}

fn drain(engine: &Engine) {
    let (tx, rx) = channel::unbounded();
    engine
        .sender()
        .send(Command::Client {
            msg: ClientMsg::Drain,
            reply: tx.into(),
        })
        .expect("engine alive for drain");
    rx.recv_timeout(Duration::from_secs(10)).expect("drain ack");
}

fn export(engine: &Engine) -> EngineSnapshot {
    let (tx, rx) = channel::unbounded();
    engine
        .sender()
        .send(Command::Export { reply: tx })
        .expect("engine alive for export");
    rx.recv_timeout(Duration::from_secs(10)).expect("export")
}

/// Run the whole workload uninterrupted on a fresh store.
fn run_uninterrupted(
    events: &[Event],
    fsync: FsyncPolicy,
    snapshot_every: u64,
) -> (BTreeMap<u64, ServerMsg>, EngineSnapshot) {
    let dir = Arc::new(MemDir::new());
    let engine = Engine::spawn(config(dir, fsync, snapshot_every));
    let mut session = Session::default();
    for (idx, event) in events.iter().enumerate() {
        assert!(session.send(&engine, idx, event), "engine died mid-run");
    }
    drain(&engine);
    let mut decisions = BTreeMap::new();
    session.harvest(&mut decisions, &mut Vec::new());
    let snap = export(&engine);
    engine.shutdown();
    (decisions, snap)
}

/// How the first engine of a crashed run dies.
#[derive(Clone, Copy, Debug)]
enum Kill {
    /// `Engine::kill()` after this many events: a crash at a round
    /// boundary (every round decided so far is committed).
    Clean(usize),
    /// After this many events, the store's device accepts only a few more
    /// bytes: the next WAL append tears mid-record and the engine halts
    /// with its round decided in memory but not durable.
    Torn(usize),
}

/// Run the workload with a crash, recover on the same store, finish via
/// the resubmission protocol, and return the merged outcome.
fn run_with_crash(
    events: &[Event],
    kill: Kill,
    fsync: FsyncPolicy,
    snapshot_every: u64,
) -> (BTreeMap<u64, ServerMsg>, EngineSnapshot, u64) {
    let dir = Arc::new(MemDir::new());
    let engine = Engine::spawn(config(dir.clone(), fsync, snapshot_every));
    let mut session = Session::default();
    match kill {
        Kill::Clean(after) => {
            for (idx, event) in events.iter().enumerate().take(after) {
                assert!(session.send(&engine, idx, event), "engine died too early");
            }
        }
        Kill::Torn(after) => {
            for (idx, event) in events.iter().enumerate().take(after) {
                assert!(session.send(&engine, idx, event), "engine died too early");
            }
            // Room for the 8-byte record header plus a few payload bytes:
            // whatever the engine writes next lands torn.
            dir.set_write_budget(12);
            for (idx, event) in events.iter().enumerate().skip(after) {
                if !session.send(&engine, idx, event) {
                    break;
                }
            }
        }
    }
    engine.kill();
    dir.clear_write_budget();

    // The engine thread is joined: every reply it ever sent is in a
    // channel. Whatever is missing was lost to the crash.
    let mut decisions = BTreeMap::new();
    let mut acked_cancels = Vec::new();
    session.harvest(&mut decisions, &mut acked_cancels);

    // Restart over the same directory and re-drive every unanswered
    // event, preserving original order.
    let engine = Engine::try_spawn(config(dir, fsync, snapshot_every))
        .expect("recovery from a crash-consistent store must succeed");
    let replayed = engine
        .metrics()
        .recovery_replayed_records
        .load(std::sync::atomic::Ordering::Relaxed);
    let mut session = Session::default();
    for (idx, event) in events.iter().enumerate() {
        let answered = match event {
            Event::Submit(s) => decisions.contains_key(&s.id),
            Event::Cancel { .. } => acked_cancels.contains(&idx),
        };
        if !answered {
            assert!(session.send(&engine, idx, event), "recovered engine died");
        }
    }
    drain(&engine);
    session.harvest(&mut decisions, &mut Vec::new());
    let snap = export(&engine);
    engine.shutdown();
    (decisions, snap, replayed)
}

fn assert_equivalent(seed: u64, kill: Kill, fsync: FsyncPolicy, snapshot_every: u64) {
    let events = workload(seed);
    let (want_decisions, want_snap) = run_uninterrupted(&events, fsync, snapshot_every);
    let n_submits = events
        .iter()
        .filter(|e| matches!(e, Event::Submit(_)))
        .count();
    assert_eq!(
        want_decisions.len(),
        n_submits,
        "uninterrupted run must decide every submission"
    );
    let (got_decisions, got_snap, _) = run_with_crash(&events, kill, fsync, snapshot_every);
    assert_eq!(
        got_decisions, want_decisions,
        "seed {seed} {kill:?}: decisions diverge after recovery"
    );
    assert_eq!(
        got_snap, want_snap,
        "seed {seed} {kill:?}: final engine state diverges after recovery"
    );
}

#[test]
fn clean_kills_recover_bit_identically_seed_11() {
    for kill in [Kill::Clean(9), Kill::Clean(18), Kill::Clean(27)] {
        assert_equivalent(11, kill, FsyncPolicy::Round, 0);
    }
}

#[test]
fn clean_kills_recover_bit_identically_seed_22() {
    // Frequent snapshots: recovery crosses snapshot + WAL-tail replay.
    for kill in [Kill::Clean(9), Kill::Clean(18), Kill::Clean(27)] {
        assert_equivalent(22, kill, FsyncPolicy::Round, 3);
    }
}

#[test]
fn clean_kills_recover_bit_identically_seed_33() {
    for kill in [Kill::Clean(6), Kill::Clean(30)] {
        assert_equivalent(33, kill, FsyncPolicy::Always, 5);
    }
}

#[test]
fn torn_writes_recover_bit_identically() {
    for (seed, snapshot_every) in [(11, 0), (22, 3), (33, 1)] {
        for kill in [Kill::Torn(8), Kill::Torn(20)] {
            assert_equivalent(seed, kill, FsyncPolicy::Round, snapshot_every);
        }
    }
}

#[test]
fn recovery_actually_replays_the_wal_tail() {
    // With snapshots disabled, a mid-run kill must leave rounds in the
    // WAL and recovery must replay them (guards against a recovery path
    // that silently starts fresh and "passes" because the workload is
    // re-decided from scratch).
    let events = workload(11);
    let (_, _, replayed) = run_with_crash(&events, Kill::Clean(18), FsyncPolicy::Round, 0);
    assert!(
        replayed > 0,
        "killing mid-workload must leave WAL records to replay"
    );
}

/// Engine-level crash-prefix fuzz: for a real workload's WAL, *every*
/// byte prefix must recover — arbitrary cuts are torn tails, which the
/// store truncates — and the recovered engine must never hold capacity
/// for a request the uninterrupted run did not accept.
#[test]
fn every_wal_prefix_recovers_without_phantom_capacity() {
    let events = workload(22);
    let fsync = FsyncPolicy::Round;
    let dir = Arc::new(MemDir::new());
    let engine = Engine::spawn(config(dir.clone(), fsync, 4));
    let mut session = Session::default();
    for (idx, event) in events.iter().enumerate() {
        assert!(session.send(&engine, idx, event));
    }
    drain(&engine);
    let mut decisions = BTreeMap::new();
    session.harvest(&mut decisions, &mut Vec::new());
    engine.shutdown();

    let files = dir.list().expect("list MemDir");
    let wal_name = files
        .iter()
        .filter(|f| f.starts_with("wal-"))
        .max()
        .expect("a WAL file exists")
        .clone();
    let snap = files
        .iter()
        .filter(|f| f.starts_with("snap-"))
        .max()
        .map(|name| (name.clone(), dir.contents(name).unwrap()));
    let wal = dir.contents(&wal_name).unwrap();

    let mut cuts: Vec<usize> = (0..=wal.len()).step_by(11).collect();
    cuts.extend([wal.len().saturating_sub(1), wal.len()]);
    for cut in cuts {
        let prefix_dir = Arc::new(MemDir::new());
        if let Some((name, bytes)) = &snap {
            prefix_dir.put(name, bytes.clone());
        }
        prefix_dir.put(&wal_name, wal[..cut].to_vec());
        let engine = Engine::try_spawn(config(prefix_dir, fsync, 0))
            .unwrap_or_else(|e| panic!("prefix cut at {cut} must recover, got {e}"));
        let snap_state = export(&engine);
        for (id, _) in &snap_state.accepted {
            match decisions.get(id) {
                Some(ServerMsg::Accepted { .. }) => {}
                other => panic!(
                    "prefix cut at {cut}: recovered engine holds capacity for \
                     request {id}, which the full run decided as {other:?}"
                ),
            }
        }
        engine.kill();
    }
}
