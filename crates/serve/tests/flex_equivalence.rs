//! Malleable recovery equivalence: a store-backed engine running mixed
//! rigid/malleable workloads — including mid-flight `Amend`
//! renegotiations — that is killed at a round boundary (or mid-write,
//! via an injected torn append) and restarted must finish the workload
//! with exactly the decisions, exactly the amend outcomes, and exactly
//! the final ledger state of an engine that never crashed.
//!
//! This mirrors `recovery_equivalence.rs` / `gc_equivalence.rs` (same
//! kill machinery, same resubmission protocol) with `malleable`
//! enabled, so the WAL now carries `AcceptSegments` and `Amend` round
//! decisions and snapshots a `live_seg` table. The client protocol
//! under crash extends naturally: an `Amend` that never got a reply is
//! re-sent after the daemon comes back; amends the engine replied to
//! before the crash are durable by construction (the round record —
//! which carries the swapped plan — lands before the reply).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{self, Receiver};
use gridband_net::Topology;
use gridband_serve::engine::Command;
use gridband_serve::{
    ClientMsg, Engine, EngineConfig, FsyncPolicy, MemDir, ServerMsg, StoreConfig, SubmitReq,
};
use gridband_store::EngineSnapshot;
use rand::{rngs::StdRng, Rng, SeedableRng};

const STEP: f64 = 10.0;
const EVENTS: usize = 36;
/// Two rounds of grace history behind the clock (GC variants).
const HORIZON: f64 = 2.0 * STEP;

#[derive(Debug, Clone)]
enum Event {
    Submit(SubmitReq),
    Cancel {
        id: u64,
    },
    Amend {
        id: u64,
        volume: f64,
        max_rate: f64,
        deadline: Option<f64>,
    },
}

/// A §5.3-style workload with a malleable third: every third submission
/// is a long-lived malleable request (duration floor `volume/max_rate`
/// spans several rounds), amends target malleable reservations that are
/// decided (start more than two rounds in the past) *and* still live at
/// the amend's deciding round (duration floor extends two rounds past
/// the clock), and cancels only touch requests decided long ago. Both
/// feasible and infeasible amends occur — either way the outcome must
/// replay bit-identically.
fn workload(seed: u64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::with_capacity(EVENTS);
    let mut clock = 0.0f64;
    let mut submitted: Vec<(u64, f64)> = Vec::new();
    // (id, start, start + volume/max_rate): the third field is a lower
    // bound on the plan's end — a plan can never run above MaxRate.
    let mut malleable: Vec<(u64, f64, f64)> = Vec::new();
    let mut cancelled: Vec<u64> = Vec::new();
    let mut amended: Vec<u64> = Vec::new();
    for i in 0..EVENTS {
        if i % 9 == 5 {
            if let Some(id) = submitted
                .iter()
                .find(|(id, start)| *start < clock - 2.0 * STEP && !cancelled.contains(id))
                .map(|(id, _)| *id)
            {
                cancelled.push(id);
                events.push(Event::Cancel { id });
                continue;
            }
        }
        if i % 3 == 0 && i > 0 {
            if let Some((id, _, _)) = malleable
                .iter()
                .find(|(id, start, min_end)| {
                    *start < clock - 2.0 * STEP
                        && *min_end > clock + 2.0 * STEP
                        && !cancelled.contains(id)
                        && !amended.contains(id)
                })
                .copied()
            {
                amended.push(id);
                let volume = rng.gen_range(400.0..2400.0);
                let max_rate = rng.gen_range(20.0..60.0);
                let deadline = rng
                    .gen_bool(0.5)
                    .then(|| clock + rng.gen_range(2.0..6.0) * STEP);
                events.push(Event::Amend {
                    id,
                    volume,
                    max_rate,
                    deadline,
                });
                continue;
            }
        }
        clock += rng.gen_range(1.0..8.0);
        let id = i as u64 + 1;
        if i % 3 == 1 {
            // Long-lived malleable request: duration floor 40–100 time
            // units, so the plan outlives many rounds and is a valid
            // amend target well after its deciding round.
            let volume = rng.gen_range(1200.0..2200.0);
            let max_rate = rng.gen_range(20.0..32.0);
            let deadline = rng
                .gen_bool(0.5)
                .then(|| clock + rng.gen_range(1.5..3.0) * volume / max_rate);
            events.push(Event::Submit(SubmitReq {
                id,
                ingress: rng.gen_range(0u32..3),
                egress: rng.gen_range(0u32..3),
                volume,
                max_rate,
                start: Some(clock),
                deadline,
                class: Default::default(),
                malleable: Some(true),
            }));
            malleable.push((id, clock, clock + volume / max_rate));
        } else {
            let volume = rng.gen_range(50.0..400.0);
            let max_rate = rng.gen_range(20.0..90.0);
            let slack = rng.gen_range(1.2..3.5);
            events.push(Event::Submit(SubmitReq {
                id,
                ingress: rng.gen_range(0u32..3),
                egress: rng.gen_range(0u32..3),
                volume,
                max_rate,
                start: Some(clock),
                deadline: Some(clock + slack * volume / max_rate),
                class: Default::default(),
                malleable: None,
            }));
        }
        submitted.push((id, clock));
    }
    events
}

fn config(
    dir: Arc<MemDir>,
    fsync: FsyncPolicy,
    snapshot_every: u64,
    gc_horizon: Option<f64>,
) -> EngineConfig {
    let mut cfg = EngineConfig::new(Topology::uniform(3, 3, 100.0));
    cfg.step = STEP;
    cfg.malleable = true;
    cfg.gc_horizon = gc_horizon;
    cfg.store = Some(StoreConfig {
        dir,
        fsync,
        snapshot_every,
    });
    cfg
}

/// Reply channels of one client session: submit decisions keyed by
/// request id, cancel acks and amend outcomes keyed by event index (the
/// same reservation id may be amended more than once across a run).
#[derive(Default)]
struct Session {
    submits: Vec<(u64, Receiver<ServerMsg>)>,
    cancels: Vec<(usize, Receiver<ServerMsg>)>,
    amends: Vec<(usize, Receiver<ServerMsg>)>,
}

impl Session {
    fn send(&mut self, engine: &Engine, idx: usize, event: &Event) -> bool {
        let (tx, rx) = channel::unbounded();
        let msg = match event {
            Event::Submit(s) => {
                self.submits.push((s.id, rx));
                ClientMsg::Submit(s.clone())
            }
            Event::Cancel { id } => {
                self.cancels.push((idx, rx));
                ClientMsg::Cancel { id: *id }
            }
            Event::Amend {
                id,
                volume,
                max_rate,
                deadline,
            } => {
                self.amends.push((idx, rx));
                ClientMsg::Amend {
                    id: *id,
                    volume: *volume,
                    max_rate: *max_rate,
                    deadline: *deadline,
                }
            }
        };
        engine
            .sender()
            .send(Command::Client {
                msg,
                reply: tx.into(),
            })
            .is_ok()
    }

    fn harvest(
        &mut self,
        decisions: &mut BTreeMap<u64, ServerMsg>,
        acked_cancels: &mut Vec<usize>,
        amend_replies: &mut BTreeMap<usize, ServerMsg>,
    ) {
        for (id, rx) in &self.submits {
            if let Ok(msg) = rx.try_recv() {
                let prev = decisions.insert(*id, msg);
                assert!(prev.is_none(), "two decisions for request {id}");
            }
        }
        for (idx, rx) in &self.cancels {
            if rx.try_recv().is_ok() {
                acked_cancels.push(*idx);
            }
        }
        for (idx, rx) in &self.amends {
            if let Ok(msg) = rx.try_recv() {
                let prev = amend_replies.insert(*idx, msg);
                assert!(prev.is_none(), "two replies for amend event {idx}");
            }
        }
    }
}

fn drain(engine: &Engine) {
    let (tx, rx) = channel::unbounded();
    engine
        .sender()
        .send(Command::Client {
            msg: ClientMsg::Drain,
            reply: tx.into(),
        })
        .expect("engine alive for drain");
    rx.recv_timeout(Duration::from_secs(10)).expect("drain ack");
}

fn export(engine: &Engine) -> EngineSnapshot {
    let (tx, rx) = channel::unbounded();
    engine
        .sender()
        .send(Command::Export { reply: tx })
        .expect("engine alive for export");
    rx.recv_timeout(Duration::from_secs(10)).expect("export")
}

type Outcome = (
    BTreeMap<u64, ServerMsg>,
    BTreeMap<usize, ServerMsg>,
    EngineSnapshot,
);

fn run_uninterrupted(
    events: &[Event],
    fsync: FsyncPolicy,
    snapshot_every: u64,
    gc_horizon: Option<f64>,
) -> Outcome {
    let dir = Arc::new(MemDir::new());
    let engine = Engine::spawn(config(dir, fsync, snapshot_every, gc_horizon));
    let mut session = Session::default();
    for (idx, event) in events.iter().enumerate() {
        assert!(session.send(&engine, idx, event), "engine died mid-run");
    }
    drain(&engine);
    let mut decisions = BTreeMap::new();
    let mut amend_replies = BTreeMap::new();
    session.harvest(&mut decisions, &mut Vec::new(), &mut amend_replies);
    let snap = export(&engine);
    engine.shutdown();
    (decisions, amend_replies, snap)
}

#[derive(Clone, Copy, Debug)]
enum Kill {
    Clean(usize),
    Torn(usize),
}

fn run_with_crash(
    events: &[Event],
    kill: Kill,
    fsync: FsyncPolicy,
    snapshot_every: u64,
    gc_horizon: Option<f64>,
) -> Outcome {
    let dir = Arc::new(MemDir::new());
    let engine = Engine::spawn(config(dir.clone(), fsync, snapshot_every, gc_horizon));
    let mut session = Session::default();
    match kill {
        Kill::Clean(after) => {
            for (idx, event) in events.iter().enumerate().take(after) {
                assert!(session.send(&engine, idx, event), "engine died too early");
            }
        }
        Kill::Torn(after) => {
            for (idx, event) in events.iter().enumerate().take(after) {
                assert!(session.send(&engine, idx, event), "engine died too early");
            }
            // Room for the record header plus a few payload bytes: the
            // next append — a round record carrying segmented grants or
            // amends included — lands torn.
            dir.set_write_budget(12);
            for (idx, event) in events.iter().enumerate().skip(after) {
                if !session.send(&engine, idx, event) {
                    break;
                }
            }
        }
    }
    engine.kill();
    dir.clear_write_budget();

    // The engine thread is joined: every reply it ever sent is in a
    // channel. Whatever is missing was lost to the crash.
    let mut decisions = BTreeMap::new();
    let mut acked_cancels = Vec::new();
    let mut amend_replies = BTreeMap::new();
    session.harvest(&mut decisions, &mut acked_cancels, &mut amend_replies);

    // Restart over the same directory and re-drive every unanswered
    // event — submissions, cancels and amends alike — in original order.
    let engine = Engine::try_spawn(config(dir, fsync, snapshot_every, gc_horizon))
        .expect("recovery from a crash-consistent store must succeed");
    let mut session = Session::default();
    for (idx, event) in events.iter().enumerate() {
        let answered = match event {
            Event::Submit(s) => decisions.contains_key(&s.id),
            Event::Cancel { .. } => acked_cancels.contains(&idx),
            Event::Amend { .. } => amend_replies.contains_key(&idx),
        };
        if !answered {
            assert!(session.send(&engine, idx, event), "recovered engine died");
        }
    }
    drain(&engine);
    session.harvest(&mut decisions, &mut acked_cancels, &mut amend_replies);
    let snap = export(&engine);
    engine.shutdown();
    (decisions, amend_replies, snap)
}

fn assert_equivalent(
    seed: u64,
    kill: Kill,
    fsync: FsyncPolicy,
    snapshot_every: u64,
    gc_horizon: Option<f64>,
) {
    let events = workload(seed);
    let (want_decisions, want_amends, want_snap) =
        run_uninterrupted(&events, fsync, snapshot_every, gc_horizon);

    // The comparison must not be vacuous: the workload has to exercise
    // segmented grants and decide every amend it queued.
    assert!(
        want_decisions
            .values()
            .any(|d| matches!(d, ServerMsg::AcceptedSegments { .. })),
        "seed {seed}: no malleable submission was granted — workload too thin"
    );
    let n_amends = events
        .iter()
        .filter(|e| matches!(e, Event::Amend { .. }))
        .count();
    assert!(n_amends > 0, "seed {seed}: workload queued no amends");
    assert_eq!(
        want_amends.len(),
        n_amends,
        "seed {seed}: uninterrupted run must answer every amend"
    );

    let (got_decisions, got_amends, got_snap) =
        run_with_crash(&events, kill, fsync, snapshot_every, gc_horizon);
    assert_eq!(
        got_decisions, want_decisions,
        "seed {seed} {kill:?}: decisions diverge after recovery"
    );
    assert_eq!(
        got_amends, want_amends,
        "seed {seed} {kill:?}: amend outcomes diverge after recovery"
    );
    assert_eq!(
        got_snap, want_snap,
        "seed {seed} {kill:?}: final engine state diverges after recovery"
    );
}

#[test]
fn clean_kills_recover_segmented_state_bit_identically_seed_11() {
    for kill in [Kill::Clean(9), Kill::Clean(18), Kill::Clean(27)] {
        assert_equivalent(11, kill, FsyncPolicy::Round, 0, None);
    }
}

#[test]
fn clean_kills_recover_segmented_state_bit_identically_seed_22() {
    // Frequent snapshots: recovery restores a snapshot carrying a
    // `live_seg` table, then replays a WAL tail with segmented rounds.
    for kill in [Kill::Clean(9), Kill::Clean(18), Kill::Clean(27)] {
        assert_equivalent(22, kill, FsyncPolicy::Round, 3, None);
    }
}

#[test]
fn torn_writes_recover_segmented_state_bit_identically() {
    for (seed, snapshot_every) in [(11, 0), (22, 3), (33, 1)] {
        for kill in [Kill::Torn(8), Kill::Torn(20)] {
            assert_equivalent(seed, kill, FsyncPolicy::Round, snapshot_every, None);
        }
    }
}

/// Watermark GC composes with segmented reservations: `Gc` records
/// interleave with `AcceptSegments`/`Amend` rounds in the WAL, compacted
/// snapshots drop expired segmented plans, and recovery still lands on
/// the uninterrupted run's bytes.
#[test]
fn gc_watermark_composes_with_segmented_recovery() {
    let events = workload(11);
    let (_, _, snap) = run_uninterrupted(&events, FsyncPolicy::Round, 0, Some(HORIZON));
    assert!(
        snap.ledger.watermark.is_some(),
        "the workload must be long enough for GC to engage"
    );
    for kill in [Kill::Clean(12), Kill::Clean(24), Kill::Torn(20)] {
        assert_equivalent(11, kill, FsyncPolicy::Round, 0, Some(HORIZON));
        assert_equivalent(11, kill, FsyncPolicy::Round, 3, Some(HORIZON));
    }
}

/// Turning GC on under a malleable workload changes no decision and no
/// amend outcome — the watermark only ever truncates fully-expired
/// history, segmented or rigid.
#[test]
fn gc_changes_no_malleable_decision() {
    for seed in [11, 22, 33] {
        let events = workload(seed);
        let (plain_decisions, plain_amends, _) =
            run_uninterrupted(&events, FsyncPolicy::Round, 0, None);
        let (gc_decisions, gc_amends, _) =
            run_uninterrupted(&events, FsyncPolicy::Round, 0, Some(HORIZON));
        assert_eq!(
            gc_decisions, plain_decisions,
            "seed {seed}: GC changed a submission decision"
        );
        assert_eq!(
            gc_amends, plain_amends,
            "seed {seed}: GC changed an amend outcome"
        );
    }
}

/// The amend-atomicity crash window, pinned deterministically: an amend
/// is queued but its deciding round has not fired when the engine dies.
/// The reply was never sent, so the client re-sends after recovery; the
/// merged outcome — and the final ledger — must match a run that never
/// crashed. The original reservation must survive the crash untouched
/// (the WAL holds its grant; the un-decided amend left no trace).
#[test]
fn kill_at_a_pending_amend_recovers_bit_identically() {
    let mk_events = || -> Vec<Event> {
        vec![
            // Long malleable transfer: duration floor 80 time units.
            Event::Submit(SubmitReq {
                id: 1,
                ingress: 0,
                egress: 0,
                volume: 2000.0,
                max_rate: 25.0,
                start: Some(5.0),
                deadline: None,
                class: Default::default(),
                malleable: Some(true),
            }),
            // Rigid follower whose start advances the clock past id 1's
            // round, so id 1 is decided and its plan is live.
            Event::Submit(SubmitReq {
                id: 2,
                ingress: 1,
                egress: 1,
                volume: 100.0,
                max_rate: 50.0,
                start: Some(25.0),
                deadline: Some(60.0),
                class: Default::default(),
                malleable: None,
            }),
            // The amend: queued here, decided only when a later round
            // fires. The crashed run kills the engine at this point.
            Event::Amend {
                id: 1,
                volume: 1200.0,
                max_rate: 40.0,
                deadline: Some(80.0),
            },
            // The round-firing successor that decides the amend.
            Event::Submit(SubmitReq {
                id: 4,
                ingress: 2,
                egress: 2,
                volume: 120.0,
                max_rate: 40.0,
                start: Some(45.0),
                deadline: Some(90.0),
                class: Default::default(),
                malleable: None,
            }),
        ]
    };
    for snapshot_every in [0u64, 1] {
        let events = mk_events();
        let (want_decisions, want_amends, want_snap) =
            run_uninterrupted(&events, FsyncPolicy::Round, snapshot_every, None);
        assert!(
            matches!(
                want_decisions.get(&1),
                Some(ServerMsg::AcceptedSegments { .. })
            ),
            "the malleable submission must be granted"
        );
        assert!(
            matches!(
                want_amends.get(&2),
                Some(ServerMsg::AcceptedSegments { .. })
            ),
            "the amend must be granted in the uninterrupted run, got {:?}",
            want_amends.get(&2)
        );
        // Kill::Clean(3): events 0–2 sent, so the amend sits in
        // `pending_amends` — queued, undecided, unanswered — at kill.
        let (got_decisions, got_amends, got_snap) = run_with_crash(
            &events,
            Kill::Clean(3),
            FsyncPolicy::Round,
            snapshot_every,
            None,
        );
        assert_eq!(
            got_decisions, want_decisions,
            "snapshot_every={snapshot_every}: decisions diverge after a kill at a pending amend"
        );
        assert_eq!(
            got_amends, want_amends,
            "snapshot_every={snapshot_every}: amend outcome diverges after a kill at a pending amend"
        );
        assert_eq!(
            got_snap, want_snap,
            "snapshot_every={snapshot_every}: ledger diverges after a kill at a pending amend"
        );
    }
}
