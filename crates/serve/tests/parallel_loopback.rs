//! Loopback coverage of the daemon's shard-parallel admission path:
//! running the engine with `--admit-threads 4` must change *nothing*
//! observable on the wire (decision-for-decision equality with the
//! sequential daemon) while the stats gauges prove the parallel path —
//! not a silent sequential fallback — actually decided the rounds.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use gridband_algos::BandwidthPolicy;
use gridband_net::Topology;
use gridband_serve::metrics::StatsSnapshot;
use gridband_serve::protocol::{encode_client, ClientMsg, ServerMsg, SubmitReq};
use gridband_serve::{EngineConfig, Server, ServerConfig, TimeMode};
use gridband_workload::{Dist, Trace, WorkloadBuilder};

const STEP: f64 = 50.0;

/// Replay `trace` through a loopback daemon with the given admission
/// parallelism; returns every accept's `(bw, start, finish)` plus the
/// final stats snapshot.
fn run_daemon(
    trace: &Trace,
    topo: Topology,
    admit_threads: usize,
) -> (BTreeMap<u64, (f64, f64, f64)>, StatsSnapshot) {
    let mut engine = EngineConfig::new(topo);
    engine.step = STEP;
    engine.policy = BandwidthPolicy::MAX_RATE;
    engine.mode = TimeMode::Virtual;
    engine.queue_capacity = trace.len() + 16;
    engine.admit_threads = admit_threads;
    let server = Server::bind(ServerConfig::new("127.0.0.1:0", engine)).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle().expect("handle");
    let join = std::thread::spawn(move || server.run());

    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    for r in trace {
        let msg = ClientMsg::Submit(SubmitReq {
            id: r.id.0,
            ingress: r.route.ingress.0,
            egress: r.route.egress.0,
            volume: r.volume,
            max_rate: r.max_rate,
            start: Some(r.start()),
            deadline: Some(r.finish()),
            class: Default::default(),
            malleable: None,
        });
        writeln!(writer, "{}", encode_client(&msg)).expect("write");
    }
    writeln!(writer, "{}", encode_client(&ClientMsg::Drain)).expect("write");
    writer.flush().expect("flush");

    let mut accepted = BTreeMap::new();
    let mut decided = 0usize;
    let mut line = String::new();
    while decided < trace.len() {
        line.clear();
        assert!(
            reader.read_line(&mut line).expect("read") > 0,
            "server closed early"
        );
        match gridband_serve::protocol::decode_server(line.trim()).expect("server line") {
            ServerMsg::Accepted {
                id,
                bw,
                start,
                finish,
            } => {
                accepted.insert(id, (bw, start, finish));
                decided += 1;
            }
            ServerMsg::Rejected { .. } => decided += 1,
            ServerMsg::Draining { .. } => {}
            other => panic!("unexpected reply {other:?}"),
        }
    }

    // All rounds are decided; the gauges now hold the last round that
    // actually had candidates.
    writeln!(writer, "{}", encode_client(&ClientMsg::Stats)).expect("write");
    writer.flush().expect("flush");
    let stats = loop {
        line.clear();
        assert!(
            reader.read_line(&mut line).expect("read") > 0,
            "server closed before stats"
        );
        match gridband_serve::protocol::decode_server(line.trim()).expect("server line") {
            ServerMsg::Stats(snap) => break snap,
            ServerMsg::Draining { .. } => {}
            other => panic!("unexpected reply {other:?}"),
        }
    };
    drop(reader);
    drop(writer);
    handle.shutdown();
    join.join().expect("server thread").expect("server run");
    (accepted, stats)
}

#[test]
fn parallel_daemon_matches_sequential_and_reports_gauges() {
    let topo = Topology::paper_default();
    let trace = WorkloadBuilder::new(topo.clone())
        .mean_interarrival(1.5)
        .slack(Dist::Uniform { lo: 2.0, hi: 4.0 })
        .horizon(250.0)
        .seed(13)
        .build();
    assert!(trace.len() > 50, "workload too small to be meaningful");

    let (seq, seq_stats) = run_daemon(&trace, topo.clone(), 1);
    assert!(!seq.is_empty(), "sequential daemon accepted nothing");
    assert_eq!(seq_stats.admit_threads, 1);

    for threads in [2usize, 4] {
        let (par, stats) = run_daemon(&trace, topo.clone(), threads);
        // Wire-observable decisions are bit-identical: same accepted ids,
        // same (bw, start, finish) triples after one encode/decode each.
        assert_eq!(par, seq, "{threads}-thread daemon diverged");
        // The gauges prove the parallel machinery ran.
        assert_eq!(stats.admit_threads, threads as u64);
        assert!(stats.shards >= 1, "shards gauge unset at {threads} threads");
        assert!(
            stats.largest_shard >= 1,
            "largest_shard gauge unset at {threads} threads"
        );
        assert_eq!(stats.accepted, seq_stats.accepted);
        assert_eq!(stats.rejected, seq_stats.rejected);
    }
}
