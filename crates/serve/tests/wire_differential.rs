//! Codec differential: the binary wire protocol must be a pure
//! re-encoding of the JSON-lines protocol. Replaying the same workload
//! trace against two fresh virtual-clock daemons — one connection per
//! codec — must produce *byte-identical* decisions: the same accepted
//! set and bit-for-bit equal `f64` grants (`bw`, `start`, `finish`).
//! Bit-equality is the point: the binary codec ships IEEE-754 bit
//! patterns while JSON round-trips through decimal text, and the
//! admission engine is deterministic, so any divergence here is a codec
//! bug, not noise.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use gridband_algos::BandwidthPolicy;
use gridband_net::Topology;
use gridband_serve::protocol::{encode_client, ClientMsg, ServerMsg, SubmitReq};
use gridband_serve::wire::{
    decode_server_payload, encode_client_frame, FrameBuf, WireMode, WIRE_MAGIC,
};
use gridband_serve::{EngineConfig, Server, ServerConfig, TimeMode};
use gridband_workload::{Dist, Trace, WorkloadBuilder};

const STEP: f64 = 50.0;

/// One request's decision, bit-exact: accepted grants keep the raw bit
/// patterns of their three `f64`s, rejections record the reason's debug
/// form. Equality of two of these is byte equality of the decision.
#[derive(Debug, PartialEq, Eq)]
enum Decision {
    Granted { bw: u64, start: u64, finish: u64 },
    Denied(String),
}

fn submit_msg(r: &gridband_workload::Request) -> ClientMsg {
    ClientMsg::Submit(SubmitReq {
        id: r.id.0,
        ingress: r.route.ingress.0,
        egress: r.route.egress.0,
        volume: r.volume,
        max_rate: r.max_rate,
        start: Some(r.start()),
        deadline: Some(r.finish()),
        class: Default::default(),
        malleable: None,
    })
}

/// Replay `trace` against a fresh daemon over one TCP connection in the
/// given dialect; collect every decision.
fn run_trace(trace: &Trace, topo: Topology, wire: WireMode) -> BTreeMap<u64, Decision> {
    let mut engine = EngineConfig::new(topo);
    engine.step = STEP;
    engine.policy = BandwidthPolicy::MAX_RATE;
    engine.mode = TimeMode::Virtual;
    engine.queue_capacity = trace.len() + 16;
    let server = Server::bind(ServerConfig::new("127.0.0.1:0", engine)).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle().expect("handle");
    let join = std::thread::spawn(move || server.run());

    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().expect("clone");

    match wire {
        WireMode::Json => {
            for r in trace {
                writeln!(writer, "{}", encode_client(&submit_msg(r))).expect("write");
            }
            writeln!(writer, "{}", encode_client(&ClientMsg::Drain)).expect("write");
        }
        WireMode::Binary => {
            writer.write_all(&WIRE_MAGIC).expect("preamble");
            for r in trace {
                writer
                    .write_all(&encode_client_frame(&submit_msg(r)))
                    .expect("write");
            }
            writer
                .write_all(&encode_client_frame(&ClientMsg::Drain))
                .expect("write");
        }
    }
    writer.flush().expect("flush");

    let mut decisions = BTreeMap::new();
    let mut reader = BufReader::new(stream);
    let mut frames = FrameBuf::new();
    let mut next_msg = |reader: &mut BufReader<TcpStream>| -> ServerMsg {
        match wire {
            WireMode::Json => {
                let mut line = String::new();
                assert!(reader.read_line(&mut line).expect("read") > 0, "early EOF");
                gridband_serve::protocol::decode_server(line.trim()).expect("server line")
            }
            WireMode::Binary => loop {
                if let Some(payload) = frames.next_frame().expect("sound frame") {
                    return decode_server_payload(&payload).expect("server payload");
                }
                let mut buf = [0u8; 4096];
                let n = reader.read(&mut buf).expect("read");
                assert!(n > 0, "early EOF");
                frames.extend(&buf[..n]);
            },
        }
    };
    while decisions.len() < trace.len() {
        match next_msg(&mut reader) {
            ServerMsg::Accepted {
                id,
                bw,
                start,
                finish,
            } => {
                decisions.insert(
                    id,
                    Decision::Granted {
                        bw: bw.to_bits(),
                        start: start.to_bits(),
                        finish: finish.to_bits(),
                    },
                );
            }
            ServerMsg::Rejected { id, reason, .. } => {
                decisions.insert(id, Decision::Denied(format!("{reason:?}")));
            }
            ServerMsg::Draining { .. } => {}
            other => panic!("unexpected reply {other:?}"),
        }
    }
    drop(reader);
    drop(writer);
    handle.shutdown();
    join.join().expect("server thread").expect("server run");
    decisions
}

#[test]
fn binary_and_json_codecs_decide_byte_identically() {
    let topo = Topology::paper_default();
    let trace = WorkloadBuilder::new(topo.clone())
        .mean_interarrival(1.0)
        .slack(Dist::Uniform { lo: 2.0, hi: 4.0 })
        .horizon(300.0)
        .seed(7)
        .build();
    assert!(trace.len() > 100, "workload too small to be meaningful");

    let json = run_trace(&trace, topo.clone(), WireMode::Json);
    let binary = run_trace(&trace, topo, WireMode::Binary);

    assert_eq!(json.len(), trace.len());
    assert_eq!(binary.len(), trace.len());
    let grants = json
        .values()
        .filter(|d| matches!(d, Decision::Granted { .. }))
        .count();
    assert!(grants > 0, "no grants — the equivalence would be vacuous");
    assert!(grants < trace.len(), "no rejections — ditto");

    let mut divergences = 0;
    for (id, jd) in &json {
        let bd = binary.get(id).expect("binary run missed a decision");
        if jd != bd {
            divergences += 1;
            eprintln!("request {id}: json {jd:?} != binary {bd:?}");
        }
    }
    assert_eq!(divergences, 0, "codec decisions diverge");
}

#[test]
fn codec_equivalence_holds_across_seeds() {
    for seed in [1u64, 3] {
        let topo = Topology::uniform(4, 4, 250.0);
        let trace = WorkloadBuilder::new(topo.clone())
            .mean_interarrival(0.5)
            .slack(Dist::Uniform { lo: 2.0, hi: 4.0 })
            .horizon(150.0)
            .seed(seed)
            .build();
        let json = run_trace(&trace, topo.clone(), WireMode::Json);
        let binary = run_trace(&trace, topo, WireMode::Binary);
        assert_eq!(json, binary, "seed {seed}: codec decisions diverge");
    }
}
