//! The daemon is the offline WINDOW scheduler behind a socket: replaying a
//! workload trace through a real TCP loopback connection in virtual-clock
//! mode must reproduce the offline `Simulation` run decision-for-decision
//! — same accepted set, same bandwidth, same start and finish times.
//!
//! This is the core correctness claim of the serve subsystem: admission
//! rounds fire at the same tick times (tick-before-arrival at equal
//! timestamps, drain = one final round), and ledger GC only edits past
//! profile segments, so none of the daemon machinery may change what the
//! paper's Algorithm 3 decides.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use gridband_algos::{BandwidthPolicy, WindowScheduler};
use gridband_net::Topology;
use gridband_serve::protocol::{encode_client, ClientMsg, ServerMsg, SubmitReq};
use gridband_serve::{EngineConfig, Server, ServerConfig, TimeMode};
use gridband_sim::Simulation;
use gridband_workload::{Dist, WorkloadBuilder};

const STEP: f64 = 50.0;

fn run_daemon_over_tcp(
    trace: &gridband_workload::Trace,
    topo: Topology,
) -> HashMap<u64, (f64, f64, f64)> {
    let mut engine = EngineConfig::new(topo);
    engine.step = STEP;
    engine.policy = BandwidthPolicy::MAX_RATE;
    engine.mode = TimeMode::Virtual;
    engine.queue_capacity = trace.len() + 16;
    let server = Server::bind(ServerConfig::new("127.0.0.1:0", engine)).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle().expect("handle");
    let join = std::thread::spawn(move || server.run());

    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // Stream the whole trace in arrival order, then drain.
    for r in trace {
        let msg = ClientMsg::Submit(SubmitReq {
            id: r.id.0,
            ingress: r.route.ingress.0,
            egress: r.route.egress.0,
            volume: r.volume,
            max_rate: r.max_rate,
            start: Some(r.start()),
            deadline: Some(r.finish()),
            class: Default::default(),
            malleable: None,
        });
        writeln!(writer, "{}", encode_client(&msg)).expect("write");
    }
    writeln!(writer, "{}", encode_client(&ClientMsg::Drain)).expect("write");
    writer.flush().expect("flush");

    let mut accepted = HashMap::new();
    let mut decided = 0usize;
    let mut line = String::new();
    while decided < trace.len() {
        line.clear();
        assert!(
            reader.read_line(&mut line).expect("read") > 0,
            "server closed early"
        );
        match gridband_serve::protocol::decode_server(line.trim()).expect("server line") {
            ServerMsg::Accepted {
                id,
                bw,
                start,
                finish,
            } => {
                accepted.insert(id, (bw, start, finish));
                decided += 1;
            }
            ServerMsg::Rejected { .. } => decided += 1,
            ServerMsg::Draining { .. } => {}
            other => panic!("unexpected reply {other:?}"),
        }
    }
    drop(reader);
    drop(writer);
    handle.shutdown();
    join.join().expect("server thread").expect("server run");
    accepted
}

#[test]
fn daemon_matches_offline_window_run() {
    let topo = Topology::paper_default();
    let trace = WorkloadBuilder::new(topo.clone())
        .mean_interarrival(1.0)
        .slack(Dist::Uniform { lo: 2.0, hi: 4.0 })
        .horizon(300.0)
        .seed(7)
        .build();
    assert!(trace.len() > 100, "workload too small to be meaningful");

    let offline = Simulation::new(topo.clone()).run(
        &trace,
        &mut WindowScheduler::new(STEP, BandwidthPolicy::MAX_RATE),
    );
    let daemon = run_daemon_over_tcp(&trace, topo);

    assert_eq!(
        daemon.len(),
        offline.assignments.len(),
        "daemon accepted {} requests, offline accepted {}",
        daemon.len(),
        offline.assignments.len()
    );
    // A WINDOW run on this workload must accept and reject someone,
    // otherwise the equivalence below is vacuous.
    assert!(
        !offline.assignments.is_empty(),
        "offline run accepted nothing"
    );
    assert!(offline.accept_rate < 1.0, "offline run rejected nothing");

    for a in &offline.assignments {
        let (bw, start, finish) = daemon
            .get(&a.id.0)
            .unwrap_or_else(|| panic!("request {} accepted offline, refused by daemon", a.id.0));
        assert!(
            (bw - a.bw).abs() < 1e-9
                && (start - a.start).abs() < 1e-9
                && (finish - a.finish).abs() < 1e-9,
            "request {}: daemon gave ({bw}, {start}, {finish}), offline ({}, {}, {})",
            a.id.0,
            a.bw,
            a.start,
            a.finish
        );
    }
}

#[test]
fn daemon_equivalence_holds_across_seeds_and_steps() {
    for (seed, step) in [(1u64, 20.0f64), (2, 100.0)] {
        let topo = Topology::paper_default();
        let trace = WorkloadBuilder::new(topo.clone())
            .mean_interarrival(2.0)
            .slack(Dist::Uniform { lo: 2.0, hi: 4.0 })
            .horizon(200.0)
            .seed(seed)
            .build();

        let offline = Simulation::new(topo.clone()).run(
            &trace,
            &mut WindowScheduler::new(step, BandwidthPolicy::MAX_RATE),
        );

        let mut engine = EngineConfig::new(topo);
        engine.step = step;
        engine.policy = BandwidthPolicy::MAX_RATE;
        engine.mode = TimeMode::Virtual;
        engine.queue_capacity = trace.len() + 16;
        let server = Server::bind(ServerConfig::new("127.0.0.1:0", engine)).expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = server.shutdown_handle().expect("handle");
        let join = std::thread::spawn(move || server.run());

        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        for r in &trace {
            let msg = ClientMsg::Submit(SubmitReq {
                id: r.id.0,
                ingress: r.route.ingress.0,
                egress: r.route.egress.0,
                volume: r.volume,
                max_rate: r.max_rate,
                start: Some(r.start()),
                deadline: Some(r.finish()),
                class: Default::default(),
                malleable: None,
            });
            writeln!(writer, "{}", encode_client(&msg)).expect("write");
        }
        writeln!(writer, "{}", encode_client(&ClientMsg::Drain)).expect("write");
        writer.flush().expect("flush");

        let mut accepted_ids = Vec::new();
        let mut decided = 0usize;
        let mut line = String::new();
        while decided < trace.len() {
            line.clear();
            assert!(
                reader.read_line(&mut line).expect("read") > 0,
                "server closed early"
            );
            match gridband_serve::protocol::decode_server(line.trim()).expect("server line") {
                ServerMsg::Accepted { id, .. } => {
                    accepted_ids.push(id);
                    decided += 1;
                }
                ServerMsg::Rejected { .. } => decided += 1,
                ServerMsg::Draining { .. } => {}
                other => panic!("unexpected reply {other:?}"),
            }
        }
        drop(reader);
        drop(writer);
        handle.shutdown();
        join.join().expect("server thread").expect("server run");

        let mut offline_ids: Vec<u64> = offline.assignments.iter().map(|a| a.id.0).collect();
        accepted_ids.sort_unstable();
        offline_ids.sort_unstable();
        assert_eq!(
            accepted_ids, offline_ids,
            "seed {seed} step {step}: accepted sets diverge"
        );
    }
}
