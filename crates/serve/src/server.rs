//! TCP front end: line-framed JSON over per-connection reader/writer
//! threads, all decisions funnelled through the engine's bounded command
//! queue.
//!
//! Connection anatomy: one reader thread parses newline-framed requests
//! and enqueues engine commands carrying the connection's reply sender;
//! one writer thread serializes whatever lands on that reply channel back
//! onto the socket. Because replies are asynchronous (a submission is
//! answered at the *next admission round*, not inline), a client may have
//! many requests in flight; replies carry the request id for correlation.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, RecvTimeoutError};

use crate::engine::{Command, Engine, EngineConfig};
use crate::metrics::MetricsRegistry;
use crate::protocol::{decode_client, encode_server, RejectReason, ServerMsg};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7421`.
    pub addr: String,
    /// Engine configuration.
    pub engine: EngineConfig,
    /// Per-connection socket read timeout; a connection idle longer than
    /// this (with no requests in flight) is closed.
    pub read_timeout: Duration,
    /// Maximum accepted request-line length in bytes.
    pub max_line_len: usize,
    /// Per-connection bound on undelivered replies. When it fills (a
    /// client submitting without reading its socket) the engine drops
    /// further replies for that connection, counting them in the
    /// `replies_dropped` stat, rather than ever blocking on the client.
    pub reply_capacity: usize,
    /// Period of the metrics snapshot dumped to stderr as one JSON line;
    /// `None` disables the dump.
    pub snapshot_period: Option<Duration>,
}

impl ServerConfig {
    /// Reasonable defaults on the given address.
    pub fn new(addr: impl Into<String>, engine: EngineConfig) -> Self {
        ServerConfig {
            addr: addr.into(),
            engine,
            read_timeout: Duration::from_secs(300),
            max_line_len: 64 * 1024,
            reply_capacity: 64 * 1024,
            snapshot_period: None,
        }
    }
}

/// A bound listener plus its running engine.
pub struct Server {
    listener: TcpListener,
    engine: Engine,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
}

/// Handle for stopping a server from another thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Ask the accept loop to exit. Live connection sockets are shut
    /// down so blocked readers unblock immediately, and the engine
    /// decides its pending batch before `run` returns.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        // Nudge the (blocking) accept loop awake.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Bind the listener and start the engine. A store that fails to
    /// open or recover (corrupt WAL, unwritable directory) surfaces
    /// here as `InvalidData`, before the listener accepts any client.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let engine = Engine::try_spawn(config.engine.clone())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        Ok(Server {
            listener,
            engine,
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actual bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The running engine's metrics registry. A WAL shipper running
    /// beside the server reports into this, so `Stats` replies carry
    /// replication progress alongside admission counters.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        self.engine.metrics()
    }

    /// Handle to stop `run` from another thread.
    pub fn shutdown_handle(&self) -> std::io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            stop: self.stop.clone(),
            addr: self.local_addr()?,
        })
    }

    /// Accept connections until shut down, then drain the engine.
    /// Blocks the calling thread.
    pub fn run(self) -> std::io::Result<()> {
        let metrics = self.engine.metrics();
        let snapshot_stop = self.stop.clone();
        let snapshotter = self.config.snapshot_period.map(|period| {
            let engine_tx = self.engine.sender();
            std::thread::spawn(move || {
                while !snapshot_stop.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    if snapshot_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    // Route through the engine so pending/live gauges are
                    // consistent with the ledger.
                    let (tx, rx) = channel::bounded(1);
                    if engine_tx
                        .send(Command::Client {
                            msg: crate::protocol::ClientMsg::Stats,
                            reply: tx,
                        })
                        .is_err()
                    {
                        break;
                    }
                    if let Ok(ServerMsg::Stats(snap)) = rx.recv() {
                        if let Ok(js) = serde_json::to_string(&snap) {
                            eprintln!("{js}");
                        }
                    }
                }
            })
        });

        // Each entry keeps a clone of the connection's socket so shutdown
        // can unblock a reader parked in a (minutes-long) timed read.
        let mut conns: Vec<(Option<TcpStream>, std::thread::JoinHandle<()>)> = Vec::new();
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            match stream {
                Ok(stream) => {
                    MetricsRegistry::inc(&metrics.connections);
                    let engine_tx = self.engine.sender();
                    let engine_step = self.engine.step();
                    let metrics = metrics.clone();
                    let cfg = ConnConfig {
                        read_timeout: self.config.read_timeout,
                        max_line_len: self.config.max_line_len,
                        reply_capacity: self.config.reply_capacity,
                        engine_step,
                    };
                    let sock = stream.try_clone().ok();
                    let thread = std::thread::spawn(move || {
                        handle_connection(stream, engine_tx, metrics, cfg)
                    });
                    conns.push((sock, thread));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => continue,
                Err(e) => return Err(e),
            }
            // Opportunistically reap finished connection threads.
            conns.retain(|(_, t)| !t.is_finished());
        }
        // Shutdown order matters. First close the sockets: idle readers
        // would otherwise sit in a blocking read until `read_timeout`
        // (minutes) before noticing. Then stop the engine: its drain
        // round answers pending work and drops the per-connection reply
        // senders it holds, which is what lets writer threads (blocked
        // until their channel disconnects) exit. Only then join.
        for (sock, _) in &conns {
            if let Some(sock) = sock {
                let _ = sock.shutdown(std::net::Shutdown::Both);
            }
        }
        self.engine.shutdown();
        for (_, t) in conns {
            let _ = t.join();
        }
        if let Some(t) = snapshotter {
            let _ = t.join();
        }
        Ok(())
    }
}

#[derive(Clone, Copy)]
struct ConnConfig {
    read_timeout: Duration,
    max_line_len: usize,
    reply_capacity: usize,
    engine_step: f64,
}

fn handle_connection(
    stream: TcpStream,
    engine_tx: channel::Sender<Command>,
    metrics: Arc<MetricsRegistry>,
    cfg: ConnConfig,
) {
    let peer = stream.peer_addr().ok();
    if stream.set_read_timeout(Some(cfg.read_timeout)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (reply_tx, reply_rx) = channel::bounded::<ServerMsg>(cfg.reply_capacity);

    // Writer: serialize replies until the channel closes (reader done and
    // every in-flight engine command answered or dropped).
    let writer = std::thread::spawn(move || {
        let mut out = std::io::BufWriter::new(write_half);
        loop {
            match reply_rx.recv_timeout(Duration::from_millis(200)) {
                Ok(msg) => {
                    if out.write_all(encode_server(&msg).as_bytes()).is_err()
                        || out.write_all(b"\n").is_err()
                    {
                        break;
                    }
                    // Flush when the queue went empty: batches bursts,
                    // keeps single replies prompt.
                    if reply_rx.is_empty() && out.flush().is_err() {
                        break;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if out.flush().is_err() {
                        break;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    let _ = out.flush();
                    break;
                }
            }
        }
    });

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // Bounded read: take() caps how much one request line may consume.
        let mut limited = (&mut reader).take(cfg.max_line_len as u64 + 1);
        match limited.read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(n) if n > cfg.max_line_len => {
                MetricsRegistry::inc(&metrics.protocol_errors);
                let _ = reply_tx.send(ServerMsg::Error {
                    code: "line-too-long".to_string(),
                    message: format!("request line exceeds {} bytes", cfg.max_line_len),
                });
                break; // framing is lost; close the connection
            }
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                match decode_client(trimmed) {
                    Ok(msg) => {
                        if !forward_to_engine(&engine_tx, &reply_tx, &metrics, &cfg, msg) {
                            break; // engine gone; close
                        }
                    }
                    Err(err_reply) => {
                        MetricsRegistry::inc(&metrics.protocol_errors);
                        let _ = reply_tx.send(err_reply);
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break; // idle past the read timeout
            }
            Err(_) => break,
        }
    }
    drop(reply_tx);
    let _ = writer.join();
    let _ = peer; // reserved for future per-peer logging
}

/// How long a control message (Cancel/Query/Stats/Drain) waits for queue
/// space before the connection reports overload. Submissions never wait.
const CONTROL_RETRY: Duration = Duration::from_secs(5);

/// Forward one decoded request to the engine. Returns `false` when the
/// engine is gone and the connection should close.
///
/// Backpressure policy on a full command queue: submissions bounce
/// immediately with a `retry_after` hint — the client is the right place
/// to pace a firehose of new work. Control messages instead retry for up
/// to [`CONTROL_RETRY`]: they are rare, a client typically sends them
/// once right after a burst of submissions (exactly when the queue peaks),
/// and the engine drains the queue continuously, so a short wait converts
/// a spurious `overloaded` error into a normal reply.
fn forward_to_engine(
    engine_tx: &channel::Sender<Command>,
    reply_tx: &channel::Sender<ServerMsg>,
    metrics: &MetricsRegistry,
    cfg: &ConnConfig,
    msg: crate::protocol::ClientMsg,
) -> bool {
    let is_submit = matches!(msg, crate::protocol::ClientMsg::Submit(_));
    let mut cmd = Command::Client {
        msg,
        reply: reply_tx.clone(),
    };
    let give_up_at = Instant::now() + CONTROL_RETRY;
    loop {
        match engine_tx.try_send(cmd) {
            Ok(()) => return true,
            Err(channel::TrySendError::Full(c)) => {
                if !is_submit && Instant::now() < give_up_at {
                    cmd = c;
                    std::thread::sleep(Duration::from_millis(2));
                    continue;
                }
                MetricsRegistry::inc(&metrics.queue_full);
                if let Command::Client {
                    msg: crate::protocol::ClientMsg::Submit(s),
                    ..
                } = c
                {
                    let _ = reply_tx.send(ServerMsg::Rejected {
                        id: s.id,
                        reason: RejectReason::QueueFull,
                        retry_after: Some(cfg.engine_step),
                    });
                } else {
                    let _ = reply_tx.send(ServerMsg::Error {
                        code: "overloaded".to_string(),
                        message: "engine queue full, retry".to_string(),
                    });
                }
                return true;
            }
            Err(channel::TrySendError::Disconnected(_)) => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{encode_client, ClientMsg, SubmitReq};
    use gridband_net::Topology;

    fn start_server() -> (ShutdownHandle, SocketAddr, std::thread::JoinHandle<()>) {
        let mut engine = EngineConfig::new(Topology::uniform(2, 2, 100.0));
        engine.step = 10.0;
        let server = Server::bind(ServerConfig::new("127.0.0.1:0", engine)).expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = server.shutdown_handle().expect("handle");
        let join = std::thread::spawn(move || server.run().expect("server run"));
        (handle, addr, join)
    }

    fn send_line(stream: &mut TcpStream, msg: &ClientMsg) {
        let mut line = encode_client(msg);
        line.push('\n');
        stream.write_all(line.as_bytes()).expect("write");
    }

    fn read_reply(reader: &mut BufReader<TcpStream>) -> ServerMsg {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        crate::protocol::decode_server(line.trim()).expect("decode")
    }

    #[test]
    fn submit_over_tcp_gets_a_decision() {
        let (handle, addr, join) = start_server();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());

        send_line(
            &mut stream,
            &ClientMsg::Submit(SubmitReq {
                id: 1,
                ingress: 0,
                egress: 1,
                volume: 500.0,
                max_rate: 100.0,
                start: Some(0.0),
                deadline: Some(60.0),
            }),
        );
        // Drive the deciding round via a drain (single-shot test server).
        send_line(&mut stream, &ClientMsg::Drain);

        let first = read_reply(&mut reader);
        match first {
            ServerMsg::Accepted {
                id: 1, bw, start, ..
            } => {
                assert_eq!(start, 10.0);
                assert_eq!(bw, 100.0);
            }
            other => panic!("expected acceptance first, got {other:?}"),
        }
        match read_reply(&mut reader) {
            ServerMsg::Draining { pending } => assert_eq!(pending, 1),
            other => panic!("expected draining ack, got {other:?}"),
        }

        drop(reader);
        drop(stream);
        handle.shutdown();
        join.join().expect("server thread");
    }

    #[test]
    fn malformed_and_versioned_lines_get_error_replies() {
        let (handle, addr, join) = start_server();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());

        stream.write_all(b"this is not json\n").unwrap();
        match read_reply(&mut reader) {
            ServerMsg::Error { code, .. } => assert_eq!(code, "parse"),
            other => panic!("expected parse error, got {other:?}"),
        }

        stream
            .write_all(b"{\"v\": 42, \"body\": \"Stats\"}\n")
            .unwrap();
        match read_reply(&mut reader) {
            ServerMsg::Error { code, .. } => assert_eq!(code, "bad-version"),
            other => panic!("expected version error, got {other:?}"),
        }

        // The connection survives protocol errors: a valid query works.
        send_line(&mut stream, &ClientMsg::Query { id: 404 });
        match read_reply(&mut reader) {
            ServerMsg::Status { id: 404, state, .. } => {
                assert_eq!(state, crate::protocol::ReqState::Unknown);
            }
            other => panic!("expected status, got {other:?}"),
        }

        drop(reader);
        drop(stream);
        handle.shutdown();
        join.join().expect("server thread");
    }

    #[test]
    fn oversized_line_closes_the_connection_with_an_error() {
        let mut engine = EngineConfig::new(Topology::uniform(1, 1, 100.0));
        engine.step = 10.0;
        let mut cfg = ServerConfig::new("127.0.0.1:0", engine);
        cfg.max_line_len = 128;
        let server = Server::bind(cfg).expect("bind");
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle().unwrap();
        let join = std::thread::spawn(move || server.run().expect("run"));

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let long = "x".repeat(1024);
        stream.write_all(long.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        match read_reply(&mut reader) {
            ServerMsg::Error { code, .. } => assert_eq!(code, "line-too-long"),
            other => panic!("expected line-too-long, got {other:?}"),
        }
        // Server closes its side after a framing loss.
        let mut rest = String::new();
        let n = reader.read_line(&mut rest).unwrap_or(0);
        assert_eq!(n, 0, "connection should be closed, got {rest:?}");

        drop(reader);
        drop(stream);
        handle.shutdown();
        join.join().expect("server thread");
    }

    #[test]
    fn shutdown_unblocks_idle_connections_promptly() {
        let mut engine = EngineConfig::new(Topology::uniform(1, 1, 100.0));
        engine.step = 10.0;
        let mut cfg = ServerConfig::new("127.0.0.1:0", engine);
        cfg.read_timeout = Duration::from_secs(30);
        let server = Server::bind(cfg).expect("bind");
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle().unwrap();
        let join = std::thread::spawn(move || server.run().expect("run"));

        // An idle client: its reader thread sits in a blocking read.
        let stream = TcpStream::connect(addr).expect("connect");
        std::thread::sleep(Duration::from_millis(50));
        let t0 = Instant::now();
        handle.shutdown();
        join.join().expect("server thread");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "shutdown took {:?}; it must not wait out the 30 s read timeout",
            t0.elapsed()
        );
        drop(stream);
    }

    #[test]
    fn concurrent_connections_are_served() {
        let (handle, addr, join) = start_server();
        let mut workers = Vec::new();
        for k in 0..4u64 {
            workers.push(std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                send_line(&mut stream, &ClientMsg::Query { id: k });
                matches!(read_reply(&mut reader), ServerMsg::Status { .. })
            }));
        }
        for w in workers {
            assert!(w.join().expect("worker"), "query must get a status reply");
        }
        handle.shutdown();
        join.join().expect("server thread");
    }
}
