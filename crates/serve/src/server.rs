//! TCP front end: a readiness-driven poll loop over nonblocking
//! connections, all decisions funnelled through the engine's bounded
//! command queue.
//!
//! The acceptor thread blocks in `accept` and hands each socket to one
//! of a small pool of I/O loop threads (round-robin). Each loop thread
//! parks in `poll(2)` over its connections plus a wake pipe: readable
//! sockets are drained and batch-decoded straight into the engine
//! queue, and replies landing on a connection's bounded reply channel
//! ring the wake pipe (via the engine-side [`ReplySink`] waker) so the
//! loop wakes and writes them from the per-connection outbound buffer.
//! No thread ever blocks on a client.
//!
//! Two codecs share the port. A connection whose first bytes are the
//! [`crate::wire::WIRE_MAGIC`] preamble speaks the binary frame format
//! of [`crate::wire`]; anything else (JSON-lines always starts with
//! `{`) falls back to the line-framed JSON of [`crate::protocol`].
//! Because replies are asynchronous (a submission is answered at the
//! *next admission round*, not inline), a client may have many requests
//! in flight; replies carry the request id for correlation.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender};

use crate::engine::{Command, Engine, EngineConfig, ReplySink};
use crate::metrics::MetricsRegistry;
use crate::protocol::{decode_client, encode_server, ClientMsg, RejectReason, ServerMsg};
use crate::wire::{decode_client_payload, encode_server_frame, FrameBuf, WireError, WIRE_MAGIC};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7421`.
    pub addr: String,
    /// Engine configuration.
    pub engine: EngineConfig,
    /// Idle bound: a connection that has sent no bytes for this long
    /// (with nothing left to write to it) is closed.
    pub read_timeout: Duration,
    /// Maximum accepted JSON request-line length in bytes.
    pub max_line_len: usize,
    /// Per-connection bound on undelivered replies. When it fills (a
    /// client submitting without reading its socket) the engine drops
    /// further replies for that connection, counting them in the
    /// `replies_dropped` stat, rather than ever blocking on the client.
    pub reply_capacity: usize,
    /// Period of the metrics snapshot dumped to stderr as one JSON line;
    /// `None` disables the dump.
    pub snapshot_period: Option<Duration>,
    /// I/O loop threads sharing the connection load. Two is plenty: the
    /// loops only shuffle bytes; every decision still serializes through
    /// the single engine thread.
    pub io_threads: usize,
}

impl ServerConfig {
    /// Reasonable defaults on the given address.
    pub fn new(addr: impl Into<String>, engine: EngineConfig) -> Self {
        ServerConfig {
            addr: addr.into(),
            engine,
            read_timeout: Duration::from_secs(300),
            max_line_len: 64 * 1024,
            reply_capacity: 64 * 1024,
            snapshot_period: None,
            io_threads: 2,
        }
    }
}

/// A bound listener plus its running engine.
pub struct Server {
    listener: TcpListener,
    engine: Engine,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
}

/// Handle for stopping a server from another thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Ask the accept loop to exit. The I/O loops are woken and close
    /// their connections immediately, and the engine decides its pending
    /// batch before `run` returns.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        // Nudge the (blocking) accept loop awake.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Bind the listener and start the engine. A store that fails to
    /// open or recover (corrupt WAL, unwritable directory) surfaces
    /// here as `InvalidData`, before the listener accepts any client.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let engine = Engine::try_spawn(config.engine.clone())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        Ok(Server {
            listener,
            engine,
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actual bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The running engine's metrics registry. A WAL shipper running
    /// beside the server reports into this, so `Stats` replies carry
    /// replication progress alongside admission counters.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        self.engine.metrics()
    }

    /// Handle to stop `run` from another thread.
    pub fn shutdown_handle(&self) -> std::io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            stop: self.stop.clone(),
            addr: self.local_addr()?,
        })
    }

    /// Accept connections until shut down, then drain the engine.
    /// Blocks the calling thread.
    pub fn run(self) -> std::io::Result<()> {
        let metrics = self.engine.metrics();
        let snapshot_stop = self.stop.clone();
        let snapshotter = self.config.snapshot_period.map(|period| {
            let engine_tx = self.engine.sender();
            std::thread::spawn(move || {
                while !snapshot_stop.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    if snapshot_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    // Route through the engine so pending/live gauges are
                    // consistent with the ledger.
                    let (tx, rx) = channel::bounded(1);
                    if engine_tx
                        .send(Command::Client {
                            msg: ClientMsg::Stats,
                            reply: tx.into(),
                        })
                        .is_err()
                    {
                        break;
                    }
                    if let Ok(ServerMsg::Stats(snap)) = rx.recv() {
                        if let Ok(js) = serde_json::to_string(&snap) {
                            eprintln!("{js}");
                        }
                    }
                }
            })
        });

        // Spin up the I/O loop pool.
        let cfg = ConnConfig {
            read_timeout: self.config.read_timeout,
            max_line_len: self.config.max_line_len,
            reply_capacity: self.config.reply_capacity,
            engine_step: self.engine.step(),
        };
        let mut loops = Vec::new();
        let mut threads = Vec::new();
        for _ in 0..self.config.io_threads.max(1) {
            let (conn_tx, conn_rx) = channel::unbounded::<TcpStream>();
            let (wake_w, wake_r) = UnixStream::pair()?;
            wake_w.set_nonblocking(true)?;
            wake_r.set_nonblocking(true)?;
            let waker = Arc::new(WakePipe(wake_w));
            let io = IoLoop {
                conn_rx,
                wake_r,
                waker: waker.clone(),
                stop: self.stop.clone(),
                engine_tx: self.engine.sender(),
                metrics: metrics.clone(),
                cfg,
            };
            threads.push(std::thread::spawn(move || io.run()));
            loops.push((conn_tx, waker));
        }

        let mut next = 0usize;
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            match stream {
                Ok(stream) => {
                    MetricsRegistry::inc(&metrics.connections);
                    let (conn_tx, waker) = &loops[next % loops.len()];
                    next += 1;
                    if conn_tx.send(stream).is_ok() {
                        waker.wake();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => continue,
                Err(e) => return Err(e),
            }
        }
        // Shutdown order matters. First stop the I/O loops: they close
        // every connection socket, so no client observes a reply that
        // post-dates the shutdown request. Then stop the engine: its
        // drain round decides pending work (making it durable) and drops
        // the per-connection reply sinks it holds. Only then join the
        // snapshotter.
        for (conn_tx, waker) in &loops {
            // Dropping the sender is not enough: the loop blocks in
            // poll(2), not on the channel. Ring the pipe.
            drop(conn_tx.clone());
            waker.wake();
        }
        for t in threads {
            let _ = t.join();
        }
        self.engine.shutdown();
        if let Some(t) = snapshotter {
            let _ = t.join();
        }
        Ok(())
    }
}

#[derive(Clone, Copy)]
struct ConnConfig {
    read_timeout: Duration,
    max_line_len: usize,
    reply_capacity: usize,
    engine_step: f64,
}

/// Write end of an I/O loop's wake pipe. The engine thread rings it
/// (through a [`ReplySink`] waker) after parking a reply; the loop
/// thread drains it at the top of every iteration. Nonblocking: once
/// the pipe buffer holds a byte the loop is guaranteed to wake, so a
/// `WouldBlock` here means the wake is already pending.
struct WakePipe(UnixStream);

impl WakePipe {
    fn wake(&self) {
        let _ = (&self.0).write(&[1u8]);
    }
}

// --------------------------------------------------------------------
// poll(2): the only readiness primitive the platform libc always has.
// Hand-rolled because the container carries no event-loop crate; the
// struct layout is fixed by POSIX.
// --------------------------------------------------------------------

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: std::os::raw::c_int,
    events: std::os::raw::c_short,
    revents: std::os::raw::c_short,
}

const POLLIN: std::os::raw::c_short = 0x001;
const POLLOUT: std::os::raw::c_short = 0x004;
const POLLERR: std::os::raw::c_short = 0x008;
const POLLHUP: std::os::raw::c_short = 0x010;
const POLLNVAL: std::os::raw::c_short = 0x020;

extern "C" {
    fn poll(
        fds: *mut PollFd,
        nfds: std::os::raw::c_ulong,
        timeout: std::os::raw::c_int,
    ) -> std::os::raw::c_int;
}

fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
    // SAFETY: `fds` is a valid, exclusively borrowed slice of
    // `#[repr(C)]` pollfd-layout structs for the duration of the call.
    unsafe {
        poll(
            fds.as_mut_ptr(),
            fds.len() as std::os::raw::c_ulong,
            timeout_ms,
        )
    }
}

/// Which dialect a connection speaks, settled by its first bytes.
enum Codec {
    /// Too few bytes to tell yet; they are buffered here.
    Detecting(Vec<u8>),
    /// Newline-framed JSON (the compat dialect).
    Json(Vec<u8>),
    /// `[len][crc32][payload]` binary frames behind the magic preamble.
    Binary(FrameBuf),
}

struct Conn {
    sock: TcpStream,
    codec: Codec,
    /// Loop-side reply sender for parse errors and queue-full bounces;
    /// dropped at read-EOF so the reply channel disconnects once the
    /// engine has answered everything in flight.
    reply_tx: Option<Sender<ServerMsg>>,
    reply_rx: Receiver<ServerMsg>,
    /// Outbound bytes not yet accepted by the socket.
    out: Vec<u8>,
    out_pos: usize,
    last_read: Instant,
    read_closed: bool,
    /// All reply senders (ours and the engine's) are gone and drained.
    replies_done: bool,
    /// Unrecoverable socket or framing state: close without flushing.
    dead: bool,
}

impl Conn {
    fn new(sock: TcpStream, reply_capacity: usize) -> std::io::Result<Conn> {
        sock.set_nonblocking(true)?;
        let (reply_tx, reply_rx) = channel::bounded(reply_capacity);
        Ok(Conn {
            sock,
            codec: Codec::Detecting(Vec::new()),
            reply_tx: Some(reply_tx),
            reply_rx,
            out: Vec::new(),
            out_pos: 0,
            last_read: Instant::now(),
            read_closed: false,
            replies_done: false,
            dead: false,
        })
    }

    /// Queue a loop-side reply (protocol error, backpressure bounce)
    /// through the same channel the engine uses, so a client observes
    /// replies in the order its requests were handled.
    fn push_reply(&mut self, metrics: &MetricsRegistry, msg: ServerMsg) {
        if let Some(tx) = &self.reply_tx {
            if tx.try_send(msg).is_err() {
                MetricsRegistry::inc(&metrics.replies_dropped);
            }
        }
    }

    /// Stop reading: drop our reply sender so the channel disconnects
    /// once the engine finishes, flush what remains, then close.
    fn close_after_flush(&mut self) {
        self.read_closed = true;
        self.reply_tx = None;
    }

    /// Move every queued reply into the outbound buffer, encoded for
    /// this connection's codec.
    fn drain_replies(&mut self) {
        loop {
            match self.reply_rx.try_recv() {
                Ok(msg) => {
                    match &self.codec {
                        Codec::Binary(_) => self.out.extend_from_slice(&encode_server_frame(&msg)),
                        // JSON is also the answer dialect while still
                        // detecting: only protocol errors can arise then.
                        Codec::Json(_) | Codec::Detecting(_) => {
                            self.out.extend_from_slice(encode_server(&msg).as_bytes());
                            self.out.push(b'\n');
                        }
                    }
                }
                Err(channel::TryRecvError::Empty) => break,
                Err(channel::TryRecvError::Disconnected) => {
                    self.replies_done = true;
                    break;
                }
            }
        }
    }

    /// Push buffered bytes into the socket until it stops accepting.
    fn flush_out(&mut self) {
        while self.out_pos < self.out.len() {
            match (&self.sock).write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        } else if self.out_pos > 4096 && self.out_pos * 2 > self.out.len() {
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
    }

    /// True when the connection has nothing left to do and can be
    /// dropped: reads are over and every reply has been written out.
    fn finished(&self) -> bool {
        self.dead || (self.read_closed && self.replies_done && self.out_pos == self.out.len())
    }
}

struct IoLoop {
    conn_rx: Receiver<TcpStream>,
    wake_r: UnixStream,
    waker: Arc<WakePipe>,
    stop: Arc<AtomicBool>,
    engine_tx: Sender<Command>,
    metrics: Arc<MetricsRegistry>,
    cfg: ConnConfig,
}

/// How long a control message (Cancel/Query/Stats/Drain) waits for queue
/// space before the connection reports overload. Submissions never wait.
const CONTROL_RETRY: Duration = Duration::from_secs(5);

impl IoLoop {
    fn run(self) {
        let mut conns: Vec<Conn> = Vec::new();
        let mut scratch = vec![0u8; 64 * 1024];
        let wake_fn: Arc<dyn Fn() + Send + Sync> = {
            let waker = self.waker.clone();
            Arc::new(move || waker.wake())
        };
        loop {
            // Adopt sockets the acceptor handed over.
            while let Ok(sock) = self.conn_rx.try_recv() {
                if let Ok(conn) = Conn::new(sock, self.cfg.reply_capacity) {
                    conns.push(conn);
                }
            }
            if self.stop.load(Ordering::Relaxed) {
                break;
            }

            let mut fds = Vec::with_capacity(1 + conns.len());
            fds.push(PollFd {
                fd: self.wake_r.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
            for c in &conns {
                let mut events = 0;
                if !c.read_closed {
                    events |= POLLIN;
                }
                if c.out_pos < c.out.len() {
                    events |= POLLOUT;
                }
                fds.push(PollFd {
                    fd: c.sock.as_raw_fd(),
                    events,
                    revents: 0,
                });
            }
            // 1 s cap: the idle reaper and the stop flag are checked at
            // least this often even with no traffic at all.
            poll_fds(&mut fds, 1000);
            if self.stop.load(Ordering::Relaxed) {
                break;
            }

            // Drain the wake pipe; its only meaning is "look again".
            if fds[0].revents & (POLLIN | POLLERR | POLLHUP) != 0 {
                let mut buf = [0u8; 256];
                while matches!((&self.wake_r).read(&mut buf), Ok(n) if n > 0) {}
            }

            for (i, c) in conns.iter_mut().enumerate() {
                let revents = fds[1 + i].revents;
                if revents & POLLNVAL != 0 {
                    c.dead = true;
                    continue;
                }
                if revents & (POLLIN | POLLERR | POLLHUP) != 0 && !c.read_closed {
                    self.read_ready(c, &mut scratch, &wake_fn);
                }
                c.drain_replies();
                c.flush_out();
                if !c.read_closed && c.last_read.elapsed() > self.cfg.read_timeout {
                    // Idle past the bound: stop reading, deliver what is
                    // still owed, then close.
                    c.close_after_flush();
                    c.drain_replies();
                    c.flush_out();
                }
            }
            conns.retain(|c| {
                if c.finished() {
                    let _ = c.sock.shutdown(std::net::Shutdown::Both);
                    false
                } else {
                    true
                }
            });
        }
        for c in &conns {
            let _ = c.sock.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Drain a readable socket and decode every complete request.
    fn read_ready(&self, c: &mut Conn, scratch: &mut [u8], wake_fn: &Arc<dyn Fn() + Send + Sync>) {
        loop {
            match (&c.sock).read(scratch) {
                Ok(0) => {
                    c.close_after_flush();
                    return;
                }
                Ok(n) => {
                    c.last_read = Instant::now();
                    self.feed(c, &scratch[..n], wake_fn);
                    if c.read_closed || c.dead {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    c.dead = true;
                    return;
                }
            }
        }
    }

    /// Route freshly read bytes through the connection's codec state.
    fn feed(&self, c: &mut Conn, mut bytes: &[u8], wake_fn: &Arc<dyn Fn() + Send + Sync>) {
        if let Codec::Detecting(buf) = &mut c.codec {
            buf.extend_from_slice(bytes);
            if buf.len() < WIRE_MAGIC.len() && WIRE_MAGIC.starts_with(buf) {
                return; // genuinely ambiguous: wait for more bytes
            }
            let settled = std::mem::take(buf);
            if settled.starts_with(&WIRE_MAGIC) {
                MetricsRegistry::inc(&self.metrics.conns_binary);
                let mut fb = FrameBuf::new();
                fb.extend(&settled[WIRE_MAGIC.len()..]);
                c.codec = Codec::Binary(fb);
            } else {
                MetricsRegistry::inc(&self.metrics.conns_json);
                c.codec = Codec::Json(settled);
            }
            bytes = &[]; // everything is inside the codec state now
        }
        match &mut c.codec {
            Codec::Detecting(_) => unreachable!("settled above"),
            Codec::Json(_) => self.feed_json(c, bytes, wake_fn),
            Codec::Binary(_) => self.feed_binary(c, bytes, wake_fn),
        }
    }

    fn feed_json(&self, c: &mut Conn, bytes: &[u8], wake_fn: &Arc<dyn Fn() + Send + Sync>) {
        let Codec::Json(buf) = &mut c.codec else {
            return;
        };
        buf.extend_from_slice(bytes);
        loop {
            let Codec::Json(buf) = &mut c.codec else {
                return;
            };
            let Some(nl) = buf.iter().position(|&b| b == b'\n') else {
                if buf.len() > self.cfg.max_line_len {
                    MetricsRegistry::inc(&self.metrics.protocol_errors);
                    let max = self.cfg.max_line_len;
                    c.push_reply(
                        &self.metrics,
                        ServerMsg::Error {
                            code: "line-too-long".to_string(),
                            message: format!("request line exceeds {max} bytes"),
                        },
                    );
                    c.close_after_flush(); // framing is lost
                }
                return;
            };
            if nl > self.cfg.max_line_len {
                MetricsRegistry::inc(&self.metrics.protocol_errors);
                let max = self.cfg.max_line_len;
                c.push_reply(
                    &self.metrics,
                    ServerMsg::Error {
                        code: "line-too-long".to_string(),
                        message: format!("request line exceeds {max} bytes"),
                    },
                );
                c.close_after_flush();
                return;
            }
            let line: Vec<u8> = buf.drain(..=nl).collect();
            let reply = match std::str::from_utf8(&line) {
                Ok(s) if s.trim().is_empty() => continue,
                Ok(s) => match decode_client(s.trim()) {
                    Ok(msg) => {
                        if !self.forward(c, msg, wake_fn) {
                            c.dead = true; // engine gone
                            return;
                        }
                        continue;
                    }
                    Err(err_reply) => err_reply,
                },
                Err(_) => ServerMsg::Error {
                    code: "parse".to_string(),
                    message: "request line is not UTF-8".to_string(),
                },
            };
            MetricsRegistry::inc(&self.metrics.protocol_errors);
            c.push_reply(&self.metrics, reply);
        }
    }

    fn feed_binary(&self, c: &mut Conn, bytes: &[u8], wake_fn: &Arc<dyn Fn() + Send + Sync>) {
        {
            let Codec::Binary(fb) = &mut c.codec else {
                return;
            };
            fb.extend(bytes);
        }
        loop {
            let Codec::Binary(fb) = &mut c.codec else {
                return;
            };
            match fb.next_frame() {
                Ok(None) => return,
                Ok(Some(payload)) => match decode_client_payload(&payload) {
                    Ok(msg) => {
                        if !self.forward(c, msg, wake_fn) {
                            c.dead = true;
                            return;
                        }
                    }
                    Err(e) => {
                        // The frame itself was sound, so framing is
                        // intact and the connection survives.
                        MetricsRegistry::inc(&self.metrics.protocol_errors);
                        let code = match e {
                            WireError::BadVersion(_) => "bad-version",
                            _ => "parse",
                        };
                        c.push_reply(
                            &self.metrics,
                            ServerMsg::Error {
                                code: code.to_string(),
                                message: e.to_string(),
                            },
                        );
                    }
                },
                Err(e) => {
                    // Bad length prefix or CRC: the byte stream can no
                    // longer be split into frames. Report and close.
                    MetricsRegistry::inc(&self.metrics.protocol_errors);
                    c.push_reply(
                        &self.metrics,
                        ServerMsg::Error {
                            code: "frame".to_string(),
                            message: e.to_string(),
                        },
                    );
                    c.close_after_flush();
                    return;
                }
            }
        }
    }

    /// Forward one decoded request to the engine. Returns `false` when
    /// the engine is gone and the connection should close.
    ///
    /// Backpressure policy on a full command queue: submissions bounce
    /// immediately with a `retry_after` hint — the client is the right
    /// place to pace a firehose of new work. Control messages instead
    /// wait up to [`CONTROL_RETRY`]: they are rare, a client typically
    /// sends them once right after a burst of submissions (exactly when
    /// the queue peaks), and the engine drains the queue continuously,
    /// so a short wait converts a spurious `overloaded` error into a
    /// normal reply.
    fn forward(&self, c: &mut Conn, msg: ClientMsg, wake_fn: &Arc<dyn Fn() + Send + Sync>) -> bool {
        let Some(reply_tx) = &c.reply_tx else {
            return true; // read side already closed; drop the request
        };
        let reply = ReplySink::with_waker(reply_tx.clone(), wake_fn.clone());
        let is_submit = matches!(msg, ClientMsg::Submit(_));
        let cmd = Command::Client { msg, reply };
        if is_submit {
            match self.engine_tx.try_send(cmd) {
                Ok(()) => true,
                Err(channel::TrySendError::Full(cmd)) => {
                    MetricsRegistry::inc(&self.metrics.queue_full);
                    if let Command::Client {
                        msg: ClientMsg::Submit(s),
                        ..
                    } = cmd
                    {
                        c.push_reply(
                            &self.metrics,
                            ServerMsg::Rejected {
                                id: s.id,
                                reason: RejectReason::QueueFull,
                                retry_after: Some(self.cfg.engine_step),
                            },
                        );
                    }
                    true
                }
                Err(channel::TrySendError::Disconnected(_)) => false,
            }
        } else {
            let give_up_at = Instant::now() + CONTROL_RETRY;
            let mut cmd = cmd;
            loop {
                match self.engine_tx.try_send(cmd) {
                    Ok(()) => return true,
                    Err(channel::TrySendError::Full(back)) => {
                        if Instant::now() >= give_up_at || self.stop.load(Ordering::Relaxed) {
                            MetricsRegistry::inc(&self.metrics.queue_full);
                            c.push_reply(
                                &self.metrics,
                                ServerMsg::Error {
                                    code: "overloaded".to_string(),
                                    message: "engine queue full, retry".to_string(),
                                },
                            );
                            return true;
                        }
                        cmd = back;
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(channel::TrySendError::Disconnected(_)) => return false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{encode_client, ClientMsg, SubmitReq};
    use crate::wire::{decode_server_payload, encode_client_frame};
    use gridband_net::Topology;
    use std::io::BufRead;
    use std::io::BufReader;

    fn start_server() -> (ShutdownHandle, SocketAddr, std::thread::JoinHandle<()>) {
        let mut engine = EngineConfig::new(Topology::uniform(2, 2, 100.0));
        engine.step = 10.0;
        let server = Server::bind(ServerConfig::new("127.0.0.1:0", engine)).expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = server.shutdown_handle().expect("handle");
        let join = std::thread::spawn(move || server.run().expect("server run"));
        (handle, addr, join)
    }

    fn send_line(stream: &mut TcpStream, msg: &ClientMsg) {
        let mut line = encode_client(msg);
        line.push('\n');
        stream.write_all(line.as_bytes()).expect("write");
    }

    fn read_reply(reader: &mut BufReader<TcpStream>) -> ServerMsg {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        crate::protocol::decode_server(line.trim()).expect("decode")
    }

    /// Read one binary server frame off the socket.
    fn read_frame(stream: &mut TcpStream, fb: &mut FrameBuf) -> ServerMsg {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(payload) = fb.next_frame().expect("sound frame") {
                return decode_server_payload(&payload).expect("decode server payload");
            }
            let n = stream.read(&mut buf).expect("read");
            assert!(n > 0, "connection closed mid-frame");
            fb.extend(&buf[..n]);
        }
    }

    #[test]
    fn submit_over_tcp_gets_a_decision() {
        let (handle, addr, join) = start_server();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());

        send_line(
            &mut stream,
            &ClientMsg::Submit(SubmitReq {
                id: 1,
                ingress: 0,
                egress: 1,
                volume: 500.0,
                max_rate: 100.0,
                start: Some(0.0),
                deadline: Some(60.0),
                class: Default::default(),
                malleable: None,
            }),
        );
        // Drive the deciding round via a drain (single-shot test server).
        send_line(&mut stream, &ClientMsg::Drain);

        let first = read_reply(&mut reader);
        match first {
            ServerMsg::Accepted {
                id: 1, bw, start, ..
            } => {
                assert_eq!(start, 10.0);
                assert_eq!(bw, 100.0);
            }
            other => panic!("expected acceptance first, got {other:?}"),
        }
        match read_reply(&mut reader) {
            ServerMsg::Draining { pending } => assert_eq!(pending, 1),
            other => panic!("expected draining ack, got {other:?}"),
        }

        drop(reader);
        drop(stream);
        handle.shutdown();
        join.join().expect("server thread");
    }

    #[test]
    fn binary_submit_over_tcp_gets_the_same_decision() {
        let (handle, addr, join) = start_server();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(&WIRE_MAGIC).expect("preamble");
        stream
            .write_all(&encode_client_frame(&ClientMsg::Submit(SubmitReq {
                id: 1,
                ingress: 0,
                egress: 1,
                volume: 500.0,
                max_rate: 100.0,
                start: Some(0.0),
                deadline: Some(60.0),
                class: Default::default(),
                malleable: None,
            })))
            .expect("submit frame");
        stream
            .write_all(&encode_client_frame(&ClientMsg::Drain))
            .expect("drain frame");

        let mut fb = FrameBuf::new();
        match read_frame(&mut stream, &mut fb) {
            ServerMsg::Accepted {
                id: 1, bw, start, ..
            } => {
                assert_eq!(start, 10.0);
                assert_eq!(bw, 100.0);
            }
            other => panic!("expected acceptance first, got {other:?}"),
        }
        match read_frame(&mut stream, &mut fb) {
            ServerMsg::Draining { pending } => assert_eq!(pending, 1),
            other => panic!("expected draining ack, got {other:?}"),
        }

        // The codec was counted: this was a binary connection.
        let mut probe = TcpStream::connect(addr).expect("connect probe");
        probe
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reader = BufReader::new(probe.try_clone().unwrap());
        send_line(&mut probe, &ClientMsg::Stats);
        match read_reply(&mut reader) {
            ServerMsg::Stats(s) => {
                assert_eq!(s.conns_binary, 1);
                assert!(s.conns_json >= 1);
            }
            other => panic!("expected stats, got {other:?}"),
        }

        drop(stream);
        drop(probe);
        handle.shutdown();
        join.join().expect("server thread");
    }

    #[test]
    fn malformed_and_versioned_lines_get_error_replies() {
        let (handle, addr, join) = start_server();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());

        stream.write_all(b"this is not json\n").unwrap();
        match read_reply(&mut reader) {
            ServerMsg::Error { code, .. } => assert_eq!(code, "parse"),
            other => panic!("expected parse error, got {other:?}"),
        }

        stream
            .write_all(b"{\"v\": 42, \"body\": \"Stats\"}\n")
            .unwrap();
        match read_reply(&mut reader) {
            ServerMsg::Error { code, .. } => assert_eq!(code, "bad-version"),
            other => panic!("expected version error, got {other:?}"),
        }

        // The connection survives protocol errors: a valid query works.
        send_line(&mut stream, &ClientMsg::Query { id: 404 });
        match read_reply(&mut reader) {
            ServerMsg::Status { id: 404, state, .. } => {
                assert_eq!(state, crate::protocol::ReqState::Unknown);
            }
            other => panic!("expected status, got {other:?}"),
        }

        drop(reader);
        drop(stream);
        handle.shutdown();
        join.join().expect("server thread");
    }

    #[test]
    fn corrupt_binary_frame_gets_an_error_and_a_close() {
        let (handle, addr, join) = start_server();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(&WIRE_MAGIC).expect("preamble");
        let mut frame = encode_client_frame(&ClientMsg::Stats);
        let last = frame.len() - 1;
        frame[last] ^= 0x20; // CRC now fails
        stream.write_all(&frame).expect("torn frame");

        let mut fb = FrameBuf::new();
        match read_frame(&mut stream, &mut fb) {
            ServerMsg::Error { code, .. } => assert_eq!(code, "frame"),
            other => panic!("expected frame error, got {other:?}"),
        }
        // Framing is lost: the server closes its side.
        let mut rest = [0u8; 16];
        let n = stream.read(&mut rest).unwrap_or(0);
        assert_eq!(n, 0, "connection should be closed");

        drop(stream);
        handle.shutdown();
        join.join().expect("server thread");
    }

    #[test]
    fn oversized_line_closes_the_connection_with_an_error() {
        let mut engine = EngineConfig::new(Topology::uniform(1, 1, 100.0));
        engine.step = 10.0;
        let mut cfg = ServerConfig::new("127.0.0.1:0", engine);
        cfg.max_line_len = 128;
        let server = Server::bind(cfg).expect("bind");
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle().unwrap();
        let join = std::thread::spawn(move || server.run().expect("run"));

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let long = "x".repeat(1024);
        stream.write_all(long.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        match read_reply(&mut reader) {
            ServerMsg::Error { code, .. } => assert_eq!(code, "line-too-long"),
            other => panic!("expected line-too-long, got {other:?}"),
        }
        // Server closes its side after a framing loss.
        let mut rest = String::new();
        let n = reader.read_line(&mut rest).unwrap_or(0);
        assert_eq!(n, 0, "connection should be closed, got {rest:?}");

        drop(reader);
        drop(stream);
        handle.shutdown();
        join.join().expect("server thread");
    }

    #[test]
    fn shutdown_unblocks_idle_connections_promptly() {
        let mut engine = EngineConfig::new(Topology::uniform(1, 1, 100.0));
        engine.step = 10.0;
        let mut cfg = ServerConfig::new("127.0.0.1:0", engine);
        cfg.read_timeout = Duration::from_secs(30);
        let server = Server::bind(cfg).expect("bind");
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle().unwrap();
        let join = std::thread::spawn(move || server.run().expect("run"));

        // An idle client: no request, no codec, nothing to poll for.
        let stream = TcpStream::connect(addr).expect("connect");
        std::thread::sleep(Duration::from_millis(50));
        let t0 = Instant::now();
        handle.shutdown();
        join.join().expect("server thread");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "shutdown took {:?}; it must not wait out the 30 s read timeout",
            t0.elapsed()
        );
        drop(stream);
    }

    #[test]
    fn concurrent_connections_are_served() {
        let (handle, addr, join) = start_server();
        let mut workers = Vec::new();
        for k in 0..4u64 {
            workers.push(std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                if k % 2 == 0 {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    send_line(&mut stream, &ClientMsg::Query { id: k });
                    matches!(read_reply(&mut reader), ServerMsg::Status { .. })
                } else {
                    stream.write_all(&WIRE_MAGIC).expect("preamble");
                    stream
                        .write_all(&encode_client_frame(&ClientMsg::Query { id: k }))
                        .expect("query frame");
                    let mut fb = FrameBuf::new();
                    matches!(read_frame(&mut stream, &mut fb), ServerMsg::Status { .. })
                }
            }));
        }
        for w in workers {
            assert!(w.join().expect("worker"), "query must get a status reply");
        }
        handle.shutdown();
        join.join().expect("server thread");
    }
}
