//! The durable slice of the engine, factored out of the engine loop.
//!
//! [`EngineState`] is everything an admission engine must carry across a
//! crash: the capacity ledger, the virtual clock, and the decided-request
//! maps. It owns the snapshot restore and WAL replay paths, so every
//! component that rebuilds engine state from a log — the engine's own
//! startup recovery, the replication shipper's beacon mirror, and the
//! follower's hot standby — walks the exact same code and lands on the
//! exact same bytes. Divergence between those consumers would be a
//! correctness bug; sharing the type makes it a compile-time non-issue.
//!
//! The struct is deliberately metrics-free: live metrics belong to the
//! engine loop, while replay reports its counts through [`ReplayTally`]
//! so each consumer can fold them into its own registry (or ignore them).

use std::collections::{BTreeMap, HashMap, VecDeque};

use gridband_net::{
    CapacityLedger, HoldId, NetResult, PortHold, PortRef, ReservationId, Route, Topology,
};
use gridband_store::{
    EngineSnapshot, HoldState, RequestOutcome, RoundDecision, StoreError, StoreResult, WalRecord,
    SNAPSHOT_VERSION,
};

use crate::protocol::ReqState;

/// Counts accumulated while replaying a snapshot + WAL tail. The replay
/// path itself touches no metrics registry; callers fold these into
/// whatever accounting they keep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayTally {
    /// Round records replayed.
    pub rounds: u64,
    /// Acceptances re-applied (tombstoned ones count as cancelled).
    pub accepted: u64,
    /// Rejections re-applied.
    pub rejected: u64,
    /// Cancels re-applied (including accept tombstones).
    pub cancelled: u64,
    /// Early rejects re-applied.
    pub refused_early: u64,
    /// Expired reservations (and ended holds) garbage-collected during
    /// replay.
    pub gc_reclaimed: u64,
    /// Profile breakpoints dropped by replayed watermark-GC records.
    pub gc_truncated_bps: u64,
    /// Two-phase holds re-placed.
    pub holds_placed: u64,
    /// Two-phase holds re-released: explicit `HoldRelease` records plus
    /// uncommitted holds the round GC swept (see [`GcSweep`]).
    pub holds_released: u64,
    /// Two-phase holds re-committed.
    pub holds_committed: u64,
}

/// What one [`EngineState::gc_expired`] sweep reclaimed, split so
/// callers can account hold releases separately from plain reservation
/// GC. Every hold is placed exactly once and ends exactly once —
/// committed, explicitly released, expired, or GC-released — so at
/// quiescence `holds_placed == holds_committed + holds_released +
/// holds_expired` holds as a strict metric identity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcSweep {
    /// Everything reclaimed: expired reservations plus ended holds
    /// (committed or not). Feeds the `gc_reclaimed` counter.
    pub reclaimed: u64,
    /// Ended holds that were still *uncommitted* when GC released them.
    /// These are real releases — without counting them the hold ledger
    /// silently leaks terminations and the identity above breaks.
    pub holds_released: u64,
}

/// Engine-side bookkeeping for one live two-phase hold: which ledger
/// hold charges its capacity, when it times out, and whether it has been
/// committed (committed holds are exempt from the expiry sweep and stay
/// charged for their full window).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineHold {
    /// Ledger hold pinning the capacity.
    pub hold: HoldId,
    /// Virtual deadline after which an uncommitted hold is swept.
    pub expires: f64,
    /// Whether the cross-shard transaction committed this hold.
    pub committed: bool,
}

/// The engine state that snapshots persist and WAL replay rebuilds.
///
/// Fields the engine's hot paths read every round are public; the
/// decided-request maps stay private behind the accessors so the
/// record-state/eviction invariant (`history` mirrors `states`' keys in
/// FIFO order) cannot be broken from outside.
#[derive(Debug)]
pub struct EngineState {
    /// Live port capacity profiles and reservations.
    pub ledger: CapacityLedger,
    /// Virtual clock (seconds).
    pub now: f64,
    /// When the next admission round fires.
    pub next_tick: f64,
    /// Admission rounds executed over the state's lifetime.
    pub rounds: u64,
    /// Admission interval `t_step`.
    step: f64,
    /// Decided-request history bound (older entries evicted FIFO).
    history_capacity: usize,
    /// Decided states for `Query`.
    states: HashMap<u64, ReqState>,
    /// FIFO eviction order of `states`.
    history: VecDeque<u64>,
    /// Accepted client id → live reservation (for `Cancel` / GC).
    accepted_res: HashMap<u64, ReservationId>,
    /// Reverse map: reservation id → client id.
    res_owner: HashMap<u64, u64>,
    /// Live two-phase holds by transaction id. A `BTreeMap` so the
    /// expiry sweep and snapshot export walk holds in one deterministic
    /// order — a prerequisite for bit-identical replay.
    holds: BTreeMap<u64, EngineHold>,
}

impl EngineState {
    /// Fresh state at virtual time zero; the first round fires at `step`.
    pub fn new(topology: Topology, step: f64, history_capacity: usize) -> Self {
        assert!(step > 0.0, "t_step must be positive");
        EngineState {
            ledger: CapacityLedger::new(topology),
            now: 0.0,
            next_tick: step,
            rounds: 0,
            step,
            history_capacity,
            states: HashMap::new(),
            history: VecDeque::new(),
            accepted_res: HashMap::new(),
            res_owner: HashMap::new(),
            holds: BTreeMap::new(),
        }
    }

    /// The admission interval this state was built with.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Restore a decoded snapshot verbatim. `file` names the snapshot
    /// file for error attribution.
    pub fn restore(&mut self, snap: EngineSnapshot, file: &str) -> StoreResult<()> {
        self.ledger
            .restore_state(snap.ledger)
            .map_err(|e| StoreError::corrupt(file, 0, format!("ledger state rejected: {e}")))?;
        self.now = snap.now;
        self.next_tick = snap.next_tick;
        self.rounds = snap.rounds;
        for (id, outcome) in snap.states {
            let state = match outcome {
                RequestOutcome::Accepted => ReqState::Accepted,
                RequestOutcome::Rejected => ReqState::Rejected,
                RequestOutcome::Cancelled => ReqState::Cancelled,
            };
            self.record_state(id, state);
        }
        for (id, rid) in snap.accepted {
            self.accepted_res.insert(id, ReservationId(rid));
            self.res_owner.insert(rid, id);
        }
        for h in snap.holds {
            if self.ledger.get_hold(HoldId(h.hold)).is_none() {
                return Err(StoreError::corrupt(
                    file,
                    0,
                    format!(
                        "hold table references ledger hold #{} which is not live",
                        h.hold
                    ),
                ));
            }
            self.holds.insert(
                h.txn,
                EngineHold {
                    hold: HoldId(h.hold),
                    expires: h.expires,
                    committed: h.committed,
                },
            );
        }
        Ok(())
    }

    /// Re-apply one logged record. Replay mirrors the live engine paths
    /// exactly — same GC rule, same sequential reservation order — so the
    /// rebuilt ledger is bit-identical to the one that wrote the log
    /// (batched and sequential booking are equivalent by `reserve_all`'s
    /// contract). `file`/`offset` attribute corruption errors.
    pub fn apply(
        &mut self,
        record: WalRecord,
        file: &str,
        offset: u64,
        tally: &mut ReplayTally,
    ) -> StoreResult<()> {
        match record {
            WalRecord::Round { t, decisions } => {
                self.begin_round(t);
                tally.rounds += 1;
                let sweep = self.gc_expired(t);
                tally.gc_reclaimed += sweep.reclaimed;
                tally.holds_released += sweep.holds_released;
                for d in decisions {
                    match d {
                        RoundDecision::Accept {
                            id,
                            ingress,
                            egress,
                            bw,
                            start,
                            finish,
                            cancelled,
                        } => {
                            let rid = self
                                .ledger
                                .reserve(Route::new(ingress, egress), start, finish, bw)
                                .map_err(|e| {
                                    StoreError::corrupt(
                                        file,
                                        offset,
                                        format!("logged acceptance no longer fits: {e}"),
                                    )
                                })?;
                            if cancelled {
                                // Tombstoned acceptance: book then free, so
                                // reservation-id allocation stays in sync.
                                let _ = self.ledger.cancel(rid);
                                tally.cancelled += 1;
                                self.record_state(id, ReqState::Cancelled);
                            } else {
                                tally.accepted += 1;
                                self.note_accept(id, rid);
                                self.record_state(id, ReqState::Accepted);
                            }
                        }
                        RoundDecision::AcceptSegments {
                            id,
                            ingress,
                            egress,
                            segments,
                            cancelled,
                        } => {
                            let rid = self
                                .ledger
                                .reserve_segments(Route::new(ingress, egress), &segments)
                                .map_err(|e| {
                                    StoreError::corrupt(
                                        file,
                                        offset,
                                        format!("logged segmented acceptance no longer fits: {e}"),
                                    )
                                })?;
                            if cancelled {
                                // Tombstoned acceptance: book then free, so
                                // reservation-id allocation stays in sync.
                                let _ = self.ledger.cancel_segments(rid);
                                tally.cancelled += 1;
                                self.record_state(id, ReqState::Cancelled);
                            } else {
                                tally.accepted += 1;
                                self.note_accept(id, rid);
                                self.record_state(id, ReqState::Accepted);
                            }
                        }
                        RoundDecision::Amend { id, segments } => {
                            let rid = self.accepted_res.get(&id).copied().ok_or_else(|| {
                                StoreError::corrupt(
                                    file,
                                    offset,
                                    format!("logged amend of unknown request #{id}"),
                                )
                            })?;
                            self.ledger.amend_segments(rid, &segments).map_err(|e| {
                                StoreError::corrupt(
                                    file,
                                    offset,
                                    format!("logged amend no longer fits: {e}"),
                                )
                            })?;
                        }
                        RoundDecision::Reject { id } => {
                            tally.rejected += 1;
                            self.record_state(id, ReqState::Rejected);
                        }
                    }
                }
            }
            WalRecord::Cancel { id } => {
                if self.cancel_live(id) {
                    tally.cancelled += 1;
                }
            }
            WalRecord::EarlyReject { id } => {
                tally.refused_early += 1;
                self.record_state(id, ReqState::Rejected);
            }
            WalRecord::HoldPlace {
                txn,
                port,
                bw,
                start,
                finish,
                expires,
            } => {
                // The live engine logs a HoldPlace only after the hold
                // took effect, so replay re-places it strictly.
                if self.holds.contains_key(&txn) {
                    return Err(StoreError::corrupt(
                        file,
                        offset,
                        format!("duplicate hold for txn #{txn}"),
                    ));
                }
                self.place_hold(txn, port, bw, start, finish, expires)
                    .map_err(|e| {
                        StoreError::corrupt(
                            file,
                            offset,
                            format!("logged hold no longer fits: {e}"),
                        )
                    })?;
                tally.holds_placed += 1;
            }
            WalRecord::HoldCommit { txn } => {
                if !self.commit_hold(txn) {
                    return Err(StoreError::corrupt(
                        file,
                        offset,
                        format!("commit of unknown hold txn #{txn}"),
                    ));
                }
                tally.holds_committed += 1;
            }
            WalRecord::HoldRelease { txn } => {
                if !self.release_hold(txn) {
                    return Err(StoreError::corrupt(
                        file,
                        offset,
                        format!("release of unknown hold txn #{txn}"),
                    ));
                }
                tally.holds_released += 1;
            }
            WalRecord::Gc { watermark } => {
                if !watermark.is_finite() {
                    return Err(StoreError::corrupt(
                        file,
                        offset,
                        format!("non-finite GC watermark {watermark}"),
                    ));
                }
                let stats = self.apply_gc(watermark);
                tally.gc_truncated_bps += stats.breakpoints_dropped as u64;
            }
        }
        Ok(())
    }

    /// The durable image of this state (what a snapshot persists, and
    /// what replication beacons hash).
    pub fn export(&self) -> EngineSnapshot {
        let mut accepted: Vec<(u64, u64)> = self
            .accepted_res
            .iter()
            .map(|(&id, rid)| (id, rid.0))
            .collect();
        accepted.sort_unstable();
        let states = self
            .history
            .iter()
            .filter_map(|id| {
                let outcome = match self.states.get(id)? {
                    ReqState::Accepted => RequestOutcome::Accepted,
                    ReqState::Rejected => RequestOutcome::Rejected,
                    ReqState::Cancelled => RequestOutcome::Cancelled,
                    ReqState::Pending | ReqState::Unknown => return None,
                };
                Some((*id, outcome))
            })
            .collect();
        let holds = self
            .holds
            .iter()
            .map(|(&txn, h)| HoldState {
                txn,
                hold: h.hold.0,
                expires: h.expires,
                committed: h.committed,
            })
            .collect();
        EngineSnapshot {
            version: SNAPSHOT_VERSION,
            now: self.now,
            next_tick: self.next_tick,
            rounds: self.rounds,
            ledger: self.ledger.export_state(),
            accepted,
            states,
            holds,
        }
    }

    /// Advance the clock into the round at `t`.
    pub fn begin_round(&mut self, t: f64) {
        self.now = t;
        self.next_tick = t + self.step;
        self.rounds += 1;
    }

    /// Cancel every reservation whose interval ended at or before `t`,
    /// returning what was reclaimed. Expired reservations are dead
    /// weight in the ledger profiles: cancelling them only edits past
    /// time segments, so admission decisions (which only read the
    /// profile from `t` on) are unaffected while breakpoint memory stays
    /// bounded. Shared by live rounds and WAL replay so both walk
    /// identical ledger states.
    pub fn gc_expired(&mut self, t: f64) -> GcSweep {
        let expired: Vec<ReservationId> = self
            .ledger
            .live_reservations()
            .filter(|(_, r)| r.end <= t)
            .map(|(id, _)| id)
            .collect();
        let mut sweep = GcSweep::default();
        for rid in expired {
            if self.ledger.cancel(rid).is_ok() {
                sweep.reclaimed += 1;
                if let Some(owner) = self.res_owner.remove(&rid.0) {
                    self.accepted_res.remove(&owner);
                }
            }
        }
        // Segmented (malleable) reservations age out the same way once
        // their last segment ends; the ascending-id iteration keeps live
        // rounds and replay cancelling in the same order.
        let expired_seg: Vec<ReservationId> = self
            .ledger
            .live_segmented()
            .filter(|(_, r)| r.end() <= t)
            .map(|(id, _)| id)
            .collect();
        for rid in expired_seg {
            if self.ledger.cancel_segments(rid).is_ok() {
                sweep.reclaimed += 1;
                if let Some(owner) = self.res_owner.remove(&rid.0) {
                    self.accepted_res.remove(&owner);
                }
            }
        }
        // Holds whose window has fully passed are equally dead weight,
        // committed or not; release them in ascending txn order so live
        // rounds and replay free them in the same sequence. A hold that
        // was still uncommitted is a genuine release and is reported as
        // such — a committed hold already terminated via its commit.
        let ended: Vec<u64> = self
            .holds
            .iter()
            .filter(|(_, h)| self.ledger.get_hold(h.hold).is_none_or(|ph| ph.end <= t))
            .map(|(&txn, _)| txn)
            .collect();
        for txn in ended {
            let committed = self.holds.get(&txn).is_some_and(|h| h.committed);
            if self.release_hold(txn) {
                sweep.reclaimed += 1;
                if !committed {
                    sweep.holds_released += 1;
                }
            }
        }
        sweep
    }

    /// Advance the ledger's GC watermark to `watermark`, truncating
    /// fully-past profile history and collecting expired entries. Shared
    /// by the live engine's post-round sweep and `Gc`-record replay so a
    /// recovered (or follower) store lands on the identical compacted
    /// bytes.
    ///
    /// The watermark lags the clock (`now - gc_horizon`), so the
    /// per-round expiry sweep has normally already cancelled anything
    /// ending at or before it; the owner-map scrub below is a safety net
    /// for the degenerate `gc_horizon = 0` case, keeping `accepted_res`
    /// and `res_owner` from pointing at collected reservations.
    pub fn apply_gc(&mut self, watermark: f64) -> gridband_net::GcStats {
        let stale: Vec<u64> = self
            .ledger
            .live_reservations()
            .filter(|(_, r)| r.end <= watermark)
            .map(|(id, _)| id.0)
            .chain(
                self.ledger
                    .live_segmented()
                    .filter(|(_, r)| r.end() <= watermark)
                    .map(|(id, _)| id.0),
            )
            .collect();
        for rid in stale {
            if let Some(owner) = self.res_owner.remove(&rid) {
                self.accepted_res.remove(&owner);
            }
        }
        self.ledger.gc(watermark)
    }

    /// Place a two-phase hold for `txn`: pin `bw` on `port` over
    /// `[start, finish)` in the ledger and register it in the hold
    /// table. Shared by the live engine and WAL replay so both perform
    /// the identical ledger operation.
    pub fn place_hold(
        &mut self,
        txn: u64,
        port: PortRef,
        bw: f64,
        start: f64,
        finish: f64,
        expires: f64,
    ) -> NetResult<HoldId> {
        let hid = self.ledger.hold(port, start, finish, bw)?;
        self.holds.insert(
            txn,
            EngineHold {
                hold: hid,
                expires,
                committed: false,
            },
        );
        Ok(hid)
    }

    /// Mark `txn`'s hold committed (exempt from the expiry sweep) and
    /// record the transaction as accepted. Returns `false` for unknown
    /// transactions.
    pub fn commit_hold(&mut self, txn: u64) -> bool {
        let Some(h) = self.holds.get_mut(&txn) else {
            return false;
        };
        h.committed = true;
        self.record_state(txn, ReqState::Accepted);
        true
    }

    /// Release `txn`'s hold, freeing its pinned capacity. Returns
    /// `false` for unknown transactions.
    pub fn release_hold(&mut self, txn: u64) -> bool {
        let Some(h) = self.holds.remove(&txn) else {
            return false;
        };
        self.ledger.release_hold(h.hold).is_ok()
    }

    /// The live hold for `txn`, if any: the ledger's port/window/bw plus
    /// the engine-side expiry bookkeeping.
    pub fn hold_of(&self, txn: u64) -> Option<(PortHold, EngineHold)> {
        let eh = self.holds.get(&txn)?;
        let ph = self.ledger.get_hold(eh.hold)?;
        Some((*ph, *eh))
    }

    /// Number of live two-phase holds.
    pub fn hold_count(&self) -> usize {
        self.holds.len()
    }

    /// Transactions whose holds are uncommitted and past `expires` at
    /// time `t`, in ascending txn order (the expiry sweep's work list).
    pub fn expired_holds(&self, t: f64) -> Vec<u64> {
        self.holds
            .iter()
            .filter(|(_, h)| !h.committed && h.expires <= t)
            .map(|(&txn, _)| txn)
            .collect()
    }

    /// Record a decided state, evicting the oldest entry beyond the
    /// history bound.
    pub fn record_state(&mut self, id: u64, state: ReqState) {
        if !self.states.contains_key(&id) {
            self.history.push_back(id);
            if self.history.len() > self.history_capacity {
                if let Some(old) = self.history.pop_front() {
                    self.states.remove(&old);
                }
            }
        }
        self.states.insert(id, state);
    }

    /// Whether this id has already been decided (or holds a live
    /// reservation that outlived its history entry).
    pub fn knows(&self, id: u64) -> bool {
        self.states.contains_key(&id) || self.accepted_res.contains_key(&id)
    }

    /// Decided state of `id`, if still in history.
    pub fn state_of(&self, id: u64) -> Option<ReqState> {
        self.states.get(&id).copied()
    }

    /// Live allocation `(bw, σ, τ)` of an accepted, unexpired request.
    /// For a segmented (malleable) reservation the triple is synthesized
    /// as (peak rate, first segment start, last segment end).
    pub fn alloc_of(&self, id: u64) -> Option<(f64, f64, f64)> {
        let rid = *self.accepted_res.get(&id)?;
        if let Some(r) = self.ledger.get(rid) {
            return Some((r.bw, r.start, r.end));
        }
        self.ledger
            .get_segments(rid)
            .map(|r| (r.peak(), r.start(), r.end()))
    }

    /// The ledger reservation backing an accepted request, if still live.
    pub fn reservation_of(&self, id: u64) -> Option<ReservationId> {
        self.accepted_res.get(&id).copied()
    }

    /// Register a booked acceptance in the id maps.
    pub fn note_accept(&mut self, id: u64, rid: ReservationId) {
        self.accepted_res.insert(id, rid);
        self.res_owner.insert(rid.0, id);
    }

    /// Cancel a live reservation by client id. Returns `true` iff a
    /// reservation was freed (and the state recorded as cancelled);
    /// unknown, already-decided, and already-cancelled ids return
    /// `false` without touching anything the caller can observe.
    pub fn cancel_live(&mut self, id: u64) -> bool {
        let Some(rid) = self.accepted_res.remove(&id) else {
            return false;
        };
        self.res_owner.remove(&rid.0);
        if self.ledger.cancel(rid).is_ok() || self.ledger.cancel_segments(rid).is_ok() {
            self.record_state(id, ReqState::Cancelled);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> EngineState {
        EngineState::new(Topology::uniform(2, 2, 100.0), 10.0, 1 << 10)
    }

    #[test]
    fn replay_round_trips_through_export_and_restore() {
        let mut a = state();
        let mut tally = ReplayTally::default();
        let record = WalRecord::Round {
            t: 10.0,
            decisions: vec![
                RoundDecision::Accept {
                    id: 1,
                    ingress: 0,
                    egress: 1,
                    bw: 50.0,
                    start: 10.0,
                    finish: 30.0,
                    cancelled: false,
                },
                RoundDecision::Reject { id: 2 },
            ],
        };
        a.apply(record, "wal-0", 8, &mut tally).unwrap();
        assert_eq!(tally.rounds, 1);
        assert_eq!(tally.accepted, 1);
        assert_eq!(tally.rejected, 1);
        assert_eq!(a.state_of(1), Some(ReqState::Accepted));
        assert!(a.alloc_of(1).is_some());

        let snap = a.export();
        let mut b = state();
        b.restore(snap.clone(), "snap-0").unwrap();
        assert_eq!(b.export(), snap);
        assert_eq!(b.now, 10.0);
        assert_eq!(b.next_tick, 20.0);
        assert_eq!(b.rounds, 1);
        assert!(b.knows(1) && b.knows(2) && !b.knows(3));
    }

    #[test]
    fn cancel_live_frees_once_and_gc_reclaims_expired() {
        let mut s = state();
        let mut tally = ReplayTally::default();
        s.apply(
            WalRecord::Round {
                t: 10.0,
                decisions: vec![RoundDecision::Accept {
                    id: 1,
                    ingress: 0,
                    egress: 0,
                    bw: 25.0,
                    start: 10.0,
                    finish: 20.0,
                    cancelled: false,
                }],
            },
            "wal-0",
            8,
            &mut tally,
        )
        .unwrap();
        assert!(s.cancel_live(1));
        assert!(!s.cancel_live(1), "repeat cancel is a no-op");
        assert_eq!(s.state_of(1), Some(ReqState::Cancelled));

        s.apply(
            WalRecord::Round {
                t: 20.0,
                decisions: vec![RoundDecision::Accept {
                    id: 2,
                    ingress: 1,
                    egress: 1,
                    bw: 25.0,
                    start: 20.0,
                    finish: 25.0,
                    cancelled: false,
                }],
            },
            "wal-0",
            64,
            &mut tally,
        )
        .unwrap();
        // The round at t=30 garbage-collects the reservation that ended
        // at 25; replay counts it in the tally.
        s.apply(
            WalRecord::Round {
                t: 30.0,
                decisions: vec![],
            },
            "wal-0",
            128,
            &mut tally,
        )
        .unwrap();
        assert_eq!(tally.gc_reclaimed, 1);
        assert_eq!(tally.holds_released, 0, "reservation GC is not a release");
        assert!(s.alloc_of(2).is_none(), "expired reservation is gone");
        assert_eq!(s.state_of(2), Some(ReqState::Accepted));
    }

    #[test]
    fn hold_replay_round_trips_through_export_and_restore() {
        let mut a = state();
        let mut tally = ReplayTally::default();
        let place = |txn: u64, port, expires| WalRecord::HoldPlace {
            txn,
            port,
            bw: 40.0,
            start: 10.0,
            finish: 30.0,
            expires,
        };
        a.apply(
            place(5, PortRef::In(gridband_net::IngressId(0)), 25.0),
            "wal-0",
            8,
            &mut tally,
        )
        .unwrap();
        a.apply(
            place(6, PortRef::Out(gridband_net::EgressId(1)), 25.0),
            "wal-0",
            64,
            &mut tally,
        )
        .unwrap();
        a.apply(WalRecord::HoldCommit { txn: 5 }, "wal-0", 128, &mut tally)
            .unwrap();
        a.apply(WalRecord::HoldRelease { txn: 6 }, "wal-0", 192, &mut tally)
            .unwrap();
        assert_eq!(
            (
                tally.holds_placed,
                tally.holds_committed,
                tally.holds_released
            ),
            (2, 1, 1)
        );
        assert_eq!(a.hold_count(), 1);
        assert_eq!(a.state_of(5), Some(ReqState::Accepted));
        let (ph, eh) = a.hold_of(5).unwrap();
        assert_eq!(ph.bw, 40.0);
        assert!(eh.committed);

        // Snapshot round-trip carries the hold table.
        let snap = a.export();
        let mut b = state();
        b.restore(snap.clone(), "snap-0").unwrap();
        assert_eq!(b.export(), snap);
        assert_eq!(b.hold_count(), 1);

        // A snapshot whose hold table references a dead ledger hold is
        // rejected, not silently mis-restored.
        let mut bad = snap.clone();
        bad.holds[0].hold += 7;
        assert!(b2_restore_fails(bad));

        // GC releases the committed hold once its window has passed —
        // reclaimed, but not a release: the hold terminated via commit.
        assert_eq!(
            a.gc_expired(30.0),
            GcSweep {
                reclaimed: 1,
                holds_released: 0
            }
        );
        assert_eq!(a.hold_count(), 0);
        assert!(a
            .ledger
            .ingress_profile(gridband_net::IngressId(0))
            .is_empty());
    }

    #[test]
    fn gc_counts_uncommitted_ended_holds_as_released() {
        // A hold whose *window* passes before its expiry deadline is
        // reclaimed by GC while still uncommitted. That termination must
        // surface as a release, or `holds_placed == holds_committed +
        // holds_released + holds_expired` silently leaks.
        let mut s = state();
        s.place_hold(
            9,
            PortRef::In(gridband_net::IngressId(0)),
            40.0,
            10.0,
            30.0,
            1_000.0, // expiry far beyond the window end
        )
        .unwrap();
        assert_eq!(s.expired_holds(30.0), Vec::<u64>::new());
        assert_eq!(
            s.gc_expired(30.0),
            GcSweep {
                reclaimed: 1,
                holds_released: 1
            }
        );
        assert_eq!(s.hold_count(), 0);

        // Replay of a Round record walks the same path and lands the
        // release in the tally.
        let mut r = state();
        let mut tally = ReplayTally::default();
        r.apply(
            WalRecord::HoldPlace {
                txn: 9,
                port: PortRef::In(gridband_net::IngressId(0)),
                bw: 40.0,
                start: 10.0,
                finish: 30.0,
                expires: 1_000.0,
            },
            "wal-0",
            8,
            &mut tally,
        )
        .unwrap();
        r.apply(
            WalRecord::Round {
                t: 30.0,
                decisions: vec![],
            },
            "wal-0",
            64,
            &mut tally,
        )
        .unwrap();
        assert_eq!((tally.holds_placed, tally.holds_released), (1, 1));
        assert_eq!(tally.gc_reclaimed, 1);
    }

    fn b2_restore_fails(snap: EngineSnapshot) -> bool {
        state().restore(snap, "snap-bad").is_err()
    }

    #[test]
    fn expired_holds_lists_only_uncommitted_past_deadline() {
        let mut s = state();
        s.place_hold(
            1,
            PortRef::In(gridband_net::IngressId(0)),
            10.0,
            0.0,
            50.0,
            20.0,
        )
        .unwrap();
        s.place_hold(
            2,
            PortRef::In(gridband_net::IngressId(1)),
            10.0,
            0.0,
            50.0,
            20.0,
        )
        .unwrap();
        s.place_hold(
            3,
            PortRef::Out(gridband_net::EgressId(0)),
            10.0,
            0.0,
            50.0,
            40.0,
        )
        .unwrap();
        assert!(s.commit_hold(2));
        assert_eq!(s.expired_holds(10.0), Vec::<u64>::new());
        // txn 2 is committed, txn 3 not yet due: only txn 1 expires.
        assert_eq!(s.expired_holds(25.0), vec![1]);
        assert_eq!(s.expired_holds(45.0), vec![1, 3]);
        assert!(s.release_hold(1));
        assert!(!s.release_hold(1), "double release is refused");
    }

    #[test]
    fn history_eviction_keeps_the_newest_states() {
        let mut s = EngineState::new(Topology::uniform(1, 1, 100.0), 10.0, 2);
        s.record_state(1, ReqState::Rejected);
        s.record_state(2, ReqState::Rejected);
        s.record_state(3, ReqState::Rejected);
        assert!(!s.knows(1), "oldest entry evicted");
        assert!(s.knows(2) && s.knows(3));
    }
}
