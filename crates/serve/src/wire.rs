//! The binary wire codec.
//!
//! JSON-lines (see [`crate::protocol`]) is the daemon's compat dialect;
//! this module is the fast one. A connection opts in by sending the
//! 8-byte preamble [`WIRE_MAGIC`] as its very first bytes — the server
//! auto-detects the codec from them (anything else falls back to
//! JSON-lines, whose first byte is always `{`). After the preamble both
//! directions exchange frames:
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [payload: len bytes]
//! ```
//!
//! the same `[len][crc32][payload]` discipline (and the same IEEE CRC,
//! [`gridband_store::crc32`]) the WAL uses on disk, so a torn or
//! bit-flipped frame is detected rather than decoded. Client payloads
//! open with a version byte ([`WIRE_VERSION`]) and a message tag;
//! server payloads open with a tag. All integers are little-endian;
//! `f64` travels as its IEEE-754 bit pattern, so values round-trip
//! bit-for-bit — the loopback differential test relies on that to prove
//! the two codecs yield byte-identical decisions.
//!
//! Decoding is total: any byte sequence either yields a message or a
//! [`WireError`]; nothing panics and nothing allocates beyond the
//! declared frame length (bounded by [`MAX_FRAME`]).

use crate::metrics::{LatencySnapshot, StatsSnapshot};
use crate::protocol::{ClientMsg, RejectReason, ReqState, ServerMsg, ServiceClass, SubmitReq};
use gridband_store::crc32;

/// Connection preamble a binary client sends before its first frame.
/// Deliberately shaped like the store's `GBWAL01\n` / `GBSNAP1\n`
/// magics: human-greppable in a packet capture, and never a valid
/// JSON-lines prefix.
pub const WIRE_MAGIC: [u8; 8] = *b"GBWIR01\n";

/// Version byte opening every client payload. Servers reject other
/// versions with a `bad-version` error rather than guessing.
///
/// v2: the binary `Stats` frame layout changed (49 → 51 counters plus a
/// trailing optional GC watermark). Server frames carry no version byte,
/// so this client-side byte is the only gate that keeps a v1 peer from
/// misparsing the wider reply — mixed versions now fail the very first
/// frame with a clean version error in both directions.
///
/// v3: malleable reservations — `Submit` gained a trailing malleable
/// flag byte, the `Amend` message (tag 10) renegotiates a live malleable
/// transfer, grants may arrive as `AcceptedSegments` (server tag 11),
/// and the `Stats` frame widened again (51 → 57 counters). A v2 peer
/// would misparse all three, so it is refused at its first frame.
pub const WIRE_VERSION: u8 = 3;

/// Upper bound on a frame payload, mirroring the WAL's record bound: a
/// hostile 4 GiB length prefix must not become a 4 GiB allocation.
pub const MAX_FRAME: usize = 1 << 26;

/// Which dialect a client speaks to the daemon. The server needs no
/// such setting — it auto-detects per connection — but clients
/// (`loadgen`, `gridband cluster --connect`, the bench) take this as
/// their `--wire {json,binary}` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireMode {
    /// Newline-framed JSON, the compat dialect.
    #[default]
    Json,
    /// Length-prefixed CRC-checked binary frames behind [`WIRE_MAGIC`].
    Binary,
}

impl std::str::FromStr for WireMode {
    type Err = String;
    fn from_str(s: &str) -> Result<WireMode, String> {
        match s {
            "json" => Ok(WireMode::Json),
            "binary" => Ok(WireMode::Binary),
            other => Err(format!(
                "unknown wire mode {other:?} (expected json|binary)"
            )),
        }
    }
}

impl std::fmt::Display for WireMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WireMode::Json => "json",
            WireMode::Binary => "binary",
        })
    }
}

/// Everything that can go wrong decoding binary wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The declared payload length exceeds [`MAX_FRAME`].
    TooLarge(usize),
    /// The payload's CRC does not match its header.
    Crc {
        /// CRC the frame header promised.
        want: u32,
        /// CRC of the payload as received.
        got: u32,
    },
    /// A client payload opened with an unsupported version byte.
    BadVersion(u8),
    /// The payload opened with a tag no message maps to.
    UnknownTag(u8),
    /// The payload ended before its fields did, or carried trailing
    /// bytes, or a field held an impossible value.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::TooLarge(len) => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte bound")
            }
            WireError::Crc { want, got } => {
                write!(
                    f,
                    "frame CRC mismatch: header {want:#010x}, payload {got:#010x}"
                )
            }
            WireError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported wire version {v} (this daemon speaks {WIRE_VERSION})"
                )
            }
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Wrap a payload in the `[len][crc32][payload]` frame header.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encode a client message as one ready-to-send frame.
pub fn encode_client_frame(msg: &ClientMsg) -> Vec<u8> {
    frame(&encode_client_payload(msg))
}

/// Encode a server message as one ready-to-send frame.
pub fn encode_server_frame(msg: &ServerMsg) -> Vec<u8> {
    frame(&encode_server_payload(msg))
}

/// Incremental frame splitter: feed it raw socket bytes with
/// [`FrameBuf::extend`], pull complete payloads with
/// [`FrameBuf::next_frame`]. Shared by the server's reader pool,
/// `TcpShardLink`, and `loadgen`, so all three agree on framing edge
/// cases by construction.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Bytes before `pos` are consumed frames awaiting compaction.
    pos: usize,
}

impl FrameBuf {
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Append raw bytes read from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact lazily: shift the tail down once consumed bytes
        // dominate, keeping `extend` amortized O(n) over a connection.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Split off the next complete payload. `Ok(None)` means more bytes
    /// are needed; an error poisons the stream (framing is lost, the
    /// connection must close).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 8 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[0..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return Err(WireError::TooLarge(len));
        }
        let want = u32::from_le_bytes(avail[4..8].try_into().unwrap());
        if avail.len() < 8 + len {
            return Ok(None);
        }
        let payload = avail[8..8 + len].to_vec();
        let got = crc32(&payload);
        if got != want {
            return Err(WireError::Crc { want, got });
        }
        self.pos += 8 + len;
        Ok(Some(payload))
    }
}

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

struct Writer(Vec<u8>);

impl Writer {
    fn new() -> Writer {
        Writer(Vec::with_capacity(64))
    }
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn bool(&mut self, v: bool) {
        self.0.push(v as u8);
    }
    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.0.push(1);
                self.f64(x);
            }
            None => self.0.push(0),
        }
    }
    fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(b: &'a [u8]) -> Reader<'a> {
        Reader { b, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.b.len() - self.pos < n {
            return Err(WireError::Malformed("payload ended mid-field"));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().unwrap(),
        )))
    }
    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool byte not 0/1")),
        }
    }
    fn opt_f64(&mut self) -> Result<Option<f64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            _ => Err(WireError::Malformed("option flag not 0/1")),
        }
    }
    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME {
            return Err(WireError::Malformed("string length exceeds frame bound"));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("string not UTF-8"))
    }
    /// Whether undecoded bytes remain — how [`get_submit`] tells a
    /// pre-class frame (fields exhausted) from a current one (class
    /// byte still to read).
    fn has_more(&self) -> bool {
        self.pos < self.b.len()
    }
    /// Every decode ends here: trailing bytes are an error, so a frame
    /// can never smuggle undecoded content past the codec.
    fn done(self) -> Result<(), WireError> {
        if self.pos == self.b.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after message"))
        }
    }
}

// ---------------------------------------------------------------------
// Enums
// ---------------------------------------------------------------------

fn reason_code(r: RejectReason) -> u8 {
    match r {
        RejectReason::Saturated => 0,
        RejectReason::DeadlineUnreachable => 1,
        RejectReason::Invalid => 2,
        RejectReason::QueueFull => 3,
        RejectReason::UnknownRoute => 4,
        RejectReason::ShuttingDown => 5,
        RejectReason::NotPrimary => 6,
        RejectReason::Drained => 7,
    }
}

fn reason_from(code: u8) -> Result<RejectReason, WireError> {
    Ok(match code {
        0 => RejectReason::Saturated,
        1 => RejectReason::DeadlineUnreachable,
        2 => RejectReason::Invalid,
        3 => RejectReason::QueueFull,
        4 => RejectReason::UnknownRoute,
        5 => RejectReason::ShuttingDown,
        6 => RejectReason::NotPrimary,
        7 => RejectReason::Drained,
        _ => return Err(WireError::Malformed("unknown reject reason")),
    })
}

fn state_code(s: ReqState) -> u8 {
    match s {
        ReqState::Pending => 0,
        ReqState::Accepted => 1,
        ReqState::Rejected => 2,
        ReqState::Cancelled => 3,
        ReqState::Unknown => 4,
    }
}

fn state_from(code: u8) -> Result<ReqState, WireError> {
    Ok(match code {
        0 => ReqState::Pending,
        1 => ReqState::Accepted,
        2 => ReqState::Rejected,
        3 => ReqState::Cancelled,
        4 => ReqState::Unknown,
        _ => return Err(WireError::Malformed("unknown request state")),
    })
}

// ---------------------------------------------------------------------
// Client messages
// ---------------------------------------------------------------------

fn put_submit(w: &mut Writer, s: &SubmitReq) {
    w.u64(s.id);
    w.u32(s.ingress);
    w.u32(s.egress);
    w.f64(s.volume);
    w.f64(s.max_rate);
    w.opt_f64(s.start);
    w.opt_f64(s.deadline);
    // The service class travels as a trailing byte. Submit fields are
    // terminal in both messages that carry them, so a decoder reads the
    // byte when present and defaults an exhausted (pre-class) payload
    // to Silver — same version tolerance as the JSON codec.
    w.u8(s.class.code());
    // The malleable flag is a second trailing byte, written only when
    // the field is set — a rigid submission therefore encodes to the
    // exact bytes a pre-malleable client produced (same tolerance
    // discipline as the class byte, one generation later).
    if let Some(m) = s.malleable {
        w.bool(m);
    }
}

fn get_submit(r: &mut Reader) -> Result<SubmitReq, WireError> {
    Ok(SubmitReq {
        id: r.u64()?,
        ingress: r.u32()?,
        egress: r.u32()?,
        volume: r.f64()?,
        max_rate: r.f64()?,
        start: r.opt_f64()?,
        deadline: r.opt_f64()?,
        class: if r.has_more() {
            ServiceClass::from_code(r.u8()?)
                .ok_or(WireError::Malformed("unknown service class code"))?
        } else {
            ServiceClass::default()
        },
        malleable: if r.has_more() { Some(r.bool()?) } else { None },
    })
}

/// Encode a client message payload (version byte + tag + fields).
pub fn encode_client_payload(msg: &ClientMsg) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(WIRE_VERSION);
    match msg {
        ClientMsg::Submit(s) => {
            w.u8(0);
            put_submit(&mut w, s);
        }
        ClientMsg::HoldOpen(s) => {
            w.u8(1);
            put_submit(&mut w, s);
        }
        ClientMsg::HoldAttach {
            txn,
            egress,
            bw,
            start,
            finish,
            at,
        } => {
            w.u8(2);
            w.u64(*txn);
            w.u32(*egress);
            w.f64(*bw);
            w.f64(*start);
            w.f64(*finish);
            w.f64(*at);
        }
        ClientMsg::HoldCommit { txn, at } => {
            w.u8(3);
            w.u64(*txn);
            w.f64(*at);
        }
        ClientMsg::HoldRelease { txn, at } => {
            w.u8(4);
            w.u64(*txn);
            w.f64(*at);
        }
        ClientMsg::Cancel { id } => {
            w.u8(5);
            w.u64(*id);
        }
        ClientMsg::Query { id } => {
            w.u8(6);
            w.u64(*id);
        }
        ClientMsg::Stats => w.u8(7),
        ClientMsg::Drain => w.u8(8),
        ClientMsg::Promote => w.u8(9),
        ClientMsg::Amend {
            id,
            volume,
            max_rate,
            deadline,
        } => {
            w.u8(10);
            w.u64(*id);
            w.f64(*volume);
            w.f64(*max_rate);
            w.opt_f64(*deadline);
        }
    }
    w.0
}

/// Decode a client payload (as split off a frame by [`FrameBuf`]).
pub fn decode_client_payload(payload: &[u8]) -> Result<ClientMsg, WireError> {
    let mut r = Reader::new(payload);
    let v = r.u8()?;
    if v != WIRE_VERSION {
        return Err(WireError::BadVersion(v));
    }
    let tag = r.u8()?;
    let msg = match tag {
        0 => ClientMsg::Submit(get_submit(&mut r)?),
        1 => ClientMsg::HoldOpen(get_submit(&mut r)?),
        2 => ClientMsg::HoldAttach {
            txn: r.u64()?,
            egress: r.u32()?,
            bw: r.f64()?,
            start: r.f64()?,
            finish: r.f64()?,
            at: r.f64()?,
        },
        3 => ClientMsg::HoldCommit {
            txn: r.u64()?,
            at: r.f64()?,
        },
        4 => ClientMsg::HoldRelease {
            txn: r.u64()?,
            at: r.f64()?,
        },
        5 => ClientMsg::Cancel { id: r.u64()? },
        6 => ClientMsg::Query { id: r.u64()? },
        7 => ClientMsg::Stats,
        8 => ClientMsg::Drain,
        9 => ClientMsg::Promote,
        10 => ClientMsg::Amend {
            id: r.u64()?,
            volume: r.f64()?,
            max_rate: r.f64()?,
            deadline: r.opt_f64()?,
        },
        t => return Err(WireError::UnknownTag(t)),
    };
    r.done()?;
    Ok(msg)
}

// ---------------------------------------------------------------------
// Server messages
// ---------------------------------------------------------------------

fn put_latency(w: &mut Writer, l: &LatencySnapshot) {
    w.u64(l.count);
    w.f64(l.mean_ms);
    w.f64(l.p50_ms);
    w.f64(l.p95_ms);
    w.f64(l.p99_ms);
}

fn get_latency(r: &mut Reader) -> Result<LatencySnapshot, WireError> {
    Ok(LatencySnapshot {
        count: r.u64()?,
        mean_ms: r.f64()?,
        p50_ms: r.f64()?,
        p95_ms: r.f64()?,
        p99_ms: r.f64()?,
    })
}

/// Field order below is the declaration order of [`StatsSnapshot`]; the
/// round-trip proptest in `tests/` breaks if either side drifts.
fn put_stats(w: &mut Writer, s: &StatsSnapshot) {
    w.string(&s.role);
    w.u64(s.uptime_s);
    w.u32(s.protocol_version);
    for v in [
        s.submitted,
        s.accepted,
        s.rejected,
        s.refused_early,
        s.cancelled,
        s.queries,
        s.queue_full,
        s.protocol_errors,
        s.connections,
        s.conns_json,
        s.conns_binary,
        s.ticks,
        s.gc_reclaimed,
        s.replies_dropped,
        s.wal_appends,
        s.wal_bytes,
        s.snapshots_written,
        s.recovery_replayed_records,
        s.admit_threads,
        s.shards,
        s.largest_shard,
        s.repl_records_shipped,
        s.repl_bytes_shipped,
        s.repl_snapshots_shipped,
        s.repl_shipped_seq,
        s.repl_acked_seq,
        s.repl_synced,
        s.repl_records_applied,
        s.repl_bytes_applied,
        s.repl_snapshots_applied,
        s.repl_resyncs,
        s.repl_frames_discarded,
        s.repl_frames_damaged,
        s.repl_beacons_checked,
        s.repl_divergence,
        s.holds_placed,
        s.holds_committed,
        s.holds_released,
        s.holds_expired,
        s.accepted_gold,
        s.accepted_silver,
        s.accepted_besteffort,
        s.qos_boost_rounds,
        s.qos_boosted_mb,
        s.qos_early_releases,
        s.qos_finish_violations,
        s.qos_oversubscriptions,
        s.submitted_malleable,
        s.accepted_malleable,
        s.rejected_malleable,
        s.amend_requests,
        s.amends_granted,
        s.amends_rejected,
        s.pending,
        s.live_reservations,
        s.gc_truncated_bps,
        s.breakpoints_live,
    ] {
        w.u64(v);
    }
    w.f64(s.virtual_time);
    w.opt_f64(s.gc_watermark);
    put_latency(w, &s.decision_latency);
    put_latency(w, &s.fsync);
}

fn get_stats(r: &mut Reader) -> Result<StatsSnapshot, WireError> {
    let role = r.string()?;
    let uptime_s = r.u64()?;
    let protocol_version = r.u32()?;
    let mut c = [0u64; 57];
    for v in c.iter_mut() {
        *v = r.u64()?;
    }
    Ok(StatsSnapshot {
        role,
        uptime_s,
        protocol_version,
        submitted: c[0],
        accepted: c[1],
        rejected: c[2],
        refused_early: c[3],
        cancelled: c[4],
        queries: c[5],
        queue_full: c[6],
        protocol_errors: c[7],
        connections: c[8],
        conns_json: c[9],
        conns_binary: c[10],
        ticks: c[11],
        gc_reclaimed: c[12],
        replies_dropped: c[13],
        wal_appends: c[14],
        wal_bytes: c[15],
        snapshots_written: c[16],
        recovery_replayed_records: c[17],
        admit_threads: c[18],
        shards: c[19],
        largest_shard: c[20],
        repl_records_shipped: c[21],
        repl_bytes_shipped: c[22],
        repl_snapshots_shipped: c[23],
        repl_shipped_seq: c[24],
        repl_acked_seq: c[25],
        repl_synced: c[26],
        repl_records_applied: c[27],
        repl_bytes_applied: c[28],
        repl_snapshots_applied: c[29],
        repl_resyncs: c[30],
        repl_frames_discarded: c[31],
        repl_frames_damaged: c[32],
        repl_beacons_checked: c[33],
        repl_divergence: c[34],
        holds_placed: c[35],
        holds_committed: c[36],
        holds_released: c[37],
        holds_expired: c[38],
        accepted_gold: c[39],
        accepted_silver: c[40],
        accepted_besteffort: c[41],
        qos_boost_rounds: c[42],
        qos_boosted_mb: c[43],
        qos_early_releases: c[44],
        qos_finish_violations: c[45],
        qos_oversubscriptions: c[46],
        submitted_malleable: c[47],
        accepted_malleable: c[48],
        rejected_malleable: c[49],
        amend_requests: c[50],
        amends_granted: c[51],
        amends_rejected: c[52],
        pending: c[53],
        live_reservations: c[54],
        gc_truncated_bps: c[55],
        breakpoints_live: c[56],
        virtual_time: r.f64()?,
        gc_watermark: r.opt_f64()?,
        decision_latency: get_latency(r)?,
        fsync: get_latency(r)?,
    })
}

/// Encode a server message payload (tag + fields; no version byte — the
/// client learns the server's dialect from its own preamble).
pub fn encode_server_payload(msg: &ServerMsg) -> Vec<u8> {
    let mut w = Writer::new();
    match msg {
        ServerMsg::Accepted {
            id,
            bw,
            start,
            finish,
        } => {
            w.u8(0);
            w.u64(*id);
            w.f64(*bw);
            w.f64(*start);
            w.f64(*finish);
        }
        ServerMsg::Rejected {
            id,
            reason,
            retry_after,
        } => {
            w.u8(1);
            w.u64(*id);
            w.u8(reason_code(*reason));
            w.opt_f64(*retry_after);
        }
        ServerMsg::CancelResult { id, freed } => {
            w.u8(2);
            w.u64(*id);
            w.bool(*freed);
        }
        ServerMsg::Status { id, state, alloc } => {
            w.u8(3);
            w.u64(*id);
            w.u8(state_code(*state));
            match alloc {
                Some((bw, start, finish)) => {
                    w.u8(1);
                    w.f64(*bw);
                    w.f64(*start);
                    w.f64(*finish);
                }
                None => w.u8(0),
            }
        }
        ServerMsg::HoldOpened {
            txn,
            bw,
            start,
            finish,
            expires,
        } => {
            w.u8(4);
            w.u64(*txn);
            w.f64(*bw);
            w.f64(*start);
            w.f64(*finish);
            w.f64(*expires);
        }
        ServerMsg::HoldDenied { txn, reason } => {
            w.u8(5);
            w.u64(*txn);
            w.u8(reason_code(*reason));
        }
        ServerMsg::HoldAck { txn, ok } => {
            w.u8(6);
            w.u64(*txn);
            w.bool(*ok);
        }
        ServerMsg::Stats(s) => {
            w.u8(7);
            put_stats(&mut w, s);
        }
        ServerMsg::Draining { pending } => {
            w.u8(8);
            w.u64(*pending);
        }
        ServerMsg::Promoted { rounds } => {
            w.u8(9);
            w.u64(*rounds);
        }
        ServerMsg::Error { code, message } => {
            w.u8(10);
            w.string(code);
            w.string(message);
        }
        ServerMsg::AcceptedSegments { id, segments } => {
            w.u8(11);
            w.u64(*id);
            w.u32(segments.len() as u32);
            for (start, end, bw) in segments {
                w.f64(*start);
                w.f64(*end);
                w.f64(*bw);
            }
        }
    }
    w.0
}

/// Decode a server payload (as split off a frame by [`FrameBuf`]).
pub fn decode_server_payload(payload: &[u8]) -> Result<ServerMsg, WireError> {
    let mut r = Reader::new(payload);
    let tag = r.u8()?;
    let msg = match tag {
        0 => ServerMsg::Accepted {
            id: r.u64()?,
            bw: r.f64()?,
            start: r.f64()?,
            finish: r.f64()?,
        },
        1 => ServerMsg::Rejected {
            id: r.u64()?,
            reason: reason_from(r.u8()?)?,
            retry_after: r.opt_f64()?,
        },
        2 => ServerMsg::CancelResult {
            id: r.u64()?,
            freed: r.bool()?,
        },
        3 => ServerMsg::Status {
            id: r.u64()?,
            state: state_from(r.u8()?)?,
            alloc: match r.u8()? {
                0 => None,
                1 => Some((r.f64()?, r.f64()?, r.f64()?)),
                _ => return Err(WireError::Malformed("option flag not 0/1")),
            },
        },
        4 => ServerMsg::HoldOpened {
            txn: r.u64()?,
            bw: r.f64()?,
            start: r.f64()?,
            finish: r.f64()?,
            expires: r.f64()?,
        },
        5 => ServerMsg::HoldDenied {
            txn: r.u64()?,
            reason: reason_from(r.u8()?)?,
        },
        6 => ServerMsg::HoldAck {
            txn: r.u64()?,
            ok: r.bool()?,
        },
        7 => ServerMsg::Stats(get_stats(&mut r)?),
        8 => ServerMsg::Draining { pending: r.u64()? },
        9 => ServerMsg::Promoted { rounds: r.u64()? },
        10 => ServerMsg::Error {
            code: r.string()?,
            message: r.string()?,
        },
        11 => {
            let id = r.u64()?;
            let n = r.u32()? as usize;
            // 24 bytes per segment: a hostile count cannot outrun the
            // frame bound, but check before reserving anyway.
            if n > MAX_FRAME / 24 {
                return Err(WireError::Malformed("segment count exceeds frame bound"));
            }
            let mut segments = Vec::with_capacity(n);
            for _ in 0..n {
                segments.push((r.f64()?, r.f64()?, r.f64()?));
            }
            ServerMsg::AcceptedSegments { id, segments }
        }
        t => return Err(WireError::UnknownTag(t)),
    };
    r.done()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_frames_round_trip() {
        let msgs = vec![
            ClientMsg::Submit(SubmitReq {
                id: 7,
                ingress: 1,
                egress: 2,
                volume: 500.0,
                max_rate: 100.0,
                start: Some(0.25),
                deadline: None,
                class: Default::default(),
                malleable: None,
            }),
            ClientMsg::Submit(SubmitReq {
                id: 17,
                ingress: 1,
                egress: 2,
                volume: 500.0,
                max_rate: 100.0,
                start: None,
                deadline: Some(80.0),
                class: Default::default(),
                malleable: Some(true),
            }),
            ClientMsg::Submit(SubmitReq {
                id: 18,
                ingress: 1,
                egress: 2,
                volume: 500.0,
                max_rate: 100.0,
                start: None,
                deadline: None,
                class: Default::default(),
                malleable: Some(false),
            }),
            ClientMsg::HoldOpen(SubmitReq {
                id: 8,
                ingress: 0,
                egress: 3,
                volume: 1.5,
                max_rate: 2.5,
                start: None,
                deadline: Some(9.75),
                class: Default::default(),
                malleable: None,
            }),
            ClientMsg::Amend {
                id: 17,
                volume: 250.0,
                max_rate: 60.0,
                deadline: Some(120.0),
            },
            ClientMsg::Amend {
                id: 17,
                volume: 250.0,
                max_rate: 60.0,
                deadline: None,
            },
            ClientMsg::HoldAttach {
                txn: 9,
                egress: 4,
                bw: 10.0,
                start: 1.0,
                finish: 2.0,
                at: 0.5,
            },
            ClientMsg::HoldCommit { txn: 9, at: 1.5 },
            ClientMsg::HoldRelease { txn: 9, at: 1.75 },
            ClientMsg::Cancel { id: 7 },
            ClientMsg::Query { id: 7 },
            ClientMsg::Stats,
            ClientMsg::Drain,
            ClientMsg::Promote,
        ];
        let mut fb = FrameBuf::new();
        for msg in &msgs {
            fb.extend(&encode_client_frame(msg));
        }
        for msg in &msgs {
            let payload = fb.next_frame().unwrap().expect("complete frame");
            assert_eq!(&decode_client_payload(&payload).unwrap(), msg);
        }
        assert!(fb.next_frame().unwrap().is_none());
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let bytes = encode_client_frame(&ClientMsg::Stats);
        let mut fb = FrameBuf::new();
        for (i, b) in bytes.iter().enumerate() {
            if i + 1 < bytes.len() {
                fb.extend(std::slice::from_ref(b));
                assert_eq!(fb.next_frame().unwrap(), None, "byte {i}");
            }
        }
        fb.extend(std::slice::from_ref(bytes.last().unwrap()));
        let payload = fb.next_frame().unwrap().expect("complete at last byte");
        assert_eq!(decode_client_payload(&payload).unwrap(), ClientMsg::Stats);
    }

    #[test]
    fn corrupt_crc_is_detected() {
        let mut bytes = encode_client_frame(&ClientMsg::Drain);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let mut fb = FrameBuf::new();
        fb.extend(&bytes);
        assert!(matches!(fb.next_frame(), Err(WireError::Crc { .. })));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_not_allocated() {
        let mut fb = FrameBuf::new();
        let mut header = Vec::new();
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        fb.extend(&header);
        assert!(matches!(fb.next_frame(), Err(WireError::TooLarge(_))));
    }

    #[test]
    fn version_and_tag_errors_are_reported() {
        let mut payload = encode_client_payload(&ClientMsg::Stats);
        payload[0] = 9;
        assert_eq!(
            decode_client_payload(&payload),
            Err(WireError::BadVersion(9))
        );
        let payload = vec![WIRE_VERSION, 200];
        assert_eq!(
            decode_client_payload(&payload),
            Err(WireError::UnknownTag(200))
        );
        assert_eq!(
            decode_server_payload(&[255]),
            Err(WireError::UnknownTag(255))
        );
    }

    #[test]
    fn v1_client_payload_is_refused_after_stats_widening() {
        // The v1 binary stats frame was narrower (49 counters, no
        // watermark); a v1 peer must be turned away at its first frame,
        // not left to misparse the wider reply.
        let mut payload = encode_client_payload(&ClientMsg::Stats);
        payload[0] = 1;
        assert_eq!(
            decode_client_payload(&payload),
            Err(WireError::BadVersion(1))
        );
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut payload = encode_client_payload(&ClientMsg::Cancel { id: 3 });
        payload.push(0);
        assert!(matches!(
            decode_client_payload(&payload),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn nan_and_infinity_survive_the_bit_pattern_encoding() {
        let msg = ServerMsg::Accepted {
            id: 1,
            bw: f64::INFINITY,
            start: -0.0,
            finish: 1e-308,
        };
        let back = decode_server_payload(&encode_server_payload(&msg)).unwrap();
        match back {
            ServerMsg::Accepted {
                bw, start, finish, ..
            } => {
                assert_eq!(bw, f64::INFINITY);
                assert_eq!(start.to_bits(), (-0.0f64).to_bits());
                assert_eq!(finish, 1e-308);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn pre_class_submit_payload_decodes_as_silver() {
        // A frame from a client built before service classes existed:
        // same fields, no trailing class byte.
        let msg = ClientMsg::Submit(SubmitReq {
            id: 7,
            ingress: 1,
            egress: 2,
            volume: 500.0,
            max_rate: 100.0,
            start: Some(0.25),
            deadline: None,
            class: ServiceClass::Gold,
            malleable: None,
        });
        let mut payload = encode_client_payload(&msg);
        let trimmed = payload.len() - 1;
        payload.truncate(trimmed);
        match decode_client_payload(&payload).unwrap() {
            ClientMsg::Submit(s) => {
                assert_eq!(s.class, ServiceClass::Silver);
                assert_eq!(s.malleable, None);
                assert_eq!(s.id, 7);
                assert_eq!(s.volume, 500.0);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn rigid_submit_encodes_to_pre_malleable_bytes() {
        // `malleable: None` must not widen the frame: byte-for-byte the
        // payload a pre-malleable client produced (modulo the version
        // byte), which the rigid-only differential tests rely on.
        let rigid = SubmitReq {
            id: 7,
            ingress: 1,
            egress: 2,
            volume: 500.0,
            max_rate: 100.0,
            start: Some(0.25),
            deadline: None,
            class: ServiceClass::Gold,
            malleable: None,
        };
        let p = encode_client_payload(&ClientMsg::Submit(rigid.clone()));
        assert_eq!(*p.last().unwrap(), ServiceClass::Gold.code());
        let flagged = SubmitReq {
            malleable: Some(false),
            ..rigid
        };
        let q = encode_client_payload(&ClientMsg::Submit(flagged));
        assert_eq!(q.len(), p.len() + 1, "explicit flag adds exactly one byte");
        assert_eq!(&q[..p.len()], &p[..]);
    }

    #[test]
    fn accepted_segments_round_trips() {
        let msg = ServerMsg::AcceptedSegments {
            id: 42,
            segments: vec![
                (0.25, 10.0, 33.5),
                (10.0, 20.0, 0.1 + 0.2), // non-representable sum
                (25.0, 27.5, 100.0),
            ],
        };
        let back = decode_server_payload(&encode_server_payload(&msg)).unwrap();
        assert_eq!(back, msg);
        // Empty plans are representable (never emitted, still total).
        let empty = ServerMsg::AcceptedSegments {
            id: 1,
            segments: vec![],
        };
        let back = decode_server_payload(&encode_server_payload(&empty)).unwrap();
        assert_eq!(back, empty);
        // A hostile segment count is malformed, not a huge allocation.
        let mut w = Vec::new();
        w.push(11u8);
        w.extend_from_slice(&42u64.to_le_bytes());
        w.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_server_payload(&w),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn handshake_grid_older_binary_clients_are_refused_cleanly() {
        // v1/v2/v3 clients × v3 server: the version byte is checked
        // before any field is parsed, so older frames (whose Submit
        // layout was narrower and whose Stats expectation was narrower
        // still) die with BadVersion, never a misparse.
        for v in [1u8, 2] {
            let mut payload = encode_client_payload(&ClientMsg::Stats);
            payload[0] = v;
            assert_eq!(
                decode_client_payload(&payload),
                Err(WireError::BadVersion(v))
            );
        }
        let payload = encode_client_payload(&ClientMsg::Stats);
        assert_eq!(payload[0], WIRE_VERSION);
        assert_eq!(decode_client_payload(&payload).unwrap(), ClientMsg::Stats);
    }

    #[test]
    fn unknown_class_code_is_malformed() {
        let msg = ClientMsg::HoldOpen(SubmitReq {
            id: 9,
            ingress: 0,
            egress: 0,
            volume: 1.0,
            max_rate: 1.0,
            start: None,
            deadline: None,
            class: ServiceClass::BestEffort,
            malleable: None,
        });
        let mut payload = encode_client_payload(&msg);
        *payload.last_mut().unwrap() = 9;
        assert!(matches!(
            decode_client_payload(&payload),
            Err(WireError::Malformed("unknown service class code"))
        ));
    }

    #[test]
    fn magic_is_never_a_json_prefix() {
        assert_ne!(WIRE_MAGIC[0], b'{');
        assert_eq!(&WIRE_MAGIC, b"GBWIR01\n");
    }
}
