//! The single-writer admission engine.
//!
//! One thread owns the [`CapacityLedger`] and a [`WindowScheduler`];
//! everything else talks to it through a bounded command channel. This is
//! the daemon-shaped version of Algorithm 3: submissions received during
//! one `t_step` interval are decided together at the interval boundary
//! against the live ledger, exactly as the offline simulation decides
//! them — a property the loopback test in `tests/` checks end to end.
//!
//! Two clocks are supported:
//!
//! * [`TimeMode::Virtual`] — the clock is driven by submission timestamps:
//!   before an arrival at `s` is enqueued, every admission round due at or
//!   before `s` fires. This replays the offline event ordering
//!   (tick-before-arrival at equal times) and makes runs deterministic.
//! * [`TimeMode::RealTime`] — a ticker thread fires a round every
//!   `tick` of wall time, advancing the virtual clock by `t_step`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use gridband_algos::BandwidthPolicy;
use gridband_algos::WindowScheduler;
use gridband_flex::FlexSpec;
use gridband_net::units::EPS;
use gridband_net::SegSpan;
use gridband_net::{EgressId, NetResult, PortRef, ReservationId, ReserveRequest, Route, Topology};
use gridband_qos::{AcceptedTransfer, QosConfig, Redistributor};
use gridband_sim::{AdmissionController, Decision};
use gridband_store::{
    EngineSnapshot, Recovered, RoundDecision, Store, StoreConfig, StoreError, StoreResult,
    WalRecord,
};
use gridband_workload::{Request, TimeWindow};

use crate::metrics::{MetricsRegistry, Role};
use crate::protocol::{ClientMsg, RejectReason, ReqState, ServerMsg, SubmitReq};
use crate::state::{EngineState, ReplayTally};

/// How the engine's clock advances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeMode {
    /// Submission timestamps drive the clock (deterministic replay).
    Virtual,
    /// A ticker thread fires a round every `tick` of wall time.
    RealTime {
        /// Wall-clock interval between admission rounds.
        tick: Duration,
    },
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Port topology the ledger tracks.
    pub topology: Topology,
    /// Admission interval `t_step` in virtual seconds.
    pub step: f64,
    /// Bandwidth granted on acceptance.
    pub policy: BandwidthPolicy,
    /// Clock mode.
    pub mode: TimeMode,
    /// Command-queue bound; `try_submit` reports backpressure beyond it.
    pub queue_capacity: usize,
    /// Deadline default: `start + default_slack × volume / max_rate` when
    /// a submission omits its deadline.
    pub default_slack: f64,
    /// Decided-request history kept for `Query` (older entries evicted).
    pub history_capacity: usize,
    /// Furthest a submission's `start` may lie ahead of the virtual
    /// clock; anything beyond is rejected as `Invalid`. Bounds the
    /// clock catch-up work a single hostile submission can demand.
    pub max_horizon: f64,
    /// Virtual seconds an uncommitted two-phase hold may live before
    /// the expiry sweep releases it: a lost `HoldAck` or a commit that
    /// never arrives must surface as a timeout, not as capacity pinned
    /// forever.
    pub hold_timeout: f64,
    /// Admission rounds run shard-parallel on up to this many OS threads
    /// (1 = sequential; decisions are bit-identical either way, so WAL
    /// records and recovery are thread-count-independent).
    pub admit_threads: usize,
    /// Watermark GC lag in virtual seconds: after each round at `t` the
    /// engine advances a GC watermark to `t - gc_horizon`, truncating
    /// profile history and expired reservations older than that. The
    /// lag keeps a grace window of recent history around (for late
    /// cancels and diagnostics); `None` (the default) never truncates.
    /// Each advance is logged as a [`WalRecord::Gc`] record so recovery
    /// and followers compact at exactly the same point in the decision
    /// stream.
    pub gc_horizon: Option<f64>,
    /// Durability: when set, the engine recovers from (and writes
    /// through) a WAL + snapshot store. `None` runs fully in memory.
    pub store: Option<StoreConfig>,
    /// Replication role this engine reports in `Stats` (`Solo` unless
    /// the daemon was started with `--replicate-to` or promoted from a
    /// follower).
    pub role: Role,
    /// QoS leftover-bandwidth redistribution overlay. `None` (the
    /// default) disables it. The overlay never touches the ledger, so
    /// admission decisions are identical either way; it only affects
    /// effective transfer rates and the `qos_*` metrics. Its state is
    /// volatile — not in the WAL or snapshots — so a restarted engine
    /// simply starts reselling from its next round.
    pub qos: Option<QosConfig>,
    /// Accept malleable (stepwise, `[MinRate, MaxRate]`) submissions and
    /// the `Amend` renegotiation op. Off (the default) rejects both as
    /// `Invalid`. Rigid-only workloads decide byte-identically whether
    /// this is on or off: malleable admissions run strictly *after* the
    /// round's rigid decisions, against the post-decision ledger, and an
    /// empty malleable queue leaves the round untouched.
    pub malleable: bool,
}

impl EngineConfig {
    /// Defaults matching the paper's flexible experiments: WINDOW with
    /// `t_step = 50 s`, MAX BW policy, virtual clock.
    pub fn new(topology: Topology) -> Self {
        EngineConfig {
            topology,
            step: 50.0,
            policy: BandwidthPolicy::MAX_RATE,
            mode: TimeMode::Virtual,
            queue_capacity: 1024,
            default_slack: 3.0,
            history_capacity: 1 << 20,
            max_horizon: 1e6,
            hold_timeout: 100.0,
            admit_threads: gridband_net::default_admit_threads(),
            gc_horizon: None,
            store: None,
            role: Role::Solo,
            qos: None,
            malleable: false,
        }
    }
}

/// Where a connection's replies go: a bounded channel plus an optional
/// waker. The poll-loop server parks its reader threads in `poll(2)`;
/// without the waker a reply could sit in the channel until the next
/// timeout. The engine rings the waker after every successful send so
/// the owning thread wakes and writes the reply out immediately.
/// Thread-per-connection callers (tests, benches, `EngineLink`) build
/// one straight from a `Sender` via `From` and never pay for a waker.
#[derive(Clone)]
pub struct ReplySink {
    tx: Sender<ServerMsg>,
    waker: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl ReplySink {
    /// A sink that wakes `waker` after each reply lands in the channel.
    pub fn with_waker(tx: Sender<ServerMsg>, waker: Arc<dyn Fn() + Send + Sync>) -> ReplySink {
        ReplySink {
            tx,
            waker: Some(waker),
        }
    }

    /// Non-blocking send, mirroring [`Sender::try_send`]; rings the
    /// waker only when the message was actually enqueued. The error is
    /// as large as the message on purpose: `Full`/`Disconnected` hand
    /// the rejected reply back so callers can retry or account for it.
    #[allow(clippy::result_large_err)]
    pub fn try_send(&self, msg: ServerMsg) -> Result<(), TrySendError<ServerMsg>> {
        self.tx.try_send(msg)?;
        if let Some(waker) = &self.waker {
            waker();
        }
        Ok(())
    }
}

impl From<Sender<ServerMsg>> for ReplySink {
    fn from(tx: Sender<ServerMsg>) -> ReplySink {
        ReplySink { tx, waker: None }
    }
}

/// A command delivered to the engine thread.
pub enum Command {
    /// A client request plus the sink its replies go to.
    Client {
        /// The decoded request.
        msg: ClientMsg,
        /// Per-connection outbound queue.
        reply: ReplySink,
    },
    /// Fire one admission round (real-time ticker).
    Tick,
    /// Decide everything pending, then exit the engine loop.
    Shutdown,
    /// Exit immediately: no drain round, pending submissions unreplied.
    /// Used to emulate a crash at a round boundary in recovery tests.
    Halt,
    /// Export the engine's durable state (what a snapshot would hold).
    Export {
        /// Channel the snapshot is sent on.
        reply: Sender<EngineSnapshot>,
    },
}

struct PendingEntry {
    req: Request,
    reply: ReplySink,
    submitted_at: Instant,
    cancelled: bool,
    /// Service class for the QoS overlay; admission never reads it.
    class: gridband_workload::ServiceClass,
}

/// A malleable submission awaiting its deciding round. Kept in arrival
/// order in a `Vec` (not the rigid `pending` map): the water-filling
/// solver serves malleable candidates strictly after the round's rigid
/// decisions, first-come first-served.
struct FlexPending {
    id: u64,
    spec: FlexSpec,
    /// The client named an explicit deadline (the window cannot slide).
    hard_deadline: bool,
    reply: ReplySink,
    submitted_at: Instant,
    cancelled: bool,
    class: gridband_workload::ServiceClass,
}

/// An `Amend` awaiting its deciding round. Amends are applied in
/// ascending request-id order at the round boundary, after rigid
/// decisions and before new malleable admissions.
struct AmendPending {
    id: u64,
    volume: f64,
    max_rate: f64,
    deadline: Option<f64>,
    reply: ReplySink,
}

/// Handle to a running engine thread.
pub struct Engine {
    tx: Sender<Command>,
    metrics: Arc<MetricsRegistry>,
    step: f64,
    ticker_stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
    ticker: Option<std::thread::JoinHandle<()>>,
}

impl Engine {
    /// Start the engine (and, in real-time mode, its ticker).
    ///
    /// Panics if the configured store cannot be opened or recovered; use
    /// [`Engine::try_spawn`] to handle that as an error.
    pub fn spawn(config: EngineConfig) -> Engine {
        Engine::try_spawn(config).expect("engine store open/recovery failed")
    }

    /// Start the engine, recovering durable state first when a store is
    /// configured. Recovery runs on the caller's thread, so a corrupt
    /// store surfaces here — before the daemon starts accepting work —
    /// rather than as a dead engine thread.
    pub fn try_spawn(config: EngineConfig) -> Result<Engine, StoreError> {
        let metrics = Arc::new(MetricsRegistry::new());
        metrics.set_role(config.role);
        let (tx, rx) = channel::bounded(config.queue_capacity);
        let step = config.step;
        let mode = config.mode;
        let ticker_stop = Arc::new(AtomicBool::new(false));

        let engine_loop = EngineLoop::new(config, metrics.clone(), rx)?;

        let ticker = match mode {
            TimeMode::Virtual => None,
            TimeMode::RealTime { tick } => {
                let tx = tx.clone();
                let stop = ticker_stop.clone();
                Some(std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(tick);
                        if stop.load(Ordering::Relaxed) || tx.send(Command::Tick).is_err() {
                            break;
                        }
                    }
                }))
            }
        };

        let thread = std::thread::spawn(move || engine_loop.run());
        Ok(Engine {
            tx,
            metrics,
            step,
            ticker_stop,
            thread: Some(thread),
            ticker: None,
        }
        .with_ticker(ticker))
    }

    fn with_ticker(mut self, ticker: Option<std::thread::JoinHandle<()>>) -> Self {
        self.ticker = ticker;
        self
    }

    /// A sender connections use to enqueue commands.
    pub fn sender(&self) -> Sender<Command> {
        self.tx.clone()
    }

    /// Shared metrics registry.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        self.metrics.clone()
    }

    /// The engine's `t_step` (used for queue-full retry hints).
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Enqueue without blocking; `Err` means the queue is full (the
    /// caller should report [`RejectReason::QueueFull`]).
    pub fn try_command(&self, cmd: Command) -> Result<(), Command> {
        match self.tx.try_send(cmd) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(c)) | Err(TrySendError::Disconnected(c)) => Err(c),
        }
    }

    /// Decide everything pending and stop the engine thread.
    pub fn shutdown(mut self) {
        self.ticker_stop.store(true, Ordering::Relaxed);
        let _ = self.tx.send(Command::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.ticker.take() {
            let _ = t.join();
        }
    }

    /// Stop the engine *without* a drain round: pending submissions are
    /// dropped unreplied, exactly as a crash at a round boundary would
    /// leave them. Recovery tests restart a store-backed engine after
    /// this and expect it to resume from its last durable round.
    pub fn kill(mut self) {
        self.ticker_stop.store(true, Ordering::Relaxed);
        let _ = self.tx.send(Command::Halt);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.ticker.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.ticker_stop.store(true, Ordering::Relaxed);
        let _ = self.tx.send(Command::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.ticker.take() {
            let _ = t.join();
        }
    }
}

struct EngineLoop {
    config: EngineConfig,
    metrics: Arc<MetricsRegistry>,
    rx: Receiver<Command>,
    /// The durable slice: ledger, clock, decided-request maps. Shared
    /// (as a type) with recovery replay and the replication mirrors.
    st: EngineState,
    sched: WindowScheduler,
    pending: HashMap<u64, PendingEntry>,
    /// Malleable submissions awaiting their round, in arrival order.
    pending_flex: Vec<FlexPending>,
    /// Amends awaiting their round (sorted by id when applied).
    pending_amends: Vec<AmendPending>,
    draining: bool,
    /// Write-ahead log (None = in-memory engine).
    store: Option<Store>,
    /// Install a snapshot every this many rounds (0 = never).
    snapshot_every: u64,
    rounds_since_snapshot: u64,
    /// Decisions of the round in flight, in decision order; becomes the
    /// round's single WAL record.
    round_log: Vec<RoundDecision>,
    /// Replies of the round in flight, held back until the round record
    /// is durable. Decisions are never externalized before they would
    /// survive a crash.
    round_replies: Vec<(ReplySink, ServerMsg)>,
    /// A store write failed: the engine stops decided-but-undurable work
    /// from leaking out and exits its loop.
    dead: bool,
    /// Leftover-bandwidth redistribution overlay (None = disabled).
    qos: Option<Redistributor>,
}

impl EngineLoop {
    fn new(
        config: EngineConfig,
        metrics: Arc<MetricsRegistry>,
        rx: Receiver<Command>,
    ) -> StoreResult<Self> {
        assert!(config.step > 0.0, "t_step must be positive");
        if let Some(h) = config.gc_horizon {
            assert!(
                h.is_finite() && h >= 0.0,
                "gc_horizon must be finite and >= 0"
            );
        }
        let st = EngineState::new(
            config.topology.clone(),
            config.step,
            config.history_capacity,
        );
        let sched = WindowScheduler::new(config.step, config.policy)
            .with_threads(config.admit_threads.max(1));
        metrics
            .admit_threads
            .store(config.admit_threads.max(1) as u64, Ordering::Relaxed);
        let store_cfg = config.store.clone();
        let qos = config.qos.map(|cfg| {
            Redistributor::new(
                config.topology.num_ingress(),
                config.topology.num_egress(),
                cfg,
            )
        });
        let mut this = EngineLoop {
            config,
            metrics,
            rx,
            st,
            sched,
            pending: HashMap::new(),
            pending_flex: Vec::new(),
            pending_amends: Vec::new(),
            draining: false,
            store: None,
            snapshot_every: 0,
            rounds_since_snapshot: 0,
            round_log: Vec::new(),
            round_replies: Vec::new(),
            dead: false,
            qos,
        };
        if let Some(cfg) = store_cfg {
            let (store, recovered) = Store::open(cfg.dir, cfg.fsync)?;
            this.snapshot_every = cfg.snapshot_every;
            this.recover(recovered)?;
            this.store = Some(store);
        }
        Ok(this)
    }

    /// Rebuild the pre-crash engine from what [`Store::open`] found:
    /// restore the snapshot verbatim, then replay the WAL tail. The
    /// heavy lifting lives in [`EngineState`], shared with the
    /// replication mirrors; this wrapper only folds the replay tally
    /// into the live metrics.
    fn recover(&mut self, recovered: Recovered) -> StoreResult<()> {
        let snap_file = format!("snap-{}", recovered.gen);
        let wal_file = format!("wal-{}", recovered.gen);
        if let Some(payload) = &recovered.snapshot {
            let snap = EngineSnapshot::decode(&snap_file, payload)?;
            self.st.restore(snap, &snap_file)?;
        }
        let mut tally = ReplayTally::default();
        for (offset, payload) in &recovered.records {
            let record = WalRecord::decode(&wal_file, *offset, payload)?;
            self.st.apply(record, &wal_file, *offset, &mut tally)?;
            MetricsRegistry::inc(&self.metrics.recovery_replayed_records);
        }
        self.metrics.ticks.store(self.st.rounds, Ordering::Relaxed);
        MetricsRegistry::add(&self.metrics.accepted, tally.accepted);
        MetricsRegistry::add(&self.metrics.rejected, tally.rejected);
        MetricsRegistry::add(&self.metrics.cancelled, tally.cancelled);
        MetricsRegistry::add(&self.metrics.refused_early, tally.refused_early);
        MetricsRegistry::add(&self.metrics.gc_reclaimed, tally.gc_reclaimed);
        MetricsRegistry::add(&self.metrics.gc_truncated_bps, tally.gc_truncated_bps);
        if let Some(w) = self.st.ledger.watermark() {
            self.metrics.gc_watermark.set(w);
        }
        self.metrics
            .breakpoints_live
            .store(self.st.ledger.breakpoint_count() as u64, Ordering::Relaxed);
        MetricsRegistry::add(&self.metrics.holds_placed, tally.holds_placed);
        MetricsRegistry::add(&self.metrics.holds_committed, tally.holds_committed);
        // Replay cannot tell an explicit release from an expiry sweep —
        // both are `HoldRelease` records — so recovered counts land in
        // the released bucket.
        MetricsRegistry::add(&self.metrics.holds_released, tally.holds_released);
        Ok(())
    }

    fn run(mut self) {
        while !self.dead {
            let Ok(cmd) = self.rx.recv() else { break };
            match cmd {
                Command::Client { msg, reply } => self.handle_client(msg, reply),
                Command::Tick => {
                    let t = self.st.next_tick;
                    self.run_round(t);
                }
                Command::Shutdown => {
                    if !self.pending.is_empty()
                        || !self.pending_flex.is_empty()
                        || !self.pending_amends.is_empty()
                    {
                        let t = self.st.next_tick;
                        self.run_round(t);
                    }
                    break;
                }
                Command::Halt => break,
                Command::Export { reply } => {
                    let _ = reply.try_send(self.st.export());
                }
            }
        }
    }

    fn handle_client(&mut self, msg: ClientMsg, reply: ReplySink) {
        match msg {
            ClientMsg::Submit(s) => self.handle_submit(s, reply),
            ClientMsg::Amend {
                id,
                volume,
                max_rate,
                deadline,
            } => self.handle_amend(id, volume, max_rate, deadline, reply),
            ClientMsg::Cancel { id } => self.handle_cancel(id, reply),
            ClientMsg::HoldOpen(s) => self.handle_hold_open(s, reply),
            ClientMsg::HoldAttach {
                txn,
                egress,
                bw,
                start,
                finish,
                at,
            } => self.handle_hold_attach(txn, egress, bw, start, finish, at, reply),
            ClientMsg::HoldCommit { txn, at } => self.handle_hold_commit(txn, at, reply),
            ClientMsg::HoldRelease { txn, at } => self.handle_hold_release(txn, at, reply),
            ClientMsg::Query { id } => {
                MetricsRegistry::inc(&self.metrics.queries);
                let state = if self.pending.contains_key(&id) || self.flex_pending(id) {
                    ReqState::Pending
                } else {
                    self.st.state_of(id).unwrap_or(ReqState::Unknown)
                };
                let alloc = self.st.alloc_of(id);
                self.send_reply(&reply, ServerMsg::Status { id, state, alloc });
            }
            ClientMsg::Stats => {
                let snap = self.metrics.snapshot(
                    (self.pending.len() + self.pending_flex.len()) as u64,
                    (self.st.ledger.live_count() + self.st.ledger.seg_count()) as u64,
                    self.st.now,
                );
                self.send_reply(&reply, ServerMsg::Stats(snap));
            }
            ClientMsg::Drain => {
                self.draining = true;
                let n = (self.pending.len() + self.pending_flex.len()) as u64;
                if n > 0 || !self.pending_amends.is_empty() {
                    let t = self.st.next_tick;
                    self.run_round(t);
                    if self.dead {
                        return;
                    }
                }
                self.send_reply(&reply, ServerMsg::Draining { pending: n });
            }
            ClientMsg::Promote => {
                // Promotion is a follower-side operation; an engine that
                // is already deciding rounds has nothing to promote into.
                self.send_reply(
                    &reply,
                    ServerMsg::Error {
                        code: "not-follower".to_string(),
                        message: format!(
                            "this daemon is {} — only a follower can be promoted",
                            self.metrics.get_role().as_str()
                        ),
                    },
                );
            }
        }
    }

    /// Whether a malleable submission with this id awaits its round.
    fn flex_pending(&self, id: u64) -> bool {
        self.pending_flex.iter().any(|p| p.id == id)
    }

    fn handle_submit(&mut self, s: SubmitReq, reply: ReplySink) {
        MetricsRegistry::inc(&self.metrics.submitted);
        if s.is_malleable() {
            MetricsRegistry::inc(&self.metrics.submitted_malleable);
        }
        if self.draining {
            MetricsRegistry::inc(&self.metrics.refused_early);
            self.send_reply(
                &reply,
                ServerMsg::Rejected {
                    id: s.id,
                    reason: RejectReason::Drained,
                    retry_after: None,
                },
            );
            return;
        }
        let start = s.start.unwrap_or(self.st.now).max(self.st.now);
        // Sanity-check the clock-driving field before it drives the clock:
        // `{"start":1e300}` parses as a perfectly valid f64, and without
        // this bound the catch-up loop below would run ~start/step rounds,
        // freezing the single engine thread — and every client — forever.
        if !start.is_finite() || start > self.st.now + self.config.max_horizon {
            MetricsRegistry::inc(&self.metrics.refused_early);
            self.st.record_state(s.id, ReqState::Rejected);
            if !self.log_event(WalRecord::EarlyReject { id: s.id }) {
                return;
            }
            self.send_reply(
                &reply,
                ServerMsg::Rejected {
                    id: s.id,
                    reason: RejectReason::Invalid,
                    retry_after: None,
                },
            );
            return;
        }
        if !self.advance_virtual_clock(start) {
            return;
        }

        match self.validate(&s, start) {
            Ok(req) => {
                if s.is_malleable() {
                    if !self.config.malleable {
                        // The malleable path is not enabled: refuse the
                        // class outright rather than silently degrading
                        // the request to a rigid admission.
                        MetricsRegistry::inc(&self.metrics.refused_early);
                        self.st.record_state(s.id, ReqState::Rejected);
                        if !self.log_event(WalRecord::EarlyReject { id: s.id }) {
                            return;
                        }
                        self.send_reply(
                            &reply,
                            ServerMsg::Rejected {
                                id: s.id,
                                reason: RejectReason::Invalid,
                                retry_after: None,
                            },
                        );
                        return;
                    }
                    // Malleable submissions never reach the rigid
                    // scheduler: they queue for the water-filling pass
                    // that runs after the round's rigid decisions, so a
                    // rigid-only workload decides byte-identically with
                    // this path compiled in and enabled.
                    self.pending_flex.push(FlexPending {
                        id: s.id,
                        spec: FlexSpec::new(
                            req.route,
                            req.window.start,
                            req.finish(),
                            req.volume,
                            req.max_rate,
                        ),
                        hard_deadline: s.deadline.is_some(),
                        reply,
                        submitted_at: Instant::now(),
                        cancelled: false,
                        class: s.class,
                    });
                    return;
                }
                // WindowScheduler always defers; keep the reply routing so
                // the round that decides this request can answer.
                let d = self.sched.on_arrival(&req, &self.st.ledger, self.st.now);
                debug_assert!(matches!(d, Decision::Defer));
                self.pending.insert(
                    s.id,
                    PendingEntry {
                        req,
                        reply,
                        submitted_at: Instant::now(),
                        cancelled: false,
                        class: s.class,
                    },
                );
            }
            Err(reason) => {
                MetricsRegistry::inc(&self.metrics.refused_early);
                self.st.record_state(s.id, ReqState::Rejected);
                if !self.log_event(WalRecord::EarlyReject { id: s.id }) {
                    return;
                }
                self.send_reply(
                    &reply,
                    ServerMsg::Rejected {
                        id: s.id,
                        reason,
                        retry_after: None,
                    },
                );
            }
        }
    }

    /// Drive the virtual clock to `to`: fire every round due before (or
    /// exactly at) that instant, preserving the offline
    /// tick-before-arrival order at equal timestamps. Returns `false`
    /// when a round hit a store failure and the engine must halt
    /// without replying. In real time the ticker owns `now`; advancing
    /// it here would push it past `next_tick` and make the next round
    /// run backwards, so this is a no-op there.
    fn advance_virtual_clock(&mut self, to: f64) -> bool {
        if self.config.mode != TimeMode::Virtual {
            return true;
        }
        while self.st.next_tick <= to {
            // With nothing pending a round is pure bookkeeping (GC folds
            // into the last round anyway), so jump straight to the final
            // round due at or before `to`. Live holds veto the jump: the
            // expiry sweep must see every round boundary to release a
            // timed-out hold at the round it actually expires.
            if self.pending.is_empty()
                && self.pending_flex.is_empty()
                && self.pending_amends.is_empty()
                && self.st.hold_count() == 0
            {
                let behind = ((to - self.st.next_tick) / self.config.step).floor();
                if behind >= 1.0 {
                    self.st.next_tick += behind * self.config.step;
                }
            }
            let t = self.st.next_tick;
            self.run_round(t);
            if self.dead {
                return false;
            }
        }
        self.st.now = self.st.now.max(to);
        true
    }

    /// Ingress half of a cross-shard admission: compute the earliest
    /// max-rate window on the ingress port inside the request's feasible
    /// range and pin it with a single-port hold. The egress shard
    /// confirms (or refutes) the same window via `HoldAttach`; each side
    /// only ever charges the port it owns.
    fn handle_hold_open(&mut self, s: SubmitReq, reply: ReplySink) {
        let txn = s.id;
        if self.draining {
            self.send_reply(
                &reply,
                ServerMsg::HoldDenied {
                    txn,
                    reason: RejectReason::Drained,
                },
            );
            return;
        }
        let start = s.start.unwrap_or(self.st.now).max(self.st.now);
        if !start.is_finite() || start > self.st.now + self.config.max_horizon {
            self.send_reply(
                &reply,
                ServerMsg::HoldDenied {
                    txn,
                    reason: RejectReason::Invalid,
                },
            );
            return;
        }
        if !self.advance_virtual_clock(start) {
            return;
        }
        if self.st.hold_of(txn).is_some() {
            self.send_reply(
                &reply,
                ServerMsg::HoldDenied {
                    txn,
                    reason: RejectReason::Invalid,
                },
            );
            return;
        }
        let req = match self.validate(&s, start) {
            Ok(req) => req,
            Err(reason) => {
                self.send_reply(&reply, ServerMsg::HoldDenied { txn, reason });
                return;
            }
        };
        let duration = req.volume / req.max_rate;
        let latest_start = req.finish() - duration;
        let candidate = self
            .st
            .ledger
            .ingress_profile(req.route.ingress)
            .earliest_fit(start, duration, req.max_rate, latest_start);
        let Some(t0) = candidate else {
            self.send_reply(
                &reply,
                ServerMsg::HoldDenied {
                    txn,
                    reason: RejectReason::Saturated,
                },
            );
            return;
        };
        let expires = self.st.now + self.config.hold_timeout;
        let port = PortRef::In(req.route.ingress);
        let (bw, finish) = (req.max_rate, t0 + duration);
        match self.st.place_hold(txn, port, bw, t0, finish, expires) {
            Ok(_) => {
                MetricsRegistry::inc(&self.metrics.holds_placed);
                // Log before replying: a crash after the reply must not
                // forget capacity the ingress told its peer is pinned.
                if !self.log_event(WalRecord::HoldPlace {
                    txn,
                    port,
                    bw,
                    start: t0,
                    finish,
                    expires,
                }) {
                    return;
                }
                self.send_reply(
                    &reply,
                    ServerMsg::HoldOpened {
                        txn,
                        bw,
                        start: t0,
                        finish,
                        expires,
                    },
                );
            }
            Err(_) => {
                self.send_reply(
                    &reply,
                    ServerMsg::HoldDenied {
                        txn,
                        reason: RejectReason::Saturated,
                    },
                );
            }
        }
    }

    /// Egress half of a cross-shard admission: pin the window the
    /// ingress shard proposed on the local egress port. A `false` ack
    /// tells the ingress to release its half.
    #[allow(clippy::too_many_arguments)]
    fn handle_hold_attach(
        &mut self,
        txn: u64,
        egress: u32,
        bw: f64,
        start: f64,
        finish: f64,
        at: f64,
        reply: ReplySink,
    ) {
        let shaped = !self.draining
            && at.is_finite()
            && at <= self.st.now + self.config.max_horizon
            && bw.is_finite()
            && bw > 0.0
            && start.is_finite()
            && finish.is_finite()
            && finish > start;
        if !shaped {
            self.send_reply(&reply, ServerMsg::HoldAck { txn, ok: false });
            return;
        }
        if !self.advance_virtual_clock(at.max(self.st.now)) {
            return;
        }
        if self.st.hold_of(txn).is_some() {
            self.send_reply(&reply, ServerMsg::HoldAck { txn, ok: false });
            return;
        }
        let port = PortRef::Out(EgressId(egress));
        let expires = self.st.now + self.config.hold_timeout;
        match self.st.place_hold(txn, port, bw, start, finish, expires) {
            Ok(_) => {
                MetricsRegistry::inc(&self.metrics.holds_placed);
                if !self.log_event(WalRecord::HoldPlace {
                    txn,
                    port,
                    bw,
                    start,
                    finish,
                    expires,
                }) {
                    return;
                }
                self.send_reply(&reply, ServerMsg::HoldAck { txn, ok: true });
            }
            Err(_) => self.send_reply(&reply, ServerMsg::HoldAck { txn, ok: false }),
        }
    }

    /// Second phase, success: mark the local hold committed. It stays
    /// charged on its port for its full window (GC reclaims it when the
    /// window passes) and becomes exempt from the expiry sweep.
    fn handle_hold_commit(&mut self, txn: u64, at: f64, reply: ReplySink) {
        if !(at.is_finite() && at <= self.st.now + self.config.max_horizon) {
            self.send_reply(&reply, ServerMsg::HoldAck { txn, ok: false });
            return;
        }
        if !self.advance_virtual_clock(at.max(self.st.now)) {
            return;
        }
        if self.st.hold_of(txn).is_none() {
            // The expiry sweep may have won the race; the coordinator
            // treats a failed commit as a loss it must reconcile.
            self.send_reply(&reply, ServerMsg::HoldAck { txn, ok: false });
            return;
        }
        // Log before the in-memory flip: replay must re-commit exactly
        // the holds the live engine committed.
        if !self.log_event(WalRecord::HoldCommit { txn }) {
            return;
        }
        let ok = self.st.commit_hold(txn);
        debug_assert!(ok);
        MetricsRegistry::inc(&self.metrics.holds_committed);
        self.send_reply(&reply, ServerMsg::HoldAck { txn, ok: true });
    }

    /// Second phase, failure: drop the local hold and free its pinned
    /// capacity. Unknown transactions ack `false` — the expiry sweep
    /// may already have reclaimed the hold, which is not an error.
    fn handle_hold_release(&mut self, txn: u64, at: f64, reply: ReplySink) {
        if !(at.is_finite() && at <= self.st.now + self.config.max_horizon) {
            self.send_reply(&reply, ServerMsg::HoldAck { txn, ok: false });
            return;
        }
        if !self.advance_virtual_clock(at.max(self.st.now)) {
            return;
        }
        if self.st.hold_of(txn).is_none() {
            self.send_reply(&reply, ServerMsg::HoldAck { txn, ok: false });
            return;
        }
        if !self.log_event(WalRecord::HoldRelease { txn }) {
            return;
        }
        let ok = self.st.release_hold(txn);
        debug_assert!(ok);
        MetricsRegistry::inc(&self.metrics.holds_released);
        self.send_reply(&reply, ServerMsg::HoldAck { txn, ok: true });
    }

    /// Non-panicking mirror of `Request::new`'s contract; a daemon must
    /// survive hostile input that would assert in the library constructor.
    fn validate(&self, s: &SubmitReq, start: f64) -> Result<Request, RejectReason> {
        if self.pending.contains_key(&s.id) || self.flex_pending(s.id) || self.st.knows(s.id) {
            return Err(RejectReason::Invalid);
        }
        if !(s.volume.is_finite()
            && s.volume > 0.0
            && s.max_rate.is_finite()
            && s.max_rate > 0.0
            && start.is_finite())
        {
            return Err(RejectReason::Invalid);
        }
        let route = Route::new(s.ingress, s.egress);
        if !self.config.topology.contains_route(route) {
            return Err(RejectReason::UnknownRoute);
        }
        let deadline = match s.deadline {
            Some(d) => d,
            None => start + self.config.default_slack * s.volume / s.max_rate,
        };
        if !deadline.is_finite() || deadline - start <= EPS {
            return Err(RejectReason::Invalid);
        }
        let min_rate = s.volume / (deadline - start);
        if min_rate > s.max_rate * (1.0 + 1e-9) {
            // The window was never feasible at MaxRate.
            return Err(RejectReason::DeadlineUnreachable);
        }
        Ok(Request::new(
            s.id,
            route,
            TimeWindow::new(start, deadline),
            s.volume,
            s.max_rate,
        ))
    }

    fn handle_cancel(&mut self, id: u64, reply: ReplySink) {
        let freed = if self.st.cancel_live(id) {
            MetricsRegistry::inc(&self.metrics.cancelled);
            // Log before replying: a crash after the reply must not
            // resurrect capacity the client was told is freed.
            if !self.log_event(WalRecord::Cancel { id }) {
                return;
            }
            // The overlay must stop boosting a transfer whose guarantee
            // is gone — its residual claim died with the reservation.
            if let Some(q) = self.qos.as_mut() {
                q.on_cancel(id);
            }
            true
        } else if let Some(entry) = self.pending.get_mut(&id) {
            // Still undecided: tombstone it. The deciding round frees any
            // reservation it would get and suppresses the decision reply.
            // Only the first cancel takes effect; repeats report
            // `freed: false` and leave the metric alone.
            let first = !entry.cancelled;
            if first {
                entry.cancelled = true;
                MetricsRegistry::inc(&self.metrics.cancelled);
            }
            first
        } else if let Some(entry) = self.pending_flex.iter_mut().find(|p| p.id == id) {
            // A malleable submission awaiting its round: tombstone it,
            // exactly like a rigid pending cancel.
            let first = !entry.cancelled;
            if first {
                entry.cancelled = true;
                MetricsRegistry::inc(&self.metrics.cancelled);
            }
            first
        } else {
            false
        };
        self.send_reply(&reply, ServerMsg::CancelResult { id, freed });
    }

    /// Queue a mid-flight renegotiation of a live malleable reservation.
    /// The amend is decided at the next round boundary — after the
    /// round's rigid decisions, in ascending request-id order — as one
    /// atomic action: either the whole replacement plan is granted (same
    /// request id, same reservation id) or the original reservation is
    /// left bit-identically untouched. Capacity freed by the old plan is
    /// never observable unless the new plan is granted.
    fn handle_amend(
        &mut self,
        id: u64,
        volume: f64,
        max_rate: f64,
        deadline: Option<f64>,
        reply: ReplySink,
    ) {
        MetricsRegistry::inc(&self.metrics.amend_requests);
        let params_valid = self.config.malleable
            && volume.is_finite()
            && volume > 0.0
            && max_rate.is_finite()
            && max_rate > 0.0
            && deadline.is_none_or(|d| d.is_finite());
        let reason = if self.draining {
            Some(RejectReason::Drained)
        } else if !params_valid || self.pending_amends.iter().any(|a| a.id == id) {
            Some(RejectReason::Invalid)
        } else {
            match self.st.reservation_of(id) {
                // Only a live *segmented* reservation can be amended;
                // rigid reservations renegotiate via Cancel + resubmit.
                Some(rid) if self.st.ledger.get_segments(rid).is_some() => None,
                _ => Some(RejectReason::Invalid),
            }
        };
        if let Some(reason) = reason {
            MetricsRegistry::inc(&self.metrics.amends_rejected);
            self.send_reply(
                &reply,
                ServerMsg::Rejected {
                    id,
                    reason,
                    retry_after: None,
                },
            );
            return;
        }
        self.pending_amends.push(AmendPending {
            id,
            volume,
            max_rate,
            deadline,
            reply,
        });
    }

    /// One admission round at virtual time `t`: GC expired reservations,
    /// let the scheduler decide the batch, apply each decision, make the
    /// round durable, then answer. Replies are buffered until the round's
    /// WAL record (and, per policy, its fsync) lands: a decision a crash
    /// could forget is never externalized. On a store failure the round's
    /// replies are dropped and the engine halts.
    fn run_round(&mut self, t: f64) {
        debug_assert!(t >= self.st.now - EPS, "round time going backwards");
        // Sweep uncommitted holds whose timeout elapsed before anything
        // else sees the round: a lost `HoldAck` or a commit that never
        // arrived surfaces here as reclaimed capacity. Each release is
        // its own WAL record, appended ahead of the round record so
        // replay frees the capacity in the same order the live round
        // did.
        for txn in self.st.expired_holds(t) {
            if !self.log_event(WalRecord::HoldRelease { txn }) {
                return;
            }
            let ok = self.st.release_hold(txn);
            debug_assert!(ok);
            MetricsRegistry::inc(&self.metrics.holds_expired);
        }
        self.st.begin_round(t);
        MetricsRegistry::inc(&self.metrics.ticks);
        let sweep = self.st.gc_expired(t);
        MetricsRegistry::add(&self.metrics.gc_reclaimed, sweep.reclaimed);
        // An uncommitted hold whose window ended is a release the client
        // never sent; count it so `holds_placed` always balances against
        // `holds_committed + holds_released + holds_expired`.
        MetricsRegistry::add(&self.metrics.holds_released, sweep.holds_released);
        debug_assert!(self.round_log.is_empty() && self.round_replies.is_empty());

        // Book every accept of the round through the ledger's batched
        // entry point: one query-index rebuild per touched port per round
        // instead of one per reservation. Results are consumed in decision
        // order, so the outcome is identical to sequential `reserve` calls.
        let decisions = self.sched.on_tick(&self.st.ledger, t);
        // Gauges track the most recent round *with candidates*: an empty
        // round (nothing pending at the tick) leaves the previous values
        // in place instead of blanking them to zero.
        if self.sched.last_round_shards() > 0 {
            self.metrics
                .shards
                .store(self.sched.last_round_shards() as u64, Ordering::Relaxed);
            self.metrics.largest_shard.store(
                self.sched.last_round_largest_shard() as u64,
                Ordering::Relaxed,
            );
        }
        let mut in_batch = Vec::with_capacity(decisions.len());
        let mut batch = Vec::new();
        for &(rid, d) in &decisions {
            let added = if let Decision::Accept { bw, start, finish } = d {
                match self.pending.get(&rid.0) {
                    Some(entry) => {
                        batch.push(ReserveRequest {
                            route: entry.req.route,
                            start,
                            end: finish,
                            bw,
                        });
                        true
                    }
                    None => false,
                }
            } else {
                false
            };
            in_batch.push(added);
        }
        let mut results = self
            .st
            .ledger
            .reserve_all_threaded(&batch, self.config.admit_threads.max(1))
            .into_iter();
        for ((rid, decision), booked) in decisions.into_iter().zip(in_batch) {
            let prebooked = if booked { results.next() } else { None };
            self.apply_decision(rid.0, decision, t, prebooked);
        }
        // Malleable work runs strictly after the round's rigid decisions,
        // against the post-decision ledger: amends first (ascending
        // request id), then new admissions in arrival order. On a
        // rigid-only workload both queues are empty and the round is
        // byte-identical to a pre-malleable engine's.
        self.flex_round(t);

        if !self.commit_round(t) {
            // The round is decided in memory but not durable; replies
            // must not leak. Clients resubmit after the daemon restarts
            // and recovery re-runs the round identically.
            self.round_replies.clear();
            self.dead = true;
            return;
        }
        let replies = std::mem::take(&mut self.round_replies);
        for (reply, msg) in replies {
            self.send_reply(&reply, msg);
        }
        self.gc_round(t);
        if self.dead {
            return;
        }
        self.metrics
            .breakpoints_live
            .store(self.st.ledger.breakpoint_count() as u64, Ordering::Relaxed);
        self.qos_round(t);
    }

    /// The round's malleable pass: apply queued amends in ascending
    /// request-id order, then water-fill new malleable admissions in
    /// arrival order. Both run against the ledger as the rigid decisions
    /// left it, and both log into the same round record, so replay
    /// re-walks the identical sequence.
    fn flex_round(&mut self, t: f64) {
        if self.pending_amends.is_empty() && self.pending_flex.is_empty() {
            return;
        }
        let mut amends = std::mem::take(&mut self.pending_amends);
        amends.sort_by_key(|a| a.id);
        for a in amends {
            self.apply_amend(a, t);
        }
        let flex = std::mem::take(&mut self.pending_flex);
        for p in flex {
            self.apply_flex(p, t);
        }
    }

    /// Decide one queued amend at round time `t`. The replacement plan
    /// keeps every already-started segment (clipped at `t` — delivered
    /// bytes are history, not negotiable) and water-fills the amended
    /// remaining volume from `t` against residuals with the old plan's
    /// future segments credited back. The swap itself goes through
    /// [`CapacityLedger::amend_segments`], so a rejection leaves the
    /// original reservation bit-identically untouched.
    fn apply_amend(&mut self, a: AmendPending, t: f64) {
        let target = self.st.reservation_of(a.id).and_then(|rid| {
            self.st
                .ledger
                .get_segments(rid)
                .map(|r| (rid, r.route, r.segments.clone()))
        });
        // The reservation may have expired (or been cancelled) between
        // the queueing and the deciding round.
        let Some((rid, route, old_segments)) = target else {
            self.reject_amend(&a, RejectReason::Invalid, None);
            return;
        };
        let finish = match a.deadline {
            Some(d) => d,
            None => t + self.config.default_slack * a.volume / a.max_rate,
        };
        if finish - t <= EPS || a.volume > a.max_rate * (finish - t) * (1.0 + 1e-9) {
            self.reject_amend(&a, RejectReason::DeadlineUnreachable, None);
            return;
        }
        // Plan the remainder on a scratch ledger with the old plan
        // released: the real swap releases it before allocating, so the
        // scratch residuals are exactly what the allocation will see.
        let mut scratch = self.st.ledger.clone();
        let cancelled = scratch.cancel_segments(rid);
        debug_assert!(cancelled.is_ok());
        let spec = FlexSpec::new(route, t, finish, a.volume, a.max_rate);
        let Some(future) = gridband_flex::water_fill(&scratch, &spec) else {
            let hint = gridband_flex::retry_after(
                &scratch,
                &spec,
                self.st.next_tick,
                a.deadline.is_some(),
            );
            self.reject_amend(&a, RejectReason::Saturated, hint);
            return;
        };
        let mut full: Vec<SegSpan> = Vec::with_capacity(old_segments.len() + future.len());
        for s in &old_segments {
            if s.start < t && t - s.start > EPS {
                full.push(SegSpan {
                    start: s.start,
                    end: s.end.min(t),
                    bw: s.bw,
                });
            }
        }
        full.extend(future);
        match self.st.ledger.amend_segments(rid, &full) {
            Ok(()) => {
                self.round_log.push(RoundDecision::Amend {
                    id: a.id,
                    segments: full.clone(),
                });
                MetricsRegistry::inc(&self.metrics.amends_granted);
                // The old guarantee is gone; the overlay must not keep
                // boosting against it. The amended plan is not
                // re-registered — its rates were just renegotiated, so
                // there is no leftover claim to resell yet.
                if let Some(q) = self.qos.as_mut() {
                    q.on_cancel(a.id);
                }
                let segments = full.iter().map(|s| (s.start, s.end, s.bw)).collect();
                self.round_replies.push((
                    a.reply.clone(),
                    ServerMsg::AcceptedSegments { id: a.id, segments },
                ));
            }
            // `water_fill` verified the plan against the exact residuals
            // the swap allocates into, so this arm is defensive only.
            Err(_) => self.reject_amend(&a, RejectReason::Saturated, None),
        }
    }

    fn reject_amend(&mut self, a: &AmendPending, reason: RejectReason, retry_after: Option<f64>) {
        MetricsRegistry::inc(&self.metrics.amends_rejected);
        self.round_replies.push((
            a.reply.clone(),
            ServerMsg::Rejected {
                id: a.id,
                reason,
                retry_after,
            },
        ));
    }

    /// Decide one pending malleable admission at round time `t`.
    fn apply_flex(&mut self, p: FlexPending, t: f64) {
        self.metrics
            .decision_latency
            .record(p.submitted_at.elapsed());
        let mut spec = p.spec;
        spec.start = spec.start.max(t);
        if spec.finish - spec.start <= EPS
            || spec.volume > spec.max_rate * (spec.finish - spec.start) * (1.0 + 1e-9)
        {
            // The window shrank past feasibility while the request waited.
            self.reject_flex(&p, RejectReason::DeadlineUnreachable, None);
            return;
        }
        let Some(plan) = gridband_flex::water_fill(&self.st.ledger, &spec) else {
            let hint = gridband_flex::retry_after(
                &self.st.ledger,
                &spec,
                self.st.next_tick,
                p.hard_deadline,
            );
            self.reject_flex(&p, RejectReason::Saturated, hint);
            return;
        };
        match self.st.ledger.reserve_segments(spec.route, &plan) {
            Ok(rid) => {
                self.round_log.push(RoundDecision::AcceptSegments {
                    id: p.id,
                    ingress: spec.route.ingress.0,
                    egress: spec.route.egress.0,
                    segments: plan.clone(),
                    cancelled: p.cancelled,
                });
                if p.cancelled {
                    // Cancelled while pending: book then free, keeping
                    // reservation-id allocation in sync with replay.
                    let _ = self.st.ledger.cancel_segments(rid);
                    self.st.record_state(p.id, ReqState::Cancelled);
                    return;
                }
                MetricsRegistry::inc(&self.metrics.accepted);
                MetricsRegistry::inc(&self.metrics.accepted_malleable);
                MetricsRegistry::inc(match p.class {
                    gridband_workload::ServiceClass::Gold => &self.metrics.accepted_gold,
                    gridband_workload::ServiceClass::Silver => &self.metrics.accepted_silver,
                    gridband_workload::ServiceClass::BestEffort => {
                        &self.metrics.accepted_besteffort
                    }
                });
                // Register the stepwise guarantee with the overlay at its
                // peak rate: boosts stay bounded by `max_rate`, and the
                // per-segment guarantees the plan carries are what the
                // resale pass redistributes around.
                if let Some(q) = self.qos.as_mut() {
                    let (start, end, peak, volume) = plan_shape(&plan);
                    q.on_accept(AcceptedTransfer {
                        id: p.id,
                        ingress: spec.route.ingress.0 as usize,
                        egress: spec.route.egress.0 as usize,
                        class: p.class,
                        bw: peak,
                        start,
                        finish: end,
                        max_rate: spec.max_rate,
                        volume,
                    });
                }
                self.st.note_accept(p.id, rid);
                self.st.record_state(p.id, ReqState::Accepted);
                let segments = plan.iter().map(|s| (s.start, s.end, s.bw)).collect();
                self.round_replies.push((
                    p.reply.clone(),
                    ServerMsg::AcceptedSegments { id: p.id, segments },
                ));
            }
            // `water_fill` fed the live ledger, so the booking cannot
            // fail; keep the daemon alive anyway.
            Err(_) => self.reject_flex(&p, RejectReason::Saturated, None),
        }
    }

    fn reject_flex(&mut self, p: &FlexPending, reason: RejectReason, retry_after: Option<f64>) {
        MetricsRegistry::inc(&self.metrics.rejected);
        MetricsRegistry::inc(&self.metrics.rejected_malleable);
        self.st.record_state(p.id, ReqState::Rejected);
        self.round_log.push(RoundDecision::Reject { id: p.id });
        if p.cancelled {
            return;
        }
        self.round_replies.push((
            p.reply.clone(),
            ServerMsg::Rejected {
                id: p.id,
                reason,
                retry_after,
            },
        ));
    }

    /// Advance the GC watermark behind the round that just committed,
    /// truncating profile history older than `t - gc_horizon`. The `Gc`
    /// record lands strictly *after* the round's record, so replay
    /// (recovery and followers) compacts at exactly the same point in
    /// the decision stream as the live engine did.
    fn gc_round(&mut self, t: f64) {
        let Some(h) = self.config.gc_horizon else {
            return;
        };
        let w = t - h;
        if !w.is_finite() || w <= 0.0 {
            return;
        }
        if self.st.ledger.watermark().is_some_and(|cur| w <= cur) {
            return;
        }
        // Log before applying, mirroring every other mutation: state the
        // WAL cannot reproduce must never exist in memory.
        if !self.log_event(WalRecord::Gc { watermark: w }) {
            return;
        }
        let stats = self.st.apply_gc(w);
        MetricsRegistry::add(
            &self.metrics.gc_truncated_bps,
            stats.breakpoints_dropped as u64,
        );
        self.metrics.gc_watermark.set(w);
    }

    /// Resell the upcoming interval's leftover capacity. Runs strictly
    /// after the round's decisions committed: the overlay reads the
    /// post-round residuals and never feeds back into admission, so a
    /// run with QoS on decides byte-identically to one without.
    fn qos_round(&mut self, t: f64) {
        let Some(q) = self.qos.as_mut() else { return };
        let t1 = self.st.next_tick;
        let (rin, rout) = self.st.ledger.residuals(t, t1);
        q.round(t, t1, &rin, &rout);
        let qs = q.stats();
        let m = &self.metrics;
        m.qos_boost_rounds.store(qs.boost_rounds, Ordering::Relaxed);
        m.qos_boosted_mb
            .store(qs.boosted_bytes as u64, Ordering::Relaxed);
        m.qos_early_releases
            .store(qs.early_releases, Ordering::Relaxed);
        m.qos_finish_violations
            .store(qs.finish_violations, Ordering::Relaxed);
        m.qos_oversubscriptions
            .store(qs.oversubscriptions, Ordering::Relaxed);
    }

    /// Persist the round just decided: append its WAL record, honor the
    /// fsync policy, and install a snapshot when one is due. Returns
    /// `false` (after logging to stderr) on any store failure.
    fn commit_round(&mut self, t: f64) -> bool {
        let Some(mut store) = self.store.take() else {
            self.round_log.clear();
            return true;
        };
        let record = WalRecord::Round {
            t,
            decisions: std::mem::take(&mut self.round_log),
        };
        // One framed write + one fsync for the whole round, whatever the
        // policy: `append_batch` is itself a round barrier.
        let ok = match store.append_batch(&[&record.encode()]) {
            Ok(a) => {
                MetricsRegistry::inc(&self.metrics.wal_appends);
                MetricsRegistry::add(&self.metrics.wal_bytes, a.bytes);
                if let Some(d) = a.fsync {
                    self.metrics.fsync.record(d);
                }
                self.rounds_since_snapshot += 1;
                if self.snapshot_every > 0 && self.rounds_since_snapshot >= self.snapshot_every {
                    match store.install_snapshot(&self.st.export().encode()) {
                        Ok(_) => {
                            MetricsRegistry::inc(&self.metrics.snapshots_written);
                            self.rounds_since_snapshot = 0;
                            true
                        }
                        Err(e) => {
                            eprintln!("gridband-serve: snapshot install failed, halting: {e}");
                            false
                        }
                    }
                } else {
                    true
                }
            }
            Err(e) => {
                eprintln!("gridband-serve: WAL append failed, halting: {e}");
                false
            }
        };
        self.store = Some(store);
        ok
    }

    /// Append a non-round record (cancel / early-reject) to the WAL.
    /// Returns `false` (and marks the engine dead) on failure, in which
    /// case the caller must withhold its reply.
    fn log_event(&mut self, record: WalRecord) -> bool {
        let Some(store) = self.store.as_mut() else {
            return true;
        };
        match store.append(&record.encode()) {
            Ok(a) => {
                MetricsRegistry::inc(&self.metrics.wal_appends);
                MetricsRegistry::add(&self.metrics.wal_bytes, a.bytes);
                if let Some(d) = a.fsync {
                    self.metrics.fsync.record(d);
                }
                true
            }
            Err(e) => {
                eprintln!("gridband-serve: WAL append failed, halting: {e}");
                self.dead = true;
                false
            }
        }
    }

    /// Apply one scheduler decision. For accepts decided in a batched
    /// round, `prebooked` carries the reservation outcome from
    /// [`CapacityLedger::reserve_all`]; otherwise the reservation is made
    /// here.
    fn apply_decision(
        &mut self,
        id: u64,
        decision: Decision,
        t: f64,
        prebooked: Option<NetResult<ReservationId>>,
    ) {
        let Some(entry) = self.pending.remove(&id) else {
            // Scheduler answered an id we no longer track. If the batch
            // already booked capacity for it (e.g. a duplicate decision),
            // free it again.
            if let Some(Ok(rid)) = prebooked {
                let _ = self.st.ledger.cancel(rid);
            }
            return;
        };
        self.metrics
            .decision_latency
            .record(entry.submitted_at.elapsed());
        match decision {
            Decision::Accept { bw, start, finish } => {
                let outcome = match prebooked {
                    Some(r) => r,
                    None => self.st.ledger.reserve(entry.req.route, start, finish, bw),
                };
                match outcome {
                    Ok(rid) => {
                        self.round_log.push(RoundDecision::Accept {
                            id,
                            ingress: entry.req.route.ingress.0,
                            egress: entry.req.route.egress.0,
                            bw,
                            start,
                            finish,
                            cancelled: entry.cancelled,
                        });
                        if entry.cancelled {
                            // Cancelled while pending: free immediately.
                            let _ = self.st.ledger.cancel(rid);
                            self.st.record_state(id, ReqState::Cancelled);
                            return;
                        }
                        MetricsRegistry::inc(&self.metrics.accepted);
                        MetricsRegistry::inc(match entry.class {
                            gridband_workload::ServiceClass::Gold => &self.metrics.accepted_gold,
                            gridband_workload::ServiceClass::Silver => {
                                &self.metrics.accepted_silver
                            }
                            gridband_workload::ServiceClass::BestEffort => {
                                &self.metrics.accepted_besteffort
                            }
                        });
                        if let Some(q) = self.qos.as_mut() {
                            q.on_accept(AcceptedTransfer {
                                id,
                                ingress: entry.req.route.ingress.0 as usize,
                                egress: entry.req.route.egress.0 as usize,
                                class: entry.class,
                                bw,
                                start,
                                finish,
                                max_rate: entry.req.max_rate,
                                volume: entry.req.volume,
                            });
                        }
                        self.st.note_accept(id, rid);
                        self.st.record_state(id, ReqState::Accepted);
                        self.round_replies.push((
                            entry.reply.clone(),
                            ServerMsg::Accepted {
                                id,
                                bw,
                                start,
                                finish,
                            },
                        ));
                    }
                    Err(_) => {
                        // The scheduler's scalar view disagreed with the
                        // profile at reservation time; surface as a
                        // saturation rejection rather than crashing.
                        self.reject(id, &entry, RejectReason::Saturated, t);
                    }
                }
            }
            Decision::Reject => {
                let reason = if entry.req.required_rate_from(t).is_none() {
                    RejectReason::DeadlineUnreachable
                } else {
                    RejectReason::Saturated
                };
                self.reject(id, &entry, reason, t);
            }
            Decision::Retry { at } => {
                // WindowScheduler never emits this; map it to a rejection
                // carrying the scheduler's own retry hint.
                let entry_finish = entry.req.finish();
                self.st.record_state(id, ReqState::Rejected);
                MetricsRegistry::inc(&self.metrics.rejected);
                self.round_log.push(RoundDecision::Reject { id });
                if !entry.cancelled {
                    let retry_after = (at < entry_finish).then_some(at);
                    self.round_replies.push((
                        entry.reply.clone(),
                        ServerMsg::Rejected {
                            id,
                            reason: RejectReason::Saturated,
                            retry_after,
                        },
                    ));
                }
            }
            Decision::Defer => {
                // Still undecided: put the entry back.
                self.pending.insert(id, entry);
            }
        }
    }

    fn reject(&mut self, id: u64, entry: &PendingEntry, reason: RejectReason, t: f64) {
        MetricsRegistry::inc(&self.metrics.rejected);
        self.st.record_state(id, ReqState::Rejected);
        self.round_log.push(RoundDecision::Reject { id });
        if entry.cancelled {
            return;
        }
        let retry_after = match reason {
            RejectReason::Saturated => self.retry_hint(&entry.req, t),
            _ => None,
        };
        self.round_replies.push((
            entry.reply.clone(),
            ServerMsg::Rejected {
                id,
                reason,
                retry_after,
            },
        ));
    }

    /// Deliver a reply without ever blocking the engine. Reply channels
    /// are bounded and client-paced: a client that stops reading its
    /// socket fills its channel, and a blocking send there would stall
    /// admission for every connection. Full ⇒ drop the reply and count
    /// it; the client can recover the state via `Query`.
    fn send_reply(&self, reply: &ReplySink, msg: ServerMsg) {
        if let Err(TrySendError::Full(_)) = reply.try_send(msg) {
            MetricsRegistry::inc(&self.metrics.replies_dropped);
        }
    }

    /// Backpressure hint: the earliest time a port of this route frees
    /// capacity (the soonest-ending overlapping reservation), bounded to
    /// the next round; `None` when no retry can still meet the deadline.
    fn retry_hint(&self, req: &Request, t: f64) -> Option<f64> {
        let mut earliest: Option<f64> = None;
        for (_, r) in self.st.ledger.live_reservations() {
            if r.end > t
                && (r.route.ingress == req.route.ingress || r.route.egress == req.route.egress)
            {
                earliest = Some(earliest.map_or(r.end, |e: f64| e.min(r.end)));
            }
        }
        let hint = earliest.unwrap_or(self.st.next_tick).max(self.st.next_tick);
        // A retry decided after the deadline-feasible window is pointless.
        let latest_useful = req.finish() - req.volume / req.max_rate;
        (hint < latest_useful).then_some(hint)
    }
}

/// `(start, end, peak rate, volume)` of a non-empty segment plan.
fn plan_shape(plan: &[SegSpan]) -> (f64, f64, f64, f64) {
    let start = plan.first().map_or(0.0, |s| s.start);
    let end = plan.last().map_or(0.0, |s| s.end);
    let peak = plan.iter().fold(0.0_f64, |m, s| m.max(s.bw));
    let volume = plan.iter().map(|s| s.area()).sum();
    (start, end, peak, volume)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit(id: u64, start: f64, volume: f64, max_rate: f64, deadline: f64) -> ClientMsg {
        ClientMsg::Submit(SubmitReq {
            id,
            ingress: 0,
            egress: 0,
            volume,
            max_rate,
            start: Some(start),
            deadline: Some(deadline),
            class: Default::default(),
            malleable: None,
        })
    }

    fn engine_1x1(cap: f64, step: f64) -> Engine {
        let mut cfg = EngineConfig::new(Topology::uniform(1, 1, cap));
        cfg.step = step;
        Engine::spawn(cfg)
    }

    fn rpc(engine: &Engine, msg: ClientMsg) -> ServerMsg {
        let (tx, rx) = channel::unbounded();
        engine
            .sender()
            .send(Command::Client {
                msg,
                reply: tx.into(),
            })
            .unwrap();
        rx.recv_timeout(Duration::from_secs(5))
            .expect("engine reply")
    }

    #[test]
    fn submit_is_decided_at_the_next_round() {
        let engine = engine_1x1(100.0, 10.0);
        let (tx, rx) = channel::unbounded();
        engine
            .sender()
            .send(Command::Client {
                msg: submit(1, 0.0, 500.0, 100.0, 30.0),
                reply: tx.clone().into(),
            })
            .unwrap();
        // No decision yet: the round at t=10 has not fired.
        assert!(rx.recv_timeout(Duration::from_millis(50)).is_err());
        // A later submission past the tick drives the clock forward.
        engine
            .sender()
            .send(Command::Client {
                msg: submit(2, 12.0, 100.0, 100.0, 40.0),
                reply: tx.into(),
            })
            .unwrap();
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            ServerMsg::Accepted {
                id,
                bw,
                start,
                finish,
            } => {
                assert_eq!(id, 1);
                assert_eq!(start, 10.0);
                // Decided at t=10 with deadline 30: required 25, MAX BW
                // grants the full host rate.
                assert_eq!(bw, 100.0);
                assert_eq!(finish, 15.0);
            }
            other => panic!("expected acceptance, got {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn saturated_rejection_carries_a_retry_hint() {
        let engine = engine_1x1(100.0, 10.0);
        // Fill the port for [10, 110): 10_000 MB at 100 MB/s.
        let a = rpc_all_no_drain(&engine, vec![submit(1, 0.0, 10_000.0, 100.0, 200.0)], 12.0);
        assert!(matches!(a[0], ServerMsg::Accepted { .. }), "{:?}", a[0]);
        // Competing request with a roomy deadline: rejected now, retry
        // possible once the big transfer ends.
        let b = rpc_all_no_drain(&engine, vec![submit(2, 15.0, 100.0, 100.0, 500.0)], 22.0);
        match &b[0] {
            ServerMsg::Rejected {
                reason,
                retry_after,
                ..
            } => {
                assert_eq!(*reason, RejectReason::Saturated);
                let hint = retry_after.expect("retryable rejection must carry a hint");
                assert!(hint >= 110.0, "hint {hint} must not precede the free-up");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        engine.shutdown();
    }

    /// Submit all messages, then drain, returning one decision per submit
    /// in submission order.
    fn rpc_all(engine: &Engine, msgs: Vec<ClientMsg>) -> Vec<ServerMsg> {
        let (tx, rx) = channel::unbounded();
        let n = msgs.len();
        for msg in msgs {
            engine
                .sender()
                .send(Command::Client {
                    msg,
                    reply: tx.clone().into(),
                })
                .unwrap();
        }
        let (dtx, drx) = channel::unbounded();
        engine
            .sender()
            .send(Command::Client {
                msg: ClientMsg::Drain,
                reply: dtx.into(),
            })
            .unwrap();
        drx.recv_timeout(Duration::from_secs(5))
            .expect("drain reply");
        // Note: this marks the engine as draining; only use at end of test
        // or with engines whose rounds already fired.
        (0..n)
            .map(|_| rx.recv_timeout(Duration::from_secs(5)).expect("decision"))
            .collect()
    }

    #[test]
    fn invalid_submissions_bounce_without_panicking() {
        let engine = engine_1x1(100.0, 10.0);
        let bad = vec![
            // Negative volume.
            ClientMsg::Submit(SubmitReq {
                id: 1,
                ingress: 0,
                egress: 0,
                volume: -5.0,
                max_rate: 10.0,
                start: Some(0.0),
                deadline: Some(10.0),
                class: Default::default(),
                malleable: None,
            }),
            // NaN rate.
            ClientMsg::Submit(SubmitReq {
                id: 2,
                ingress: 0,
                egress: 0,
                volume: 10.0,
                max_rate: f64::NAN,
                start: Some(0.0),
                deadline: Some(10.0),
                class: Default::default(),
                malleable: None,
            }),
            // Route outside the 1×1 topology.
            ClientMsg::Submit(SubmitReq {
                id: 3,
                ingress: 7,
                egress: 0,
                volume: 10.0,
                max_rate: 10.0,
                start: Some(0.0),
                deadline: Some(10.0),
                class: Default::default(),
                malleable: None,
            }),
            // Deadline before start.
            ClientMsg::Submit(SubmitReq {
                id: 4,
                ingress: 0,
                egress: 0,
                volume: 10.0,
                max_rate: 10.0,
                start: Some(20.0),
                deadline: Some(10.0),
                class: Default::default(),
                malleable: None,
            }),
            // Infeasible even at MaxRate. (The clock is at 20 by now: the
            // id-4 submission above advanced it to its start time.)
            ClientMsg::Submit(SubmitReq {
                id: 5,
                ingress: 0,
                egress: 0,
                volume: 1000.0,
                max_rate: 1.0,
                start: Some(20.0),
                deadline: Some(30.0),
                class: Default::default(),
                malleable: None,
            }),
        ];
        let want = [
            RejectReason::Invalid,
            RejectReason::Invalid,
            RejectReason::UnknownRoute,
            RejectReason::Invalid,
            RejectReason::DeadlineUnreachable,
        ];
        for (msg, want) in bad.into_iter().zip(want) {
            match rpc(&engine, msg) {
                ServerMsg::Rejected {
                    reason,
                    retry_after,
                    ..
                } => {
                    assert_eq!(reason, want);
                    assert_eq!(retry_after, None);
                }
                other => panic!("expected early rejection, got {other:?}"),
            }
        }
        engine.shutdown();
    }

    #[test]
    fn duplicate_ids_are_invalid() {
        let engine = engine_1x1(100.0, 10.0);
        let msgs = vec![
            submit(1, 0.0, 100.0, 100.0, 50.0),
            submit(1, 1.0, 100.0, 100.0, 50.0),
        ];
        let (tx, rx) = channel::unbounded();
        for msg in msgs {
            engine
                .sender()
                .send(Command::Client {
                    msg,
                    reply: tx.clone().into(),
                })
                .unwrap();
        }
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            ServerMsg::Rejected {
                id: 1,
                reason: RejectReason::Invalid,
                ..
            } => {}
            other => panic!("expected duplicate-id rejection, got {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn cancel_frees_capacity_for_later_requests() {
        let engine = engine_1x1(100.0, 10.0);
        let a = rpc_all_no_drain(&engine, vec![submit(1, 0.0, 20_000.0, 100.0, 400.0)], 12.0);
        assert!(matches!(a[0], ServerMsg::Accepted { .. }));
        match rpc(&engine, ClientMsg::Cancel { id: 1 }) {
            ServerMsg::CancelResult { freed, .. } => assert!(freed),
            other => panic!("expected cancel result, got {other:?}"),
        }
        // The port is free again: an otherwise-blocked transfer fits.
        let b = rpc_all_no_drain(&engine, vec![submit(2, 20.0, 9_000.0, 100.0, 400.0)], 32.0);
        assert!(matches!(b[0], ServerMsg::Accepted { .. }), "{:?}", b[0]);
        match rpc(&engine, ClientMsg::Query { id: 1 }) {
            ServerMsg::Status { state, .. } => assert_eq!(state, ReqState::Cancelled),
            other => panic!("expected status, got {other:?}"),
        }
        engine.shutdown();
    }

    /// Submit, then advance the virtual clock past the deciding round by
    /// submitting (and discarding) a probe at `probe_time`.
    fn rpc_all_no_drain(engine: &Engine, msgs: Vec<ClientMsg>, probe_time: f64) -> Vec<ServerMsg> {
        let (tx, rx) = channel::unbounded();
        let n = msgs.len();
        for msg in msgs {
            engine
                .sender()
                .send(Command::Client {
                    msg,
                    reply: tx.clone().into(),
                })
                .unwrap();
        }
        // Probe with an unroutable submission: advances the clock, never
        // reaches the scheduler.
        let probe = ClientMsg::Submit(SubmitReq {
            id: u64::MAX,
            ingress: u32::MAX,
            egress: 0,
            volume: 1.0,
            max_rate: 1.0,
            start: Some(probe_time),
            deadline: None,
            class: Default::default(),
            malleable: None,
        });
        let (ptx, prx) = channel::unbounded();
        engine
            .sender()
            .send(Command::Client {
                msg: probe,
                reply: ptx.into(),
            })
            .unwrap();
        prx.recv_timeout(Duration::from_secs(5))
            .expect("probe reply");
        (0..n)
            .map(|_| rx.recv_timeout(Duration::from_secs(5)).expect("decision"))
            .collect()
    }

    #[test]
    fn stats_reflect_activity() {
        let engine = engine_1x1(100.0, 10.0);
        let d = rpc_all(&engine, vec![submit(1, 0.0, 100.0, 100.0, 50.0)]);
        assert!(matches!(d[0], ServerMsg::Accepted { .. }));
        match rpc(&engine, ClientMsg::Stats) {
            ServerMsg::Stats(s) => {
                assert_eq!(s.submitted, 1);
                assert_eq!(s.accepted, 1);
                assert_eq!(s.rejected, 0);
                assert_eq!(s.decision_latency.count, 1);
                assert!(s.ticks >= 1);
                assert_eq!(s.accept_rate(), 1.0);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn draining_engine_refuses_new_work() {
        let engine = engine_1x1(100.0, 10.0);
        match rpc(&engine, ClientMsg::Drain) {
            ServerMsg::Draining { pending } => assert_eq!(pending, 0),
            other => panic!("expected draining, got {other:?}"),
        }
        match rpc(&engine, submit(9, 0.0, 100.0, 100.0, 50.0)) {
            ServerMsg::Rejected {
                reason: RejectReason::Drained,
                ..
            } => {}
            other => panic!("expected drained rejection, got {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn hostile_far_future_start_is_rejected_not_spun_on() {
        let engine = engine_1x1(100.0, 10.0);
        // `1e300` parses as a perfectly valid f64; without the horizon
        // check the catch-up loop would run ~1e299 rounds and freeze the
        // engine thread (and with it, every client) forever.
        match rpc(&engine, submit(1, 1e300, 100.0, 100.0, 1e300 + 50.0)) {
            ServerMsg::Rejected {
                reason: RejectReason::Invalid,
                ..
            } => {}
            other => panic!("expected invalid rejection, got {other:?}"),
        }
        // Infinity survives JSON-free construction paths too.
        match rpc(&engine, submit(2, f64::INFINITY, 100.0, 100.0, 50.0)) {
            ServerMsg::Rejected {
                reason: RejectReason::Invalid,
                ..
            } => {}
            other => panic!("expected invalid rejection, got {other:?}"),
        }
        // The engine is still alive and serving.
        match rpc(&engine, ClientMsg::Stats) {
            ServerMsg::Stats(s) => assert_eq!(s.refused_early, 2),
            other => panic!("expected stats, got {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn within_horizon_catch_up_fast_forwards_over_empty_rounds() {
        let engine = engine_1x1(100.0, 10.0);
        // ~100k rounds ahead but inside the horizon: the empty-round
        // fast-forward makes this O(1) instead of round-by-round.
        let d = rpc_all(&engine, vec![submit(1, 999_900.0, 100.0, 100.0, 999_990.0)]);
        assert!(matches!(d[0], ServerMsg::Accepted { .. }), "{:?}", d[0]);
        engine.shutdown();
    }

    #[test]
    fn realtime_future_start_does_not_move_the_clock() {
        let mut cfg = EngineConfig::new(Topology::uniform(1, 1, 100.0));
        cfg.step = 5.0;
        cfg.mode = TimeMode::RealTime {
            tick: Duration::from_millis(10),
        };
        let engine = Engine::spawn(cfg);
        let (tx, _rx) = channel::unbounded();
        engine
            .sender()
            .send(Command::Client {
                msg: submit(1, 400.0, 100.0, 100.0, 800.0),
                reply: tx.into(),
            })
            .unwrap();
        // Let several ticker rounds fire. Before the fix the submission
        // pushed `now` to 400 past `next_tick`, so the first round hit
        // the round-time-going-backwards debug_assert and killed the
        // engine thread.
        std::thread::sleep(Duration::from_millis(100));
        match rpc(&engine, ClientMsg::Stats) {
            ServerMsg::Stats(s) => {
                assert!(s.ticks >= 1, "ticker must have fired");
                assert!(
                    s.virtual_time < 400.0,
                    "submission timestamps must not drive the real-time clock, now={}",
                    s.virtual_time
                );
            }
            other => panic!("expected stats, got {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn duplicate_cancels_of_a_pending_request_count_once() {
        let engine = engine_1x1(100.0, 10.0);
        let (tx, _rx) = channel::unbounded();
        engine
            .sender()
            .send(Command::Client {
                msg: submit(1, 0.0, 100.0, 100.0, 50.0),
                reply: tx.into(),
            })
            .unwrap();
        match rpc(&engine, ClientMsg::Cancel { id: 1 }) {
            ServerMsg::CancelResult { freed, .. } => assert!(freed, "first cancel takes effect"),
            other => panic!("expected cancel result, got {other:?}"),
        }
        match rpc(&engine, ClientMsg::Cancel { id: 1 }) {
            ServerMsg::CancelResult { freed, .. } => assert!(!freed, "repeat cancel is a no-op"),
            other => panic!("expected cancel result, got {other:?}"),
        }
        match rpc(&engine, ClientMsg::Stats) {
            ServerMsg::Stats(s) => assert_eq!(s.cancelled, 1),
            other => panic!("expected stats, got {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn full_reply_channels_drop_instead_of_blocking_the_engine() {
        let engine = engine_1x1(100.0, 10.0);
        // A zero-capacity channel nobody reads: a blocking send to it
        // would wedge the engine thread for every connection.
        let (tx, rx) = channel::bounded::<ServerMsg>(0);
        for id in 0..3 {
            engine
                .sender()
                .send(Command::Client {
                    msg: ClientMsg::Query { id },
                    reply: tx.clone().into(),
                })
                .unwrap();
        }
        // The engine stays responsive and accounts for the drops.
        match rpc(&engine, ClientMsg::Stats) {
            ServerMsg::Stats(s) => assert_eq!(s.replies_dropped, 3),
            other => panic!("expected stats, got {other:?}"),
        }
        drop(rx);
        engine.shutdown();
    }

    #[test]
    fn hold_open_attach_commit_pins_capacity_until_the_window_ends() {
        let mut cfg = EngineConfig::new(Topology::uniform(2, 2, 100.0));
        cfg.step = 10.0;
        let engine = Engine::spawn(cfg);
        // Ingress half: earliest max-rate window on ingress 0.
        let open = rpc(
            &engine,
            ClientMsg::HoldOpen(SubmitReq {
                id: 1,
                ingress: 0,
                egress: 1,
                volume: 1000.0,
                max_rate: 100.0,
                start: Some(0.0),
                deadline: Some(100.0),
                class: Default::default(),
                malleable: None,
            }),
        );
        let (bw, start, finish) = match open {
            ServerMsg::HoldOpened {
                txn: 1,
                bw,
                start,
                finish,
                ..
            } => (bw, start, finish),
            other => panic!("expected hold, got {other:?}"),
        };
        assert_eq!((bw, start, finish), (100.0, 0.0, 10.0));
        // Egress half. In a cluster the two halves live on different
        // shard engines; here one engine plays both roles, so the
        // attach needs its own transaction id (the hold table is keyed
        // by txn, one hold per txn per engine).
        match rpc(
            &engine,
            ClientMsg::HoldAttach {
                txn: 2,
                egress: 1,
                bw,
                start,
                finish,
                at: 0.0,
            },
        ) {
            ServerMsg::HoldAck { txn: 2, ok } => assert!(ok),
            other => panic!("expected ack, got {other:?}"),
        }
        for txn in [1, 2] {
            match rpc(&engine, ClientMsg::HoldCommit { txn, at: 0.0 }) {
                ServerMsg::HoldAck { ok, .. } => assert!(ok),
                other => panic!("expected ack, got {other:?}"),
            }
        }
        // The window is pinned: a full-port transfer overlapping it on
        // the same ingress is rejected, one after it fits.
        let d = rpc_all_no_drain(
            &engine,
            vec![ClientMsg::Submit(SubmitReq {
                id: 3,
                ingress: 0,
                egress: 0,
                volume: 1000.0,
                max_rate: 100.0,
                start: Some(0.0),
                deadline: Some(10.0),
                class: Default::default(),
                malleable: None,
            })],
            12.0,
        );
        assert!(matches!(d[0], ServerMsg::Rejected { .. }), "{:?}", d[0]);
        match rpc(&engine, ClientMsg::Stats) {
            ServerMsg::Stats(s) => {
                assert_eq!(s.holds_placed, 2);
                assert_eq!(s.holds_committed, 2);
                assert_eq!(s.holds_expired, 0);
                assert_eq!(s.role, "solo");
            }
            other => panic!("expected stats, got {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn uncommitted_holds_expire_and_free_their_capacity() {
        let mut cfg = EngineConfig::new(Topology::uniform(1, 1, 100.0));
        cfg.step = 10.0;
        cfg.hold_timeout = 15.0;
        let engine = Engine::spawn(cfg);
        match rpc(
            &engine,
            ClientMsg::HoldOpen(SubmitReq {
                id: 1,
                ingress: 0,
                egress: 0,
                volume: 4000.0,
                max_rate: 100.0,
                start: Some(0.0),
                deadline: Some(200.0),
                class: Default::default(),
                malleable: None,
            }),
        ) {
            ServerMsg::HoldOpened { txn: 1, .. } => {}
            other => panic!("expected hold, got {other:?}"),
        }
        // No commit arrives. The round at t=20 is the first past
        // expires = 15; its sweep releases the hold, so a transfer
        // needing the whole port fits afterwards.
        let d = rpc_all_no_drain(
            &engine,
            vec![ClientMsg::Submit(SubmitReq {
                id: 2,
                ingress: 0,
                egress: 0,
                volume: 3000.0,
                max_rate: 100.0,
                start: Some(20.0),
                deadline: Some(80.0),
                class: Default::default(),
                malleable: None,
            })],
            32.0,
        );
        assert!(matches!(d[0], ServerMsg::Accepted { .. }), "{:?}", d[0]);
        // A release after the sweep acks `false`: the hold is gone.
        match rpc(&engine, ClientMsg::HoldRelease { txn: 1, at: 30.0 }) {
            ServerMsg::HoldAck { txn: 1, ok } => assert!(!ok),
            other => panic!("expected ack, got {other:?}"),
        }
        match rpc(&engine, ClientMsg::Stats) {
            ServerMsg::Stats(s) => {
                assert_eq!(s.holds_placed, 1);
                assert_eq!(s.holds_expired, 1);
                assert_eq!(s.holds_committed, 0);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn qos_overlay_never_changes_decisions_and_reports_boosts() {
        // Same workload against a plain engine and a QoS-enabled one
        // (MinRate policy, so guarantees leave headroom): the decision
        // streams must be identical — the overlay is invisible to
        // admission — while only the boosted engine reports boosts.
        let with_class = |id: u64,
                          start: f64,
                          volume: f64,
                          deadline: f64,
                          class: gridband_workload::ServiceClass| {
            ClientMsg::Submit(SubmitReq {
                id,
                ingress: 0,
                egress: 0,
                volume,
                max_rate: 80.0,
                start: Some(start),
                deadline: Some(deadline),
                class,
                malleable: None,
            })
        };
        let workload = || {
            vec![
                with_class(1, 0.0, 400.0, 60.0, gridband_workload::ServiceClass::Gold),
                with_class(
                    2,
                    0.0,
                    300.0,
                    80.0,
                    gridband_workload::ServiceClass::BestEffort,
                ),
                with_class(3, 5.0, 200.0, 90.0, gridband_workload::ServiceClass::Silver),
            ]
        };
        let spawn = |qos: bool| {
            let mut cfg = EngineConfig::new(Topology::uniform(1, 1, 100.0));
            cfg.step = 10.0;
            cfg.policy = BandwidthPolicy::MinRate;
            if qos {
                cfg.qos = Some(gridband_qos::QosConfig::default());
            }
            Engine::spawn(cfg)
        };
        let plain = spawn(false);
        let boosted = spawn(true);
        let a = rpc_all_no_drain(&plain, workload(), 95.0);
        let b = rpc_all_no_drain(&boosted, workload(), 95.0);
        assert_eq!(a, b, "QoS must not change any admission decision");
        assert!(a.iter().all(|d| matches!(d, ServerMsg::Accepted { .. })));

        match rpc(&plain, ClientMsg::Stats) {
            ServerMsg::Stats(s) => {
                assert_eq!(s.qos_boost_rounds, 0);
                assert_eq!(s.qos_boosted_mb, 0);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        match rpc(&boosted, ClientMsg::Stats) {
            ServerMsg::Stats(s) => {
                assert!(s.qos_boost_rounds >= 1, "residual must have been resold");
                assert!(s.qos_boosted_mb > 0, "boosts must have moved bytes");
                assert!(
                    s.qos_early_releases >= 1,
                    "a boosted transfer finishes early"
                );
                assert_eq!(s.qos_finish_violations, 0);
                assert_eq!(s.qos_oversubscriptions, 0);
                assert_eq!(s.accepted_gold, 1);
                assert_eq!(s.accepted_silver, 1);
                assert_eq!(s.accepted_besteffort, 1);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        plain.shutdown();
        boosted.shutdown();
    }

    #[test]
    fn cancel_withdraws_the_transfer_from_the_overlay() {
        // Cancel an accepted transfer on a QoS engine, then let more
        // rounds fire: the verifier must stay clean (the overlay
        // dropped the dead transfer rather than boosting a ghost).
        let mut cfg = EngineConfig::new(Topology::uniform(1, 1, 100.0));
        cfg.step = 10.0;
        cfg.policy = BandwidthPolicy::MinRate;
        cfg.qos = Some(gridband_qos::QosConfig::default());
        let engine = Engine::spawn(cfg);
        let d = rpc_all_no_drain(
            &engine,
            vec![ClientMsg::Submit(SubmitReq {
                id: 1,
                ingress: 0,
                egress: 0,
                volume: 500.0,
                max_rate: 100.0,
                start: Some(0.0),
                deadline: Some(100.0),
                class: Default::default(),
                malleable: None,
            })],
            12.0,
        );
        assert!(matches!(d[0], ServerMsg::Accepted { .. }), "{:?}", d[0]);
        match rpc(&engine, ClientMsg::Cancel { id: 1 }) {
            ServerMsg::CancelResult { freed, .. } => assert!(freed),
            other => panic!("expected cancel result, got {other:?}"),
        }
        let probe = rpc_all_no_drain(&engine, vec![], 55.0);
        assert!(probe.is_empty());
        match rpc(&engine, ClientMsg::Stats) {
            ServerMsg::Stats(s) => {
                assert_eq!(s.qos_finish_violations, 0);
                assert_eq!(s.qos_oversubscriptions, 0);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn realtime_mode_fires_rounds_from_wall_clock() {
        let mut cfg = EngineConfig::new(Topology::uniform(1, 1, 100.0));
        cfg.step = 5.0;
        cfg.mode = TimeMode::RealTime {
            tick: Duration::from_millis(20),
        };
        let engine = Engine::spawn(cfg);
        let (tx, rx) = channel::unbounded();
        engine
            .sender()
            .send(Command::Client {
                msg: ClientMsg::Submit(SubmitReq {
                    id: 1,
                    ingress: 0,
                    egress: 0,
                    volume: 100.0,
                    max_rate: 100.0,
                    start: None,
                    // Must outlive the first wall-clock round at t = step;
                    // the default-slack window [0, 3] would already be past.
                    deadline: Some(60.0),
                    class: Default::default(),
                    malleable: None,
                }),
                reply: tx.into(),
            })
            .unwrap();
        // The ticker (20 ms wall) must decide it without any further
        // submissions driving the clock.
        match rx
            .recv_timeout(Duration::from_secs(5))
            .expect("ticker-driven decision")
        {
            ServerMsg::Accepted { id: 1, .. } => {}
            other => panic!("expected acceptance, got {other:?}"),
        }
        engine.shutdown();
    }

    // ---- malleable reservations and the Amend op ----

    fn engine_1x1_flex(cap: f64, step: f64) -> Engine {
        let mut cfg = EngineConfig::new(Topology::uniform(1, 1, cap));
        cfg.step = step;
        cfg.malleable = true;
        Engine::spawn(cfg)
    }

    fn msubmit(
        id: u64,
        start: f64,
        volume: f64,
        max_rate: f64,
        deadline: Option<f64>,
    ) -> ClientMsg {
        ClientMsg::Submit(SubmitReq {
            id,
            ingress: 0,
            egress: 0,
            volume,
            max_rate,
            start: Some(start),
            deadline,
            class: Default::default(),
            malleable: Some(true),
        })
    }

    #[test]
    fn malleable_submit_without_the_flag_is_invalid() {
        let engine = engine_1x1(100.0, 10.0);
        // Early reject: no round needed, the reply is immediate.
        match rpc(&engine, msubmit(1, 0.0, 100.0, 50.0, Some(30.0))) {
            ServerMsg::Rejected {
                id: 1,
                reason: RejectReason::Invalid,
                ..
            } => {}
            other => panic!("expected Invalid rejection, got {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn lone_malleable_request_runs_flat_at_max_rate() {
        let engine = engine_1x1_flex(100.0, 10.0);
        let replies = rpc_all(&engine, vec![msubmit(1, 0.0, 500.0, 100.0, Some(30.0))]);
        match &replies[0] {
            ServerMsg::AcceptedSegments { id: 1, segments } => {
                // Decided at the t=10 round: one flat segment at MaxRate.
                assert_eq!(segments.len(), 1, "{segments:?}");
                let (s, e, bw) = segments[0];
                assert_eq!(bw, 100.0);
                assert_eq!(s, 10.0);
                assert_eq!(e, 15.0);
            }
            other => panic!("expected a segmented grant, got {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn malleable_rate_varies_around_a_rigid_blocker() {
        let engine = engine_1x1_flex(100.0, 10.0);
        // Rigid blocker takes 80 MB/s on [10, 20); the malleable request
        // (300 MB, MaxRate 100) dribbles at the residual 20 during it and
        // opens up to 100 after: 20×10 + 100×1 = 300.
        let replies = rpc_all(
            &engine,
            vec![
                submit(1, 0.0, 800.0, 80.0, 20.0),
                msubmit(2, 0.0, 300.0, 100.0, Some(40.0)),
            ],
        );
        assert!(
            matches!(replies[0], ServerMsg::Accepted { .. }),
            "{:?}",
            replies[0]
        );
        match &replies[1] {
            ServerMsg::AcceptedSegments { id: 2, segments } => {
                assert_eq!(segments.len(), 2, "{segments:?}");
                assert_eq!(segments[0], (10.0, 20.0, 20.0));
                assert_eq!(segments[1], (20.0, 21.0, 100.0));
            }
            other => panic!("expected a segmented grant, got {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn amend_renegotiates_in_place() {
        let engine = engine_1x1_flex(100.0, 10.0);
        // 2000 MB at MaxRate 100 fills [10, 30) exactly.
        let a = rpc_all_no_drain(
            &engine,
            vec![msubmit(1, 0.0, 2_000.0, 100.0, Some(30.0))],
            12.0,
        );
        assert!(
            matches!(&a[0], ServerMsg::AcceptedSegments { id: 1, .. }),
            "{:?}",
            a[0]
        );
        // Renegotiate at the t=20 round: 600 MB still to go, rate capped
        // at 50. The delivered half (10..20 @100) is kept as history;
        // the remainder is re-water-filled from t=20: 600/50 = 12 s.
        let b = rpc_all_no_drain(
            &engine,
            vec![ClientMsg::Amend {
                id: 1,
                volume: 600.0,
                max_rate: 50.0,
                deadline: Some(40.0),
            }],
            22.0,
        );
        match &b[0] {
            ServerMsg::AcceptedSegments { id: 1, segments } => {
                assert_eq!(
                    segments,
                    &vec![(10.0, 20.0, 100.0), (20.0, 32.0, 50.0)],
                    "kept history + renegotiated remainder"
                );
            }
            other => panic!("expected the amended plan, got {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn rejected_amend_leaves_the_original_untouched() {
        let engine = engine_1x1_flex(100.0, 10.0);
        // 2000 MB at 50 MB/s: the malleable plan runs (10, 50) @50.
        let a = rpc_all_no_drain(
            &engine,
            vec![msubmit(1, 0.0, 2_000.0, 50.0, Some(60.0))],
            12.0,
        );
        assert!(
            matches!(&a[0], ServerMsg::AcceptedSegments { id: 1, .. }),
            "{:?}",
            a[0]
        );
        // A rigid blocker then takes the other 50 MB/s on [20, 90).
        let b = rpc_all_no_drain(&engine, vec![submit(2, 15.0, 3_500.0, 50.0, 200.0)], 22.0);
        assert!(matches!(b[0], ServerMsg::Accepted { .. }), "{:?}", b[0]);
        let before = match rpc(&engine, ClientMsg::Query { id: 1 }) {
            ServerMsg::Status { alloc, state, .. } => {
                assert_eq!(state, ReqState::Accepted);
                alloc.expect("live reservation has an allocation")
            }
            other => panic!("expected status, got {other:?}"),
        };
        // Amend at t=30: even with the old plan's future credited back,
        // the residual of [30, 60) carries only 1500 MB — the 2400 asked
        // for cannot fit, so the amend must bounce atomically.
        let c = rpc_all_no_drain(
            &engine,
            vec![ClientMsg::Amend {
                id: 1,
                volume: 2_400.0,
                max_rate: 100.0,
                deadline: Some(60.0),
            }],
            32.0,
        );
        match &c[0] {
            ServerMsg::Rejected {
                id: 1,
                reason: RejectReason::Saturated,
                ..
            } => {}
            other => panic!("expected a saturated rejection, got {other:?}"),
        }
        match rpc(&engine, ClientMsg::Query { id: 1 }) {
            ServerMsg::Status { alloc, state, .. } => {
                assert_eq!(state, ReqState::Accepted);
                assert_eq!(alloc, Some(before), "rejected amend altered the plan");
            }
            other => panic!("expected status, got {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn amend_of_unknown_or_rigid_ids_is_invalid() {
        let engine = engine_1x1_flex(100.0, 10.0);
        let a = rpc_all_no_drain(&engine, vec![submit(1, 0.0, 100.0, 50.0, 60.0)], 12.0);
        assert!(matches!(a[0], ServerMsg::Accepted { .. }), "{:?}", a[0]);
        for id in [1u64, 99] {
            // Rigid reservations renegotiate via Cancel + resubmit, and
            // unknown ids have nothing to amend: both bounce immediately.
            match rpc(
                &engine,
                ClientMsg::Amend {
                    id,
                    volume: 50.0,
                    max_rate: 50.0,
                    deadline: None,
                },
            ) {
                ServerMsg::Rejected {
                    reason: RejectReason::Invalid,
                    ..
                } => {}
                other => panic!("expected Invalid for {id}, got {other:?}"),
            }
        }
        engine.shutdown();
    }

    #[test]
    fn malleable_rejection_hints_at_residual_feasibility() {
        let engine = engine_1x1_flex(100.0, 10.0);
        // Saturate the port on [10, 110).
        let a = rpc_all_no_drain(&engine, vec![submit(1, 0.0, 10_000.0, 100.0, 200.0)], 12.0);
        assert!(matches!(a[0], ServerMsg::Accepted { .. }), "{:?}", a[0]);
        // Soft deadline (default slack gives a [15, 45] window): it may
        // slide, so the hint points at the earliest start whose residual
        // volume carries the request — not before the blocker frees the
        // port.
        let b = rpc_all_no_drain(&engine, vec![msubmit(2, 15.0, 1_000.0, 100.0, None)], 22.0);
        match &b[0] {
            ServerMsg::Rejected {
                id: 2,
                reason: RejectReason::Saturated,
                retry_after,
            } => {
                let hint = retry_after.expect("sliding-window rejection carries a hint");
                assert!(hint >= 110.0, "hint {hint} precedes the free-up at 110");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // Hard deadline inside the blocker: the deliverable bound of
        // [t, 60] only shrinks as t grows, so no retry can ever help and
        // the hint must be absent.
        let c = rpc_all_no_drain(
            &engine,
            vec![msubmit(3, 15.0, 1_000.0, 100.0, Some(60.0))],
            32.0,
        );
        match &c[0] {
            ServerMsg::Rejected {
                id: 3,
                retry_after: None,
                ..
            } => {}
            other => panic!("expected a hint-free rejection, got {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn cancelling_a_pending_malleable_submission_suppresses_its_decision() {
        let engine = engine_1x1_flex(100.0, 10.0);
        let (tx, rx) = channel::unbounded();
        engine
            .sender()
            .send(Command::Client {
                msg: msubmit(1, 0.0, 100.0, 50.0, Some(30.0)),
                reply: tx.into(),
            })
            .unwrap();
        match rpc(&engine, ClientMsg::Cancel { id: 1 }) {
            ServerMsg::CancelResult { id: 1, freed: true } => {}
            other => panic!("expected the tombstone to take, got {other:?}"),
        }
        // Fire the deciding round; the suppressed decision must not leak.
        let _ = rpc_all_no_drain(&engine, vec![], 12.0);
        assert!(
            rx.recv_timeout(Duration::from_millis(100)).is_err(),
            "cancelled submission still got a decision"
        );
        match rpc(&engine, ClientMsg::Query { id: 1 }) {
            ServerMsg::Status {
                state: ReqState::Cancelled,
                ..
            } => {}
            other => panic!("expected cancelled status, got {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn rigid_workloads_decide_identically_with_the_flag_on() {
        use gridband_workload::{Dist, WorkloadBuilder};
        let topo = Topology::uniform(2, 2, 120.0);
        let trace = WorkloadBuilder::new(topo.clone())
            .mean_interarrival(0.8)
            .slack(Dist::Uniform { lo: 2.0, hi: 4.0 })
            .horizon(120.0)
            .seed(11)
            .build();
        let run = |malleable: bool| -> Vec<ServerMsg> {
            let mut cfg = EngineConfig::new(topo.clone());
            cfg.step = 10.0;
            cfg.malleable = malleable;
            let engine = Engine::spawn(cfg);
            let msgs = trace
                .iter()
                .map(|r| {
                    ClientMsg::Submit(SubmitReq {
                        id: r.id.0,
                        ingress: r.route.ingress.0,
                        egress: r.route.egress.0,
                        volume: r.volume,
                        max_rate: r.max_rate,
                        start: Some(r.start()),
                        deadline: Some(r.finish()),
                        class: Default::default(),
                        malleable: None,
                    })
                })
                .collect();
            let replies = rpc_all(&engine, msgs);
            engine.shutdown();
            replies
        };
        let off = run(false);
        let on = run(true);
        assert!(
            off.iter().any(|m| matches!(m, ServerMsg::Accepted { .. })),
            "vacuous differential: nothing accepted"
        );
        assert_eq!(off, on, "the malleable path leaked into rigid admission");
    }
}
