//! Versioned JSON-lines wire protocol of the reservation daemon.
//!
//! Every message is one JSON document on one line, newline-terminated.
//! Client → server messages are wrapped in a [`WireRequest`] envelope that
//! carries the protocol version; server → client messages are bare
//! [`ServerMsg`] values. Unknown versions and malformed lines produce a
//! [`ServerMsg::Error`] reply instead of dropping the connection, so a
//! client can tell a protocol mistake from a network failure.

use serde::{Deserialize, Serialize};

pub use gridband_workload::ServiceClass;

use crate::metrics::StatsSnapshot;

/// Protocol version spoken by this build. Bump on any wire-incompatible
/// change to [`ClientMsg`] or [`ServerMsg`].
///
/// v2: the `Stats` reply gained required GC fields (`gc_truncated_bps`,
/// `breakpoints_live`, `gc_watermark`), which a v1 client cannot parse —
/// the handshake now refuses the pairing instead of failing mid-reply.
///
/// v3: malleable (variable-rate) reservations — `Submit` gained the
/// `malleable` flag, the `Amend` op renegotiates a live malleable
/// transfer, grants may arrive as `AcceptedSegments`, and the `Stats`
/// reply gained required malleable counters. A v2 client could neither
/// parse segmented grants nor the extended stats, so the pairing is
/// refused at the handshake.
pub const PROTOCOL_VERSION: u32 = 3;

/// Client → server envelope: version plus payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireRequest {
    /// Protocol version the client speaks; must equal [`PROTOCOL_VERSION`].
    pub v: u32,
    /// The request itself.
    pub body: ClientMsg,
}

impl WireRequest {
    /// Wrap a message in the current-version envelope.
    pub fn new(body: ClientMsg) -> Self {
        WireRequest {
            v: PROTOCOL_VERSION,
            body,
        }
    }
}

/// A transfer submission: the request model of §2.1 as wire data.
///
/// `start`/`deadline` are in the daemon's virtual clock (seconds). A
/// missing `start` means "now"; a missing `deadline` means `start +
/// slack × volume / max_rate` with the server's default slack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitReq {
    /// Client-chosen request id, unique per daemon lifetime.
    pub id: u64,
    /// Ingress port index of the route.
    pub ingress: u32,
    /// Egress port index of the route.
    pub egress: u32,
    /// Transfer volume in MB.
    pub volume: f64,
    /// Host-side rate cap `MaxRate` in MB/s.
    pub max_rate: f64,
    /// Requested start `t_s` (virtual seconds); `None` = now.
    pub start: Option<f64>,
    /// Latest finish `t_f` (virtual seconds); `None` = server default.
    pub deadline: Option<f64>,
    /// Service class for the QoS redistribution overlay. Decoders
    /// default an absent field to [`ServiceClass::Silver`], so
    /// pre-class clients keep working; admission itself is class-blind.
    pub class: ServiceClass,
    /// `Some(true)` requests a *malleable* reservation: the rate may
    /// vary inside the window (never above `max_rate`) as long as the
    /// volume is delivered, and the grant arrives as
    /// [`ServerMsg::AcceptedSegments`]. Absent or `Some(false)` ⇒ rigid
    /// constant-rate admission, so pre-malleable clients keep working.
    pub malleable: Option<bool>,
}

impl SubmitReq {
    /// Whether this submission asked for a malleable reservation.
    pub fn is_malleable(&self) -> bool {
        self.malleable == Some(true)
    }
}

/// Client → server request payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientMsg {
    /// Submit a transfer for batched admission.
    Submit(SubmitReq),
    /// Open the ingress half of a §5.4 two-phase cross-shard admission:
    /// compute the earliest candidate window on the local ingress port
    /// and pin it with a capacity hold. The `id` is the cluster-wide
    /// transaction id. Answered immediately (not round-batched) with
    /// `HoldOpened` or `HoldDenied`.
    HoldOpen(SubmitReq),
    /// Pin an already-computed window on the local egress port — the
    /// remote half of a transaction opened on another shard. Answered
    /// with `HoldAck { ok: true }` or `HoldDenied`.
    HoldAttach {
        /// Cluster-wide transaction id.
        txn: u64,
        /// Egress port index the hold charges.
        egress: u32,
        /// Held constant bandwidth (MB/s).
        bw: f64,
        /// Start of the held window (virtual seconds).
        start: f64,
        /// End of the held window (virtual seconds).
        finish: f64,
        /// Sender's virtual clock, so the receiving shard's clock (and
        /// its hold-expiry sweep) advances even on pure cross-shard
        /// traffic.
        at: f64,
    },
    /// Commit the hold for `txn`: it stays charged for its full window
    /// and is no longer subject to expiry. Answered with `HoldAck`.
    HoldCommit {
        /// Cluster-wide transaction id.
        txn: u64,
        /// Sender's virtual clock (same role as in `HoldAttach`).
        at: f64,
    },
    /// Release the hold for `txn` (abort). Answered with `HoldAck`;
    /// releasing an unknown transaction acks `ok: false` (the expiry
    /// sweep may have beaten the abort — that is not an error).
    HoldRelease {
        /// Cluster-wide transaction id.
        txn: u64,
        /// Sender's virtual clock (same role as in `HoldAttach`).
        at: f64,
    },
    /// Cancel a previously accepted transfer, freeing its reservation.
    Cancel {
        /// Id used at submission.
        id: u64,
    },
    /// Renegotiate a live *malleable* transfer mid-flight: Cancel +
    /// resubmit collapsed into one atomic round action. Segments already
    /// delivered (before the deciding round's time) are kept; the
    /// remainder of the plan is re-water-filled to deliver `volume` more
    /// MB under the new `max_rate`/`deadline`. The request keeps its id,
    /// and capacity is never released unless the new plan is granted —
    /// a rejected amend leaves the original reservation untouched.
    /// Answered in a round with `AcceptedSegments` (the full new plan)
    /// or `Rejected`.
    Amend {
        /// Id used at submission (must be a live malleable transfer).
        id: u64,
        /// Volume still to deliver from the deciding round onward (MB).
        volume: f64,
        /// New host-side rate cap `MaxRate` in MB/s.
        max_rate: f64,
        /// New latest finish (virtual seconds); `None` = server default
        /// slack from the deciding round's time.
        deadline: Option<f64>,
    },
    /// Ask for the current state of a request.
    Query {
        /// Id used at submission.
        id: u64,
    },
    /// Fetch the daemon's metrics snapshot.
    Stats,
    /// Stop admitting, decide everything still pending, report the count.
    Drain,
    /// Ask a follower to finish recovery and take over as primary.
    /// Primaries and solo daemons answer with an `Error` reply; a
    /// repeated promote of an already-promoted follower is idempotent.
    Promote,
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The admission round could not fit the request (port saturated).
    Saturated,
    /// No rate ≤ `MaxRate` can meet the deadline any more.
    DeadlineUnreachable,
    /// The submission failed validation (field values or duplicate id).
    Invalid,
    /// The engine's submission queue is full — back off and retry.
    QueueFull,
    /// The route references a port outside the topology.
    UnknownRoute,
    /// Kept for wire compatibility: older daemons reported this while
    /// draining. Current engines reply [`RejectReason::Drained`].
    ShuttingDown,
    /// This daemon is a follower: it serves reads only until promoted.
    NotPrimary,
    /// The daemon has been drained: every pending request is decided and
    /// no new work is admitted until the daemon is restarted over its
    /// WAL directory (see README § Durability).
    Drained,
}

/// Lifecycle state reported by `Query`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReqState {
    /// Waiting for the next admission round.
    Pending,
    /// Admitted; the reservation is (or was) live.
    Accepted,
    /// Refused.
    Rejected,
    /// Cancelled by the client after acceptance.
    Cancelled,
    /// The daemon has no record of this id.
    Unknown,
}

/// Server → client messages.
///
/// `Stats` dominates the enum's size, but these values are transient —
/// decoded, inspected, dropped — never stored in bulk, so indirection
/// would buy nothing (and the vendored serde shim has no `Box` impls).
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerMsg {
    /// The submission was admitted with this allocation.
    Accepted {
        /// Id used at submission.
        id: u64,
        /// Granted constant bandwidth in MB/s.
        bw: f64,
        /// Assigned start `σ` (virtual seconds).
        start: f64,
        /// Assigned finish `τ` (virtual seconds).
        finish: f64,
    },
    /// A malleable submission (or amend) was granted this stepwise plan.
    AcceptedSegments {
        /// Id used at submission.
        id: u64,
        /// The granted plan as `(start, end, bw)` triples, time-ordered
        /// and disjoint; the rate never exceeds the requested `max_rate`.
        segments: Vec<(f64, f64, f64)>,
    },
    /// The submission was refused.
    Rejected {
        /// Id used at submission.
        id: u64,
        /// Why.
        reason: RejectReason,
        /// Earliest virtual time at which resubmitting could help
        /// (backpressure hint); `None` when retrying cannot succeed.
        retry_after: Option<f64>,
    },
    /// Reply to `Cancel`.
    CancelResult {
        /// Id used at submission.
        id: u64,
        /// Whether this cancel took effect: it freed a live reservation
        /// or voided a still-pending submission. `false` for unknown
        /// ids, already-decided requests, and repeated cancels.
        freed: bool,
    },
    /// Reply to `Query`.
    Status {
        /// Id used at submission.
        id: u64,
        /// Current lifecycle state.
        state: ReqState,
        /// The live allocation `(bw, σ, τ)` for accepted requests whose
        /// reservation has not yet expired; `None` otherwise. Decoders
        /// treat a missing or `null` field as `None`, so pre-alloc
        /// `Status` lines still parse.
        alloc: Option<(f64, f64, f64)>,
    },
    /// Reply to `HoldOpen`: the candidate window was computed and its
    /// ingress half is pinned.
    HoldOpened {
        /// Cluster-wide transaction id.
        txn: u64,
        /// Candidate constant bandwidth (MB/s).
        bw: f64,
        /// Candidate start σ (virtual seconds).
        start: f64,
        /// Candidate finish τ (virtual seconds).
        finish: f64,
        /// Virtual deadline after which the uncommitted hold is swept.
        expires: f64,
    },
    /// Reply to `HoldOpen`/`HoldAttach`: the hold could not be placed.
    HoldDenied {
        /// Cluster-wide transaction id.
        txn: u64,
        /// Why.
        reason: RejectReason,
    },
    /// Reply to `HoldAttach`/`HoldCommit`/`HoldRelease`.
    HoldAck {
        /// Cluster-wide transaction id.
        txn: u64,
        /// Whether the operation took effect.
        ok: bool,
    },
    /// Reply to `Stats`.
    Stats(StatsSnapshot),
    /// Reply to `Drain`: pending submissions decided by the final round.
    Draining {
        /// Number of requests that were still pending.
        pending: u64,
    },
    /// Reply to `Promote`: the follower finished recovery and now
    /// accepts submissions.
    Promoted {
        /// Admission rounds the promoted engine resumed at.
        rounds: u64,
    },
    /// Protocol-level failure (parse error, bad version, oversized line).
    Error {
        /// Machine-readable code ("bad-version", "parse", "line-too-long").
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

/// Serialize a server message as one wire line (no trailing newline).
pub fn encode_server(msg: &ServerMsg) -> String {
    serde_json::to_string(msg).expect("ServerMsg serialization is infallible")
}

/// Serialize a client request as one wire line (no trailing newline).
pub fn encode_client(msg: &ClientMsg) -> String {
    serde_json::to_string(&WireRequest::new(msg.clone()))
        .expect("WireRequest serialization is infallible")
}

/// Parse and version-check one client line.
///
/// The `Err` payload is the ready-to-send `ServerMsg::Error` reply; boxing
/// it would push the unboxing onto every caller for no real win.
#[allow(clippy::result_large_err)]
pub fn decode_client(line: &str) -> Result<ClientMsg, ServerMsg> {
    let wire: WireRequest = serde_json::from_str(line).map_err(|e| ServerMsg::Error {
        code: "parse".to_string(),
        message: format!("malformed request: {e}"),
    })?;
    if wire.v != PROTOCOL_VERSION {
        return Err(ServerMsg::Error {
            code: "bad-version".to_string(),
            message: format!(
                "protocol version {} not supported (server speaks {PROTOCOL_VERSION})",
                wire.v
            ),
        });
    }
    Ok(wire.body)
}

/// Parse one server line (client side).
pub fn decode_server(line: &str) -> Result<ServerMsg, serde_json::Error> {
    serde_json::from_str(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips() {
        let msg = ClientMsg::Submit(SubmitReq {
            id: 7,
            ingress: 1,
            egress: 2,
            volume: 1000.0,
            max_rate: 50.0,
            start: Some(12.5),
            deadline: None,
            class: Default::default(),
            malleable: None,
        });
        let line = encode_client(&msg);
        assert_eq!(decode_client(&line).unwrap(), msg);
    }

    #[test]
    fn malleable_submit_and_amend_round_trip() {
        let msgs = vec![
            ClientMsg::Submit(SubmitReq {
                id: 7,
                ingress: 1,
                egress: 2,
                volume: 1000.0,
                max_rate: 50.0,
                start: None,
                deadline: Some(99.5),
                class: Default::default(),
                malleable: Some(true),
            }),
            ClientMsg::Amend {
                id: 7,
                volume: 400.0,
                max_rate: 80.0,
                deadline: Some(120.0),
            },
            ClientMsg::Amend {
                id: 7,
                volume: 400.0,
                max_rate: 80.0,
                deadline: None,
            },
        ];
        for msg in msgs {
            let line = encode_client(&msg);
            assert_eq!(decode_client(&line).unwrap(), msg, "line {line}");
        }
        // A pre-malleable submit line (no `malleable` key) still decodes,
        // as a rigid request.
        let line = r#"{"v":3,"body":{"Submit":{"id":1,"ingress":0,"egress":0,"volume":10.0,"max_rate":5.0,"start":null,"deadline":null,"class":"Silver"}}}"#;
        match decode_client(line).unwrap() {
            ClientMsg::Submit(req) => {
                assert_eq!(req.malleable, None);
                assert!(!req.is_malleable());
            }
            other => panic!("expected Submit, got {other:?}"),
        }
    }

    #[test]
    fn hold_messages_round_trip() {
        let msgs = vec![
            ClientMsg::HoldOpen(SubmitReq {
                id: 42,
                ingress: 0,
                egress: 3,
                volume: 500.0,
                max_rate: 25.0,
                start: Some(10.0),
                deadline: Some(100.0),
                class: Default::default(),
                malleable: None,
            }),
            ClientMsg::HoldAttach {
                txn: 42,
                egress: 3,
                bw: 25.0,
                start: 10.0,
                finish: 30.0,
                at: 10.0,
            },
            ClientMsg::HoldCommit { txn: 42, at: 12.0 },
            ClientMsg::HoldRelease { txn: 42, at: 12.0 },
        ];
        for msg in msgs {
            let line = encode_client(&msg);
            assert_eq!(decode_client(&line).unwrap(), msg, "line {line}");
        }
    }

    #[test]
    fn version_mismatch_is_an_error_reply() {
        let line = r#"{"v": 99, "body": "Stats"}"#;
        match decode_client(line) {
            Err(ServerMsg::Error { code, .. }) => assert_eq!(code, "bad-version"),
            other => panic!("expected bad-version error, got {other:?}"),
        }
    }

    #[test]
    fn handshake_grid_older_json_clients_are_refused_cleanly() {
        // v1/v2/v3 clients × v3 server. Older envelopes parse fine (the
        // body layout they used is a subset), so the version gate — not a
        // parse failure — must refuse them with a precise message.
        for v in [1u32, 2] {
            let line = format!("{{\"v\": {v}, \"body\": \"Stats\"}}");
            match decode_client(&line) {
                Err(ServerMsg::Error { code, message }) => {
                    assert_eq!(code, "bad-version");
                    assert!(
                        message.contains(&format!("version {v}"))
                            && message.contains("server speaks 3"),
                        "unhelpful refusal: {message}"
                    );
                }
                other => panic!("v{v} client must be refused, got {other:?}"),
            }
        }
        // The current version is accepted.
        let line = format!("{{\"v\": {PROTOCOL_VERSION}, \"body\": \"Stats\"}}");
        assert_eq!(decode_client(&line).unwrap(), ClientMsg::Stats);
    }

    #[test]
    fn garbage_is_a_parse_error_reply() {
        match decode_client("{nope") {
            Err(ServerMsg::Error { code, .. }) => assert_eq!(code, "parse"),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn stats_reply_with_unknown_extra_fields_still_decodes() {
        // Forward compatibility: a newer server may add fields to the
        // Stats snapshot; an older client's decoder must ignore them
        // rather than failing the whole reply.
        let m = crate::metrics::MetricsRegistry::new();
        m.set_role(crate::metrics::Role::Primary);
        let snap = m.snapshot(3, 7, 42.0);
        let line = encode_server(&ServerMsg::Stats(snap.clone()));
        // Inject unknown fields right inside the snapshot object.
        let needle = "{\"Stats\":{";
        assert!(line.starts_with(needle), "unexpected encoding: {line}");
        let extended = format!(
            "{}\"future_counter\":123,\"future_nested\":{{\"a\":[1,2,3]}},{}",
            needle,
            &line[needle.len()..]
        );
        match decode_server(&extended) {
            Ok(ServerMsg::Stats(got)) => assert_eq!(got, snap),
            other => panic!("extended Stats reply must decode, got {other:?}"),
        }
        // Nested structs tolerate additions too.
        let hist = "\"decision_latency\":{";
        let at = extended.find(hist).expect("histogram field present") + hist.len();
        let nested = format!(
            "{}\"future_pctile\":9.5,{}",
            &extended[..at],
            &extended[at..]
        );
        match decode_server(&nested) {
            Ok(ServerMsg::Stats(got)) => assert_eq!(got, snap),
            other => panic!("nested-extended Stats reply must decode, got {other:?}"),
        }
    }

    #[test]
    fn server_messages_round_trip() {
        let msgs = vec![
            ServerMsg::Accepted {
                id: 1,
                bw: 25.0,
                start: 10.0,
                finish: 50.0,
            },
            ServerMsg::AcceptedSegments {
                id: 9,
                segments: vec![(10.0, 20.0, 25.0), (30.0, 35.5, 80.0)],
            },
            ServerMsg::Rejected {
                id: 2,
                reason: RejectReason::Saturated,
                retry_after: Some(60.0),
            },
            ServerMsg::CancelResult { id: 3, freed: true },
            ServerMsg::Status {
                id: 4,
                state: ReqState::Pending,
                alloc: None,
            },
            ServerMsg::Status {
                id: 5,
                state: ReqState::Accepted,
                alloc: Some((25.0, 10.0, 50.0)),
            },
            ServerMsg::Draining { pending: 5 },
            ServerMsg::HoldOpened {
                txn: 6,
                bw: 12.5,
                start: 10.0,
                finish: 30.0,
                expires: 110.0,
            },
            ServerMsg::HoldDenied {
                txn: 7,
                reason: RejectReason::Saturated,
            },
            ServerMsg::HoldAck { txn: 8, ok: true },
            ServerMsg::Error {
                code: "parse".into(),
                message: "bad".into(),
            },
        ];
        for msg in msgs {
            let line = encode_server(&msg);
            assert_eq!(decode_server(&line).unwrap(), msg, "line {line}");
        }
    }
}
