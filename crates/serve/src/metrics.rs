//! Lock-free daemon metrics: atomic counters plus log2-bucketed latency
//! histograms, snapshotted into a serializable [`StatsSnapshot`] for the
//! `Stats` RPC and the periodic JSON dump.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::protocol::PROTOCOL_VERSION;

/// Which replication role this daemon is playing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Role {
    /// Standalone daemon: no replication configured.
    #[default]
    Solo,
    /// Serving clients and shipping its WAL to a follower.
    Primary,
    /// Mirroring a primary's WAL; read-only until promoted.
    Follower,
    /// One shard primary of a topology-sharded cluster: serving the
    /// routed slice of the port space (and possibly replicating to its
    /// own standby).
    Shard,
}

impl Role {
    /// Wire string for the `Stats` reply
    /// (`solo`/`primary`/`follower`/`shard`).
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Solo => "solo",
            Role::Primary => "primary",
            Role::Follower => "follower",
            Role::Shard => "shard",
        }
    }

    fn from_u64(v: u64) -> Role {
        match v {
            1 => Role::Primary,
            2 => Role::Follower,
            3 => Role::Shard,
            _ => Role::Solo,
        }
    }

    fn as_u64(self) -> u64 {
        match self {
            Role::Solo => 0,
            Role::Primary => 1,
            Role::Follower => 2,
            Role::Shard => 3,
        }
    }
}

/// Process start time with a `Default` impl, so [`MetricsRegistry`] can
/// keep deriving `Default`.
#[derive(Debug)]
struct StartClock(Instant);

impl Default for StartClock {
    fn default() -> Self {
        StartClock(Instant::now())
    }
}

/// A gauge holding an optional virtual time as raw f64 bits. The unset
/// state is negative infinity (not zero — `0.0` is a legitimate time),
/// matching the ledger's in-memory watermark sentinel.
#[derive(Debug)]
pub struct TimeGauge(AtomicU64);

impl Default for TimeGauge {
    fn default() -> Self {
        TimeGauge(AtomicU64::new(f64::NEG_INFINITY.to_bits()))
    }
}

impl TimeGauge {
    /// Store a new value (callers only ever pass finite times).
    pub fn set(&self, t: f64) {
        self.0.store(t.to_bits(), Ordering::Relaxed);
    }

    /// The stored time, or `None` while unset.
    pub fn get(&self) -> Option<f64> {
        let t = f64::from_bits(self.0.load(Ordering::Relaxed));
        t.is_finite().then_some(t)
    }
}

/// Number of power-of-two latency buckets: bucket `k` holds samples in
/// `[2^k, 2^(k+1))` microseconds, so 40 buckets span ~1 µs to ~13 days.
const BUCKETS: usize = 40;

/// Concurrent histogram of durations with power-of-two microsecond
/// buckets. Recording is one atomic add; percentiles are approximate
/// (upper bucket bound), which is plenty for service latency reporting.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&self, d: Duration) {
        let micros = d.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (64 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Approximate `q`-quantile (0 ≤ q ≤ 1) in milliseconds: the upper
    /// bound of the bucket containing the `q`-th sample.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (k, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Upper bound of bucket k is 2^k µs (bucket 0 is [0, 1)).
                return (1u64 << k) as f64 / 1000.0;
            }
        }
        (1u64 << (BUCKETS - 1)) as f64 / 1000.0
    }

    /// Mean sample in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_micros.load(Ordering::Relaxed) as f64 / n as f64 / 1000.0
        }
    }

    fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            count: self.count(),
            mean_ms: self.mean_ms(),
            p50_ms: self.quantile_ms(0.50),
            p95_ms: self.quantile_ms(0.95),
            p99_ms: self.quantile_ms(0.99),
        }
    }
}

/// Point-in-time view of one latency histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Mean latency (ms).
    pub mean_ms: f64,
    /// Median latency (ms, bucket upper bound).
    pub p50_ms: f64,
    /// 95th percentile latency (ms, bucket upper bound).
    pub p95_ms: f64,
    /// 99th percentile latency (ms, bucket upper bound).
    pub p99_ms: f64,
}

/// All daemon counters and histograms. One instance is shared (via `Arc`)
/// between the listener, every connection thread, and the engine.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Submissions received (before validation).
    pub submitted: AtomicU64,
    /// Submissions admitted by an admission round.
    pub accepted: AtomicU64,
    /// Submissions refused by an admission round.
    pub rejected: AtomicU64,
    /// Submissions refused before queueing (validation, queue-full, drain).
    pub refused_early: AtomicU64,
    /// Cancels that took effect: freed a live reservation or voided a
    /// still-pending submission (repeats are not counted).
    pub cancelled: AtomicU64,
    /// Query requests served.
    pub queries: AtomicU64,
    /// Submissions bounced because the engine queue was full.
    pub queue_full: AtomicU64,
    /// Lines that failed to parse or carried a bad version.
    pub protocol_errors: AtomicU64,
    /// Connections accepted over the daemon lifetime.
    pub connections: AtomicU64,
    /// Connections that spoke the JSON-lines codec (counted at the
    /// moment the first bytes settled the auto-detection).
    pub conns_json: AtomicU64,
    /// Connections that spoke the binary codec (sent the `GBWIR01\n`
    /// preamble).
    pub conns_binary: AtomicU64,
    /// Admission rounds (ticks) executed.
    pub ticks: AtomicU64,
    /// Expired reservations garbage-collected from the ledger.
    pub gc_reclaimed: AtomicU64,
    /// Profile breakpoints dropped by watermark GC over the daemon
    /// lifetime (live sweeps plus recovery replay).
    pub gc_truncated_bps: AtomicU64,
    /// Breakpoints currently held across all port profiles (gauge,
    /// refreshed each admission round). The soak gate watches this stay
    /// flat under watermark GC.
    pub breakpoints_live: AtomicU64,
    /// Current GC watermark (gauge; unset until the first sweep).
    pub gc_watermark: TimeGauge,
    /// Engine replies dropped because a connection's reply queue was
    /// full (a client submitting without reading its socket).
    pub replies_dropped: AtomicU64,
    /// Records appended to the write-ahead log.
    pub wal_appends: AtomicU64,
    /// Framed bytes appended to the write-ahead log.
    pub wal_bytes: AtomicU64,
    /// Snapshots installed (each truncates the log).
    pub snapshots_written: AtomicU64,
    /// WAL records replayed during recovery at startup.
    pub recovery_replayed_records: AtomicU64,
    /// Configured admission parallelism (gauge; 1 = sequential).
    pub admit_threads: AtomicU64,
    /// Conflict-graph shards of the most recent admission round (gauge).
    pub shards: AtomicU64,
    /// Candidate count of the largest shard in the most recent round
    /// (gauge).
    pub largest_shard: AtomicU64,
    /// Submit → decision latency.
    pub decision_latency: LatencyHistogram,
    /// WAL fsync latency (per append or per round, by policy).
    pub fsync: LatencyHistogram,
    /// Replication role (see [`Role`]; gauge, stored as its `as_u64`).
    pub role: AtomicU64,
    /// Primary side: WAL records shipped to the follower.
    pub repl_records_shipped: AtomicU64,
    /// Primary side: framed record bytes shipped.
    pub repl_bytes_shipped: AtomicU64,
    /// Primary side: snapshots shipped (initial sync and re-syncs).
    pub repl_snapshots_shipped: AtomicU64,
    /// Primary side: sequence number of the last frame sent (gauge).
    pub repl_shipped_seq: AtomicU64,
    /// Primary side: sequence number of the last follower ack (gauge).
    pub repl_acked_seq: AtomicU64,
    /// Primary side: 1 while the follower's last ack matched our ship
    /// cursor exactly — everything durable has been applied remotely —
    /// 0 whenever new content goes out (gauge).
    pub repl_synced: AtomicU64,
    /// Follower side: records applied to the local mirror.
    pub repl_records_applied: AtomicU64,
    /// Follower side: framed record bytes applied.
    pub repl_bytes_applied: AtomicU64,
    /// Follower side: snapshots installed from the stream.
    pub repl_snapshots_applied: AtomicU64,
    /// Follower side: resync requests sent after a gap or loss.
    pub repl_resyncs: AtomicU64,
    /// Follower side: duplicate/stale frames discarded.
    pub repl_frames_discarded: AtomicU64,
    /// Follower side: frames dropped for CRC or decode damage.
    pub repl_frames_damaged: AtomicU64,
    /// Follower side: state-hash beacons verified against local replay.
    pub repl_beacons_checked: AtomicU64,
    /// Follower side: beacon mismatches — replica state diverged from
    /// the primary. Must stay 0; anything else is a replication bug.
    pub repl_divergence: AtomicU64,
    /// Two-phase holds placed on this shard (prepare steps).
    pub holds_placed: AtomicU64,
    /// Two-phase holds committed.
    pub holds_committed: AtomicU64,
    /// Two-phase holds released by an explicit abort.
    pub holds_released: AtomicU64,
    /// Two-phase holds released by the expiry sweep — a lost `HoldAck`
    /// or commit surfaced as a timeout rather than a rejection.
    pub holds_expired: AtomicU64,
    /// Accepted submissions whose class was `Gold`.
    pub accepted_gold: AtomicU64,
    /// Accepted submissions whose class was `Silver` (the default).
    pub accepted_silver: AtomicU64,
    /// Accepted submissions whose class was `BestEffort`.
    pub accepted_besteffort: AtomicU64,
    /// QoS overlay: rounds that granted at least one boost.
    pub qos_boost_rounds: AtomicU64,
    /// QoS overlay: megabytes moved above guaranteed rates (gauge,
    /// rounded down from the redistributor's running total).
    pub qos_boosted_mb: AtomicU64,
    /// QoS overlay: transfers that finished before their guaranteed
    /// finish thanks to boosting.
    pub qos_early_releases: AtomicU64,
    /// QoS overlay: guaranteed-finish violations detected by the
    /// conservation verifier. Must stay 0; anything else is a bug.
    pub qos_finish_violations: AtomicU64,
    /// QoS overlay: port oversubscriptions detected by the conservation
    /// verifier. Must stay 0; anything else is a bug.
    pub qos_oversubscriptions: AtomicU64,
    /// Submissions that asked for a malleable (variable-rate) reservation.
    pub submitted_malleable: AtomicU64,
    /// Malleable submissions granted a segmented plan.
    pub accepted_malleable: AtomicU64,
    /// Malleable submissions refused by an admission round.
    pub rejected_malleable: AtomicU64,
    /// `Amend` requests received (mid-flight renegotiations).
    pub amend_requests: AtomicU64,
    /// Amends granted (plan atomically replaced).
    pub amends_granted: AtomicU64,
    /// Amends rejected (original plan left untouched).
    pub amends_rejected: AtomicU64,
    /// Process start, for `uptime_s`.
    started: StartClock,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience: bump a counter by one.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Convenience: bump a counter by `n`.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Set the replication role reported by `Stats`.
    pub fn set_role(&self, role: Role) {
        self.role.store(role.as_u64(), Ordering::Relaxed);
    }

    /// The replication role last set (default [`Role::Solo`]).
    pub fn get_role(&self) -> Role {
        Role::from_u64(self.role.load(Ordering::Relaxed))
    }

    /// Seconds since this registry (≈ the daemon) was created.
    pub fn uptime_s(&self) -> u64 {
        self.started.0.elapsed().as_secs()
    }

    /// Assemble the serializable snapshot, filling in the engine-owned
    /// gauges passed by the caller.
    pub fn snapshot(
        &self,
        pending: u64,
        live_reservations: u64,
        virtual_time: f64,
    ) -> StatsSnapshot {
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            role: self.get_role().as_str().to_string(),
            uptime_s: self.uptime_s(),
            protocol_version: PROTOCOL_VERSION,
            submitted: ld(&self.submitted),
            accepted: ld(&self.accepted),
            rejected: ld(&self.rejected),
            refused_early: ld(&self.refused_early),
            cancelled: ld(&self.cancelled),
            queries: ld(&self.queries),
            queue_full: ld(&self.queue_full),
            protocol_errors: ld(&self.protocol_errors),
            connections: ld(&self.connections),
            conns_json: ld(&self.conns_json),
            conns_binary: ld(&self.conns_binary),
            ticks: ld(&self.ticks),
            gc_reclaimed: ld(&self.gc_reclaimed),
            replies_dropped: ld(&self.replies_dropped),
            wal_appends: ld(&self.wal_appends),
            wal_bytes: ld(&self.wal_bytes),
            snapshots_written: ld(&self.snapshots_written),
            recovery_replayed_records: ld(&self.recovery_replayed_records),
            admit_threads: ld(&self.admit_threads),
            shards: ld(&self.shards),
            largest_shard: ld(&self.largest_shard),
            repl_records_shipped: ld(&self.repl_records_shipped),
            repl_bytes_shipped: ld(&self.repl_bytes_shipped),
            repl_snapshots_shipped: ld(&self.repl_snapshots_shipped),
            repl_shipped_seq: ld(&self.repl_shipped_seq),
            repl_acked_seq: ld(&self.repl_acked_seq),
            repl_synced: ld(&self.repl_synced),
            repl_records_applied: ld(&self.repl_records_applied),
            repl_bytes_applied: ld(&self.repl_bytes_applied),
            repl_snapshots_applied: ld(&self.repl_snapshots_applied),
            repl_resyncs: ld(&self.repl_resyncs),
            repl_frames_discarded: ld(&self.repl_frames_discarded),
            repl_frames_damaged: ld(&self.repl_frames_damaged),
            repl_beacons_checked: ld(&self.repl_beacons_checked),
            repl_divergence: ld(&self.repl_divergence),
            holds_placed: ld(&self.holds_placed),
            holds_committed: ld(&self.holds_committed),
            holds_released: ld(&self.holds_released),
            holds_expired: ld(&self.holds_expired),
            accepted_gold: ld(&self.accepted_gold),
            accepted_silver: ld(&self.accepted_silver),
            accepted_besteffort: ld(&self.accepted_besteffort),
            qos_boost_rounds: ld(&self.qos_boost_rounds),
            qos_boosted_mb: ld(&self.qos_boosted_mb),
            qos_early_releases: ld(&self.qos_early_releases),
            qos_finish_violations: ld(&self.qos_finish_violations),
            qos_oversubscriptions: ld(&self.qos_oversubscriptions),
            submitted_malleable: ld(&self.submitted_malleable),
            accepted_malleable: ld(&self.accepted_malleable),
            rejected_malleable: ld(&self.rejected_malleable),
            amend_requests: ld(&self.amend_requests),
            amends_granted: ld(&self.amends_granted),
            amends_rejected: ld(&self.amends_rejected),
            pending,
            live_reservations,
            gc_truncated_bps: ld(&self.gc_truncated_bps),
            breakpoints_live: ld(&self.breakpoints_live),
            virtual_time,
            gc_watermark: self.gc_watermark.get(),
            decision_latency: self.decision_latency.snapshot(),
            fsync: self.fsync.snapshot(),
        }
    }
}

/// Serializable metrics snapshot returned by the `Stats` RPC and written
/// by the periodic JSON dump.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Replication role: `solo`, `primary`, `follower`, or `shard`.
    pub role: String,
    /// Seconds this daemon has been up.
    pub uptime_s: u64,
    /// Wire protocol version the daemon speaks.
    pub protocol_version: u32,
    /// Submissions received.
    pub submitted: u64,
    /// Submissions admitted.
    pub accepted: u64,
    /// Submissions refused by an admission round.
    pub rejected: u64,
    /// Submissions refused before queueing.
    pub refused_early: u64,
    /// Cancels that took effect (reservation freed or pending voided).
    pub cancelled: u64,
    /// Queries served.
    pub queries: u64,
    /// Queue-full bounces.
    pub queue_full: u64,
    /// Parse/version failures.
    pub protocol_errors: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Connections that spoke the JSON-lines codec.
    pub conns_json: u64,
    /// Connections that spoke the binary codec.
    pub conns_binary: u64,
    /// Admission rounds executed.
    pub ticks: u64,
    /// Expired reservations garbage-collected.
    pub gc_reclaimed: u64,
    /// Replies dropped on full per-connection reply queues.
    pub replies_dropped: u64,
    /// Records appended to the write-ahead log.
    pub wal_appends: u64,
    /// Framed bytes appended to the write-ahead log.
    pub wal_bytes: u64,
    /// Snapshots installed.
    pub snapshots_written: u64,
    /// WAL records replayed during recovery at startup.
    pub recovery_replayed_records: u64,
    /// Configured admission parallelism (1 = sequential).
    pub admit_threads: u64,
    /// Conflict-graph shards of the most recent admission round.
    pub shards: u64,
    /// Candidate count of the largest shard in the most recent round.
    pub largest_shard: u64,
    /// Primary: WAL records shipped to the follower.
    pub repl_records_shipped: u64,
    /// Primary: framed record bytes shipped.
    pub repl_bytes_shipped: u64,
    /// Primary: snapshots shipped.
    pub repl_snapshots_shipped: u64,
    /// Primary: sequence number of the last frame sent.
    pub repl_shipped_seq: u64,
    /// Primary: sequence number of the last follower ack.
    pub repl_acked_seq: u64,
    /// Primary: 1 when the follower has applied everything shipped.
    pub repl_synced: u64,
    /// Follower: records applied to the local mirror.
    pub repl_records_applied: u64,
    /// Follower: framed record bytes applied.
    pub repl_bytes_applied: u64,
    /// Follower: snapshots installed from the stream.
    pub repl_snapshots_applied: u64,
    /// Follower: resync requests sent.
    pub repl_resyncs: u64,
    /// Follower: duplicate/stale frames discarded.
    pub repl_frames_discarded: u64,
    /// Follower: frames dropped for CRC/decode damage.
    pub repl_frames_damaged: u64,
    /// Follower: state-hash beacons verified.
    pub repl_beacons_checked: u64,
    /// Follower: beacon mismatches (must be 0).
    pub repl_divergence: u64,
    /// Two-phase holds placed on this shard.
    pub holds_placed: u64,
    /// Two-phase holds committed.
    pub holds_committed: u64,
    /// Two-phase holds released by an explicit abort.
    pub holds_released: u64,
    /// Two-phase holds released by the expiry sweep (timeouts).
    pub holds_expired: u64,
    /// Accepted submissions whose class was `Gold`.
    pub accepted_gold: u64,
    /// Accepted submissions whose class was `Silver`.
    pub accepted_silver: u64,
    /// Accepted submissions whose class was `BestEffort`.
    pub accepted_besteffort: u64,
    /// QoS rounds that granted at least one boost.
    pub qos_boost_rounds: u64,
    /// Megabytes moved above guaranteed rates (rounded down).
    pub qos_boosted_mb: u64,
    /// Transfers finished early under boost (reservation resold).
    pub qos_early_releases: u64,
    /// Guaranteed-finish violations found by the verifier (must be 0).
    pub qos_finish_violations: u64,
    /// Port oversubscriptions found by the verifier (must be 0).
    pub qos_oversubscriptions: u64,
    /// Submissions that asked for a malleable reservation.
    pub submitted_malleable: u64,
    /// Malleable submissions granted a segmented plan.
    pub accepted_malleable: u64,
    /// Malleable submissions refused by an admission round.
    pub rejected_malleable: u64,
    /// `Amend` requests received.
    pub amend_requests: u64,
    /// Amends granted.
    pub amends_granted: u64,
    /// Amends rejected (original untouched).
    pub amends_rejected: u64,
    /// Submissions awaiting the next round.
    pub pending: u64,
    /// Live (unexpired, uncancelled) reservations.
    pub live_reservations: u64,
    /// Profile breakpoints dropped by watermark GC.
    pub gc_truncated_bps: u64,
    /// Breakpoints currently held across all port profiles.
    pub breakpoints_live: u64,
    /// Engine virtual clock (seconds).
    pub virtual_time: f64,
    /// Current GC watermark (absent until the first sweep, or when
    /// `--gc-horizon` is off).
    pub gc_watermark: Option<f64>,
    /// Submit → decision latency distribution.
    pub decision_latency: LatencySnapshot,
    /// WAL fsync latency distribution.
    pub fsync: LatencySnapshot,
}

impl StatsSnapshot {
    /// Replication lag in frames: shipped but not yet acknowledged.
    pub fn repl_lag(&self) -> u64 {
        self.repl_shipped_seq.saturating_sub(self.repl_acked_seq)
    }

    /// Accept rate among decided submissions (0 when none decided).
    pub fn accept_rate(&self) -> f64 {
        let decided = self.accepted + self.rejected;
        if decided == 0 {
            0.0
        } else {
            self.accepted as f64 / decided as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_monotone() {
        let h = LatencyHistogram::new();
        for micros in [1u64, 10, 100, 1_000, 10_000, 100_000] {
            for _ in 0..10 {
                h.record(Duration::from_micros(micros));
            }
        }
        assert_eq!(h.count(), 60);
        let p50 = h.quantile_ms(0.50);
        let p95 = h.quantile_ms(0.95);
        let p99 = h.quantile_ms(0.99);
        assert!(p50 <= p95 && p95 <= p99, "p50={p50} p95={p95} p99={p99}");
        assert!(p99 >= 100.0, "p99 must reach the top decade, got {p99}");
        assert!(h.mean_ms() > 0.0);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ms(0.99), 0.0);
        assert_eq!(h.mean_ms(), 0.0);
    }

    #[test]
    fn snapshot_serializes_and_computes_accept_rate() {
        let m = MetricsRegistry::new();
        m.submitted.store(10, Ordering::Relaxed);
        m.accepted.store(6, Ordering::Relaxed);
        m.rejected.store(2, Ordering::Relaxed);
        m.decision_latency.record(Duration::from_millis(3));
        MetricsRegistry::inc(&m.wal_appends);
        MetricsRegistry::add(&m.wal_bytes, 128);
        m.fsync.record(Duration::from_micros(700));
        let snap = m.snapshot(2, 6, 123.0);
        assert_eq!(snap.accept_rate(), 0.75);
        assert_eq!(snap.pending, 2);
        assert_eq!(snap.wal_appends, 1);
        assert_eq!(snap.wal_bytes, 128);
        assert_eq!(snap.fsync.count, 1);
        assert!(snap.fsync.p99_ms > 0.0);
        let js = serde_json::to_string(&snap).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&js).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn role_uptime_and_protocol_ride_in_the_snapshot() {
        let m = MetricsRegistry::new();
        let snap = m.snapshot(0, 0, 0.0);
        assert_eq!(snap.role, "solo");
        assert_eq!(snap.protocol_version, PROTOCOL_VERSION);
        m.set_role(Role::Follower);
        assert_eq!(m.get_role(), Role::Follower);
        assert_eq!(m.snapshot(0, 0, 0.0).role, "follower");
        m.set_role(Role::Shard);
        assert_eq!(m.get_role(), Role::Shard);
        assert_eq!(m.snapshot(0, 0, 0.0).role, "shard");
        m.set_role(Role::Primary);
        let snap = m.snapshot(0, 0, 0.0);
        assert_eq!(snap.role, "primary");
        m.repl_shipped_seq.store(12, Ordering::Relaxed);
        m.repl_acked_seq.store(9, Ordering::Relaxed);
        assert_eq!(m.snapshot(0, 0, 0.0).repl_lag(), 3);
    }

    #[test]
    fn quantile_handles_single_sample() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(500));
        // 500 µs lands in bucket [256, 512) µs → upper bound 0.512 ms.
        assert_eq!(h.quantile_ms(0.5), 0.512);
        assert_eq!(h.quantile_ms(1.0), 0.512);
    }
}
