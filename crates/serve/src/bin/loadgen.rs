//! Load generator for the reservation daemon.
//!
//! Replays a `gridband-workload` Poisson trace (the paper's §5.3 flexible
//! workload) against a running `gridband serve` instance over TCP and
//! reports the accept rate plus submit→decision latency percentiles.
//!
//! Usage:
//!   loadgen [--addr HOST:PORT] [--requests N] [--mean-interarrival S]
//!           [--seed N] [--topo paper|grid5000|MxNxCAP] [--json]
//!           [--wire json|binary] [--open-loop --rate R]
//!           [--kill-after N --state FILE | --resume --state FILE]
//!
//! --wire binary speaks the daemon's length-prefixed binary codec
//! (GBWIR01 preamble + CRC-checked frames) instead of JSON lines; the
//! decisions are byte-identical, only the encoding changes.
//!
//! By default submissions are written as fast as the socket accepts them
//! (closed-loop: the daemon's backpressure paces the client). With
//! --open-loop --rate R the writer paces itself instead: request i has
//! the *intended* send time `start + i/R` seconds, the writer sleeps
//! until that instant and never skips a send when it falls behind — the
//! backlog is part of the measured load, exactly what an open system
//! sees. Latency is then reported two ways: *raw* (decision minus the
//! moment the bytes actually left) and *corrected* (decision minus the
//! intended send time). The corrected number charges queueing delay the
//! client itself induced back to the server — the standard guard against
//! coordinated omission, where a stalled sender hides the server's worst
//! latencies by not sending while they happen. In closed-loop runs the
//! two are identical by construction.
//!
//! Kill/recover/continue demo against a WAL-backed daemon:
//!
//!   loadgen --kill-after 500 --state resume.json   # phase 1, then
//!   # SIGKILL the daemon, restart it with the same --wal-dir, and:
//!   loadgen --resume --state resume.json           # phase 2
//!
//! Phase 1 submits the first N requests and stops *without* draining, so
//! in-flight submissions stay undecided — exactly what a crash loses.
//! Phase 2 first re-queries every decision the daemon already made and
//! fails loudly if any flipped (recovered commitments must be durable),
//! then resubmits the undecided tail plus the rest of the trace and
//! finishes normally. The demo assumes a virtual-clock daemon: decisions
//! only happen when submissions drive the clock, so "no reply within the
//! quiet window" in phase 1 means "still pending", not "still deciding".

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use gridband_net::Topology;
use gridband_serve::metrics::LatencyHistogram;
use gridband_serve::protocol::{encode_client, ClientMsg, ReqState, ServerMsg, SubmitReq};
use gridband_serve::wire::{
    decode_server_payload, encode_client_frame, FrameBuf, WireMode, WIRE_MAGIC,
};
use gridband_workload::{ClassMix, OpenLoopSchedule, ServiceClass, WorkloadBuilder};

struct Args {
    addr: String,
    requests: usize,
    mean_interarrival: f64,
    seed: u64,
    topo_spec: String,
    json: bool,
    kill_after: Option<usize>,
    resume: bool,
    state: String,
    wire: WireMode,
    /// `G:S:B` service-class weights; classes are assigned per request id
    /// by a seeded hash, so the same flags replay the same classes.
    classes_spec: String,
    classes: ClassMix,
    /// Dump every decision, sorted by id, to this file — two runs that
    /// made the same decisions produce byte-identical dumps.
    decisions: Option<String>,
    /// Open-loop send rate (requests/second of wall time); `None` is the
    /// classic closed-loop blast.
    rate: Option<f64>,
    /// Fraction of requests submitted as malleable (stepwise) class.
    /// Assignment is a seeded splitmix64 hash per request id, mirroring
    /// `--classes`: the same flags always pick the same ids.
    malleable: f64,
    /// Probability that an accepted malleable request gets one mid-run
    /// `Amend` (renegotiated volume, server-default deadline).
    amend_rate: f64,
}

/// Deterministic malleable assignment, mirroring `ClassMix::class_for`:
/// a splitmix64 hash of `(seed, id)` under a salt distinct from the
/// class hash, mapped to `[0, 1)` and compared against the fraction.
fn picks(id: u64, seed: u64, salt: u64, frac: f64) -> bool {
    if frac <= 0.0 {
        return false;
    }
    let mut x = (seed ^ salt) ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    let u = (x >> 11) as f64 / (1u64 << 53) as f64;
    u < frac
}

const MALLEABLE_SALT: u64 = 0xa076_1d64_78bd_642f;
const AMEND_SALT: u64 = 0xe703_7ed1_a0b4_28db;

fn parse_topo(spec: &str) -> Result<Topology, String> {
    match spec {
        "paper" => Ok(Topology::paper_default()),
        "grid5000" => Ok(Topology::grid5000_like()),
        other => {
            let parts: Vec<&str> = other.split('x').collect();
            if parts.len() == 3 {
                let m: usize = parts[0].parse().map_err(|_| format!("bad topo {other}"))?;
                let n: usize = parts[1].parse().map_err(|_| format!("bad topo {other}"))?;
                let cap: f64 = parts[2].parse().map_err(|_| format!("bad topo {other}"))?;
                Ok(Topology::uniform(m, n, cap))
            } else {
                Err(format!(
                    "unknown topology {other} (want paper|grid5000|MxNxCAP)"
                ))
            }
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7421".to_string(),
        requests: 2000,
        mean_interarrival: 1.0,
        seed: 42,
        topo_spec: "paper".to_string(),
        json: false,
        kill_after: None,
        resume: false,
        state: "loadgen-resume.json".to_string(),
        wire: WireMode::Json,
        classes_spec: "0:1:0".to_string(),
        classes: ClassMix::all_silver(),
        decisions: None,
        rate: None,
        malleable: 0.0,
        amend_rate: 0.0,
    };
    let mut open_loop = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = val("--addr")?,
            "--requests" => {
                args.requests = val("--requests")?
                    .parse()
                    .map_err(|e| format!("bad --requests: {e}"))?
            }
            "--mean-interarrival" => {
                args.mean_interarrival = val("--mean-interarrival")?
                    .parse()
                    .map_err(|e| format!("bad --mean-interarrival: {e}"))?
            }
            "--seed" => {
                args.seed = val("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--topo" => {
                let spec = val("--topo")?;
                parse_topo(&spec)?;
                args.topo_spec = spec;
            }
            "--json" => args.json = true,
            "--kill-after" => {
                args.kill_after = Some(
                    val("--kill-after")?
                        .parse()
                        .map_err(|e| format!("bad --kill-after: {e}"))?,
                )
            }
            "--resume" => args.resume = true,
            "--state" => args.state = val("--state")?,
            "--wire" => args.wire = val("--wire")?.parse()?,
            "--classes" => {
                let spec = val("--classes")?;
                args.classes = spec.parse()?;
                args.classes_spec = spec;
            }
            "--decisions" => args.decisions = Some(val("--decisions")?),
            "--malleable" => {
                args.malleable = val("--malleable")?
                    .parse()
                    .map_err(|e| format!("bad --malleable: {e}"))?
            }
            "--amend-rate" => {
                args.amend_rate = val("--amend-rate")?
                    .parse()
                    .map_err(|e| format!("bad --amend-rate: {e}"))?
            }
            "--open-loop" => open_loop = true,
            "--rate" => {
                args.rate = Some(
                    val("--rate")?
                        .parse()
                        .map_err(|e| format!("bad --rate: {e}"))?,
                )
            }
            "--help" | "-h" => {
                println!(
                    "loadgen [--addr HOST:PORT] [--requests N] [--mean-interarrival S] \
                     [--seed N] [--topo paper|grid5000|MxNxCAP] [--json]\n        \
                     [--wire json|binary] [--classes G:S:B] [--decisions FILE]\n        \
                     [--malleable FRAC] [--amend-rate R]\n        \
                     [--open-loop --rate R]\n        \
                     [--kill-after N --state FILE | --resume --state FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.resume && args.kill_after.is_some() {
        return Err("--resume and --kill-after are mutually exclusive".to_string());
    }
    match (open_loop, args.rate) {
        (true, None) => return Err("--open-loop needs --rate R (requests/second)".to_string()),
        (true, Some(r)) if !(r.is_finite() && r > 0.0) => {
            return Err("--rate must be finite and > 0".to_string())
        }
        (false, Some(_)) => return Err("--rate only applies with --open-loop".to_string()),
        _ => {}
    }
    if open_loop && (args.resume || args.kill_after.is_some()) {
        return Err("--open-loop does not combine with --kill-after/--resume".to_string());
    }
    if !(0.0..=1.0).contains(&args.malleable) || !(0.0..=1.0).contains(&args.amend_rate) {
        return Err("--malleable and --amend-rate must be in [0, 1]".to_string());
    }
    if args.amend_rate > 0.0 && args.malleable <= 0.0 {
        return Err("--amend-rate needs --malleable FRAC > 0".to_string());
    }
    if args.malleable > 0.0 && (args.resume || args.kill_after.is_some()) {
        return Err("--malleable does not combine with --kill-after/--resume".to_string());
    }
    Ok(args)
}

/// What a `--kill-after` run leaves behind for `--resume`: the workload
/// parameters (so the identical trace regenerates) plus every decision
/// the daemon already replied to.
#[derive(serde::Serialize, serde::Deserialize)]
struct ResumeState {
    requests: usize,
    mean_interarrival: f64,
    seed: u64,
    topo: String,
    /// `G:S:B` class weights phase 1 ran with, so phase 2 reassigns the
    /// identical class to every resubmitted id.
    classes: String,
    /// How many trace requests phase 1 submitted.
    submitted: usize,
    accepted: Vec<AcceptedRec>,
    rejected: Vec<u64>,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct AcceptedRec {
    id: u64,
    bw: f64,
    start: f64,
    finish: f64,
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = if args.resume {
        run_resume(args)
    } else {
        run(args)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}

fn build_requests(
    requests: usize,
    mean_interarrival: f64,
    seed: u64,
    topo_spec: &str,
) -> Result<Vec<gridband_workload::Request>, String> {
    let topo = parse_topo(topo_spec)?;
    // Scale the horizon with the request count so the builder generates
    // enough arrivals, then truncate to exactly `requests`.
    let horizon = (requests as f64 * mean_interarrival * 1.25).max(100.0);
    let trace = WorkloadBuilder::new(topo)
        .mean_interarrival(mean_interarrival)
        .slack(gridband_workload::Dist::Uniform { lo: 2.0, hi: 4.0 })
        .horizon(horizon)
        .seed(seed)
        .build();
    let out: Vec<_> = trace.iter().take(requests).cloned().collect();
    if out.len() < requests {
        eprintln!(
            "loadgen: trace produced only {} arrivals in horizon {horizon}; sending those",
            out.len()
        );
    }
    if out.is_empty() {
        return Err("no requests generated".to_string());
    }
    Ok(out)
}

fn send_msg(w: &mut TcpStream, wire: WireMode, msg: &ClientMsg) -> Result<(), String> {
    match wire {
        WireMode::Json => {
            let mut line = encode_client(msg);
            line.push('\n');
            w.write_all(line.as_bytes())
        }
        WireMode::Binary => w.write_all(&encode_client_frame(msg)),
    }
    .map_err(|e| format!("write: {e}"))
}

/// Codec-generic reply reader: one `ServerMsg` per call, from either
/// JSON lines or binary frames. Timeouts surface as `WouldBlock`/
/// `TimedOut` errors, a clean close as `Ok(None)`, so callers keep the
/// same end-of-run logic in both dialects.
struct MsgReader {
    reader: BufReader<TcpStream>,
    wire: WireMode,
    frames: FrameBuf,
    line: String,
}

impl MsgReader {
    fn new(stream: TcpStream, wire: WireMode) -> MsgReader {
        MsgReader {
            reader: BufReader::new(stream),
            wire,
            frames: FrameBuf::new(),
            line: String::new(),
        }
    }

    fn next_msg(&mut self) -> Result<Option<ServerMsg>, std::io::Error> {
        let bad = |e: String| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
        match self.wire {
            WireMode::Json => {
                self.line.clear();
                match self.reader.read_line(&mut self.line)? {
                    0 => Ok(None),
                    _ => gridband_serve::protocol::decode_server(self.line.trim())
                        .map(Some)
                        .map_err(|e| bad(format!("bad server line: {e}"))),
                }
            }
            WireMode::Binary => loop {
                if let Some(payload) = self
                    .frames
                    .next_frame()
                    .map_err(|e| bad(format!("bad server frame: {e}")))?
                {
                    return decode_server_payload(&payload)
                        .map(Some)
                        .map_err(|e| bad(format!("bad server payload: {e}")));
                }
                let mut buf = [0u8; 4096];
                match self.reader.read(&mut buf)? {
                    0 => return Ok(None),
                    n => self.frames.extend(&buf[..n]),
                }
            },
        }
    }
}

fn submit_msg(req: &gridband_workload::Request, class: ServiceClass, malleable: bool) -> ClientMsg {
    ClientMsg::Submit(SubmitReq {
        id: req.id.0,
        ingress: req.route.ingress.0,
        egress: req.route.egress.0,
        volume: req.volume,
        max_rate: req.max_rate,
        start: Some(req.start()),
        deadline: Some(req.finish()),
        class,
        // `None` (not `Some(false)`) for rigid submissions: the binary
        // codec omits the absent field, so a rigid-only run's bytes are
        // identical to a pre-malleable client's.
        malleable: malleable.then_some(true),
    })
}

/// One renegotiation for an accepted malleable request: 60% of the
/// original volume at the original ceiling, deadline left to the server
/// default. Returns how many amends were written (0 or 1).
fn send_amend(
    w: &mut TcpStream,
    wire: WireMode,
    id: u64,
    amendable: &HashMap<u64, (f64, f64)>,
) -> Result<u64, String> {
    let Some(&(volume, max_rate)) = amendable.get(&id) else {
        return Ok(0);
    };
    send_msg(
        w,
        wire,
        &ClientMsg::Amend {
            id,
            volume: volume * 0.6,
            max_rate,
            deadline: None,
        },
    )?;
    Ok(1)
}

fn run(args: Args) -> Result<(), String> {
    let requests = build_requests(
        args.requests,
        args.mean_interarrival,
        args.seed,
        &args.topo_spec,
    )?;
    let kill_at = args
        .kill_after
        .unwrap_or(requests.len())
        .min(requests.len());
    let to_send = &requests[..kill_at];
    let killing = args.kill_after.is_some();

    let stream =
        TcpStream::connect(&args.addr).map_err(|e| format!("connect {}: {e}", args.addr))?;
    // In kill mode nobody drains, so "the server went quiet" is the end
    // condition rather than a decision count.
    let quiet = if killing {
        Duration::from_millis(1500)
    } else {
        Duration::from_secs(60)
    };
    stream
        .set_read_timeout(Some(quiet))
        .map_err(|e| e.to_string())?;
    let mut write_half = stream.try_clone().map_err(|e| e.to_string())?;
    if args.wire == WireMode::Binary {
        write_half
            .write_all(&WIRE_MAGIC)
            .map_err(|e| format!("preamble: {e}"))?;
    }
    let n = to_send.len();
    let wire = args.wire;
    let (seed, amend_rate) = (args.seed, args.amend_rate);
    // Accepted malleable ids the amend hash picks flow back to the
    // writer, which renegotiates them while the run is still live.
    let (amend_tx, amend_rx) = std::sync::mpsc::channel::<u64>();

    // Reader: collect one decision per submission plus the final stats.
    // A second reply for an already-decided id is an amend outcome, not
    // a decision — tallied separately.
    type ReaderResult =
        Result<(Vec<(u64, ServerMsg, Instant)>, Option<ServerMsg>, u64, u64), String>;
    let reader = std::thread::spawn(move || -> ReaderResult {
        let mut decisions = Vec::with_capacity(n);
        let mut decided = std::collections::HashSet::with_capacity(n);
        let mut stats = None;
        let (mut amends_granted, mut amends_rejected) = (0u64, 0u64);
        let mut msgs = MsgReader::new(stream, wire);
        while killing || decisions.len() < n || stats.is_none() {
            let msg = match msgs.next_msg() {
                Ok(Some(msg)) => msg,
                Ok(None) => {
                    if killing {
                        break; // daemon gone mid-run: keep what we have
                    }
                    return Err("server closed the connection early".to_string());
                }
                Err(e)
                    if killing
                        && matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                {
                    break; // quiet: everything still unreplied is pending
                }
                Err(e) => return Err(format!("read: {e}")),
            };
            match msg {
                ServerMsg::Accepted { id, .. }
                | ServerMsg::Rejected { id, .. }
                | ServerMsg::AcceptedSegments { id, .. } => {
                    if decided.insert(id) {
                        if matches!(msg, ServerMsg::AcceptedSegments { .. })
                            && picks(id, seed, AMEND_SALT, amend_rate)
                        {
                            let _ = amend_tx.send(id);
                        }
                        decisions.push((id, msg, Instant::now()));
                    } else if matches!(msg, ServerMsg::AcceptedSegments { .. }) {
                        amends_granted += 1;
                    } else {
                        amends_rejected += 1;
                    }
                }
                ServerMsg::Stats(_) => stats = Some(msg),
                ServerMsg::Draining { .. } => {}
                ServerMsg::Error { code, message } => {
                    return Err(format!("server error {code}: {message}"));
                }
                _ => {}
            }
        }
        Ok((decisions, stats, amends_granted, amends_rejected))
    });

    // Writer: stream the trace prefix — paced when open-loop, as fast
    // as the socket accepts otherwise; in a full run, drain and ask for
    // stats; in a kill run, stop cold.
    // Amend parameters by id, for the ids the reader may hand back.
    let amendable: HashMap<u64, (f64, f64)> = to_send
        .iter()
        .filter(|r| picks(r.id.0, args.seed, MALLEABLE_SALT, args.malleable))
        .map(|r| (r.id.0, (r.volume, r.max_rate)))
        .collect();
    let mut amends_sent = 0u64;

    let started = Instant::now();
    let mut sent_at: HashMap<u64, (Instant, Instant)> = HashMap::with_capacity(n);
    let mut order: Vec<u64> = Vec::with_capacity(n);
    for (i, req) in to_send.iter().enumerate() {
        let intended = args.rate.map(|rate| {
            let t = started + Duration::from_secs_f64(OpenLoopSchedule::per_second(rate).offset(i));
            // Behind schedule: send immediately, never skip — the
            // intended timestamp keeps the delay on the books.
            if let Some(wait) = t.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            t
        });
        let actual = Instant::now();
        sent_at.insert(req.id.0, (actual, intended.unwrap_or(actual)));
        order.push(req.id.0);
        let class = args.classes.class_for(req.id.0, args.seed);
        let malleable = amendable.contains_key(&req.id.0);
        send_msg(
            &mut write_half,
            args.wire,
            &submit_msg(req, class, malleable),
        )?;
        // Renegotiate any accepts the reader has surfaced meanwhile:
        // amends interleave with live submissions, exactly the mid-flight
        // traffic shape the daemon's round loop must absorb.
        while let Ok(id) = amend_rx.try_recv() {
            amends_sent += send_amend(&mut write_half, args.wire, id, &amendable)?;
        }
    }
    if args.amend_rate > 0.0 {
        // Grace window: decisions for the trace tail are still streaming
        // in; give their amend candidates a chance before the drain.
        for _ in 0..10 {
            std::thread::sleep(Duration::from_millis(50));
            while let Ok(id) = amend_rx.try_recv() {
                amends_sent += send_amend(&mut write_half, args.wire, id, &amendable)?;
            }
        }
    }
    if !killing {
        for msg in [ClientMsg::Drain, ClientMsg::Stats] {
            send_msg(&mut write_half, args.wire, &msg)?;
        }
    }
    write_half.flush().map_err(|e| e.to_string())?;

    let (decisions, stats, amends_granted, amends_rejected) =
        reader.join().map_err(|_| "reader panicked".to_string())??;
    let wall = started.elapsed();

    if killing {
        let mut state = ResumeState {
            requests: args.requests,
            mean_interarrival: args.mean_interarrival,
            seed: args.seed,
            topo: args.topo_spec.clone(),
            classes: args.classes_spec.clone(),
            submitted: n,
            accepted: Vec::new(),
            rejected: Vec::new(),
        };
        for (id, msg, _) in &decisions {
            match msg {
                ServerMsg::Accepted {
                    bw, start, finish, ..
                } => state.accepted.push(AcceptedRec {
                    id: *id,
                    bw: *bw,
                    start: *start,
                    finish: *finish,
                }),
                _ => state.rejected.push(*id),
            }
        }
        let json = serde_json::to_string_pretty(&state).map_err(|e| e.to_string())?;
        std::fs::write(&args.state, json)
            .map_err(|e| format!("cannot write {}: {e}", args.state))?;
        println!(
            "killed after {} submissions: {} accepted, {} rejected, {} still pending",
            n,
            state.accepted.len(),
            state.rejected.len(),
            n - decisions.len()
        );
        println!(
            "state saved to {} — restart the daemon, then `loadgen --resume --state {}`",
            args.state, args.state
        );
        return Ok(());
    }

    report(
        &args,
        &args.classes,
        args.seed,
        decisions,
        stats,
        sent_at,
        &order,
        wall,
        (amends_sent, amends_granted, amends_rejected),
    )
}

fn run_resume(args: Args) -> Result<(), String> {
    let raw = std::fs::read_to_string(&args.state)
        .map_err(|e| format!("cannot read {}: {e}", args.state))?;
    let state: ResumeState = serde_json::from_str(&raw)
        .map_err(|e| format!("{} is not a resume state: {e}", args.state))?;
    let mix: ClassMix = state.classes.parse()?;
    let requests = build_requests(
        state.requests,
        state.mean_interarrival,
        state.seed,
        &state.topo,
    )?;
    let decided: std::collections::HashSet<u64> = state
        .accepted
        .iter()
        .map(|a| a.id)
        .chain(state.rejected.iter().copied())
        .collect();
    let to_send: Vec<_> = requests
        .iter()
        .filter(|r| !decided.contains(&r.id.0))
        .collect();

    let stream =
        TcpStream::connect(&args.addr).map_err(|e| format!("connect {}: {e}", args.addr))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    let mut write_half = stream.try_clone().map_err(|e| e.to_string())?;
    if args.wire == WireMode::Binary {
        write_half
            .write_all(&WIRE_MAGIC)
            .map_err(|e| format!("preamble: {e}"))?;
    }
    let mut msgs = MsgReader::new(stream, args.wire);

    // Phase 2a: every commitment the daemon replied to before the kill
    // must have survived its restart.
    let prev: HashMap<u64, &AcceptedRec> = state.accepted.iter().map(|a| (a.id, a)).collect();
    let n_query = state.accepted.len();
    for rec in &state.accepted {
        send_msg(&mut write_half, args.wire, &ClientMsg::Query { id: rec.id })?;
    }
    write_half.flush().map_err(|e| e.to_string())?;
    let mut verified = 0usize;
    for _ in 0..n_query {
        let msg = msgs
            .next_msg()
            .map_err(|e| format!("read: {e}"))?
            .ok_or_else(|| "server closed the connection early".to_string())?;
        let ServerMsg::Status { id, state, alloc } = msg else {
            return Err(format!("expected a status reply, got {msg:?}"));
        };
        if state != ReqState::Accepted {
            return Err(format!(
                "request {id} was accepted before the kill but reports {state:?} after recovery"
            ));
        }
        // `alloc` is absent once the reservation's window has passed and
        // the ledger reclaimed it; when present it must match exactly.
        if let Some((bw, start, finish)) = alloc {
            let want = prev[&id];
            if bw != want.bw || start != want.start || finish != want.finish {
                return Err(format!(
                    "request {id} alloc changed across recovery: \
                     had ({}, {}, {}), daemon now reports ({bw}, {start}, {finish})",
                    want.bw, want.start, want.finish
                ));
            }
            verified += 1;
        }
    }
    eprintln!(
        "resume: {} pre-kill acceptances intact ({verified} with live allocations verified)",
        n_query
    );

    // Phase 2b: resubmit the undecided tail and the rest of the trace in
    // original order, then drain.
    let started = Instant::now();
    let n = to_send.len();
    let mut sent_at: HashMap<u64, (Instant, Instant)> = HashMap::with_capacity(n);
    let mut order: Vec<u64> = Vec::with_capacity(n);
    for req in &to_send {
        let now = Instant::now();
        sent_at.insert(req.id.0, (now, now));
        order.push(req.id.0);
        let class = mix.class_for(req.id.0, state.seed);
        send_msg(&mut write_half, args.wire, &submit_msg(req, class, false))?;
    }
    for msg in [ClientMsg::Drain, ClientMsg::Stats] {
        send_msg(&mut write_half, args.wire, &msg)?;
    }
    write_half.flush().map_err(|e| e.to_string())?;

    let mut decisions: Vec<(u64, ServerMsg, Instant)> = Vec::with_capacity(n);
    let mut stats = None;
    while decisions.len() < n || stats.is_none() {
        let msg = msgs
            .next_msg()
            .map_err(|e| format!("read: {e}"))?
            .ok_or_else(|| "server closed the connection early".to_string())?;
        match msg {
            ServerMsg::Accepted { id, .. } | ServerMsg::Rejected { id, .. } => {
                decisions.push((id, msg, Instant::now()));
            }
            ServerMsg::Stats(_) => stats = Some(msg),
            ServerMsg::Draining { .. } => {}
            ServerMsg::Error { code, message } => {
                return Err(format!("server error {code}: {message}"));
            }
            _ => {}
        }
    }
    let wall = started.elapsed();

    // Merge the pre-kill decisions into the report so the totals cover
    // the whole trace.
    for rec in &state.accepted {
        decisions.push((
            rec.id,
            ServerMsg::Accepted {
                id: rec.id,
                bw: rec.bw,
                start: rec.start,
                finish: rec.finish,
            },
            started,
        ));
    }
    for id in &state.rejected {
        decisions.push((
            *id,
            ServerMsg::Rejected {
                id: *id,
                reason: gridband_serve::protocol::RejectReason::Saturated,
                retry_after: None,
            },
            started,
        ));
    }
    report(
        &args,
        &mix,
        state.seed,
        decisions,
        stats,
        sent_at,
        &order,
        wall,
        (0, 0, 0),
    )
}

#[allow(clippy::too_many_arguments)]
fn report(
    args: &Args,
    mix: &ClassMix,
    seed: u64,
    decisions: Vec<(u64, ServerMsg, Instant)>,
    stats: Option<ServerMsg>,
    sent_at: HashMap<u64, (Instant, Instant)>,
    order: &[u64],
    wall: Duration,
    amends: (u64, u64, u64),
) -> Result<(), String> {
    if let Some(path) = &args.decisions {
        dump_decisions(path, &decisions)?;
    }
    let lat = LatencyHistogram::new();
    let corrected = LatencyHistogram::new();
    // Corrected latency bucketed by send-order quintile: a flat sequence
    // of quintile p99s over a long run is the soak harness's "no latency
    // creep" signal, immune to a one-off warmup spike polluting a single
    // whole-run percentile.
    let quintile: [LatencyHistogram; 5] = std::array::from_fn(|_| LatencyHistogram::new());
    let qpos: HashMap<u64, usize> = order
        .iter()
        .enumerate()
        .map(|(i, id)| (*id, OpenLoopSchedule::quintile(i, order.len())))
        .collect();
    let class_lat = [
        LatencyHistogram::new(),
        LatencyHistogram::new(),
        LatencyHistogram::new(),
    ];
    let mut class_n = [0u64; 3];
    let mut class_acc = [0u64; 3];
    // Index 0 = rigid, 1 = malleable: the class-style breakdown the
    // --malleable flag adds to both report formats.
    let kind_lat = [LatencyHistogram::new(), LatencyHistogram::new()];
    let mut kind_n = [0u64; 2];
    let mut kind_acc = [0u64; 2];
    let mut accepted = 0usize;
    for (id, msg, at) in &decisions {
        let c = mix.class_for(*id, seed).index();
        let k = usize::from(picks(*id, seed, MALLEABLE_SALT, args.malleable));
        class_n[c] += 1;
        kind_n[k] += 1;
        if matches!(
            msg,
            ServerMsg::Accepted { .. } | ServerMsg::AcceptedSegments { .. }
        ) {
            accepted += 1;
            class_acc[c] += 1;
            kind_acc[k] += 1;
        }
        if let Some((actual, intended)) = sent_at.get(id) {
            lat.record(at.duration_since(*actual));
            corrected.record(at.duration_since(*intended));
            class_lat[c].record(at.duration_since(*actual));
            kind_lat[k].record(at.duration_since(*actual));
            if let Some(q) = qpos.get(id) {
                quintile[*q].record(at.duration_since(*intended));
            }
        }
    }
    let decided = decisions.len();
    let accept_rate = accepted as f64 / decided.max(1) as f64;
    let stats = match stats {
        Some(ServerMsg::Stats(s)) => Some(s),
        _ => None,
    };
    let classes: Vec<ClassReport> = ServiceClass::ALL
        .iter()
        .filter(|class| class_n[class.index()] > 0)
        .map(|class| {
            let c = class.index();
            ClassReport {
                class: class.name().to_string(),
                requests: class_n[c],
                accepted: class_acc[c],
                accept_rate: class_acc[c] as f64 / class_n[c] as f64,
                p50_ms: class_lat[c].quantile_ms(0.50),
                p99_ms: class_lat[c].quantile_ms(0.99),
            }
        })
        .collect();
    let malleable = (args.malleable > 0.0).then(|| {
        let (amends_sent, amends_granted, amends_rejected) = amends;
        MalleableReport {
            fraction: args.malleable,
            requests: kind_n[1],
            accepted: kind_acc[1],
            accept_rate: kind_acc[1] as f64 / kind_n[1].max(1) as f64,
            p50_ms: kind_lat[1].quantile_ms(0.50),
            p99_ms: kind_lat[1].quantile_ms(0.99),
            rigid_requests: kind_n[0],
            rigid_accepted: kind_acc[0],
            rigid_accept_rate: kind_acc[0] as f64 / kind_n[0].max(1) as f64,
            rigid_p50_ms: kind_lat[0].quantile_ms(0.50),
            rigid_p99_ms: kind_lat[0].quantile_ms(0.99),
            amends_sent,
            amends_granted,
            amends_rejected,
        }
    });

    if args.json {
        let report = serde_json::to_string_pretty(&LoadgenReport {
            requests: decided as u64,
            accepted: accepted as u64,
            accept_rate,
            wall_ms: wall.as_secs_f64() * 1e3,
            p50_ms: lat.quantile_ms(0.50),
            p95_ms: lat.quantile_ms(0.95),
            p99_ms: lat.quantile_ms(0.99),
            corrected_p50_ms: corrected.quantile_ms(0.50),
            corrected_p95_ms: corrected.quantile_ms(0.95),
            corrected_p99_ms: corrected.quantile_ms(0.99),
            quintile_corrected_p99_ms: quintile.iter().map(|h| h.quantile_ms(0.99)).collect(),
            open_loop_rate: args.rate,
            classes,
            malleable,
            qos_boost_rounds: stats.as_ref().map_or(0, |s| s.qos_boost_rounds),
            qos_boosted_mb: stats.as_ref().map_or(0, |s| s.qos_boosted_mb),
            qos_early_releases: stats.as_ref().map_or(0, |s| s.qos_early_releases),
            qos_finish_violations: stats.as_ref().map_or(0, |s| s.qos_finish_violations),
            qos_oversubscriptions: stats.as_ref().map_or(0, |s| s.qos_oversubscriptions),
        })
        .map_err(|e| e.to_string())?;
        println!("{report}");
    } else {
        println!("requests  {decided}");
        println!("accepted  {accepted}  ({:.1}%)", accept_rate * 100.0);
        println!("wall      {:.1} ms", wall.as_secs_f64() * 1e3);
        println!(
            "latency   p50 {:.3} ms   p95 {:.3} ms   p99 {:.3} ms",
            lat.quantile_ms(0.50),
            lat.quantile_ms(0.95),
            lat.quantile_ms(0.99)
        );
        if args.rate.is_some() {
            println!(
                "corrected p50 {:.3} ms   p95 {:.3} ms   p99 {:.3} ms  (from intended send times)",
                corrected.quantile_ms(0.50),
                corrected.quantile_ms(0.95),
                corrected.quantile_ms(0.99)
            );
        }
        // Only break out classes when the mix actually produced more
        // than one, so classless runs keep their old output.
        if classes.len() > 1 {
            for c in &classes {
                println!(
                    "  {:<10} {:>6} requests  {:>6} accepted ({:.1}%)  p50 {:.3} ms  p99 {:.3} ms",
                    c.class,
                    c.requests,
                    c.accepted,
                    c.accept_rate * 100.0,
                    c.p50_ms,
                    c.p99_ms
                );
            }
        }
        if let Some(m) = &malleable {
            println!(
                "  {:<10} {:>6} requests  {:>6} accepted ({:.1}%)  p50 {:.3} ms  p99 {:.3} ms",
                "malleable",
                m.requests,
                m.accepted,
                m.accept_rate * 100.0,
                m.p50_ms,
                m.p99_ms
            );
            println!(
                "  {:<10} {:>6} requests  {:>6} accepted ({:.1}%)  p50 {:.3} ms  p99 {:.3} ms",
                "rigid",
                m.rigid_requests,
                m.rigid_accepted,
                m.rigid_accept_rate * 100.0,
                m.rigid_p50_ms,
                m.rigid_p99_ms
            );
            println!(
                "  amends     sent {}  granted {}  rejected {}",
                m.amends_sent, m.amends_granted, m.amends_rejected
            );
        }
        if let Some(s) = &stats {
            println!(
                "server    accepted {} / rejected {} / ticks {} / gc {} / wal {} appends",
                s.accepted, s.rejected, s.ticks, s.gc_reclaimed, s.wal_appends
            );
            println!(
                "qos       boost_rounds {} / boosted_mb {} / early_releases {} / \
                 finish_violations {} / oversubscriptions {}",
                s.qos_boost_rounds,
                s.qos_boosted_mb,
                s.qos_early_releases,
                s.qos_finish_violations,
                s.qos_oversubscriptions
            );
        }
    }
    if accepted == 0 {
        return Err("zero requests accepted — check topology/workload match".to_string());
    }
    Ok(())
}

/// Write one line per decision, sorted by request id: `A id bw start
/// finish` for acceptances, `R id reason` for rejections. Two runs whose
/// daemons decided identically produce byte-identical files, which is how
/// the QoS smoke test proves the overlay never changed an admission.
fn dump_decisions(path: &str, decisions: &[(u64, ServerMsg, Instant)]) -> Result<(), String> {
    let mut sorted: Vec<&(u64, ServerMsg, Instant)> = decisions.iter().collect();
    sorted.sort_by_key(|(id, _, _)| *id);
    let mut out = String::with_capacity(sorted.len() * 48);
    for (id, msg, _) in sorted {
        match msg {
            ServerMsg::Accepted {
                bw, start, finish, ..
            } => {
                out.push_str(&format!("A {id} {bw} {start} {finish}\n"));
            }
            ServerMsg::Rejected { reason, .. } => {
                out.push_str(&format!("R {id} {reason:?}\n"));
            }
            ServerMsg::AcceptedSegments { segments, .. } => {
                out.push_str(&format!("S {id}"));
                for (start, end, bw) in segments {
                    out.push_str(&format!(" {start} {end} {bw}"));
                }
                out.push('\n');
            }
            _ => {}
        }
    }
    std::fs::write(path, out).map_err(|e| format!("cannot write {path}: {e}"))
}

#[derive(serde::Serialize)]
struct ClassReport {
    class: String,
    requests: u64,
    accepted: u64,
    accept_rate: f64,
    p50_ms: f64,
    p99_ms: f64,
}

#[derive(serde::Serialize)]
struct MalleableReport {
    fraction: f64,
    requests: u64,
    accepted: u64,
    accept_rate: f64,
    p50_ms: f64,
    p99_ms: f64,
    rigid_requests: u64,
    rigid_accepted: u64,
    rigid_accept_rate: f64,
    rigid_p50_ms: f64,
    rigid_p99_ms: f64,
    amends_sent: u64,
    amends_granted: u64,
    amends_rejected: u64,
}

#[derive(serde::Serialize)]
struct LoadgenReport {
    requests: u64,
    accepted: u64,
    accept_rate: f64,
    wall_ms: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    /// Intended-start-corrected percentiles (see the module docs on
    /// coordinated omission); equal to the raw ones in closed-loop runs.
    corrected_p50_ms: f64,
    corrected_p95_ms: f64,
    corrected_p99_ms: f64,
    /// Corrected p99 of each send-order fifth of the run — the soak
    /// smoke gate compares the last against the first.
    quintile_corrected_p99_ms: Vec<f64>,
    /// The --rate this run paced itself at; `null` for closed-loop.
    open_loop_rate: Option<f64>,
    classes: Vec<ClassReport>,
    /// Per-kind breakdown when `--malleable FRAC` split the trace; `null`
    /// for rigid-only runs so their JSON stays byte-identical.
    malleable: Option<MalleableReport>,
    qos_boost_rounds: u64,
    qos_boosted_mb: u64,
    qos_early_releases: u64,
    qos_finish_violations: u64,
    qos_oversubscriptions: u64,
}
