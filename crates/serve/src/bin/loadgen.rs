//! Load generator for the reservation daemon.
//!
//! Replays a `gridband-workload` Poisson trace (the paper's §5.3 flexible
//! workload) against a running `gridband serve` instance over TCP and
//! reports the accept rate plus submit→decision latency percentiles.
//!
//! Usage:
//!   loadgen [--addr HOST:PORT] [--requests N] [--mean-interarrival S]
//!           [--seed N] [--topo paper|grid5000|MxNxCAP] [--json]

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use gridband_net::Topology;
use gridband_serve::metrics::LatencyHistogram;
use gridband_serve::protocol::{encode_client, ClientMsg, ServerMsg, SubmitReq};
use gridband_workload::WorkloadBuilder;

struct Args {
    addr: String,
    requests: usize,
    mean_interarrival: f64,
    seed: u64,
    topo: Topology,
    json: bool,
}

fn parse_topo(spec: &str) -> Result<Topology, String> {
    match spec {
        "paper" => Ok(Topology::paper_default()),
        "grid5000" => Ok(Topology::grid5000_like()),
        other => {
            let parts: Vec<&str> = other.split('x').collect();
            if parts.len() == 3 {
                let m: usize = parts[0].parse().map_err(|_| format!("bad topo {other}"))?;
                let n: usize = parts[1].parse().map_err(|_| format!("bad topo {other}"))?;
                let cap: f64 = parts[2].parse().map_err(|_| format!("bad topo {other}"))?;
                Ok(Topology::uniform(m, n, cap))
            } else {
                Err(format!(
                    "unknown topology {other} (want paper|grid5000|MxNxCAP)"
                ))
            }
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7421".to_string(),
        requests: 2000,
        mean_interarrival: 1.0,
        seed: 42,
        topo: Topology::paper_default(),
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = val("--addr")?,
            "--requests" => {
                args.requests = val("--requests")?
                    .parse()
                    .map_err(|e| format!("bad --requests: {e}"))?
            }
            "--mean-interarrival" => {
                args.mean_interarrival = val("--mean-interarrival")?
                    .parse()
                    .map_err(|e| format!("bad --mean-interarrival: {e}"))?
            }
            "--seed" => {
                args.seed = val("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--topo" => args.topo = parse_topo(&val("--topo")?)?,
            "--json" => args.json = true,
            "--help" | "-h" => {
                println!(
                    "loadgen [--addr HOST:PORT] [--requests N] [--mean-interarrival S] \
                     [--seed N] [--topo paper|grid5000|MxNxCAP] [--json]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Args) -> Result<(), String> {
    // Scale the horizon with the request count so the builder generates
    // enough arrivals, then truncate to exactly `--requests`.
    let horizon = (args.requests as f64 * args.mean_interarrival * 1.25).max(100.0);
    let trace = WorkloadBuilder::new(args.topo.clone())
        .mean_interarrival(args.mean_interarrival)
        .slack(gridband_workload::Dist::Uniform { lo: 2.0, hi: 4.0 })
        .horizon(horizon)
        .seed(args.seed)
        .build();
    let requests: Vec<_> = trace.iter().take(args.requests).cloned().collect();
    if requests.len() < args.requests {
        eprintln!(
            "loadgen: trace produced only {} arrivals in horizon {horizon}; sending those",
            requests.len()
        );
    }
    if requests.is_empty() {
        return Err("no requests generated".to_string());
    }

    let stream =
        TcpStream::connect(&args.addr).map_err(|e| format!("connect {}: {e}", args.addr))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    let mut write_half = stream.try_clone().map_err(|e| e.to_string())?;
    let n = requests.len();

    // Reader: collect one decision per submission plus the final stats.
    type ReaderResult = Result<(Vec<(u64, ServerMsg, Instant)>, Option<ServerMsg>), String>;
    let reader = std::thread::spawn(move || -> ReaderResult {
        let mut decisions = Vec::with_capacity(n);
        let mut stats = None;
        let mut lines = BufReader::new(stream);
        let mut line = String::new();
        while decisions.len() < n || stats.is_none() {
            line.clear();
            match lines.read_line(&mut line) {
                Ok(0) => return Err("server closed the connection early".to_string()),
                Ok(_) => {}
                Err(e) => return Err(format!("read: {e}")),
            }
            let msg = gridband_serve::protocol::decode_server(line.trim())
                .map_err(|e| format!("bad server line: {e}"))?;
            match msg {
                ServerMsg::Accepted { id, .. } | ServerMsg::Rejected { id, .. } => {
                    decisions.push((id, msg, Instant::now()));
                }
                ServerMsg::Stats(_) => stats = Some(msg),
                ServerMsg::Draining { .. } => {}
                ServerMsg::Error { code, message } => {
                    return Err(format!("server error {code}: {message}"));
                }
                _ => {}
            }
        }
        Ok((decisions, stats))
    });

    // Writer: stream the whole trace, then drain, then ask for stats.
    let started = Instant::now();
    let mut sent_at: HashMap<u64, Instant> = HashMap::with_capacity(n);
    for req in &requests {
        let msg = ClientMsg::Submit(SubmitReq {
            id: req.id.0,
            ingress: req.route.ingress.0,
            egress: req.route.egress.0,
            volume: req.volume,
            max_rate: req.max_rate,
            start: Some(req.start()),
            deadline: Some(req.finish()),
        });
        sent_at.insert(req.id.0, Instant::now());
        let mut line = encode_client(&msg);
        line.push('\n');
        write_half
            .write_all(line.as_bytes())
            .map_err(|e| format!("write: {e}"))?;
    }
    for msg in [ClientMsg::Drain, ClientMsg::Stats] {
        let mut line = encode_client(&msg);
        line.push('\n');
        write_half
            .write_all(line.as_bytes())
            .map_err(|e| format!("write: {e}"))?;
    }
    write_half.flush().map_err(|e| e.to_string())?;

    let (decisions, stats) = reader.join().map_err(|_| "reader panicked".to_string())??;
    let wall = started.elapsed();

    let lat = LatencyHistogram::new();
    let mut accepted = 0usize;
    for (id, msg, at) in &decisions {
        if matches!(msg, ServerMsg::Accepted { .. }) {
            accepted += 1;
        }
        if let Some(t0) = sent_at.get(id) {
            lat.record(at.duration_since(*t0));
        }
    }
    let decided = decisions.len();
    let accept_rate = accepted as f64 / decided.max(1) as f64;

    if args.json {
        let report = serde_json::to_string_pretty(&LoadgenReport {
            requests: decided as u64,
            accepted: accepted as u64,
            accept_rate,
            wall_ms: wall.as_secs_f64() * 1e3,
            p50_ms: lat.quantile_ms(0.50),
            p95_ms: lat.quantile_ms(0.95),
            p99_ms: lat.quantile_ms(0.99),
        })
        .map_err(|e| e.to_string())?;
        println!("{report}");
    } else {
        println!("requests  {decided}");
        println!("accepted  {accepted}  ({:.1}%)", accept_rate * 100.0);
        println!("wall      {:.1} ms", wall.as_secs_f64() * 1e3);
        println!(
            "latency   p50 {:.3} ms   p95 {:.3} ms   p99 {:.3} ms",
            lat.quantile_ms(0.50),
            lat.quantile_ms(0.95),
            lat.quantile_ms(0.99)
        );
        if let Some(ServerMsg::Stats(s)) = stats {
            println!(
                "server    accepted {} / rejected {} / ticks {} / gc {}",
                s.accepted, s.rejected, s.ticks, s.gc_reclaimed
            );
        }
    }
    if accepted == 0 {
        return Err("zero requests accepted — check topology/workload match".to_string());
    }
    Ok(())
}

#[derive(serde::Serialize)]
struct LoadgenReport {
    requests: u64,
    accepted: u64,
    accept_rate: f64,
    wall_ms: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}
