//! `gridband-serve`: a long-running bandwidth-reservation daemon.
//!
//! Exposes the WINDOW batched-admission scheduler as a network service:
//! clients submit transfer requests over a JSON-lines TCP protocol, the
//! engine batches them into `t_step` admission rounds against a live
//! capacity ledger, and decisions (with `retry_after` backpressure on
//! rejection) stream back per connection.
//!
//! With a [`StoreConfig`] in the engine config, every admission round is
//! written through a checksummed write-ahead log (`gridband-store`)
//! before its replies go out, periodic snapshots truncate the log, and a
//! restarted daemon recovers its exact pre-crash commitments — see the
//! recovery-equivalence tests in `tests/`.

pub mod engine;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod state;
pub mod wire;

pub use engine::{Engine, EngineConfig, TimeMode};
pub use gridband_store::{FsDir, FsyncPolicy, MemDir, StoreConfig, StoreError};
pub use metrics::{MetricsRegistry, Role};
pub use protocol::{ClientMsg, RejectReason, ServerMsg, SubmitReq, WireRequest, PROTOCOL_VERSION};
pub use server::{Server, ServerConfig};
pub use state::{EngineState, GcSweep, ReplayTally};
