//! # gridband-flex — online malleable admission
//!
//! The paper fixes `bw(r)` constant for a transfer's lifetime (§2) and
//! defers variable-rate allocation to future work (§7). This crate brings
//! the offline malleable machinery of `gridband-algos` *online*: a
//! WINDOW-style round solver that water-fills each malleable request
//! against the **live ledger's** residual capacity, emitting stepwise
//! plans the ledger books atomically with
//! [`CapacityLedger::reserve_segments`].
//!
//! The packing rule is **earliest-first water-filling**: at every instant
//! of the window the request may use `min(MaxRate, free_in(t),
//! free_out(t))`, clamped below by `MinRate` (instants where even the
//! floor doesn't fit are skipped entirely); volume is scheduled greedily
//! from the window start forward. For one arriving request against fixed
//! prior bookings this is optimal — without a floor the deliverable
//! volume is exactly `∫ min(MaxRate, free_in, free_out) dt`, which
//! [`CapacityLedger::route_free_volume`] evaluates in `O(log k)`, so the
//! solver prechecks the bound before scanning a single breakpoint.
//!
//! Every plan can be re-checked with [`verify_plan`] before booking:
//! volume delivered exactly (within the solver tolerance), every segment
//! inside the window and below `MaxRate`, and no port oversubscription
//! against the very ledger the plan will be booked into.

#![warn(missing_docs)]

use gridband_net::units::{Bandwidth, Time, Volume, EPS};
use gridband_net::{CapacityLedger, Route, SegSpan};
use serde::{Deserialize, Serialize};

/// Relative volume tolerance: a plan may undershoot the requested volume
/// by at most `VOLUME_RTOL × max(volume, 1)` (sub-ε slivers the ledger
/// cannot represent are dropped rather than booked).
pub const VOLUME_RTOL: f64 = 1e-6;

/// One malleable admission request, as the round solver sees it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlexSpec {
    /// Ingress/egress pair the transfer crosses.
    pub route: Route,
    /// Window start (earliest instant any segment may begin).
    pub start: Time,
    /// Window end (latest instant any segment may end).
    pub finish: Time,
    /// Volume to deliver inside the window (MB).
    pub volume: Volume,
    /// Floor rate: segments never run below this (0 = pure malleable).
    pub min_rate: Bandwidth,
    /// Ceiling rate: segments never run above this.
    pub max_rate: Bandwidth,
}

impl FlexSpec {
    /// A pure-malleable spec (no floor).
    pub fn new(
        route: Route,
        start: Time,
        finish: Time,
        volume: Volume,
        max_rate: Bandwidth,
    ) -> Self {
        FlexSpec {
            route,
            start,
            finish,
            volume,
            min_rate: 0.0,
            max_rate,
        }
    }

    /// Shape-check the spec itself (before consulting any ledger).
    pub fn validate(&self) -> Result<(), String> {
        if !(self.start.is_finite() && self.finish.is_finite()) || self.finish - self.start <= EPS {
            return Err(format!(
                "window [{}, {}) is empty or non-finite",
                self.start, self.finish
            ));
        }
        if !self.volume.is_finite() || self.volume <= 0.0 {
            return Err(format!(
                "volume {} must be finite and positive",
                self.volume
            ));
        }
        if !self.max_rate.is_finite() || self.max_rate <= 0.0 {
            return Err(format!(
                "max rate {} must be finite and positive",
                self.max_rate
            ));
        }
        if !self.min_rate.is_finite() || self.min_rate < 0.0 || self.min_rate > self.max_rate {
            return Err(format!(
                "min rate {} must lie in [0, {}]",
                self.min_rate, self.max_rate
            ));
        }
        Ok(())
    }
}

/// The stepwise allocation the solver grants for one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MalleableAssignment {
    /// Client-chosen request id the plan belongs to.
    pub id: u64,
    /// Disjoint, time-ordered constant-rate segments.
    pub segments: Vec<SegSpan>,
}

impl MalleableAssignment {
    /// Total volume across segments.
    pub fn volume(&self) -> Volume {
        self.segments.iter().map(|s| s.area()).sum()
    }

    /// Completion time (end of the last segment).
    pub fn finish(&self) -> Time {
        self.segments.last().map_or(0.0, |s| s.end)
    }
}

/// Earliest-first water-filling of one request against the live ledger.
///
/// Returns the stepwise plan, or `None` when the window cannot carry the
/// volume (even using every free instant at the highest admissible rate).
/// The returned segments are in canonical form — time-ordered, disjoint,
/// adjacent equal-rate pieces merged, every piece longer than ε — and are
/// guaranteed to fit the ledger as of this call, so a subsequent
/// [`CapacityLedger::reserve_segments`] on an unchanged ledger succeeds.
pub fn water_fill(ledger: &CapacityLedger, spec: &FlexSpec) -> Option<Vec<SegSpan>> {
    spec.validate().ok()?;
    let tol = VOLUME_RTOL * spec.volume.max(1.0);
    // O(log k) upper-bound precheck: if even the unconstrained residual
    // volume (which ignores the MinRate floor, so only over-estimates)
    // cannot carry the request, skip the breakpoint scan entirely.
    let bound = ledger
        .route_free_volume(spec.route, spec.start, spec.finish)
        .min(spec.max_rate * (spec.finish - spec.start));
    if bound + tol < spec.volume {
        return None;
    }
    let ing = ledger.ingress_profile(spec.route.ingress);
    let egr = ledger.egress_profile(spec.route.egress);

    // Candidate cuts: window bounds plus every profile breakpoint inside
    // the window, on either port — free capacity is constant between cuts.
    let mut cuts: Vec<Time> = vec![spec.start, spec.finish];
    for p in [ing, egr] {
        for b in p.breakpoints() {
            if b.time > spec.start && b.time < spec.finish {
                cuts.push(b.time);
            }
        }
    }
    cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    cuts.dedup();

    let mut remaining = spec.volume;
    let mut segments: Vec<SegSpan> = Vec::new();
    for w in cuts.windows(2) {
        if remaining <= tol {
            break;
        }
        let (t0, t1) = (w[0], w[1]);
        if t1 - t0 <= EPS {
            // Sub-ε sliver between two near-coincident breakpoints: the
            // ledger cannot represent it, and it carries ≈ nothing.
            continue;
        }
        let avail = spec
            .max_rate
            .min(ing.min_free(t0, t1))
            .min(egr.min_free(t0, t1));
        if avail <= EPS || avail + EPS < spec.min_rate {
            continue;
        }
        let can_carry = avail * (t1 - t0);
        if can_carry >= remaining {
            // Last segment: shrink its length so the volume is exact
            // (finishing early rather than dribbling at a lower rate) —
            // unless the shrunk piece would be a sub-ε sliver, which is
            // dropped and absorbed by the volume tolerance.
            let need = remaining / avail;
            if need > EPS {
                segments.push(SegSpan {
                    start: t0,
                    end: t0 + need,
                    bw: avail,
                });
            }
            remaining = 0.0;
        } else {
            segments.push(SegSpan {
                start: t0,
                end: t1,
                bw: avail,
            });
            remaining -= can_carry;
        }
    }
    if remaining > tol || segments.is_empty() {
        return None;
    }
    // Merge adjacent equal-rate segments for a canonical shape.
    let mut merged: Vec<SegSpan> = Vec::with_capacity(segments.len());
    for s in segments {
        match merged.last_mut() {
            Some(last) if (last.end - s.start).abs() <= EPS && (last.bw - s.bw).abs() <= EPS => {
                last.end = s.end;
            }
            _ => merged.push(s),
        }
    }
    Some(merged)
}

/// Independent check of a plan against the ledger it is about to be
/// booked into: segments inside the window and time-ordered, rates within
/// `(0, MaxRate]` (and at or above the floor), volume delivered exactly
/// (within [`VOLUME_RTOL`]), and every segment individually fitting both
/// route ports — since segments are disjoint in time, per-segment `fits`
/// implies the whole plan books without oversubscribing any port.
pub fn verify_plan(
    ledger: &CapacityLedger,
    spec: &FlexSpec,
    segments: &[SegSpan],
) -> Result<(), String> {
    spec.validate()?;
    if segments.is_empty() {
        return Err("plan has no segments".into());
    }
    let mut prev_end = spec.start;
    for s in segments {
        if s.start + EPS < prev_end || s.end > spec.finish + EPS {
            return Err(format!(
                "segment [{}, {}) outside window/order",
                s.start, s.end
            ));
        }
        if s.end - s.start <= EPS {
            return Err(format!(
                "segment [{}, {}) is a sub-ε sliver",
                s.start, s.end
            ));
        }
        if s.bw <= 0.0 || s.bw > spec.max_rate * (1.0 + 1e-9) {
            return Err(format!(
                "segment rate {} outside (0, {}]",
                s.bw, spec.max_rate
            ));
        }
        if s.bw + EPS < spec.min_rate {
            return Err(format!(
                "segment rate {} below the {} floor",
                s.bw, spec.min_rate
            ));
        }
        if !ledger.fits(spec.route, s.start, s.end, s.bw) {
            return Err(format!(
                "segment [{}, {}) @ {} oversubscribes a port",
                s.start, s.end, s.bw
            ));
        }
        prev_end = s.end;
    }
    let delivered: Volume = segments.iter().map(|s| s.area()).sum();
    if (delivered - spec.volume).abs() > VOLUME_RTOL * spec.volume.max(1.0) + EPS {
        return Err(format!("delivered {delivered} ≠ volume {}", spec.volume));
    }
    Ok(())
}

/// Earliest time at or after `not_before` at which the request could
/// plausibly fit, or `None` when no such time exists before the latest
/// useful start. This is the malleable `retry_after` hint: candidates are
/// `not_before` itself plus every profile breakpoint on the route's ports
/// (capacity only changes there); a candidate `T` is feasible when the
/// window anchored at `T` — `[T, deadline]` for a hard deadline, else
/// `[T, T + duration]` for a sliding window — has residual volume and
/// rate-ceiling room for the full request, per the water-filling bound.
pub fn retry_after(
    ledger: &CapacityLedger,
    spec: &FlexSpec,
    not_before: Time,
    hard_deadline: bool,
) -> Option<Time> {
    spec.validate().ok()?;
    let duration = spec.finish - spec.start;
    let feasible = |t: Time| -> bool {
        let end = if hard_deadline {
            spec.finish
        } else {
            t + duration
        };
        if end - t <= EPS || spec.max_rate * (end - t) + EPS < spec.volume {
            return false;
        }
        let bound = ledger
            .route_free_volume(spec.route, t, end)
            .min(spec.max_rate * (end - t));
        bound + VOLUME_RTOL * spec.volume.max(1.0) >= spec.volume
    };
    // Latest start from which the volume could still drain at MaxRate.
    let latest_useful = if hard_deadline {
        spec.finish - spec.volume / spec.max_rate
    } else {
        f64::INFINITY
    };
    let mut candidates: Vec<Time> = vec![not_before];
    let ing = ledger.ingress_profile(spec.route.ingress);
    let egr = ledger.egress_profile(spec.route.egress);
    for p in [ing, egr] {
        for b in p.breakpoints() {
            if b.time > not_before {
                candidates.push(b.time);
            }
        }
    }
    candidates.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    candidates.dedup();
    candidates
        .into_iter()
        .take_while(|&t| t <= latest_useful)
        .find(|&t| feasible(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridband_net::Topology;

    fn ledger() -> CapacityLedger {
        CapacityLedger::new(Topology::uniform(1, 1, 100.0))
    }

    #[test]
    fn lone_request_runs_flat_at_max_rate() {
        let l = ledger();
        let spec = FlexSpec::new(Route::new(0, 0), 0.0, 20.0, 500.0, 50.0);
        let plan = water_fill(&l, &spec).unwrap();
        assert_eq!(
            plan,
            vec![SegSpan {
                start: 0.0,
                end: 10.0,
                bw: 50.0
            }]
        );
        verify_plan(&l, &spec, &plan).unwrap();
    }

    #[test]
    fn rate_varies_around_a_blocker() {
        let mut l = ledger();
        // 80 MB/s blocked on [0, 10): crawl at 20, then sprint at 100.
        l.reserve(Route::new(0, 0), 0.0, 10.0, 80.0).unwrap();
        let spec = FlexSpec::new(Route::new(0, 0), 0.0, 20.0, 1_100.0, 100.0);
        let plan = water_fill(&l, &spec).unwrap();
        assert_eq!(
            plan,
            vec![
                SegSpan {
                    start: 0.0,
                    end: 10.0,
                    bw: 20.0
                },
                SegSpan {
                    start: 10.0,
                    end: 19.0,
                    bw: 100.0
                },
            ]
        );
        verify_plan(&l, &spec, &plan).unwrap();
        // And the ledger takes the plan verbatim.
        let mut l2 = l.clone();
        l2.reserve_segments(spec.route, &plan).unwrap();
    }

    #[test]
    fn volume_equals_the_waterfilling_bound_exactly_when_saturating() {
        let mut l = ledger();
        l.reserve(Route::new(0, 0), 0.0, 10.0, 90.0).unwrap();
        l.reserve(Route::new(0, 0), 15.0, 25.0, 60.0).unwrap();
        let spec = FlexSpec::new(Route::new(0, 0), 0.0, 25.0, 1_000.0, 100.0);
        // Bound: 10×10 + 5×100 + 10×40 = 1000 — exactly the volume.
        assert_eq!(l.route_free_volume(spec.route, 0.0, 25.0), 1_000.0);
        let plan = water_fill(&l, &spec).unwrap();
        verify_plan(&l, &spec, &plan).unwrap();
        let delivered: f64 = plan.iter().map(|s| s.area()).sum();
        assert!((delivered - 1_000.0).abs() <= VOLUME_RTOL * 1_000.0);
        // One MB more and the precheck rejects without scanning.
        let over = FlexSpec {
            volume: 1_001.0,
            ..spec
        };
        assert!(water_fill(&l, &over).is_none());
    }

    #[test]
    fn min_rate_floor_skips_congested_stretches() {
        let mut l = ledger();
        l.reserve(Route::new(0, 0), 0.0, 10.0, 80.0).unwrap();
        // Floor 50: the 20 MB/s stretch is unusable; only [10, 20) works.
        let spec = FlexSpec {
            min_rate: 50.0,
            ..FlexSpec::new(Route::new(0, 0), 0.0, 20.0, 1_000.0, 100.0)
        };
        let plan = water_fill(&l, &spec).unwrap();
        assert_eq!(
            plan,
            vec![SegSpan {
                start: 10.0,
                end: 20.0,
                bw: 100.0
            }]
        );
        verify_plan(&l, &spec, &plan).unwrap();
        // 1100 needs the congested stretch → infeasible under the floor,
        // feasible without it.
        let over = FlexSpec {
            volume: 1_100.0,
            ..spec
        };
        assert!(water_fill(&l, &over).is_none());
        let pure = FlexSpec {
            min_rate: 0.0,
            ..over
        };
        assert!(water_fill(&l, &pure).is_some());
    }

    #[test]
    fn verifier_rejects_corrupted_plans() {
        let mut l = ledger();
        l.reserve(Route::new(0, 0), 0.0, 10.0, 80.0).unwrap();
        let spec = FlexSpec::new(Route::new(0, 0), 0.0, 20.0, 1_100.0, 100.0);
        let plan = water_fill(&l, &spec).unwrap();
        verify_plan(&l, &spec, &plan).unwrap();
        // Rate above MaxRate.
        let mut bad = plan.clone();
        bad[1].bw = 200.0;
        assert!(verify_plan(&l, &spec, &bad).is_err());
        // Oversubscribing the blocked stretch.
        let mut bad = plan.clone();
        bad[0].bw = 30.0;
        assert!(verify_plan(&l, &spec, &bad).is_err());
        // Volume short.
        let bad = vec![plan[0]];
        assert!(verify_plan(&l, &spec, &bad).is_err());
        // Out of order.
        let mut bad = plan.clone();
        bad.swap(0, 1);
        assert!(verify_plan(&l, &spec, &bad).is_err());
    }

    #[test]
    fn retry_after_points_at_the_blocker_end() {
        let mut l = ledger();
        l.reserve(Route::new(0, 0), 0.0, 10.0, 100.0).unwrap();
        // Sliding window: infeasible now (0 free until 10), feasible at 10.
        let spec = FlexSpec::new(Route::new(0, 0), 0.0, 5.0, 400.0, 100.0);
        assert!(water_fill(&l, &spec).is_none());
        assert_eq!(retry_after(&l, &spec, 0.0, false), Some(10.0));
        // The hint respects `not_before`.
        assert_eq!(retry_after(&l, &spec, 12.0, false), Some(12.0));
        // Hard deadline: the window is fixed, so its residual only
        // shrinks as the start slides forward — a request the bound
        // rejects now can never become feasible later. No useful retry.
        let hard = FlexSpec::new(Route::new(0, 0), 0.0, 13.0, 400.0, 100.0);
        assert!(water_fill(&l, &hard).is_none());
        assert_eq!(retry_after(&l, &hard, 0.0, true), None);
    }
}
