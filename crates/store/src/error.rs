//! Failure modes of the durability layer.

use std::fmt;
use std::io;

/// Shorthand result type for store operations.
pub type StoreResult<T> = Result<T, StoreError>;

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// The backing directory failed an I/O operation.
    Io {
        /// File the operation targeted (store-relative name).
        file: String,
        /// The underlying error.
        source: io::Error,
    },
    /// A persisted record is damaged in a way recovery must not paper
    /// over: a checksum mismatch *before* the end of the log, an invalid
    /// length prefix, a bad magic header, an undecodable payload, or a
    /// snapshot that no longer replays against the topology. (A damaged
    /// *final* record is a torn write and is dropped cleanly instead.)
    Corrupt {
        /// File the damage was found in (store-relative name).
        file: String,
        /// Byte offset of the damaged record within the file.
        offset: u64,
        /// What exactly failed to parse or verify.
        detail: String,
    },
}

impl StoreError {
    /// Helper: wrap an I/O error with the file it concerned.
    pub fn io(file: &str, source: io::Error) -> Self {
        StoreError::Io {
            file: file.to_string(),
            source,
        }
    }

    /// Helper: a corruption report.
    pub fn corrupt(file: &str, offset: u64, detail: impl Into<String>) -> Self {
        StoreError::Corrupt {
            file: file.to_string(),
            offset,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { file, source } => write!(f, "store io error on `{file}`: {source}"),
            StoreError::Corrupt {
                file,
                offset,
                detail,
            } => write!(f, "corrupt record in `{file}` at offset {offset}: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Corrupt { .. } => None,
        }
    }
}
