//! Typed payloads the serve engine writes through the [`Store`].
//!
//! The central design decision is that one admission round is **one**
//! WAL record: [`WalRecord::Round`] carries the round's virtual time and
//! its *entire* decision batch. A crash while the record is in flight
//! therefore drops the whole round atomically — recovery lands exactly
//! at the end of round `k − 1`, clients resubmit their unreplied
//! requests, and the re-run round re-decides them bit-identically (the
//! policies in `gridband-algos` depend only on decision-time state, see
//! the recovery-equivalence tests in `gridband-serve`). There is never a
//! half-applied round to reconcile.
//!
//! Payloads are serialized as JSON (via the vendored `serde_json`, whose
//! float formatting round-trips `f64` bit-exactly) and framed/checksummed
//! by the [`wal`](crate::wal) layer. Corruption that survives the CRC —
//! possible only through version drift or a writer bug — is still
//! reported as a precise [`StoreError::Corrupt`] with the record's byte
//! offset, never a panic.
//!
//! [`Store`]: crate::store::Store

use crate::error::{StoreError, StoreResult};
use gridband_net::{LedgerState, PortRef, SegSpan};
use serde::{Deserialize, Serialize};

/// Version stamp inside [`EngineSnapshot`]; bump on layout changes so a
/// newer daemon refuses (rather than misreads) an older image.
///
/// v2: the ledger carries live capacity holds and the snapshot carries
/// the engine's hold table (two-phase cross-shard admission).
///
/// v3: the ledger carries its GC watermark and snapshot writes are
/// compacted — expired reservations are collected and port profiles
/// truncated before export, so an image restored from disk is the same
/// compacted state a GC'ing engine holds in memory.
///
/// v4: the ledger carries live *segmented* (malleable) reservations and
/// rounds may log segmented grants ([`RoundDecision::AcceptSegments`])
/// and mid-flight renegotiations ([`RoundDecision::Amend`]).
pub const SNAPSHOT_VERSION: u32 = 4;

/// Oldest snapshot version this build still decodes. A v2 image differs
/// from v3 only by the absent ledger `watermark` field (deserialized as
/// `None` — "never collected") and by not being compacted; a v3 image
/// from v4 only by the absent ledger `live_seg` field (deserialized as
/// `None` — "no segmented reservations", which is exactly what a
/// pre-malleable daemon had). The engine handles both, so a daemon
/// upgraded across either change recovers its pre-upgrade durable state.
/// Versions below this had a different ledger layout and are refused.
pub const SNAPSHOT_MIN_VERSION: u32 = 2;

/// One admission decision inside a [`WalRecord::Round`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RoundDecision {
    /// The request was admitted with an assigned `(bw, σ, τ)`.
    Accept {
        /// Engine-assigned request id.
        id: u64,
        /// Ingress port index of the booked route.
        ingress: u32,
        /// Egress port index of the booked route.
        egress: u32,
        /// Assigned constant bandwidth (MB/s).
        bw: f64,
        /// Assigned start instant σ (virtual seconds).
        start: f64,
        /// Assigned finish instant τ (virtual seconds).
        finish: f64,
        /// The client cancelled while the request was still pending; the
        /// acceptance was immediately voided. Replay must book then
        /// cancel so reservation-id allocation stays in sync.
        cancelled: bool,
    },
    /// The request was admitted with a stepwise (malleable) plan booked
    /// via `CapacityLedger::reserve_segments`.
    AcceptSegments {
        /// Engine-assigned request id.
        id: u64,
        /// Ingress port index of the booked route.
        ingress: u32,
        /// Egress port index of the booked route.
        egress: u32,
        /// The granted constant-rate segments, in time order.
        segments: Vec<SegSpan>,
        /// The client cancelled while the request was still pending; the
        /// acceptance was immediately voided. Replay must book then
        /// cancel so reservation-id allocation stays in sync.
        cancelled: bool,
    },
    /// A live segmented reservation was renegotiated mid-flight: its
    /// plan was atomically replaced (same request id, same reservation
    /// id). Only *granted* amends are logged — a rejected amend changes
    /// no durable state.
    Amend {
        /// Request id whose reservation was amended.
        id: u64,
        /// The replacement segments, in time order.
        segments: Vec<SegSpan>,
    },
    /// The request was rejected in this round.
    Reject {
        /// Engine-assigned request id.
        id: u64,
    },
}

/// One durable event in the write-ahead log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// An admission round completed: the virtual round time and every
    /// decision it produced, in decision order, as one atomic record.
    Round {
        /// Virtual time of the round tick.
        t: f64,
        /// The round's full decision batch, in the order decided.
        decisions: Vec<RoundDecision>,
    },
    /// A live (already accepted) reservation was cancelled between
    /// rounds, freeing its capacity.
    Cancel {
        /// Request id whose reservation was cancelled.
        id: u64,
    },
    /// A request was refused before ever reaching a round (invalid,
    /// unknown route, queue full). Logged so recovery keeps the request
    /// id counter and outcome history in sync.
    EarlyReject {
        /// Engine-assigned request id.
        id: u64,
    },
    /// A two-phase cross-shard hold was placed on one local port (the
    /// prepare step of §5.4 admission). Logged *after* the hold took
    /// effect, so replay re-places it unconditionally.
    HoldPlace {
        /// Cluster-wide transaction id (the client's request id).
        txn: u64,
        /// The single local port the hold charges.
        port: PortRef,
        /// Held constant bandwidth (MB/s).
        bw: f64,
        /// Start of the held window (virtual seconds, inclusive).
        start: f64,
        /// End of the held window (virtual seconds, exclusive).
        finish: f64,
        /// Virtual deadline after which an uncommitted hold is swept.
        expires: f64,
    },
    /// The hold for `txn` was committed: it stays charged on its port
    /// for its full window and is no longer subject to expiry.
    HoldCommit {
        /// Transaction id of the committed hold.
        txn: u64,
    },
    /// The hold for `txn` was released (abort, timeout, or expiry
    /// sweep), freeing its pinned capacity.
    HoldRelease {
        /// Transaction id of the released hold.
        txn: u64,
    },
    /// The GC watermark advanced: everything fully before `watermark` —
    /// expired reservations, expired holds, and the port-profile history
    /// they charged — was collected. Logged *after* the round record that
    /// triggered the sweep, so replay (recovery and followers) collects
    /// at exactly the same point in the decision stream and lands on the
    /// identical compacted state.
    Gc {
        /// The new watermark (virtual seconds); watermarks only advance.
        watermark: f64,
    },
}

/// Terminal outcome of a request, kept in the snapshot so `Query`
/// replies survive recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestOutcome {
    /// Admitted (and still live or already finished).
    Accepted,
    /// Rejected.
    Rejected,
    /// Cancelled by the client.
    Cancelled,
}

/// A complete image of the engine's durable state at a round boundary.
///
/// The ledger is carried as an exported [`LedgerState`] — port profiles
/// verbatim, **not** rebuilt by replaying reservations — so the restored
/// breakpoint vectors are bit-identical to the originals regardless of
/// float-addition order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Layout version; must lie in
    /// [`SNAPSHOT_MIN_VERSION`]..=[`SNAPSHOT_VERSION`].
    pub version: u32,
    /// Virtual clock at the snapshot instant.
    pub now: f64,
    /// Next scheduled round tick.
    pub next_tick: f64,
    /// Rounds executed so far.
    pub rounds: u64,
    /// Full capacity-ledger state (profiles + live reservations).
    pub ledger: LedgerState,
    /// Map of request id → live reservation id.
    pub accepted: Vec<(u64, u64)>,
    /// Terminal outcomes, oldest first (bounded by the engine's history
    /// capacity).
    pub states: Vec<(u64, RequestOutcome)>,
    /// Live two-phase holds by transaction id, sorted by `txn`.
    pub holds: Vec<HoldState>,
}

/// One live two-phase hold in an [`EngineSnapshot`]: the engine-side
/// bookkeeping that pairs a cluster transaction with the ledger hold
/// charging its capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HoldState {
    /// Cluster-wide transaction id.
    pub txn: u64,
    /// Ledger hold id charging the capacity.
    pub hold: u64,
    /// Virtual deadline after which an uncommitted hold is swept.
    pub expires: f64,
    /// Whether the hold has been committed (exempt from expiry).
    pub committed: bool,
}

fn decode_json<T: Deserialize>(
    kind: &str,
    file: &str,
    offset: u64,
    payload: &[u8],
) -> StoreResult<T> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| StoreError::corrupt(file, offset, format!("{kind} payload is not UTF-8")))?;
    serde_json::from_str(text).map_err(|e| {
        StoreError::corrupt(file, offset, format!("{kind} payload does not parse: {e}"))
    })
}

impl WalRecord {
    /// Serialize to the byte payload handed to [`Store::append`].
    ///
    /// [`Store::append`]: crate::store::Store::append
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_string(self)
            .expect("WAL record serialization is infallible")
            .into_bytes()
    }

    /// Decode a payload recovered from the WAL. `file`/`offset` locate
    /// the record for the [`StoreError::Corrupt`] this returns when a
    /// CRC-valid payload does not parse.
    pub fn decode(file: &str, offset: u64, payload: &[u8]) -> StoreResult<Self> {
        decode_json("WAL record", file, offset, payload)
    }
}

impl EngineSnapshot {
    /// Serialize to the byte payload handed to [`Store::install_snapshot`].
    ///
    /// [`Store::install_snapshot`]: crate::store::Store::install_snapshot
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_string(self)
            .expect("snapshot serialization is infallible")
            .into_bytes()
    }

    /// Decode a recovered snapshot payload, checking the version stamp.
    /// Versions [`SNAPSHOT_MIN_VERSION`]..=[`SNAPSHOT_VERSION`] are
    /// accepted (older ones decode with `watermark: None`); anything
    /// outside that range — unknown-old or newer-than-this-build — is
    /// refused rather than misread.
    pub fn decode(file: &str, payload: &[u8]) -> StoreResult<Self> {
        let snap: EngineSnapshot = decode_json("snapshot", file, 0, payload)?;
        if !(SNAPSHOT_MIN_VERSION..=SNAPSHOT_VERSION).contains(&snap.version) {
            return Err(StoreError::corrupt(
                file,
                0,
                format!(
                    "snapshot version {} (this build reads {SNAPSHOT_MIN_VERSION}..={SNAPSHOT_VERSION})",
                    snap.version
                ),
            ));
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridband_net::{CapacityLedger, Route, Topology};

    fn sample_round() -> WalRecord {
        WalRecord::Round {
            t: 12.5,
            decisions: vec![
                RoundDecision::Accept {
                    id: 3,
                    ingress: 0,
                    egress: 1,
                    bw: 12.437_218_9,
                    start: 12.5,
                    finish: 97.062_5,
                    cancelled: false,
                },
                RoundDecision::Reject { id: 4 },
                RoundDecision::Accept {
                    id: 5,
                    ingress: 1,
                    egress: 0,
                    bw: 0.1 + 0.2, // deliberately non-representable sum
                    start: 12.5,
                    finish: 50.0,
                    cancelled: true,
                },
                RoundDecision::AcceptSegments {
                    id: 6,
                    ingress: 0,
                    egress: 0,
                    segments: vec![
                        SegSpan {
                            start: 12.5,
                            end: 20.0,
                            bw: 0.1 + 0.2, // deliberately non-representable sum
                        },
                        SegSpan {
                            start: 25.0,
                            end: 40.0,
                            bw: 97.062_5,
                        },
                    ],
                    cancelled: false,
                },
                RoundDecision::Amend {
                    id: 6,
                    segments: vec![SegSpan {
                        start: 12.5,
                        end: 30.0,
                        bw: 33.3,
                    }],
                },
            ],
        }
    }

    #[test]
    fn wal_record_round_trips_bit_exactly() {
        for rec in [
            sample_round(),
            WalRecord::Cancel { id: 7 },
            WalRecord::EarlyReject { id: 9 },
            WalRecord::HoldPlace {
                txn: 11,
                port: gridband_net::PortRef::In(gridband_net::IngressId(2)),
                bw: 0.1 + 0.2, // deliberately non-representable sum
                start: 12.5,
                finish: 42.75,
                expires: 62.5,
            },
            WalRecord::HoldCommit { txn: 11 },
            WalRecord::HoldRelease { txn: 12 },
            WalRecord::Gc {
                watermark: 0.1 + 0.2, // deliberately non-representable sum
            },
        ] {
            let bytes = rec.encode();
            let back = WalRecord::decode("w", 8, &bytes).unwrap();
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn snapshot_round_trips_and_checks_version() {
        let mut ledger = CapacityLedger::new(Topology::uniform(2, 2, 100.0));
        ledger.reserve(Route::new(0, 1), 0.0, 10.0, 33.3).unwrap();
        ledger
            .hold(
                gridband_net::PortRef::Out(gridband_net::EgressId(0)),
                10.0,
                20.0,
                12.5,
            )
            .unwrap();
        let snap = EngineSnapshot {
            version: SNAPSHOT_VERSION,
            now: 10.0,
            next_tick: 15.0,
            rounds: 2,
            ledger: ledger.export_state(),
            accepted: vec![(3, 0)],
            states: vec![(1, RequestOutcome::Rejected), (3, RequestOutcome::Accepted)],
            holds: vec![HoldState {
                txn: 9,
                hold: 0,
                expires: 20.0,
                committed: false,
            }],
        };
        let bytes = snap.encode();
        let back = EngineSnapshot::decode("s", &bytes).unwrap();
        assert_eq!(back, snap);

        for bad in [SNAPSHOT_MIN_VERSION - 1, SNAPSHOT_VERSION + 1] {
            let mut stale = snap.clone();
            stale.version = bad;
            assert!(matches!(
                EngineSnapshot::decode("s", &stale.encode()),
                Err(StoreError::Corrupt { .. })
            ));
        }
    }

    #[test]
    fn v2_snapshot_without_watermark_field_decodes() {
        // A v2 writer predates the ledger's `watermark` field entirely:
        // strip the key (not just null it) from an encoded image and
        // stamp the old version, as an upgraded daemon would find on disk.
        let mut ledger = CapacityLedger::new(Topology::uniform(2, 2, 100.0));
        ledger.reserve(Route::new(0, 1), 0.0, 10.0, 33.3).unwrap();
        let snap = EngineSnapshot {
            version: SNAPSHOT_VERSION,
            now: 10.0,
            next_tick: 15.0,
            rounds: 2,
            ledger: ledger.export_state(),
            accepted: vec![(3, 0)],
            states: vec![(3, RequestOutcome::Accepted)],
            holds: vec![],
        };
        let text = String::from_utf8(snap.encode()).unwrap();
        assert!(text.contains(",\"watermark\":null"), "encoding drifted");
        assert!(text.contains(",\"live_seg\":null"), "encoding drifted");
        let v2 = text
            .replace(",\"watermark\":null", "")
            .replace(",\"live_seg\":null", "")
            .replace("\"version\":4", "\"version\":2");
        let back = EngineSnapshot::decode("s", v2.as_bytes()).unwrap();
        let mut want = snap;
        want.version = 2;
        assert_eq!(back, want);
        assert_eq!(back.ledger.watermark, None);
        assert_eq!(back.ledger.live_seg, None);
    }

    #[test]
    fn v3_snapshot_without_live_seg_field_decodes() {
        // A v3 writer predates the ledger's `live_seg` field entirely:
        // strip the key from an encoded image and stamp the old version,
        // as a daemon upgraded across the malleable change finds on disk.
        let mut ledger = CapacityLedger::new(Topology::uniform(2, 2, 100.0));
        ledger.reserve(Route::new(0, 1), 0.0, 10.0, 33.3).unwrap();
        ledger.gc(5.0);
        let snap = EngineSnapshot {
            version: SNAPSHOT_VERSION,
            now: 10.0,
            next_tick: 15.0,
            rounds: 2,
            ledger: ledger.export_state(),
            accepted: vec![(3, 0)],
            states: vec![(3, RequestOutcome::Accepted)],
            holds: vec![],
        };
        let text = String::from_utf8(snap.encode()).unwrap();
        assert!(text.contains(",\"live_seg\":null"), "encoding drifted");
        let v3 = text
            .replace(",\"live_seg\":null", "")
            .replace("\"version\":4", "\"version\":3");
        let back = EngineSnapshot::decode("s", v3.as_bytes()).unwrap();
        let mut want = snap;
        want.version = 3;
        assert_eq!(back, want);
        assert_eq!(back.ledger.live_seg, None);
        assert_eq!(back.ledger.watermark, Some(5.0));
    }

    #[test]
    fn garbage_payloads_are_corrupt_not_panics() {
        for junk in [&b"\xFF\xFE"[..], b"{\"Round\":", b"42", b"{\"Nope\":{}}"] {
            match WalRecord::decode("w", 16, junk) {
                Err(StoreError::Corrupt { offset: 16, .. }) => {}
                other => panic!("expected Corrupt at 16, got {other:?}"),
            }
        }
        assert!(matches!(
            EngineSnapshot::decode("s", b"not json"),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
