//! The directory abstraction the store writes through.
//!
//! [`Store`](crate::Store) never touches the filesystem directly; it
//! goes through a [`Dir`], so the same WAL/snapshot/recovery logic runs
//! against the real disk ([`FsDir`]) and against an in-memory fake
//! ([`MemDir`]) whose *write budget* can be exhausted mid-record to
//! inject exactly the torn-write crashes the recovery path must survive.
//!
//! All methods take `&self`: a `Dir` lives behind `Arc<dyn Dir>` inside
//! a cloneable engine config, and the implementations synchronize
//! internally.

use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A monotonic write-sequence condvar published by a [`Dir`].
///
/// Every mutating operation bumps the sequence and wakes waiters, so a
/// log tailer (the WAL shipper) can *block* until the directory changes
/// instead of polling on a timer. The sequence carries no meaning beyond
/// "something was written since you last looked": waiters re-scan the
/// directory and go back to sleep on spurious wakeups.
#[derive(Debug, Default)]
pub struct DirSignal {
    seq: Mutex<u64>,
    cond: Condvar,
}

impl DirSignal {
    /// A fresh signal at sequence 0.
    pub fn new() -> DirSignal {
        DirSignal::default()
    }

    /// Current write sequence. Sample this *before* scanning the
    /// directory, then pass it to [`wait_past`](Self::wait_past): a write
    /// landing between the scan and the wait bumps the sequence past the
    /// sample, so the wait returns immediately instead of losing the
    /// wakeup.
    pub fn seq(&self) -> u64 {
        *self.seq.lock().expect("DirSignal lock poisoned")
    }

    /// Bump the sequence and wake all waiters.
    pub fn notify(&self) {
        let mut seq = self.seq.lock().expect("DirSignal lock poisoned");
        *seq += 1;
        self.cond.notify_all();
    }

    /// Block until the sequence advances past `seen` or `timeout`
    /// elapses; returns the sequence at wakeup.
    pub fn wait_past(&self, seen: u64, timeout: Duration) -> u64 {
        let deadline = Instant::now() + timeout;
        let mut seq = self.seq.lock().expect("DirSignal lock poisoned");
        while *seq <= seen {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            let (guard, _) = self
                .cond
                .wait_timeout(seq, left)
                .expect("DirSignal lock poisoned");
            seq = guard;
        }
        *seq
    }
}

/// A flat directory of named files supporting the operations the store
/// needs: append-only writes, whole-file reads, fsync, atomic replace,
/// truncate and delete.
pub trait Dir: Send + Sync + fmt::Debug {
    /// Read a whole file. `ErrorKind::NotFound` if it does not exist.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;

    /// Names of all files currently present.
    fn list(&self) -> io::Result<Vec<String>>;

    /// Append `data` to `name`, creating the file if missing.
    fn append(&self, name: &str, data: &[u8]) -> io::Result<()>;

    /// Flush `name`'s data durably (fsync). A no-op for files that do
    /// not exist.
    fn sync(&self, name: &str) -> io::Result<()>;

    /// Atomically and durably replace `name`'s contents: after this
    /// returns, a crash observes either the old bytes or the new bytes,
    /// never a mixture, and the new bytes survive the crash.
    fn replace(&self, name: &str, data: &[u8]) -> io::Result<()>;

    /// Delete a file; deleting a missing file is a no-op.
    fn remove(&self, name: &str) -> io::Result<()>;

    /// Truncate a file to `len` bytes (used to drop a torn WAL tail so
    /// later appends extend a valid log).
    fn truncate(&self, name: &str, len: u64) -> io::Result<()>;

    /// The write-wakeup signal for this directory, if the implementation
    /// publishes one. Tailers use it to sleep until the next write
    /// instead of polling; `None` (the default) means "poll".
    fn signal(&self) -> Option<&DirSignal> {
        None
    }
}

// ---------------------------------------------------------------------------
// FsDir
// ---------------------------------------------------------------------------

/// A [`Dir`] over a real filesystem directory. Append handles are cached
/// so every WAL append does not reopen the file.
pub struct FsDir {
    path: PathBuf,
    handles: Mutex<HashMap<String, File>>,
    signal: DirSignal,
}

impl fmt::Debug for FsDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FsDir").field("path", &self.path).finish()
    }
}

impl FsDir {
    /// Open (creating if needed) the directory at `path`.
    pub fn new(path: impl Into<PathBuf>) -> io::Result<FsDir> {
        let path = path.into();
        fs::create_dir_all(&path)?;
        Ok(FsDir {
            path,
            handles: Mutex::new(HashMap::new()),
            signal: DirSignal::new(),
        })
    }

    /// The directory this `FsDir` writes into.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    fn file_path(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }

    /// Fsync the directory itself so renames/creates/unlinks are durable.
    fn sync_dir(&self) -> io::Result<()> {
        File::open(&self.path)?.sync_all()
    }
}

impl Dir for FsDir {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        File::open(self.file_path(name))?.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.path)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Ok(name) = entry.file_name().into_string() {
                    names.push(name);
                }
            }
        }
        Ok(names)
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let mut handles = self.handles.lock().expect("FsDir lock poisoned");
        if !handles.contains_key(name) {
            let f = OpenOptions::new()
                .append(true)
                .create(true)
                .open(self.file_path(name))?;
            handles.insert(name.to_string(), f);
        }
        handles
            .get_mut(name)
            .expect("inserted above")
            .write_all(data)?;
        drop(handles);
        self.signal.notify();
        Ok(())
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        let mut handles = self.handles.lock().expect("FsDir lock poisoned");
        match handles.get(name) {
            Some(f) => f.sync_data(),
            None => match File::open(self.file_path(name)) {
                Ok(f) => {
                    f.sync_data()?;
                    handles.insert(name.to_string(), f);
                    Ok(())
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
                Err(e) => Err(e),
            },
        }
    }

    fn replace(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let tmp_name = format!(".tmp.{name}");
        let tmp = self.file_path(&tmp_name);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_all()?;
        }
        // A cached handle would keep pointing at the unlinked old inode
        // after the rename; drop it so the next append reopens.
        self.handles
            .lock()
            .expect("FsDir lock poisoned")
            .remove(name);
        fs::rename(&tmp, self.file_path(name))?;
        self.sync_dir()?;
        self.signal.notify();
        Ok(())
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.handles
            .lock()
            .expect("FsDir lock poisoned")
            .remove(name);
        match fs::remove_file(self.file_path(name)) {
            Ok(()) => {
                self.sync_dir()?;
                self.signal.notify();
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        // Drop any append handle first: its kernel offset would be past
        // the new end, and O_APPEND re-seeks on write anyway — reopening
        // keeps the behaviour obvious.
        self.handles
            .lock()
            .expect("FsDir lock poisoned")
            .remove(name);
        let f = OpenOptions::new().write(true).open(self.file_path(name))?;
        f.set_len(len)?;
        f.sync_data()?;
        self.signal.notify();
        Ok(())
    }

    fn signal(&self) -> Option<&DirSignal> {
        Some(&self.signal)
    }
}

// ---------------------------------------------------------------------------
// MemDir
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct MemInner {
    files: HashMap<String, Vec<u8>>,
    /// Remaining bytes the fault injector allows to be written. `None`
    /// means unlimited. When a write exceeds the budget, only the
    /// budgeted prefix lands (a torn write) and the call errors.
    write_budget: Option<u64>,
}

/// An in-memory [`Dir`] for tests and benchmarks, with torn-write fault
/// injection via [`set_write_budget`](MemDir::set_write_budget).
///
/// Because a process kill does not lose bytes the kernel already
/// accepted, `MemDir` keeps everything written — crash simulation is
/// simply "stop the engine, reopen a `Store` over the same `MemDir`".
/// Torn writes (the mid-`write(2)` crash) are injected with the budget.
#[derive(Debug, Default)]
pub struct MemDir {
    inner: Mutex<MemInner>,
    signal: DirSignal,
}

impl MemDir {
    /// An empty in-memory directory.
    pub fn new() -> MemDir {
        MemDir::default()
    }

    /// Allow only `budget` more bytes of writes; the write that crosses
    /// the limit lands partially (torn) and fails, and every later write
    /// fails outright. [`clear_write_budget`](Self::clear_write_budget)
    /// lifts the limit.
    pub fn set_write_budget(&self, budget: u64) {
        self.inner
            .lock()
            .expect("MemDir lock poisoned")
            .write_budget = Some(budget);
    }

    /// Remove any write budget (writes succeed again).
    pub fn clear_write_budget(&self) {
        self.inner
            .lock()
            .expect("MemDir lock poisoned")
            .write_budget = None;
    }

    /// Current contents of `name`, if present (test inspection).
    pub fn contents(&self, name: &str) -> Option<Vec<u8>> {
        self.inner
            .lock()
            .expect("MemDir lock poisoned")
            .files
            .get(name)
            .cloned()
    }

    /// Overwrite `name` directly, bypassing budgets (test setup: torn
    /// tails, bit flips).
    pub fn put(&self, name: &str, data: Vec<u8>) {
        self.inner
            .lock()
            .expect("MemDir lock poisoned")
            .files
            .insert(name.to_string(), data);
        self.signal.notify();
    }

    /// Take `budget` bytes out of the write budget; returns how many of
    /// `want` bytes may land and whether the write must fail.
    fn charge(inner: &mut MemInner, want: u64) -> (usize, bool) {
        match inner.write_budget {
            None => (want as usize, false),
            Some(left) => {
                let allowed = left.min(want);
                inner.write_budget = Some(left - allowed);
                (allowed as usize, allowed < want)
            }
        }
    }
}

impl Dir for MemDir {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.inner
            .lock()
            .expect("MemDir lock poisoned")
            .files
            .get(name)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no file `{name}`")))
    }

    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self
            .inner
            .lock()
            .expect("MemDir lock poisoned")
            .files
            .keys()
            .cloned()
            .collect())
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("MemDir lock poisoned");
        let (landed, torn) = Self::charge(&mut inner, data.len() as u64);
        let file = inner.files.entry(name.to_string()).or_default();
        file.extend_from_slice(&data[..landed]);
        drop(inner);
        // Notify even on a torn write: a prefix landed, and waking a
        // tailer that finds nothing new is harmless.
        self.signal.notify();
        if torn {
            Err(io::Error::other("injected torn write (budget exhausted)"))
        } else {
            Ok(())
        }
    }

    fn sync(&self, _name: &str) -> io::Result<()> {
        Ok(())
    }

    fn replace(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("MemDir lock poisoned");
        let (_, torn) = Self::charge(&mut inner, data.len() as u64);
        if torn {
            // The real-filesystem contract is write-tmp-then-rename: a
            // torn write dies in the tmp file and the target keeps its
            // old contents.
            return Err(io::Error::other("injected torn write (budget exhausted)"));
        }
        inner.files.insert(name.to_string(), data.to_vec());
        drop(inner);
        self.signal.notify();
        Ok(())
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.inner
            .lock()
            .expect("MemDir lock poisoned")
            .files
            .remove(name);
        self.signal.notify();
        Ok(())
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("MemDir lock poisoned");
        match inner.files.get_mut(name) {
            Some(f) => {
                f.truncate(len as usize);
                drop(inner);
                self.signal.notify();
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no file `{name}`"),
            )),
        }
    }

    fn signal(&self) -> Option<&DirSignal> {
        Some(&self.signal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memdir_append_read_roundtrip() {
        let d = MemDir::new();
        d.append("a", b"hel").unwrap();
        d.append("a", b"lo").unwrap();
        assert_eq!(d.read("a").unwrap(), b"hello");
        assert!(d.read("missing").is_err());
        let mut names = d.list().unwrap();
        names.sort();
        assert_eq!(names, vec!["a"]);
    }

    #[test]
    fn memdir_budget_injects_torn_writes() {
        let d = MemDir::new();
        d.append("w", b"0123").unwrap();
        d.set_write_budget(3);
        // 6 bytes wanted, 3 allowed: the prefix lands, the call fails.
        assert!(d.append("w", b"abcdef").is_err());
        assert_eq!(d.read("w").unwrap(), b"0123abc");
        // Budget exhausted: nothing more lands.
        assert!(d.append("w", b"x").is_err());
        assert_eq!(d.read("w").unwrap(), b"0123abc");
        d.clear_write_budget();
        d.append("w", b"!").unwrap();
        assert_eq!(d.read("w").unwrap(), b"0123abc!");
    }

    #[test]
    fn memdir_torn_replace_keeps_old_contents() {
        let d = MemDir::new();
        d.replace("s", b"old").unwrap();
        d.set_write_budget(2);
        assert!(d.replace("s", b"newer").is_err());
        assert_eq!(d.read("s").unwrap(), b"old");
    }

    #[test]
    fn dir_signal_bumps_on_every_mutation() {
        let d = MemDir::new();
        let sig = d.signal().expect("MemDir publishes a signal");
        let s0 = sig.seq();
        d.append("a", b"x").unwrap();
        assert!(sig.seq() > s0);
        let s1 = sig.seq();
        d.replace("a", b"y").unwrap();
        d.truncate("a", 0).unwrap();
        d.remove("a").unwrap();
        assert!(sig.seq() >= s1 + 3);
        // Reads do not notify.
        let s2 = sig.seq();
        let _ = d.list().unwrap();
        assert_eq!(sig.seq(), s2);
    }

    #[test]
    fn dir_signal_wait_past_sees_concurrent_writes() {
        use std::sync::Arc;
        let d = Arc::new(MemDir::new());
        let seen = d.signal().unwrap().seq();
        let writer = {
            let d = Arc::clone(&d);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                d.append("w", b"payload").unwrap();
            })
        };
        // Blocks until the writer lands (well inside the timeout).
        let now = d.signal().unwrap().wait_past(seen, Duration::from_secs(5));
        assert!(now > seen);
        writer.join().unwrap();
        // A stale `seen` returns immediately without sleeping.
        let t0 = Instant::now();
        let again = d.signal().unwrap().wait_past(seen, Duration::from_secs(5));
        assert!(again > seen);
        assert!(t0.elapsed() < Duration::from_secs(1));
        // And an up-to-date `seen` times out rather than hanging.
        let cur = d.signal().unwrap().seq();
        let t1 = Instant::now();
        let after = d
            .signal()
            .unwrap()
            .wait_past(cur, Duration::from_millis(30));
        assert_eq!(after, cur);
        assert!(t1.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn fsdir_publishes_a_signal_too() {
        let tmp = std::env::temp_dir().join(format!("gridband-dirsignal-{}", std::process::id()));
        let d = FsDir::new(&tmp).unwrap();
        let sig = d.signal().expect("FsDir publishes a signal");
        let s0 = sig.seq();
        d.append("wal", b"rec").unwrap();
        assert!(sig.seq() > s0);
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn memdir_truncate_and_remove() {
        let d = MemDir::new();
        d.append("f", b"abcdef").unwrap();
        d.truncate("f", 2).unwrap();
        assert_eq!(d.read("f").unwrap(), b"ab");
        d.remove("f").unwrap();
        assert!(d.read("f").is_err());
        d.remove("f").unwrap(); // idempotent
    }
}
