//! The generation-numbered WAL + snapshot store.
//!
//! On disk a store is a flat directory of at most two generations of
//! files:
//!
//! ```text
//! snap-<G>   # snapshot that opens generation G (absent for G = 0)
//! wal-<G>    # records appended since that snapshot
//! ```
//!
//! Installing a snapshot is the truncation point of the log: the new
//! `snap-<G+1>` is written atomically and durably, a fresh empty
//! `wal-<G+1>` is created, and only then are the generation-`G` files
//! deleted. A crash between any two of those steps leaves either
//! generation fully intact, and recovery picks the highest generation
//! that has a snapshot.

use crate::dir::Dir;
use crate::error::{StoreError, StoreResult};
use crate::wal::{frame_record, parse_snapshot, scan_wal, MAGIC_SNAP, MAGIC_WAL};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// When WAL appends are flushed to durable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every appended record (cancels and early rejects are
    /// durable before their replies are sent).
    Always,
    /// Fsync once per admission round, before the round's replies are
    /// sent. Decisions are never externalized without being durable;
    /// cancels logged between rounds ride with the next round's flush.
    Round,
    /// Never fsync (the OS flushes eventually). Survives process kills
    /// but not power loss; for benchmarks and tests.
    Off,
}

impl FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "round" => Ok(FsyncPolicy::Round),
            "off" => Ok(FsyncPolicy::Off),
            other => Err(format!(
                "unknown fsync policy `{other}` (expected always|round|off)"
            )),
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Round => "round",
            FsyncPolicy::Off => "off",
        })
    }
}

/// How the serve engine should persist itself; carried inside its
/// (cloneable) config.
#[derive(Clone)]
pub struct StoreConfig {
    /// The directory the WAL and snapshots live in.
    pub dir: Arc<dyn Dir>,
    /// When appends are flushed.
    pub fsync: FsyncPolicy,
    /// Install a snapshot (and truncate the log) every this many
    /// admission rounds; `0` disables periodic snapshots.
    pub snapshot_every: u64,
}

impl fmt::Debug for StoreConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoreConfig")
            .field("dir", &self.dir)
            .field("fsync", &self.fsync)
            .field("snapshot_every", &self.snapshot_every)
            .finish()
    }
}

/// What [`Store::open`] found on disk.
#[derive(Debug)]
pub struct Recovered {
    /// Generation the store resumed at.
    pub gen: u64,
    /// The snapshot payload opening that generation, if any.
    pub snapshot: Option<Vec<u8>>,
    /// Intact WAL records after the snapshot: `(offset, payload)`.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Whether a torn tail was dropped from the WAL.
    pub truncated_tail: bool,
}

/// Outcome of one append.
#[derive(Debug, Clone, Copy)]
pub struct Append {
    /// Framed bytes written (header + payload).
    pub bytes: u64,
    /// Fsync latency, when the policy flushed this append.
    pub fsync: Option<Duration>,
}

/// An open write-ahead-log + snapshot store over a [`Dir`].
#[derive(Debug)]
pub struct Store {
    dir: Arc<dyn Dir>,
    fsync: FsyncPolicy,
    gen: u64,
    /// Appended-but-not-yet-synced bytes exist.
    dirty: bool,
}

/// File name of generation `gen`'s write-ahead log.
pub fn wal_name(gen: u64) -> String {
    format!("wal-{gen}")
}

/// File name of the snapshot opening generation `gen`.
pub fn snap_name(gen: u64) -> String {
    format!("snap-{gen}")
}

/// Parse `wal-<n>` / `snap-<n>` names; returns (is_snap, gen).
pub(crate) fn parse_name(name: &str) -> Option<(bool, u64)> {
    if let Some(n) = name.strip_prefix("wal-") {
        return n.parse().ok().map(|g| (false, g));
    }
    if let Some(n) = name.strip_prefix("snap-") {
        return n.parse().ok().map(|g| (true, g));
    }
    None
}

impl Store {
    /// Open the store in `dir`, recovering whatever a previous process
    /// left there. Returns the store (positioned to append at the end
    /// of the valid log) plus the recovered snapshot and records.
    ///
    /// Torn tails — from a crash mid-append or mid-creation — are
    /// truncated away so later appends extend a valid log. Mid-log
    /// damage fails with [`StoreError::Corrupt`].
    pub fn open(dir: Arc<dyn Dir>, fsync: FsyncPolicy) -> StoreResult<(Store, Recovered)> {
        let names = dir.list().map_err(|e| StoreError::io(".", e))?;

        // Sweep leftovers of interrupted atomic replaces.
        for name in &names {
            if name.starts_with(".tmp.") {
                dir.remove(name).map_err(|e| StoreError::io(name, e))?;
            }
        }

        let gen = names
            .iter()
            .filter_map(|n| parse_name(n))
            .filter_map(|(is_snap, g)| is_snap.then_some(g))
            .max()
            .unwrap_or(0);

        let snapshot = if names.contains(&snap_name(gen)) {
            let file = snap_name(gen);
            let data = dir.read(&file).map_err(|e| StoreError::io(&file, e))?;
            Some(parse_snapshot(&file, &data)?)
        } else {
            None
        };

        // Older generations are superseded; a stray higher-gen WAL
        // without its snapshot cannot exist (the snapshot is installed
        // first), but remove any such stragglers defensively too.
        for name in &names {
            if let Some((_, g)) = parse_name(name) {
                if g != gen {
                    dir.remove(name).map_err(|e| StoreError::io(name, e))?;
                }
            }
        }

        let file = wal_name(gen);
        let (records, truncated_tail) = match dir.read(&file) {
            Ok(data) => {
                let scan = scan_wal(&file, &data)?;
                if scan.valid_len < data.len() as u64 {
                    // Drop the torn tail so appends extend a valid log.
                    if scan.valid_len == 0 {
                        dir.replace(&file, MAGIC_WAL)
                            .map_err(|e| StoreError::io(&file, e))?;
                    } else {
                        dir.truncate(&file, scan.valid_len)
                            .map_err(|e| StoreError::io(&file, e))?;
                    }
                }
                (scan.records, scan.truncated)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // Fresh store, or a crash after snapshot install but
                // before the new WAL was created.
                dir.replace(&file, MAGIC_WAL)
                    .map_err(|e| StoreError::io(&file, e))?;
                (Vec::new(), false)
            }
            Err(e) => return Err(StoreError::io(&file, e)),
        };

        Ok((
            Store {
                dir,
                fsync,
                gen,
                dirty: false,
            },
            Recovered {
                gen,
                snapshot,
                records,
                truncated_tail,
            },
        ))
    }

    /// The generation currently being appended to.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// The fsync policy this store was opened with.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.fsync
    }

    /// Append one framed record; under [`FsyncPolicy::Always`] it is
    /// durable when this returns.
    pub fn append(&mut self, payload: &[u8]) -> StoreResult<Append> {
        let file = wal_name(self.gen);
        let frame = frame_record(payload);
        self.dir
            .append(&file, &frame)
            .map_err(|e| StoreError::io(&file, e))?;
        self.dirty = true;
        let fsync = if self.fsync == FsyncPolicy::Always {
            Some(self.sync_wal()?)
        } else {
            None
        };
        Ok(Append {
            bytes: frame.len() as u64,
            fsync,
        })
    }

    /// Append a batch of records as one write and one durability point:
    /// every payload is framed, the frames land in a single `Dir::append`
    /// call, and the file is flushed **once** under both
    /// [`FsyncPolicy::Always`] and [`FsyncPolicy::Round`] (a batch *is* a
    /// round barrier — anything appended earlier and still unflushed
    /// rides along, exactly as [`Store::round_barrier`] would flush it).
    /// The resulting file bytes are identical to sequential
    /// [`Store::append`] calls of the same payloads.
    pub fn append_batch(&mut self, payloads: &[&[u8]]) -> StoreResult<Append> {
        let file = wal_name(self.gen);
        let mut frames = Vec::with_capacity(
            payloads
                .iter()
                .map(|p| crate::wal::RECORD_HEADER + p.len())
                .sum(),
        );
        for payload in payloads {
            frames.extend_from_slice(&frame_record(payload));
        }
        self.dir
            .append(&file, &frames)
            .map_err(|e| StoreError::io(&file, e))?;
        self.dirty = true;
        let fsync = if self.fsync != FsyncPolicy::Off {
            Some(self.sync_wal()?)
        } else {
            None
        };
        Ok(Append {
            bytes: frames.len() as u64,
            fsync,
        })
    }

    /// Round barrier: under [`FsyncPolicy::Round`], flush everything
    /// appended since the last barrier. Returns the fsync latency when
    /// a flush happened. Call this *before* externalizing the round's
    /// decisions.
    pub fn round_barrier(&mut self) -> StoreResult<Option<Duration>> {
        if self.fsync == FsyncPolicy::Round && self.dirty {
            return Ok(Some(self.sync_wal()?));
        }
        Ok(None)
    }

    fn sync_wal(&mut self) -> StoreResult<Duration> {
        let file = wal_name(self.gen);
        let t0 = Instant::now();
        self.dir.sync(&file).map_err(|e| StoreError::io(&file, e))?;
        self.dirty = false;
        Ok(t0.elapsed())
    }

    /// Install a snapshot, advancing to the next generation and
    /// truncating the log: the snapshot is written atomically and made
    /// durable (regardless of the fsync policy — log truncation must
    /// never outrun the snapshot), a fresh WAL is created, and the old
    /// generation's files are deleted. Returns bytes written.
    pub fn install_snapshot(&mut self, payload: &[u8]) -> StoreResult<u64> {
        let new_gen = self.gen + 1;
        let snap = snap_name(new_gen);
        let mut data = MAGIC_SNAP.to_vec();
        data.extend_from_slice(&frame_record(payload));
        self.dir
            .replace(&snap, &data)
            .map_err(|e| StoreError::io(&snap, e))?;
        let wal = wal_name(new_gen);
        self.dir
            .replace(&wal, MAGIC_WAL)
            .map_err(|e| StoreError::io(&wal, e))?;
        let old_wal = wal_name(self.gen);
        let old_snap = snap_name(self.gen);
        self.dir
            .remove(&old_wal)
            .map_err(|e| StoreError::io(&old_wal, e))?;
        self.dir
            .remove(&old_snap)
            .map_err(|e| StoreError::io(&old_snap, e))?;
        self.gen = new_gen;
        self.dirty = false;
        Ok(data.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dir::MemDir;

    fn mem() -> Arc<MemDir> {
        Arc::new(MemDir::new())
    }

    #[test]
    fn fresh_open_append_reopen_roundtrip() {
        let dir = mem();
        let (mut store, rec) = Store::open(dir.clone(), FsyncPolicy::Round).unwrap();
        assert_eq!(rec.gen, 0);
        assert!(rec.snapshot.is_none());
        assert!(rec.records.is_empty());
        store.append(b"r1").unwrap();
        store.append(b"r2").unwrap();
        assert!(store.round_barrier().unwrap().is_some());
        assert!(store.round_barrier().unwrap().is_none(), "already clean");

        let (_, rec) = Store::open(dir, FsyncPolicy::Round).unwrap();
        let payloads: Vec<_> = rec.records.iter().map(|(_, p)| p.as_slice()).collect();
        assert_eq!(payloads, vec![b"r1".as_slice(), b"r2".as_slice()]);
        assert!(!rec.truncated_tail);
    }

    #[test]
    fn always_policy_syncs_each_append() {
        let (mut store, _) = Store::open(mem(), FsyncPolicy::Always).unwrap();
        let a = store.append(b"x").unwrap();
        assert!(a.fsync.is_some());
        assert!(store.round_barrier().unwrap().is_none());
    }

    #[test]
    fn off_policy_never_syncs() {
        let (mut store, _) = Store::open(mem(), FsyncPolicy::Off).unwrap();
        assert!(store.append(b"x").unwrap().fsync.is_none());
        assert!(store.round_barrier().unwrap().is_none());
    }

    #[test]
    fn append_batch_is_byte_identical_to_sequential_appends() {
        let payloads: Vec<&[u8]> = vec![b"round one", b"", b"a longer third record payload"];
        let seq_dir = mem();
        let (mut seq, _) = Store::open(seq_dir.clone(), FsyncPolicy::Round).unwrap();
        let mut seq_bytes = 0;
        for p in &payloads {
            seq_bytes += seq.append(p).unwrap().bytes;
        }
        seq.round_barrier().unwrap();

        let batch_dir = mem();
        let (mut batch, _) = Store::open(batch_dir.clone(), FsyncPolicy::Round).unwrap();
        let a = batch.append_batch(&payloads).unwrap();
        assert_eq!(a.bytes, seq_bytes);
        assert!(a.fsync.is_some(), "Round policy flushes the batch once");
        assert!(
            batch.round_barrier().unwrap().is_none(),
            "the batch flush already cleared the dirty flag"
        );

        assert_eq!(
            seq_dir.contents("wal-0").unwrap(),
            batch_dir.contents("wal-0").unwrap(),
            "batched and sequential appends must produce identical WAL bytes"
        );

        // Both logs recover the same records.
        let (_, rec) = Store::open(batch_dir, FsyncPolicy::Round).unwrap();
        let got: Vec<_> = rec.records.iter().map(|(_, p)| p.as_slice()).collect();
        assert_eq!(got, payloads);
    }

    #[test]
    fn append_batch_flushes_earlier_unflushed_appends() {
        let dir = mem();
        let (mut store, _) = Store::open(dir.clone(), FsyncPolicy::Round).unwrap();
        store.append(b"event before the round").unwrap();
        let a = store.append_batch(&[b"the round record"]).unwrap();
        assert!(a.fsync.is_some());
        assert!(store.round_barrier().unwrap().is_none(), "nothing dirty");
        // Off never flushes, Always flushes the batch once.
        let (mut off, _) = Store::open(mem(), FsyncPolicy::Off).unwrap();
        assert!(off.append_batch(&[b"x", b"y"]).unwrap().fsync.is_none());
        let (mut always, _) = Store::open(mem(), FsyncPolicy::Always).unwrap();
        assert!(always.append_batch(&[b"x", b"y"]).unwrap().fsync.is_some());
    }

    #[test]
    fn snapshot_truncates_log_and_advances_generation() {
        let dir = mem();
        let (mut store, _) = Store::open(dir.clone(), FsyncPolicy::Round).unwrap();
        store.append(b"old1").unwrap();
        store.append(b"old2").unwrap();
        store.install_snapshot(b"STATE").unwrap();
        assert_eq!(store.generation(), 1);
        store.append(b"tail").unwrap();

        // Old generation files are gone.
        let mut names = dir.list().unwrap();
        names.sort();
        assert_eq!(names, vec!["snap-1", "wal-1"]);

        let (_, rec) = Store::open(dir, FsyncPolicy::Round).unwrap();
        assert_eq!(rec.gen, 1);
        assert_eq!(rec.snapshot.as_deref(), Some(b"STATE".as_slice()));
        let payloads: Vec<_> = rec.records.iter().map(|(_, p)| p.as_slice()).collect();
        assert_eq!(payloads, vec![b"tail".as_slice()]);
    }

    #[test]
    fn torn_tail_is_truncated_then_appendable() {
        let dir = mem();
        let (mut store, _) = Store::open(dir.clone(), FsyncPolicy::Off).unwrap();
        store.append(b"keep").unwrap();
        store.append(b"torn-away").unwrap();
        let mut raw = dir.contents("wal-0").unwrap();
        raw.truncate(raw.len() - 4); // cut inside the last payload
        dir.put("wal-0", raw);

        let (mut store, rec) = Store::open(dir.clone(), FsyncPolicy::Off).unwrap();
        assert!(rec.truncated_tail);
        let payloads: Vec<_> = rec.records.iter().map(|(_, p)| p.as_slice()).collect();
        assert_eq!(payloads, vec![b"keep".as_slice()]);

        // The repaired log accepts appends and stays fully valid.
        store.append(b"after").unwrap();
        let (_, rec) = Store::open(dir, FsyncPolicy::Off).unwrap();
        assert!(!rec.truncated_tail);
        let payloads: Vec<_> = rec.records.iter().map(|(_, p)| p.as_slice()).collect();
        assert_eq!(payloads, vec![b"keep".as_slice(), b"after".as_slice()]);
    }

    #[test]
    fn torn_write_injection_recovers_the_synced_prefix() {
        let dir = mem();
        let (mut store, _) = Store::open(dir.clone(), FsyncPolicy::Round).unwrap();
        store.append(b"whole record").unwrap();
        // Allow only 5 more bytes: the next append tears mid-header.
        dir.set_write_budget(5);
        assert!(store.append(b"never lands intact").is_err());
        dir.clear_write_budget();

        let (_, rec) = Store::open(dir, FsyncPolicy::Round).unwrap();
        assert!(rec.truncated_tail);
        let payloads: Vec<_> = rec.records.iter().map(|(_, p)| p.as_slice()).collect();
        assert_eq!(payloads, vec![b"whole record".as_slice()]);
    }

    #[test]
    fn mid_log_corruption_is_reported_with_offset() {
        let dir = mem();
        let (mut store, _) = Store::open(dir.clone(), FsyncPolicy::Off).unwrap();
        store.append(b"first").unwrap();
        store.append(b"second").unwrap();
        let mut raw = dir.contents("wal-0").unwrap();
        let first_payload = MAGIC_WAL.len() + 8;
        raw[first_payload] ^= 0x40;
        dir.put("wal-0", raw);
        match Store::open(dir, FsyncPolicy::Off) {
            Err(StoreError::Corrupt { file, offset, .. }) => {
                assert_eq!(file, "wal-0");
                assert_eq!(offset, MAGIC_WAL.len() as u64);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_snapshot_is_fatal_not_silently_skipped() {
        let dir = mem();
        let (mut store, _) = Store::open(dir.clone(), FsyncPolicy::Off).unwrap();
        store.append(b"r").unwrap();
        store.install_snapshot(b"SNAP").unwrap();
        let mut raw = dir.contents("snap-1").unwrap();
        let n = raw.len();
        raw[n - 1] ^= 0x01;
        dir.put("snap-1", raw);
        assert!(matches!(
            Store::open(dir, FsyncPolicy::Off),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn missing_wal_after_snapshot_install_is_recreated() {
        let dir = mem();
        let (mut store, _) = Store::open(dir.clone(), FsyncPolicy::Off).unwrap();
        store.install_snapshot(b"S").unwrap();
        // Simulate a crash that lost the freshly created (never-synced
        // into the dir listing) wal-1.
        dir.remove("wal-1").unwrap();
        let (_, rec) = Store::open(dir, FsyncPolicy::Off).unwrap();
        assert_eq!(rec.gen, 1);
        assert_eq!(rec.snapshot.as_deref(), Some(b"S".as_slice()));
        assert!(rec.records.is_empty());
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(
            "always".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::Always
        );
        assert_eq!("round".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Round);
        assert_eq!("off".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Off);
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
        assert_eq!(FsyncPolicy::Round.to_string(), "round");
    }
}
