//! Cursor-based record tailing over a live store directory.
//!
//! A [`WalTail`] reads the same `snap-<G>` / `wal-<G>` files a
//! [`Store`](crate::Store) writes, but *concurrently* with the writer
//! and without ever mutating the directory: it is the primary-side
//! source of a replication stream. Each [`WalTail::poll`] emits the
//! events that appeared since the cursor's position:
//!
//! * [`TailEvent::Snapshot`] when a newer generation opened — the
//!   follower must install this snapshot before any of that
//!   generation's records;
//! * [`TailEvent::Record`] for every intact record appended past the
//!   cursor.
//!
//! Because the writer may be mid-`write(2)` when we read, a torn tail
//! is *normal* here (unlike recovery): the scan simply stops at the
//! last intact record and the next poll retries. Mid-log corruption is
//! still fatal, exactly as in recovery.

use crate::dir::Dir;
use crate::error::{StoreError, StoreResult};
use crate::store::{parse_name, snap_name, wal_name};
use crate::wal::{parse_snapshot, scan_records, MAGIC_WAL};
use std::sync::Arc;

/// Position of a [`WalTail`] inside the store's file sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailCursor {
    /// Generation whose WAL the cursor is inside.
    pub gen: u64,
    /// Byte offset of the next unread record's header in `wal-<gen>`
    /// (at least the magic length).
    pub offset: u64,
}

/// One event observed by [`WalTail::poll`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailEvent {
    /// A generation (newer than the cursor's) opened with this snapshot
    /// payload. The cursor moves to the start of `wal-<gen>`.
    Snapshot {
        /// Generation the snapshot opens.
        gen: u64,
        /// Decoded (CRC-verified) snapshot payload.
        payload: Vec<u8>,
    },
    /// One intact record appended past the cursor.
    Record {
        /// Generation of the WAL holding the record.
        gen: u64,
        /// Byte offset of the record's header in that WAL.
        offset: u64,
        /// The record payload (CRC already verified).
        payload: Vec<u8>,
    },
}

/// A read-only cursor tailing a store directory for new snapshots and
/// records.
#[derive(Debug)]
pub struct WalTail {
    dir: Arc<dyn Dir>,
    /// `None` until positioned: the next poll ships the latest
    /// snapshot (or, for a fresh generation-0 store, starts at the top
    /// of `wal-0`).
    cursor: Option<TailCursor>,
}

impl WalTail {
    /// Tail `dir` from scratch: the first poll emits the newest
    /// snapshot (when one exists) and everything after it.
    pub fn new(dir: Arc<dyn Dir>) -> WalTail {
        WalTail { dir, cursor: None }
    }

    /// Current position, if the tail has been positioned.
    pub fn cursor(&self) -> Option<TailCursor> {
        self.cursor
    }

    /// Position the cursor explicitly (e.g. to resume a follower that
    /// already holds a prefix of the log). The offset must be a record
    /// boundary in `wal-<gen>`; [`WalTail::poll`] emits everything
    /// after it.
    pub fn seek(&mut self, gen: u64, offset: u64) {
        self.cursor = Some(TailCursor { gen, offset });
    }

    /// Forget the position: the next poll re-ships the latest snapshot
    /// and the records after it, as for a brand-new follower.
    pub fn rewind(&mut self) {
        self.cursor = None;
    }

    /// The newest generation visible in the directory: the highest one
    /// with a snapshot, else the highest WAL (a fresh store has
    /// `wal-0` and no snapshot).
    fn latest_gen(&self, names: &[String]) -> (u64, bool) {
        let mut best_snap: Option<u64> = None;
        let mut best_wal: Option<u64> = None;
        for name in names {
            match parse_name(name) {
                Some((true, g)) => best_snap = Some(best_snap.map_or(g, |b: u64| b.max(g))),
                Some((false, g)) => best_wal = Some(best_wal.map_or(g, |b: u64| b.max(g))),
                None => {}
            }
        }
        match best_snap {
            Some(g) => (g, true),
            None => (best_wal.unwrap_or(0), false),
        }
    }

    /// Read every event that appeared since the cursor. An empty vec
    /// means "nothing new yet"; a torn tail (the writer mid-append, or
    /// a crashed writer's final record) is silently retried on the
    /// next poll. Mid-log damage is a [`StoreError::Corrupt`].
    pub fn poll(&mut self) -> StoreResult<Vec<TailEvent>> {
        let names = self.dir.list().map_err(|e| StoreError::io(".", e))?;
        let (latest, has_snap) = self.latest_gen(&names);
        let mut events = Vec::new();

        let need_snapshot = match self.cursor {
            None => true,
            Some(c) => c.gen < latest,
        };
        if need_snapshot {
            if has_snap {
                let file = snap_name(latest);
                let data = match self.dir.read(&file) {
                    Ok(d) => d,
                    // Deleted between list() and read(): a snapshot
                    // install is racing us; the next poll sees the new
                    // generation.
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(events),
                    Err(e) => return Err(StoreError::io(&file, e)),
                };
                let payload = parse_snapshot(&file, &data)?;
                events.push(TailEvent::Snapshot {
                    gen: latest,
                    payload,
                });
            } else if latest > 0 {
                // A generation above 0 always has its snapshot installed
                // before anything else; its absence is a racing install.
                return Ok(events);
            }
            self.cursor = Some(TailCursor {
                gen: latest,
                offset: MAGIC_WAL.len() as u64,
            });
        }

        let cursor = self.cursor.expect("positioned above");
        let file = wal_name(cursor.gen);
        let data = match self.dir.read(&file) {
            Ok(d) => d,
            // The WAL of a just-installed generation may not exist yet
            // (snapshot first, WAL second); nothing to read until it does.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(events),
            Err(e) => return Err(StoreError::io(&file, e)),
        };
        if (data.len() as u64) < cursor.offset {
            // Shorter than where we already read to: either the magic is
            // still being written or the read raced a replace. Retry.
            return Ok(events);
        }
        if cursor.offset == MAGIC_WAL.len() as u64 && data[..MAGIC_WAL.len()] != MAGIC_WAL[..] {
            return Err(StoreError::corrupt(&file, 0, "bad WAL magic header"));
        }
        let scan = scan_records(&file, &data, cursor.offset as usize)?;
        for (offset, payload) in scan.records {
            events.push(TailEvent::Record {
                gen: cursor.gen,
                offset,
                payload,
            });
        }
        self.cursor = Some(TailCursor {
            gen: cursor.gen,
            offset: scan.valid_len,
        });
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dir::MemDir;
    use crate::store::{FsyncPolicy, Store};
    use crate::wal::RECORD_HEADER;

    fn mem() -> Arc<MemDir> {
        Arc::new(MemDir::new())
    }

    fn records_of(events: &[TailEvent]) -> Vec<Vec<u8>> {
        events
            .iter()
            .filter_map(|e| match e {
                TailEvent::Record { payload, .. } => Some(payload.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn tails_a_fresh_store_record_by_record() {
        let dir = mem();
        let (mut store, _) = Store::open(dir.clone(), FsyncPolicy::Off).unwrap();
        let mut tail = WalTail::new(dir);
        assert!(tail.poll().unwrap().is_empty());

        store.append(b"one").unwrap();
        store.append(b"two").unwrap();
        let ev = tail.poll().unwrap();
        assert_eq!(records_of(&ev), vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(tail.poll().unwrap().is_empty(), "no re-delivery");

        store.append(b"three").unwrap();
        let ev = tail.poll().unwrap();
        assert_eq!(records_of(&ev), vec![b"three".to_vec()]);
    }

    #[test]
    fn snapshot_install_emits_snapshot_then_new_records() {
        let dir = mem();
        let (mut store, _) = Store::open(dir.clone(), FsyncPolicy::Off).unwrap();
        let mut tail = WalTail::new(dir);
        store.append(b"old").unwrap();
        assert_eq!(tail.poll().unwrap().len(), 1);

        store.install_snapshot(b"STATE").unwrap();
        store.append(b"new").unwrap();
        let ev = tail.poll().unwrap();
        assert_eq!(
            ev,
            vec![
                TailEvent::Snapshot {
                    gen: 1,
                    payload: b"STATE".to_vec()
                },
                TailEvent::Record {
                    gen: 1,
                    offset: MAGIC_WAL.len() as u64,
                    payload: b"new".to_vec()
                },
            ]
        );
    }

    #[test]
    fn fresh_tail_of_an_old_store_starts_from_the_latest_snapshot() {
        let dir = mem();
        let (mut store, _) = Store::open(dir.clone(), FsyncPolicy::Off).unwrap();
        store.append(b"gone").unwrap();
        store.install_snapshot(b"S1").unwrap();
        store.install_snapshot(b"S2").unwrap();
        store.append(b"kept").unwrap();
        let mut tail = WalTail::new(dir);
        let ev = tail.poll().unwrap();
        assert_eq!(ev.len(), 2);
        assert_eq!(
            ev[0],
            TailEvent::Snapshot {
                gen: 2,
                payload: b"S2".to_vec()
            }
        );
        assert_eq!(records_of(&ev), vec![b"kept".to_vec()]);
    }

    #[test]
    fn torn_tail_is_retried_not_fatal() {
        let dir = mem();
        let (mut store, _) = Store::open(dir.clone(), FsyncPolicy::Off).unwrap();
        store.append(b"whole").unwrap();
        let mut tail = WalTail::new(dir.clone());

        // Simulate a writer mid-append: a full record plus a torn one.
        let mut raw = dir.contents("wal-0").unwrap();
        let intact_len = raw.len();
        raw.extend_from_slice(&crate::wal::frame_record(b"half")[..7]);
        dir.put("wal-0", raw.clone());
        let ev = tail.poll().unwrap();
        assert_eq!(records_of(&ev), vec![b"whole".to_vec()]);
        assert_eq!(
            tail.cursor().unwrap().offset,
            intact_len as u64,
            "cursor stops before the torn bytes"
        );

        // The writer finishes the append; the tail resumes cleanly.
        raw.truncate(intact_len);
        raw.extend_from_slice(&crate::wal::frame_record(b"half"));
        dir.put("wal-0", raw);
        let ev = tail.poll().unwrap();
        assert_eq!(records_of(&ev), vec![b"half".to_vec()]);
    }

    #[test]
    fn seek_resumes_mid_log() {
        let dir = mem();
        let (mut store, _) = Store::open(dir.clone(), FsyncPolicy::Off).unwrap();
        store.append(b"first").unwrap();
        store.append(b"second").unwrap();
        let boundary = MAGIC_WAL.len() + RECORD_HEADER + b"first".len();
        let mut tail = WalTail::new(dir);
        tail.seek(0, boundary as u64);
        let ev = tail.poll().unwrap();
        assert_eq!(records_of(&ev), vec![b"second".to_vec()]);
    }

    #[test]
    fn rewind_re_ships_the_latest_snapshot() {
        let dir = mem();
        let (mut store, _) = Store::open(dir.clone(), FsyncPolicy::Off).unwrap();
        store.install_snapshot(b"S").unwrap();
        store.append(b"r").unwrap();
        let mut tail = WalTail::new(dir);
        assert_eq!(tail.poll().unwrap().len(), 2);
        assert!(tail.poll().unwrap().is_empty());
        tail.rewind();
        let ev = tail.poll().unwrap();
        assert_eq!(ev.len(), 2, "rewind replays snapshot + records");
        assert!(matches!(ev[0], TailEvent::Snapshot { gen: 1, .. }));
    }

    #[test]
    fn mid_log_corruption_is_fatal_for_the_tail_too() {
        let dir = mem();
        let (mut store, _) = Store::open(dir.clone(), FsyncPolicy::Off).unwrap();
        store.append(b"first").unwrap();
        store.append(b"second").unwrap();
        let mut raw = dir.contents("wal-0").unwrap();
        raw[MAGIC_WAL.len() + RECORD_HEADER] ^= 0x01;
        dir.put("wal-0", raw);
        let mut tail = WalTail::new(dir);
        assert!(matches!(tail.poll(), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn seek_past_a_stale_generation_jumps_to_the_new_snapshot() {
        let dir = mem();
        let (mut store, _) = Store::open(dir.clone(), FsyncPolicy::Off).unwrap();
        store.append(b"old").unwrap();
        let mut tail = WalTail::new(dir.clone());
        assert_eq!(tail.poll().unwrap().len(), 1);
        store.install_snapshot(b"NEW").unwrap();
        store.append(b"fresh").unwrap();
        // The tail's cursor still points into generation 0; the poll
        // notices generation 1 and re-bases on its snapshot.
        let ev = tail.poll().unwrap();
        assert!(matches!(ev[0], TailEvent::Snapshot { gen: 1, .. }));
        assert_eq!(records_of(&ev), vec![b"fresh".to_vec()]);
    }
}
