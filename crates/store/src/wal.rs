//! Record framing for the write-ahead log and snapshot files.
//!
//! A framed record is `[len: u32 LE][crc32: u32 LE][payload]` where the
//! checksum covers the payload. Files open with an 8-byte magic header
//! naming the format, so a WAL is never confused with a snapshot (or
//! with unrelated junk in the directory).
//!
//! # Damage classification
//!
//! [`scan_wal`] embodies the recovery contract:
//!
//! * a record whose header or payload does not fit in the remaining
//!   bytes is a **torn tail** — the crash cut an in-flight `write(2)`
//!   short. The valid prefix is kept, the tail dropped, recovery is
//!   clean;
//! * a checksum mismatch on the **final** record (it extends exactly to
//!   end of file) is the same torn-tail case and is dropped cleanly;
//! * a checksum mismatch (or impossible length) with more bytes after
//!   it is **mid-log corruption** — bytes the writer had already moved
//!   past were altered. That is never survivable-by-dropping: recovery
//!   fails with [`StoreError::Corrupt`] naming the exact offset.

use crate::error::{StoreError, StoreResult};
use std::sync::OnceLock;

/// Magic header starting every WAL file.
pub const MAGIC_WAL: &[u8; 8] = b"GBWAL01\n";
/// Magic header starting every snapshot file.
pub const MAGIC_SNAP: &[u8; 8] = b"GBSNAP1\n";
/// Bytes of framing overhead per record (length prefix + checksum).
pub const RECORD_HEADER: usize = 8;
/// Upper bound on a single record's payload. A writer never exceeds it,
/// so a larger length prefix can only come from corruption.
pub const MAX_RECORD: u32 = 1 << 26; // 64 MiB

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 (IEEE 802.3, the zlib/`crc32fast` polynomial) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Frame one payload: `[len][crc][payload]`.
///
/// Panics if the payload exceeds [`MAX_RECORD`] — the engine's round
/// records are orders of magnitude smaller, so this is a logic error,
/// not an input condition.
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_RECORD as usize,
        "record payload of {} bytes exceeds MAX_RECORD",
        payload.len()
    );
    let mut out = Vec::with_capacity(RECORD_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Result of scanning a WAL file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// Each intact record: `(byte offset of its header, payload)`.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Bytes of the file covered by the magic plus intact records; a
    /// torn tail (if any) starts here and should be truncated away
    /// before new records are appended.
    pub valid_len: u64,
    /// Whether a torn tail was dropped.
    pub truncated: bool,
}

/// Scan a WAL file's bytes, applying the damage classification above.
/// `file` is only used for error reporting.
pub fn scan_wal(file: &str, data: &[u8]) -> StoreResult<WalScan> {
    // The magic itself can be torn by a crash during file creation.
    if data.len() < MAGIC_WAL.len() {
        if *data == MAGIC_WAL[..data.len()] {
            return Ok(WalScan {
                records: Vec::new(),
                valid_len: 0,
                truncated: !data.is_empty(),
            });
        }
        return Err(StoreError::corrupt(file, 0, "bad WAL magic header"));
    }
    if data[..MAGIC_WAL.len()] != MAGIC_WAL[..] {
        return Err(StoreError::corrupt(file, 0, "bad WAL magic header"));
    }
    scan_records(file, data, MAGIC_WAL.len())
}

/// Scan the framed records of a WAL starting at byte offset `start`
/// (which must lie on a record boundary past the magic). Used by
/// [`scan_wal`] for whole-file recovery and by the tailing API to pick
/// up records appended since a previous scan.
pub fn scan_records(file: &str, data: &[u8], start: usize) -> StoreResult<WalScan> {
    let mut records = Vec::new();
    let mut off = start;
    loop {
        let remaining = data.len().saturating_sub(off);
        if remaining == 0 {
            return Ok(WalScan {
                records,
                valid_len: off as u64,
                truncated: false,
            });
        }
        if remaining < RECORD_HEADER {
            return Ok(WalScan {
                records,
                valid_len: off as u64,
                truncated: true,
            });
        }
        let len = u32::from_le_bytes(data[off..off + 4].try_into().expect("4 bytes"));
        if len > MAX_RECORD {
            // A writer never produces such a length; the header bytes
            // were altered after being written.
            return Err(StoreError::corrupt(
                file,
                off as u64,
                format!("record length {len} exceeds MAX_RECORD"),
            ));
        }
        let want_crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().expect("4 bytes"));
        let body_end = off + RECORD_HEADER + len as usize;
        if body_end > data.len() {
            // Payload cut short: torn tail.
            return Ok(WalScan {
                records,
                valid_len: off as u64,
                truncated: true,
            });
        }
        let payload = &data[off + RECORD_HEADER..body_end];
        if crc32(payload) != want_crc {
            if body_end == data.len() {
                // Final record damaged: a torn write of the payload's
                // tail bytes. Drop it cleanly.
                return Ok(WalScan {
                    records,
                    valid_len: off as u64,
                    truncated: true,
                });
            }
            return Err(StoreError::corrupt(
                file,
                off as u64,
                "checksum mismatch before end of log",
            ));
        }
        records.push((off as u64, payload.to_vec()));
        off = body_end;
    }
}

/// Parse a snapshot file: magic plus exactly one framed record.
///
/// Snapshots are written atomically (tmp + fsync + rename), so unlike a
/// WAL tail they are never legitimately torn: *any* damage is reported
/// as [`StoreError::Corrupt`].
pub fn parse_snapshot(file: &str, data: &[u8]) -> StoreResult<Vec<u8>> {
    if data.len() < MAGIC_SNAP.len() || data[..MAGIC_SNAP.len()] != MAGIC_SNAP[..] {
        return Err(StoreError::corrupt(file, 0, "bad snapshot magic header"));
    }
    let off = MAGIC_SNAP.len();
    if data.len() - off < RECORD_HEADER {
        return Err(StoreError::corrupt(
            file,
            off as u64,
            "snapshot record header missing",
        ));
    }
    let len = u32::from_le_bytes(data[off..off + 4].try_into().expect("4 bytes"));
    let want_crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().expect("4 bytes"));
    let body_end = off + RECORD_HEADER + len as usize;
    if len > MAX_RECORD || body_end != data.len() {
        return Err(StoreError::corrupt(
            file,
            off as u64,
            "snapshot length does not match file size",
        ));
    }
    let payload = &data[off + RECORD_HEADER..body_end];
    if crc32(payload) != want_crc {
        return Err(StoreError::corrupt(
            file,
            off as u64,
            "snapshot checksum mismatch",
        ));
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wal_with(payloads: &[&[u8]]) -> Vec<u8> {
        let mut data = MAGIC_WAL.to_vec();
        for p in payloads {
            data.extend_from_slice(&frame_record(p));
        }
        data
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn scan_recovers_all_intact_records() {
        let data = wal_with(&[b"one", b"two", b"three"]);
        let scan = scan_wal("w", &data).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[0].1, b"one");
        assert_eq!(scan.records[2].1, b"three");
        assert_eq!(scan.valid_len, data.len() as u64);
        assert!(!scan.truncated);
    }

    #[test]
    fn torn_tail_is_dropped_cleanly() {
        let full = wal_with(&[b"aaaa", b"bbbb"]);
        // Cut anywhere inside the second record (header or payload).
        for cut in (full.len() - 11)..full.len() - 1 {
            let scan = scan_wal("w", &full[..cut]).unwrap();
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert!(scan.truncated, "cut at {cut}");
            assert_eq!(scan.valid_len as usize, full.len() - 12, "cut at {cut}");
        }
    }

    #[test]
    fn damaged_final_record_is_torn_not_corrupt() {
        let mut data = wal_with(&[b"aaaa", b"bbbb"]);
        let n = data.len();
        data[n - 1] ^= 0xFF; // flip a payload byte of the last record
        let scan = scan_wal("w", &data).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.truncated);
    }

    #[test]
    fn damaged_mid_log_record_is_corrupt_with_offset() {
        let mut data = wal_with(&[b"aaaa", b"bbbb"]);
        // Flip a payload byte of the FIRST record: damage before EOF.
        data[MAGIC_WAL.len() + RECORD_HEADER] ^= 0x01;
        match scan_wal("w", &data) {
            Err(StoreError::Corrupt { offset, .. }) => {
                assert_eq!(offset, MAGIC_WAL.len() as u64);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn impossible_length_is_corrupt() {
        let mut data = wal_with(&[b"aaaa"]);
        let off = MAGIC_WAL.len();
        data[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            scan_wal("w", &data),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn bad_magic_is_corrupt_and_partial_magic_is_torn() {
        assert!(matches!(
            scan_wal("w", b"NOTMAGIC"),
            Err(StoreError::Corrupt { offset: 0, .. })
        ));
        let scan = scan_wal("w", &MAGIC_WAL[..3]).unwrap();
        assert!(scan.records.is_empty());
        assert!(scan.truncated);
        assert_eq!(scan.valid_len, 0);
        let scan = scan_wal("w", b"").unwrap();
        assert!(!scan.truncated);
    }

    #[test]
    fn empty_payload_records_are_legal() {
        let data = wal_with(&[b"", b"x"]);
        let scan = scan_wal("w", &data).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0].1, b"");
    }

    #[test]
    fn snapshot_roundtrip_and_damage() {
        let mut data = MAGIC_SNAP.to_vec();
        data.extend_from_slice(&frame_record(b"state"));
        assert_eq!(parse_snapshot("s", &data).unwrap(), b"state");

        let mut flipped = data.clone();
        let n = flipped.len();
        flipped[n - 1] ^= 0x10;
        assert!(matches!(
            parse_snapshot("s", &flipped),
            Err(StoreError::Corrupt { .. })
        ));
        // Trailing junk after the single record is also corruption.
        let mut long = data.clone();
        long.push(0);
        assert!(matches!(
            parse_snapshot("s", &long),
            Err(StoreError::Corrupt { .. })
        ));
        assert!(matches!(
            parse_snapshot("s", b"short"),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
