//! `gridband-store`: the durability subsystem of the reservation daemon.
//!
//! A crash or restart of `gridband-serve` must not silently void the
//! bandwidth commitments its admission rounds handed out. This crate
//! gives the engine a write-ahead log of *round outcomes* plus periodic
//! snapshots of its full state, and a recovery path that rebuilds the
//! exact pre-crash engine:
//!
//! * [`dir`] — the [`Dir`](dir::Dir) filesystem abstraction. Production
//!   uses [`FsDir`](dir::FsDir); tests use [`MemDir`](dir::MemDir),
//!   which can cut writes mid-record to inject torn-write crashes.
//! * [`wal`] — length-prefixed, CRC32-checksummed record framing and the
//!   scan that classifies damage: a torn *tail* (incomplete record, or a
//!   checksum mismatch on the final record) is dropped cleanly, while a
//!   corrupt *mid-log* record fails with [`StoreError::Corrupt`] and its
//!   exact byte offset.
//! * [`store`] — [`Store`](store::Store): generation-numbered WAL +
//!   snapshot files, fsync policies, and log truncation once a snapshot
//!   is durable.
//! * [`tail`] — [`WalTail`](tail::WalTail): a read-only cursor that
//!   tails a live store for newly installed snapshots and appended
//!   records, tolerating in-flight torn tails; the primary-side source
//!   of `gridband-replica`'s WAL shipping stream.
//! * [`records`] — the typed payloads the serve engine logs: one
//!   [`WalRecord::Round`](records::WalRecord::Round) per admission round
//!   (its whole decision batch in one atomic record), plus cancels and
//!   early rejects, and the [`EngineSnapshot`](records::EngineSnapshot)
//!   state image.
//!
//! The correctness bar, proven by `gridband-serve`'s
//! recovery-equivalence tests: a daemon killed at any round boundary or
//! torn-write point and then recovered decides the rest of the workload
//! *bit-identically* to a never-killed daemon — same accepted set, same
//! per-request `bw/σ/τ`, same final port profiles.

#![warn(missing_docs)]

pub mod dir;
pub mod error;
pub mod records;
pub mod store;
pub mod tail;
pub mod wal;

pub use dir::{Dir, DirSignal, FsDir, MemDir};
pub use error::{StoreError, StoreResult};
pub use records::{
    EngineSnapshot, HoldState, RequestOutcome, RoundDecision, WalRecord, SNAPSHOT_MIN_VERSION,
    SNAPSHOT_VERSION,
};
pub use store::{snap_name, wal_name, Append, FsyncPolicy, Recovered, Store, StoreConfig};
pub use tail::{TailCursor, TailEvent, WalTail};
pub use wal::crc32;
