//! End-to-end [`FsDir`] lifecycle on a real filesystem: the durability
//! path production runs, exercised under `CARGO_TARGET_TMPDIR` (inside
//! `target/`, so nothing escapes the workspace).

use gridband_store::{FsDir, FsyncPolicy, Store, StoreError};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir); // stale state from earlier runs
    dir
}

#[test]
fn fsdir_full_lifecycle_survives_reopen() {
    let path = tmp("lifecycle");
    let dir = Arc::new(FsDir::new(&path).unwrap());
    let (mut store, rec) = Store::open(dir, FsyncPolicy::Always).unwrap();
    assert_eq!(rec.gen, 0);
    assert!(rec.snapshot.is_none());

    assert!(store.append(b"round-1").unwrap().fsync.is_some());
    store.append(b"round-2").unwrap();
    store.install_snapshot(b"STATE@2").unwrap();
    store.append(b"round-3").unwrap();
    drop(store);

    // A brand-new FsDir over the same path sees everything.
    let dir = Arc::new(FsDir::new(&path).unwrap());
    let (mut store, rec) = Store::open(dir, FsyncPolicy::Round).unwrap();
    assert_eq!(rec.gen, 1);
    assert_eq!(rec.snapshot.as_deref(), Some(b"STATE@2".as_slice()));
    let payloads: Vec<_> = rec.records.iter().map(|(_, p)| p.as_slice()).collect();
    assert_eq!(payloads, vec![b"round-3".as_slice()]);
    assert!(!rec.truncated_tail);

    // Only the live generation remains on disk (plus nothing else).
    let mut names: Vec<_> = std::fs::read_dir(&path)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert_eq!(names, vec!["snap-1", "wal-1"]);

    store.append(b"round-4").unwrap();
    assert!(store.round_barrier().unwrap().is_some());
}

#[test]
fn fsdir_truncates_torn_tail_and_sweeps_tmp_files() {
    let path = tmp("torn");
    let dir = Arc::new(FsDir::new(&path).unwrap());
    let (mut store, _) = Store::open(dir, FsyncPolicy::Off).unwrap();
    store.append(b"keep-me").unwrap();
    store.append(b"torn-record").unwrap();
    drop(store);

    // Simulate a crash mid-append (cut the final payload short) plus an
    // interrupted atomic replace leaving a temp file behind.
    let wal = path.join("wal-0");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 5]).unwrap();
    std::fs::write(path.join(".tmp.snap-9"), b"half-written").unwrap();

    let dir = Arc::new(FsDir::new(&path).unwrap());
    let (mut store, rec) = Store::open(dir, FsyncPolicy::Off).unwrap();
    assert!(rec.truncated_tail);
    let payloads: Vec<_> = rec.records.iter().map(|(_, p)| p.as_slice()).collect();
    assert_eq!(payloads, vec![b"keep-me".as_slice()]);
    assert!(!path.join(".tmp.snap-9").exists(), "tmp leftovers swept");

    // The repaired log extends cleanly.
    store.append(b"after-repair").unwrap();
    drop(store);
    let dir = Arc::new(FsDir::new(&path).unwrap());
    let (_, rec) = Store::open(dir, FsyncPolicy::Off).unwrap();
    assert!(!rec.truncated_tail);
    let payloads: Vec<_> = rec.records.iter().map(|(_, p)| p.as_slice()).collect();
    assert_eq!(
        payloads,
        vec![b"keep-me".as_slice(), b"after-repair".as_slice()]
    );
}

#[test]
fn fsdir_reports_mid_log_corruption_with_file_and_offset() {
    let path = tmp("corrupt");
    let dir = Arc::new(FsDir::new(&path).unwrap());
    let (mut store, _) = Store::open(dir, FsyncPolicy::Off).unwrap();
    store.append(b"first").unwrap();
    store.append(b"second").unwrap();
    drop(store);

    let wal = path.join("wal-0");
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes[8 + 8] ^= 0x80; // first payload byte of the first record
    std::fs::write(&wal, bytes).unwrap();

    let dir = Arc::new(FsDir::new(&path).unwrap());
    match Store::open(dir, FsyncPolicy::Off) {
        Err(StoreError::Corrupt { file, offset, .. }) => {
            assert_eq!(file, "wal-0");
            assert_eq!(offset, 8);
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}
