//! Fuzz-style recovery sweep: every prefix of a valid log, and every
//! single-bit flip of it, must either recover cleanly (yielding a
//! prefix of the original records — never phantom ones) or fail with a
//! typed [`StoreError::Corrupt`]. Nothing in this sweep is allowed to
//! panic: a daemon restarting after a crash must always reach one of
//! those two outcomes.

use gridband_net::{CapacityLedger, Route, Topology};
use gridband_store::{
    Dir, EngineSnapshot, FsyncPolicy, MemDir, RoundDecision, Store, StoreError, WalRecord,
    SNAPSHOT_VERSION,
};
use std::sync::Arc;

/// A realistic log: the exact record shapes the serve engine writes.
fn sample_records() -> Vec<WalRecord> {
    vec![
        WalRecord::Round {
            t: 5.0,
            decisions: vec![
                RoundDecision::Accept {
                    id: 0,
                    ingress: 0,
                    egress: 1,
                    bw: 123.456_789_012_345,
                    start: 5.0,
                    finish: 31.25,
                    cancelled: false,
                },
                RoundDecision::Reject { id: 1 },
            ],
        },
        WalRecord::EarlyReject { id: 2 },
        WalRecord::Round {
            t: 10.0,
            decisions: vec![RoundDecision::Accept {
                id: 3,
                ingress: 1,
                egress: 0,
                bw: 0.1 + 0.2,
                start: 10.0,
                finish: 60.0,
                cancelled: true,
            }],
        },
        WalRecord::Cancel { id: 0 },
        WalRecord::Round {
            t: 15.0,
            decisions: vec![],
        },
    ]
}

fn sample_snapshot() -> EngineSnapshot {
    let mut ledger = CapacityLedger::new(Topology::uniform(2, 2, 1000.0));
    ledger.reserve(Route::new(0, 1), 0.0, 40.0, 250.0).unwrap();
    EngineSnapshot {
        version: SNAPSHOT_VERSION,
        now: 0.0,
        next_tick: 5.0,
        rounds: 0,
        ledger: ledger.export_state(),
        accepted: vec![],
        states: vec![],
        holds: vec![],
    }
}

/// Build a store holding `snapshot` + `records`, then return the raw
/// bytes of its snapshot and WAL files.
fn build_files() -> (Vec<u8>, Vec<u8>, usize) {
    let dir = Arc::new(MemDir::new());
    let (mut store, _) = Store::open(dir.clone(), FsyncPolicy::Off).unwrap();
    store.install_snapshot(&sample_snapshot().encode()).unwrap();
    for rec in sample_records() {
        store.append(&rec.encode()).unwrap();
    }
    let snap = dir.contents("snap-1").unwrap();
    let wal = dir.contents("wal-1").unwrap();
    (snap, wal, sample_records().len())
}

/// Open a store over the given exact file contents; returns the decoded
/// records on success.
fn recover(snap: &[u8], wal: &[u8]) -> Result<Vec<WalRecord>, StoreError> {
    let dir = Arc::new(MemDir::new());
    dir.put("snap-1", snap.to_vec());
    dir.put("wal-1", wal.to_vec());
    let (_, rec) = Store::open(dir, FsyncPolicy::Off)?;
    // The snapshot must decode too — recovery depends on it.
    let payload = rec.snapshot.expect("snapshot present");
    EngineSnapshot::decode("snap-1", &payload)?;
    rec.records
        .iter()
        .map(|(off, p)| WalRecord::decode("wal-1", *off, p))
        .collect()
}

#[test]
fn every_wal_prefix_recovers_a_clean_record_prefix() {
    let (snap, wal, _) = build_files();
    let originals = sample_records();
    for cut in 0..=wal.len() {
        let got = recover(&snap, &wal[..cut])
            .unwrap_or_else(|e| panic!("prefix of {cut} bytes must recover, got {e}"));
        assert!(
            got.len() <= originals.len() && got == originals[..got.len()],
            "cut at {cut}: recovered records are not a prefix"
        );
    }
    // The full file recovers everything.
    assert_eq!(recover(&snap, &wal).unwrap(), originals);
}

#[test]
fn every_single_bit_flip_in_the_wal_recovers_or_reports_corrupt() {
    let (snap, wal, _) = build_files();
    let originals = sample_records();
    for byte in 0..wal.len() {
        for bit in 0..8 {
            let mut damaged = wal.clone();
            damaged[byte] ^= 1 << bit;
            match recover(&snap, &damaged) {
                Ok(got) => {
                    // Clean recovery is only legal if no damaged record
                    // survived: the result must be a strict prefix of
                    // the originals (the flipped record was torn away),
                    // never an altered or phantom record.
                    assert!(
                        got.len() < originals.len() && got == originals[..got.len()],
                        "flip {byte}.{bit}: damaged log recovered non-prefix records"
                    );
                }
                Err(StoreError::Corrupt { .. }) => {}
                Err(other) => panic!("flip {byte}.{bit}: unexpected error kind {other}"),
            }
        }
    }
}

#[test]
fn every_single_bit_flip_in_the_snapshot_is_corrupt() {
    let (snap, wal, _) = build_files();
    for byte in 0..snap.len() {
        let mut damaged = snap.clone();
        damaged[byte] ^= 0x10;
        match recover(&damaged, &wal) {
            Err(StoreError::Corrupt { .. }) => {}
            Ok(_) => panic!("flip at byte {byte} of the snapshot went unnoticed"),
            Err(other) => panic!("flip at {byte}: unexpected error kind {other}"),
        }
    }
}

#[test]
fn cross_generation_recovery_resumes_at_the_new_generation() {
    // Lifecycle under test: a store already holding generation-1 state
    // installs a fresh snapshot (opening generation 2), appends more
    // rounds, then crashes mid-append of the final record. Recovery
    // must come back *in generation 2* — snapshot plus only the intact
    // gen-2 records — with the torn record dropped cleanly, for every
    // possible tear point inside that final record.
    let records = sample_records();
    let dir = Arc::new(MemDir::new());
    let (mut store, _) = Store::open(dir.clone(), FsyncPolicy::Off).unwrap();
    store.install_snapshot(&sample_snapshot().encode()).unwrap();
    store.append(&records[0].encode()).unwrap();
    store.append(&records[1].encode()).unwrap();
    store.install_snapshot(&sample_snapshot().encode()).unwrap();
    assert_eq!(store.generation(), 2);
    for rec in &records {
        store.append(&rec.encode()).unwrap();
    }
    let full = dir.contents("wal-2").unwrap();
    let last_len = records.last().unwrap().encode().len() + 8; // header + payload
    let intact_len = full.len() - last_len;

    for cut in intact_len + 1..full.len() {
        let d = Arc::new(MemDir::new());
        d.put("snap-2", dir.contents("snap-2").unwrap());
        d.put("wal-2", full[..cut].to_vec());
        // A stale generation-1 straggler must not confuse recovery.
        d.put(
            "wal-1",
            dir.contents("wal-2").unwrap()[..intact_len].to_vec(),
        );
        let (_, rec) = Store::open(d.clone(), FsyncPolicy::Off).unwrap();
        assert_eq!(rec.gen, 2, "cut at {cut}: tail must start at the new gen");
        assert!(rec.truncated_tail, "cut at {cut}");
        let got: Vec<WalRecord> = rec
            .records
            .iter()
            .map(|(off, p)| WalRecord::decode("wal-2", *off, p).unwrap())
            .collect();
        assert_eq!(
            got,
            records[..records.len() - 1],
            "cut at {cut}: torn final record must be dropped, earlier ones kept"
        );
        // The decoded snapshot opens the new generation.
        EngineSnapshot::decode("snap-2", &rec.snapshot.unwrap()).unwrap();
        // Stale-generation files are swept.
        assert!(!d.list().unwrap().contains(&"wal-1".to_string()));
    }
}

#[test]
fn prefix_damage_then_reopen_appends_cleanly() {
    // After recovering a torn log, the store must be usable: new
    // appends extend the repaired file and survive the next recovery.
    let (snap, wal, _) = build_files();
    let originals = sample_records();
    let dir = Arc::new(MemDir::new());
    dir.put("snap-1", snap);
    dir.put("wal-1", wal[..wal.len() - 3].to_vec()); // torn tail
    let (mut store, rec) = Store::open(dir.clone(), FsyncPolicy::Round).unwrap();
    assert!(rec.truncated_tail);
    assert_eq!(rec.records.len(), originals.len() - 1);

    let extra = WalRecord::Cancel { id: 3 };
    store.append(&extra.encode()).unwrap();
    store.round_barrier().unwrap();

    let (_, rec) = Store::open(dir, FsyncPolicy::Round).unwrap();
    assert!(!rec.truncated_tail);
    let got: Vec<WalRecord> = rec
        .records
        .iter()
        .map(|(off, p)| WalRecord::decode("wal-1", *off, p).unwrap())
        .collect();
    let mut want = originals[..originals.len() - 1].to_vec();
    want.push(extra);
    assert_eq!(got, want);
}
