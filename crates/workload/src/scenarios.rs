//! Named workload scenarios.
//!
//! The paper's evaluation uses a single uniform random workload; real
//! data grids have structure. This module provides parameterized,
//! seeded generators for the traffic patterns the paper's introduction
//! names — experiment output distribution, dataset replication,
//! backups — so examples and sensitivity studies can exercise the
//! schedulers on realistic shapes. Every generator returns an ordinary
//! [`Trace`] and documents its knobs.

use crate::arrival::ArrivalProcess;
use crate::dist::Dist;
use crate::request::{Request, TimeWindow};
use crate::trace::Trace;
use gridband_net::units::Time;
use gridband_net::{Route, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tier-0 distribution: one producer site pushes every dataset to
/// several consumer sites under a common deadline — the LHC-style
/// pattern of the paper's data-grid motivation.
///
/// * `epoch`: seconds between dataset publications;
/// * `fanout`: number of destination sites per dataset;
/// * `deadline`: window length for every replication (s).
#[allow(clippy::too_many_arguments)]
pub fn tier0_distribution(
    topo: &Topology,
    producer: u32,
    epochs: usize,
    epoch: Time,
    fanout: usize,
    volume: Dist,
    deadline: Time,
    seed: u64,
) -> Trace {
    assert!(
        (producer as usize) < topo.num_ingress(),
        "producer outside topology"
    );
    assert!(fanout < topo.num_egress(), "fanout must leave other sites");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut requests = Vec::new();
    let mut id = 0u64;
    for k in 0..epochs {
        let t0 = k as f64 * epoch;
        let vol = volume.sample(&mut rng);
        let mut picked = Vec::new();
        while picked.len() < fanout {
            let dst = rng.gen_range(0..topo.num_egress() as u32);
            if dst != producer && !picked.contains(&dst) {
                picked.push(dst);
            }
        }
        for dst in picked {
            let route = Route::new(producer, dst);
            let cap = topo.route_bottleneck(route);
            // The window must admit the volume at the bottleneck.
            let max_rate = cap.min((vol / deadline * 4.0).max(10.0)).min(cap);
            let max_rate = max_rate.max(vol / deadline);
            requests.push(Request::new(
                id,
                route,
                TimeWindow::new(t0, t0 + deadline),
                vol,
                max_rate.min(cap),
            ));
            id += 1;
        }
    }
    Trace::new(requests)
}

/// All-pairs shuffle: every site sends one equal-sized chunk to every
/// other site inside a common window — the bulk-synchronous exchange of
/// distributed analysis frameworks.
pub fn allpairs_shuffle(
    topo: &Topology,
    chunk_mb: f64,
    start: Time,
    window: Time,
    seed: u64,
) -> Trace {
    assert!(chunk_mb > 0.0 && window > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut requests = Vec::new();
    let mut id = 0u64;
    for i in 0..topo.num_ingress() as u32 {
        for e in 0..topo.num_egress() as u32 {
            if i == e {
                continue;
            }
            let route = Route::new(i, e);
            let cap = topo.route_bottleneck(route);
            let max_rate = (chunk_mb / window * rng.gen_range(2.0f64..6.0))
                .max(chunk_mb / window)
                .min(cap);
            // Jitter the starts slightly so FCFS ordering is defined.
            let jitter = rng.gen_range(0.0..window * 0.01);
            requests.push(Request::new(
                id,
                route,
                TimeWindow::new(start + jitter, start + window),
                chunk_mb,
                max_rate,
            ));
            id += 1;
        }
    }
    Trace::new(requests)
}

/// Nightly backups: all sites stream to one archive site during a
/// recurring backup window, modelled with a diurnal arrival peak.
pub fn nightly_backup(
    topo: &Topology,
    archive: u32,
    nights: usize,
    day: Time,
    mean_interarrival: Time,
    volume: Dist,
    seed: u64,
) -> Trace {
    assert!((archive as usize) < topo.num_egress());
    let mut rng = StdRng::seed_from_u64(seed);
    let horizon = nights as f64 * day;
    let arrivals = ArrivalProcess::Diurnal {
        mean_interarrival,
        depth: 0.9,
        period: day,
    }
    .arrivals_until(&mut rng, horizon);
    let mut requests = Vec::with_capacity(arrivals.len());
    for (k, t) in arrivals.into_iter().enumerate() {
        let mut src = rng.gen_range(0..topo.num_ingress() as u32);
        if topo.num_ingress() > 1 {
            while src == archive {
                src = rng.gen_range(0..topo.num_ingress() as u32);
            }
        }
        let route = Route::new(src, archive);
        let cap = topo.route_bottleneck(route);
        let vol = volume.sample(&mut rng);
        let max_rate = rng.gen_range((cap * 0.05).max(1.0)..=cap);
        let slack = rng.gen_range(2.0..5.0);
        requests.push(Request::new(
            k as u64,
            route,
            TimeWindow::new(t, t + slack * vol / max_rate),
            vol,
            max_rate,
        ));
    }
    Trace::new(requests)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::paper_default()
    }

    #[test]
    fn tier0_shape() {
        let t = tier0_distribution(&topo(), 0, 5, 600.0, 3, Dist::Fixed(100_000.0), 7_200.0, 1);
        assert_eq!(t.len(), 15);
        assert!(t.iter().all(|r| r.route.ingress.0 == 0));
        assert!(t.iter().all(|r| r.route.egress.0 != 0));
        assert!(t
            .iter()
            .all(|r| (r.window.duration() - 7_200.0).abs() < 1e-9));
        assert!(t.valid_for(&topo()));
        // Deterministic per seed.
        let t2 = tier0_distribution(&topo(), 0, 5, 600.0, 3, Dist::Fixed(100_000.0), 7_200.0, 1);
        assert_eq!(t, t2);
    }

    #[test]
    fn shuffle_covers_all_ordered_pairs() {
        let topo = Topology::uniform(4, 4, 100.0);
        let t = allpairs_shuffle(&topo, 1_000.0, 0.0, 600.0, 2);
        assert_eq!(t.len(), 4 * 3);
        // Every ordered pair exactly once.
        use std::collections::HashSet;
        let pairs: HashSet<(u32, u32)> = t
            .iter()
            .map(|r| (r.route.ingress.0, r.route.egress.0))
            .collect();
        assert_eq!(pairs.len(), 12);
        assert!(t.iter().all(|r| r.finish() <= 600.0 + 1e-9));
    }

    #[test]
    fn backup_concentrates_on_the_archive() {
        let t = nightly_backup(&topo(), 7, 2, 86_400.0, 120.0, Dist::Fixed(50_000.0), 3);
        assert!(!t.is_empty());
        assert!(t.iter().all(|r| r.route.egress.0 == 7));
        assert!(t.iter().all(|r| r.route.ingress.0 != 7));
        assert!(t.valid_for(&topo()));
        // Roughly 2 days / 120 s arrivals.
        let expected = 2.0 * 86_400.0 / 120.0;
        assert!(
            (t.len() as f64 - expected).abs() < 0.2 * expected,
            "{}",
            t.len()
        );
    }

    #[test]
    #[should_panic(expected = "producer outside")]
    fn bad_producer_rejected() {
        let _ = tier0_distribution(&topo(), 99, 1, 1.0, 1, Dist::Fixed(1.0), 10.0, 0);
    }
}
