//! Sampling distributions for request volumes, rates and window slack.
//!
//! The paper's two evaluation setups are captured by named constructors:
//!
//! * §4.3 (rigid): volumes drawn uniformly from the discrete set
//!   {10 GB, 20 GB, …, 90 GB, 100 GB, 200 GB, …, 900 GB, 1 TB};
//! * §5.3 (flexible): host rates drawn uniformly in [10 MB/s, 1 GB/s], which
//!   with the same volume set yields transmission times "from a couple of
//!   minutes to about one day".
//!
//! Everything samples through the [`rand`] traits so workloads are exactly
//! reproducible from a seed.

use gridband_net::units::{gb, tb};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution over positive reals used for volumes, rates and slack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Always the same value.
    Fixed(f64),
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
    /// Uniform over an explicit finite choice set.
    Choice(Vec<f64>),
    /// Log-uniform on `[lo, hi]`: uniform in `ln`, giving heavy spread
    /// across orders of magnitude (useful for sensitivity studies).
    LogUniform {
        /// Lower bound (inclusive, > 0).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
    /// Exponential with the given mean (truncated at 1e-9 below).
    Exponential {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Bounded Pareto on `[lo, hi]` with shape `alpha` — the classic
    /// heavy-tailed file-size model (many small files, rare huge ones);
    /// useful for sensitivity studies beyond the paper's discrete set.
    BoundedPareto {
        /// Shape parameter (> 0); smaller = heavier tail.
        alpha: f64,
        /// Lower bound (> 0).
        lo: f64,
        /// Upper bound (≥ lo).
        hi: f64,
    },
}

impl Dist {
    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            Dist::Fixed(v) => *v,
            Dist::Uniform { lo, hi } => rng.gen_range(*lo..=*hi),
            Dist::Choice(vals) => {
                assert!(!vals.is_empty(), "empty choice set");
                vals[rng.gen_range(0..vals.len())]
            }
            Dist::LogUniform { lo, hi } => {
                assert!(*lo > 0.0 && hi >= lo, "invalid log-uniform bounds");
                let u = rng.gen_range(lo.ln()..=hi.ln());
                u.exp()
            }
            Dist::Exponential { mean } => {
                assert!(*mean > 0.0, "exponential mean must be positive");
                // Inverse-CDF sampling; avoid ln(0).
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                (-u.ln() * mean).max(1e-9)
            }
            Dist::BoundedPareto { alpha, lo, hi } => {
                assert!(
                    *alpha > 0.0 && *lo > 0.0 && hi >= lo,
                    "invalid bounded Pareto"
                );
                // Inverse CDF of the bounded Pareto.
                let u: f64 = rng.gen_range(0.0..1.0);
                let la = lo.powf(*alpha);
                let ha = hi.powf(*alpha);
                (-(u * ha - u * la - ha) / (ha * la))
                    .powf(-1.0 / alpha)
                    .clamp(*lo, *hi)
            }
        }
    }

    /// Expected value of the distribution (exact, no sampling).
    pub fn mean(&self) -> f64 {
        match self {
            Dist::Fixed(v) => *v,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
            Dist::Choice(vals) => vals.iter().sum::<f64>() / vals.len() as f64,
            Dist::LogUniform { lo, hi } => {
                if (hi - lo).abs() < f64::EPSILON {
                    *lo
                } else {
                    (hi - lo) / (hi / lo).ln()
                }
            }
            Dist::Exponential { mean } => *mean,
            Dist::BoundedPareto { alpha, lo, hi } => {
                if (alpha - 1.0).abs() < 1e-12 {
                    // α = 1: mean = ln(hi/lo) · lo·hi / (hi − lo).
                    (hi / lo).ln() * lo * hi / (hi - lo)
                } else {
                    let la = lo.powf(*alpha);
                    let ha = hi.powf(*alpha);
                    (la / (1.0 - la / ha))
                        * (alpha / (alpha - 1.0))
                        * (1.0 / lo.powf(alpha - 1.0) - 1.0 / hi.powf(alpha - 1.0))
                }
            }
        }
    }

    /// The paper's §4.3 volume set:
    /// {10, 20, …, 90 GB} ∪ {100, 200, …, 900 GB} ∪ {1 TB}, in MB.
    pub fn paper_volumes() -> Dist {
        let mut vals: Vec<f64> = (1..=9).map(|k| gb(10.0 * k as f64)).collect();
        vals.extend((1..=9).map(|k| gb(100.0 * k as f64)));
        vals.push(tb(1.0));
        Dist::Choice(vals)
    }

    /// The paper's §5.3 host-rate distribution: uniform on
    /// [10 MB/s, 1 GB/s].
    pub fn paper_rates() -> Dist {
        Dist::Uniform {
            lo: 10.0,
            hi: 1000.0,
        }
    }
}

/// Convenience alias documenting intent at call sites.
pub type VolumeDist = Dist;
/// Convenience alias documenting intent at call sites.
pub type RateDist = Dist;

/// Validate that sampled values are usable as volumes/rates.
pub fn assert_positive_sample(x: f64, what: &str) -> f64 {
    assert!(
        x.is_finite() && x > 0.0,
        "{what} sample must be positive, got {x}"
    );
    x
}

#[allow(unused_imports)]
#[cfg(test)]
mod tests {
    use super::*;

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn paper_volume_set_has_19_values_spanning_10gb_to_1tb() {
        let d = Dist::paper_volumes();
        match &d {
            Dist::Choice(vals) => {
                assert_eq!(vals.len(), 19);
                assert_eq!(vals[0], 10_000.0); // 10 GB in MB
                assert_eq!(*vals.last().unwrap(), 1_000_000.0); // 1 TB
            }
            _ => panic!("expected Choice"),
        }
        let mut r = rng();
        for _ in 0..100 {
            let v = d.sample(&mut r);
            assert!((10_000.0..=1_000_000.0).contains(&v));
        }
    }

    #[test]
    fn uniform_stays_in_bounds_and_mean_matches() {
        let d = Dist::Uniform {
            lo: 10.0,
            hi: 1000.0,
        };
        let mut r = rng();
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut r);
            assert!((10.0..=1000.0).contains(&x));
            sum += x;
        }
        let emp_mean = sum / n as f64;
        assert!(
            (emp_mean - d.mean()).abs() < 15.0,
            "{emp_mean} vs {}",
            d.mean()
        );
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Dist::Exponential { mean: 5.0 };
        let mut r = rng();
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut r)).sum();
        let emp = sum / n as f64;
        assert!((emp - 5.0).abs() < 0.15, "empirical mean {emp}");
    }

    #[test]
    fn log_uniform_spans_orders_of_magnitude() {
        let d = Dist::LogUniform {
            lo: 1.0,
            hi: 1000.0,
        };
        let mut r = rng();
        let (mut low, mut high) = (0, 0);
        for _ in 0..5_000 {
            let x = d.sample(&mut r);
            assert!((1.0..=1000.0).contains(&x));
            if x < 10.0 {
                low += 1;
            }
            if x > 100.0 {
                high += 1;
            }
        }
        // Each decade carries ~1/3 of the mass.
        assert!(low > 1_200 && high > 1_200, "low={low} high={high}");
    }

    #[test]
    fn fixed_and_choice_sampling() {
        let mut r = rng();
        assert_eq!(Dist::Fixed(7.0).sample(&mut r), 7.0);
        assert_eq!(Dist::Fixed(7.0).mean(), 7.0);
        let c = Dist::Choice(vec![1.0, 2.0, 3.0]);
        assert_eq!(c.mean(), 2.0);
        for _ in 0..50 {
            assert!([1.0, 2.0, 3.0].contains(&c.sample(&mut r)));
        }
    }

    #[test]
    fn log_uniform_mean_formula() {
        let d = Dist::LogUniform {
            lo: 1.0,
            hi: std::f64::consts::E,
        };
        // mean = (e - 1)/ln(e) = e - 1
        assert!((d.mean() - (std::f64::consts::E - 1.0)).abs() < 1e-12);
        let degenerate = Dist::LogUniform { lo: 5.0, hi: 5.0 };
        assert_eq!(degenerate.mean(), 5.0);
    }

    #[test]
    fn determinism_from_seed() {
        let d = Dist::paper_rates();
        let a: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..10).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..10).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn assert_positive_sample_guards() {
        let _ = assert_positive_sample(-1.0, "volume");
    }
}

#[cfg(test)]
mod pareto_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_bounds() {
        let d = Dist::BoundedPareto {
            alpha: 1.2,
            lo: 10.0,
            hi: 10_000.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5_000 {
            let x = d.sample(&mut rng);
            assert!((10.0..=10_000.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn tail_is_heavy() {
        // With α = 1.1 the top decade carries a visible share of samples,
        // unlike e.g. a uniform in log space check: compare the fraction
        // of mass above the 90th size percentile to an exponential-ish
        // bound.
        let d = Dist::BoundedPareto {
            alpha: 1.1,
            lo: 1.0,
            hi: 1_000.0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let mut big = 0usize;
        let mut small = 0usize;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            if x >= 100.0 {
                big += 1;
            }
            if x < 2.0 {
                small += 1;
            }
        }
        // Most samples are tiny, but the tail is non-negligible:
        // P(X ≥ 100) ≈ 0.58% for α = 1.1 on [1, 1000].
        assert!(small > n / 2, "small {small}");
        assert!(big > n / 250, "big {big}");
        assert!(big < n / 50, "big {big} — tail heavier than the law allows");
    }

    #[test]
    fn empirical_mean_matches_formula() {
        let d = Dist::BoundedPareto {
            alpha: 1.5,
            lo: 10.0,
            hi: 1_000.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let emp = sum / n as f64;
        let theory = d.mean();
        assert!(
            (emp - theory).abs() / theory < 0.03,
            "empirical {emp} vs theory {theory}"
        );
    }
}
