//! The data-transfer request model of §2.1.
//!
//! A request is a finite bulk transfer ("short-lived request"): a route, a
//! transmission window `[t_s, t_f]`, a volume and a host-side rate limit
//! `MaxRate`. The window induces `MinRate = vol / (t_f - t_s)`; a request
//! with `MinRate = MaxRate` is **rigid** (accept as-is or reject), otherwise
//! it is **flexible** and the scheduler picks `bw ∈ [MinRate, MaxRate]`.

use gridband_net::units::{approx_eq, approx_le, Bandwidth, Time, Volume, EPS};
use gridband_net::{Route, Topology};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of a request within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A closed transmission window `[start, finish]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeWindow {
    /// Requested start time `t_s(r)` (also the arrival time of the request).
    pub start: Time,
    /// Requested latest finish time `t_f(r)`.
    pub finish: Time,
}

impl TimeWindow {
    /// Construct a window; panics if reversed, empty, or non-finite.
    pub fn new(start: Time, finish: Time) -> Self {
        assert!(
            start.is_finite() && finish.is_finite() && finish - start > EPS,
            "invalid time window [{start}, {finish}]"
        );
        TimeWindow { start, finish }
    }

    /// Window length `t_f - t_s`.
    #[inline]
    pub fn duration(&self) -> Time {
        self.finish - self.start
    }

    /// Whether `t` lies in `[start, finish)`.
    #[inline]
    pub fn contains(&self, t: Time) -> bool {
        t >= self.start && t < self.finish
    }

    /// Whether two windows overlap on a set of positive measure.
    pub fn overlaps(&self, other: &TimeWindow) -> bool {
        self.start < other.finish && other.start < self.finish
    }
}

/// A short-lived bulk data-transfer request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Trace-unique id.
    pub id: RequestId,
    /// Fixed source → destination route.
    pub route: Route,
    /// Requested transmission window `[t_s, t_f]`.
    pub window: TimeWindow,
    /// Transfer volume in MB.
    pub volume: Volume,
    /// Host transmission limit `MaxRate(r)` in MB/s.
    pub max_rate: Bandwidth,
}

impl Request {
    /// Construct a request, validating volume and rate positivity and the
    /// basic feasibility `MinRate ≤ MaxRate` (the window is long enough for
    /// the host to push the volume through at its maximum rate).
    pub fn new(
        id: u64,
        route: Route,
        window: TimeWindow,
        volume: Volume,
        max_rate: Bandwidth,
    ) -> Self {
        assert!(
            volume.is_finite() && volume > 0.0,
            "volume must be positive, got {volume}"
        );
        assert!(
            max_rate.is_finite() && max_rate > 0.0,
            "max_rate must be positive, got {max_rate}"
        );
        let r = Request {
            id: RequestId(id),
            route,
            window,
            volume,
            max_rate,
        };
        assert!(
            approx_le(r.min_rate(), max_rate * (1.0 + 1e-9)),
            "infeasible request {id}: MinRate {} > MaxRate {}",
            r.min_rate(),
            max_rate
        );
        r
    }

    /// A **rigid** request: the window is sized so that
    /// `MinRate = MaxRate = rate` exactly (§4: `σ(r) = t_s`, `τ(r) = t_f`).
    pub fn rigid(id: u64, route: Route, start: Time, volume: Volume, rate: Bandwidth) -> Self {
        let duration = volume / rate;
        Request::new(
            id,
            route,
            TimeWindow::new(start, start + duration),
            volume,
            rate,
        )
    }

    /// `t_s(r)`.
    #[inline]
    pub fn start(&self) -> Time {
        self.window.start
    }

    /// `t_f(r)`.
    #[inline]
    pub fn finish(&self) -> Time {
        self.window.finish
    }

    /// `MinRate(r) = vol(r) / (t_f(r) − t_s(r))` — the smallest constant
    /// bandwidth that completes the transfer within the window.
    #[inline]
    pub fn min_rate(&self) -> Bandwidth {
        self.volume / self.window.duration()
    }

    /// `vol(r) / MaxRate(r)` — the transfer duration at full host rate.
    #[inline]
    pub fn min_duration(&self) -> Time {
        self.volume / self.max_rate
    }

    /// Whether the request leaves the scheduler no bandwidth choice
    /// (`MinRate ≈ MaxRate`).
    pub fn is_rigid(&self) -> bool {
        approx_eq(self.min_rate(), self.max_rate)
    }

    /// Window slack ratio `(t_f − t_s) / (vol / MaxRate)` — 1.0 for rigid
    /// requests, larger values mean more scheduling freedom.
    pub fn slack(&self) -> f64 {
        self.window.duration() / self.min_duration()
    }

    /// The bandwidth required to finish by the deadline when starting at
    /// `start_at` (≥ `MinRate` when starting late), or `None` if no rate
    /// ≤ `MaxRate` can make the deadline.
    pub fn required_rate_from(&self, start_at: Time) -> Option<Bandwidth> {
        let remaining = self.finish() - start_at;
        if remaining <= EPS {
            return None;
        }
        let needed = self.volume / remaining;
        if approx_le(needed, self.max_rate) {
            Some(needed.min(self.max_rate))
        } else {
            None
        }
    }

    /// Completion time when transmitted at constant `bw` from `start_at`.
    pub fn completion_at(&self, start_at: Time, bw: Bandwidth) -> Time {
        start_at + self.volume / bw
    }

    /// Validate the request against a topology (route exists).
    pub fn routed_in(&self, topo: &Topology) -> bool {
        topo.contains_route(self.route)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> Request {
        // 1000 MB over [0, 100] with MaxRate 50 -> MinRate 10, slack 5.
        Request::new(
            1,
            Route::new(0, 1),
            TimeWindow::new(0.0, 100.0),
            1000.0,
            50.0,
        )
    }

    #[test]
    fn derived_rates() {
        let r = req();
        assert_eq!(r.min_rate(), 10.0);
        assert_eq!(r.min_duration(), 20.0);
        assert_eq!(r.slack(), 5.0);
        assert!(!r.is_rigid());
    }

    #[test]
    fn rigid_constructor_pins_the_window() {
        let r = Request::rigid(2, Route::new(0, 0), 10.0, 500.0, 25.0);
        assert_eq!(r.window.finish, 30.0);
        assert!(r.is_rigid());
        assert_eq!(r.min_rate(), 25.0);
        assert_eq!(r.slack(), 1.0);
    }

    #[test]
    fn required_rate_grows_as_start_slips() {
        let r = req();
        assert_eq!(r.required_rate_from(0.0), Some(10.0));
        assert_eq!(r.required_rate_from(50.0), Some(20.0));
        assert_eq!(r.required_rate_from(80.0), Some(50.0)); // exactly MaxRate
        assert_eq!(r.required_rate_from(90.0), None); // needs 100 > MaxRate
        assert_eq!(r.required_rate_from(100.0), None); // window closed
    }

    #[test]
    fn completion_time() {
        let r = req();
        assert_eq!(r.completion_at(0.0, 50.0), 20.0);
        assert_eq!(r.completion_at(30.0, 10.0), 130.0);
    }

    #[test]
    fn window_predicates() {
        let w = TimeWindow::new(5.0, 10.0);
        assert!(w.contains(5.0));
        assert!(!w.contains(10.0));
        assert!(w.overlaps(&TimeWindow::new(9.0, 12.0)));
        assert!(!w.overlaps(&TimeWindow::new(10.0, 12.0)));
        assert_eq!(w.duration(), 5.0);
    }

    #[test]
    #[should_panic(expected = "infeasible request")]
    fn infeasible_window_rejected() {
        // 1000 MB in 10 s needs 100 MB/s but MaxRate is 50.
        let _ = Request::new(
            3,
            Route::new(0, 0),
            TimeWindow::new(0.0, 10.0),
            1000.0,
            50.0,
        );
    }

    #[test]
    #[should_panic(expected = "invalid time window")]
    fn reversed_window_rejected() {
        let _ = TimeWindow::new(10.0, 5.0);
    }

    #[test]
    fn routed_in_topology() {
        let t = Topology::uniform(2, 2, 100.0);
        assert!(req().routed_in(&t));
        let r = Request::new(4, Route::new(5, 0), TimeWindow::new(0.0, 10.0), 10.0, 10.0);
        assert!(!r.routed_in(&t));
    }

    #[test]
    fn serde_round_trip() {
        let r = req();
        let js = serde_json::to_string(&r).unwrap();
        let back: Request = serde_json::from_str(&js).unwrap();
        assert_eq!(r, back);
    }
}
