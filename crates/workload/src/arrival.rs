//! Arrival processes.
//!
//! "Flows arrive at the network edge according to a Poisson distribution"
//! (§2.1): inter-arrival times are exponential with mean `1/λ`. The mean
//! inter-arrival time is the x-axis of Figures 5–7, so it is the primary
//! knob exposed here. A deterministic process is provided for tests and a
//! uniform-jitter one for sensitivity studies.

use gridband_net::units::Time;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A stationary arrival process generating an increasing time sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson process: exponential inter-arrivals with the given mean (s).
    Poisson {
        /// Mean inter-arrival time `1/λ` in seconds.
        mean_interarrival: Time,
    },
    /// Fixed spacing — useful for deterministic unit tests.
    Deterministic {
        /// Constant gap between consecutive arrivals (s).
        interval: Time,
    },
    /// Uniform jitter on `[lo, hi]` between arrivals.
    UniformGap {
        /// Smallest gap (s).
        lo: Time,
        /// Largest gap (s).
        hi: Time,
    },
    /// Sinusoidally modulated Poisson process (diurnal load pattern):
    /// instantaneous rate `λ(t) = λ·(1 + depth·sin(2πt/period))`,
    /// sampled by thinning. Grid workloads follow the working day; this
    /// process lets experiments exercise schedulers across load swings
    /// within one run.
    Diurnal {
        /// Baseline mean inter-arrival time `1/λ` (s).
        mean_interarrival: Time,
        /// Modulation depth in `[0, 1)` (0 = plain Poisson).
        depth: f64,
        /// Period of the modulation (s); e.g. 86 400 for a day.
        period: Time,
    },
}

impl ArrivalProcess {
    /// Poisson process with arrival **rate** λ (arrivals per second).
    pub fn poisson_rate(lambda: f64) -> Self {
        assert!(lambda > 0.0, "arrival rate must be positive");
        ArrivalProcess::Poisson {
            mean_interarrival: 1.0 / lambda,
        }
    }

    /// Mean inter-arrival time of the process.
    pub fn mean_interarrival(&self) -> Time {
        match self {
            ArrivalProcess::Poisson { mean_interarrival } => *mean_interarrival,
            ArrivalProcess::Deterministic { interval } => *interval,
            ArrivalProcess::UniformGap { lo, hi } => 0.5 * (lo + hi),
            // The sinusoidal modulation integrates to zero over a period.
            ArrivalProcess::Diurnal {
                mean_interarrival, ..
            } => *mean_interarrival,
        }
    }

    /// Arrival rate λ (arrivals per second).
    pub fn rate(&self) -> f64 {
        1.0 / self.mean_interarrival()
    }

    /// Draw the gap to the next arrival given the current time `now`
    /// (only the non-stationary [`ArrivalProcess::Diurnal`] process uses
    /// `now`; for the others the gap distribution is time-invariant).
    pub fn next_gap<R: Rng + ?Sized>(&self, rng: &mut R, now: Time) -> Time {
        match self {
            ArrivalProcess::Poisson { mean_interarrival } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                (-u.ln() * mean_interarrival).max(1e-9)
            }
            ArrivalProcess::Deterministic { interval } => *interval,
            ArrivalProcess::UniformGap { lo, hi } => rng.gen_range(*lo..=*hi),
            ArrivalProcess::Diurnal {
                mean_interarrival,
                depth,
                period,
            } => {
                assert!(
                    (0.0..1.0).contains(depth),
                    "modulation depth must lie in [0, 1), got {depth}"
                );
                assert!(*period > 0.0, "modulation period must be positive");
                // Ogata thinning: propose from the envelope rate
                // λ_max = λ(1+depth), accept with λ(t)/λ_max.
                let lambda = 1.0 / mean_interarrival;
                let lambda_max = lambda * (1.0 + depth);
                let mut t = now;
                loop {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    t += (-u.ln() / lambda_max).max(1e-9);
                    let rate_t =
                        lambda * (1.0 + depth * (2.0 * std::f64::consts::PI * t / period).sin());
                    if rng.gen_range(0.0..1.0) * lambda_max <= rate_t {
                        return t - now;
                    }
                }
            }
        }
    }

    /// All arrival instants in `[0, horizon)`.
    pub fn arrivals_until<R: Rng + ?Sized>(&self, rng: &mut R, horizon: Time) -> Vec<Time> {
        let mut t = 0.0;
        let mut out = Vec::with_capacity((horizon / self.mean_interarrival()) as usize + 8);
        loop {
            t += self.next_gap(rng, t);
            if t >= horizon {
                break;
            }
            out.push(t);
        }
        out
    }
}

/// Deterministic open-loop send schedule: request `i` is *due* at
/// `i / rate` seconds after the epoch, regardless of how far behind the
/// sender has fallen.
///
/// This is the load-generation counterpart of [`ArrivalProcess`]: where
/// an arrival process models *virtual-time* arrivals inside a trace, the
/// open-loop schedule pins *wall-clock* send instants for a live client.
/// The distinction matters for latency measurement: a closed-loop client
/// that stalls on a slow reply silently delays every later send, hiding
/// the very queueing it caused (coordinated omission). An open-loop
/// client keeps the intended instants fixed — a late send is recorded as
/// already-elapsed latency, not forgiven — so percentiles computed from
/// `decision_time - intended(i)` reflect what a request arriving at its
/// scheduled instant would actually have experienced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpenLoopSchedule {
    rate: f64,
}

impl OpenLoopSchedule {
    /// Schedule with the given send rate (requests per second).
    pub fn per_second(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "open-loop rate must be a positive finite number, got {rate}"
        );
        OpenLoopSchedule { rate }
    }

    /// The send rate (requests per second).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Intended send offset of request `i`, in seconds after the epoch.
    pub fn offset(&self, i: usize) -> Time {
        i as f64 / self.rate
    }

    /// Which fifth of an `n`-request run request `i` belongs to, by send
    /// order (0ᵗʰ through 4ᵗʰ). Soak gates compare the first and last
    /// quintile's corrected percentiles, so the bucketing is part of the
    /// reported contract.
    pub fn quintile(i: usize, n: usize) -> usize {
        (i * 5 / n.max(1)).min(4)
    }
}

#[cfg(test)]
mod open_loop_tests {
    use super::*;

    #[test]
    fn offsets_are_evenly_spaced() {
        let s = OpenLoopSchedule::per_second(8_000.0);
        assert_eq!(s.offset(0), 0.0);
        assert_eq!(s.offset(8_000), 1.0);
        assert_eq!(s.rate(), 8_000.0);
        // Monotone, uniform spacing.
        for i in 1..100 {
            let gap = s.offset(i) - s.offset(i - 1);
            assert!((gap - 1.0 / 8_000.0).abs() < 1e-12);
        }
    }

    #[test]
    fn quintiles_partition_the_run_evenly() {
        let n = 1_000;
        let mut counts = [0usize; 5];
        for i in 0..n {
            counts[OpenLoopSchedule::quintile(i, n)] += 1;
        }
        assert_eq!(counts, [200; 5]);
        // Degenerate sizes stay in range.
        assert_eq!(OpenLoopSchedule::quintile(0, 0), 0);
        assert_eq!(OpenLoopSchedule::quintile(6, 7), 4);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn zero_rate_rejected() {
        let _ = OpenLoopSchedule::per_second(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_spacing() {
        let p = ArrivalProcess::Deterministic { interval: 2.0 };
        let mut rng = StdRng::seed_from_u64(0);
        let ts = p.arrivals_until(&mut rng, 10.0);
        assert_eq!(ts, vec![2.0, 4.0, 6.0, 8.0]);
        assert_eq!(p.rate(), 0.5);
    }

    #[test]
    fn poisson_rate_matches_count() {
        let p = ArrivalProcess::Poisson {
            mean_interarrival: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(123);
        let horizon = 10_000.0;
        let ts = p.arrivals_until(&mut rng, horizon);
        let expected = horizon / 0.5;
        let n = ts.len() as f64;
        // Poisson sd = sqrt(20_000) ≈ 141; allow 5 sigma.
        assert!((n - expected).abs() < 750.0, "got {n} arrivals");
        // Strictly increasing.
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn poisson_interarrival_cv_is_one() {
        // Coefficient of variation of exponential gaps is 1 — this is what
        // distinguishes Poisson from the other processes.
        let p = ArrivalProcess::Poisson {
            mean_interarrival: 2.0,
        };
        let mut rng = StdRng::seed_from_u64(9);
        let gaps: Vec<f64> = (0..50_000).map(|_| p.next_gap(&mut rng, 0.0)).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / (gaps.len() - 1) as f64;
        let cv = var.sqrt() / mean;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((cv - 1.0).abs() < 0.03, "cv {cv}");
    }

    #[test]
    fn uniform_gap_bounds() {
        let p = ArrivalProcess::UniformGap { lo: 1.0, hi: 3.0 };
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let g = p.next_gap(&mut rng, 0.0);
            assert!((1.0..=3.0).contains(&g));
        }
        assert_eq!(p.mean_interarrival(), 2.0);
    }

    #[test]
    fn poisson_rate_constructor() {
        let p = ArrivalProcess::poisson_rate(4.0);
        assert_eq!(p.mean_interarrival(), 0.25);
    }

    #[test]
    fn reproducible_from_seed() {
        let p = ArrivalProcess::Poisson {
            mean_interarrival: 1.0,
        };
        let a = p.arrivals_until(&mut StdRng::seed_from_u64(77), 100.0);
        let b = p.arrivals_until(&mut StdRng::seed_from_u64(77), 100.0);
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod diurnal_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn diurnal_mean_rate_matches_baseline() {
        let p = ArrivalProcess::Diurnal {
            mean_interarrival: 0.5,
            depth: 0.8,
            period: 1_000.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        // Over whole periods the modulation cancels.
        let ts = p.arrivals_until(&mut rng, 10_000.0);
        let expected = 10_000.0 / 0.5;
        assert!(
            (ts.len() as f64 - expected).abs() < 0.05 * expected,
            "{} arrivals vs {expected}",
            ts.len()
        );
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn diurnal_peak_beats_trough() {
        let p = ArrivalProcess::Diurnal {
            mean_interarrival: 0.2,
            depth: 0.9,
            period: 1_000.0,
        };
        let mut rng = StdRng::seed_from_u64(9);
        let ts = p.arrivals_until(&mut rng, 20_000.0);
        // Peak quarter of the sine: t mod period in [125, 375);
        // trough quarter: [625, 875).
        let phase = |t: f64| t % 1_000.0;
        let peak = ts
            .iter()
            .filter(|&&t| (125.0..375.0).contains(&phase(t)))
            .count();
        let trough = ts
            .iter()
            .filter(|&&t| (625.0..875.0).contains(&phase(t)))
            .count();
        assert!(
            peak as f64 > 3.0 * trough as f64,
            "peak {peak} vs trough {trough}"
        );
    }

    #[test]
    fn zero_depth_is_plain_poisson_rate() {
        let p = ArrivalProcess::Diurnal {
            mean_interarrival: 1.0,
            depth: 0.0,
            period: 100.0,
        };
        assert_eq!(p.mean_interarrival(), 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let n = p.arrivals_until(&mut rng, 5_000.0).len() as f64;
        assert!((n - 5_000.0).abs() < 300.0, "{n}");
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn out_of_range_depth_rejected() {
        let p = ArrivalProcess::Diurnal {
            mean_interarrival: 1.0,
            depth: 1.5,
            period: 100.0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let _ = p.next_gap(&mut rng, 0.0);
    }
}
