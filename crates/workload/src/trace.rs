//! Request traces: an ordered batch of requests plus summary statistics and
//! (de)serialization.

use crate::request::Request;
use gridband_net::units::{Bandwidth, Time, Volume};
use gridband_net::Topology;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// An immutable batch of requests sorted by start time — the scheduler input
/// `R = {r_1 … r_K}` of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    requests: Vec<Request>,
}

impl Trace {
    /// Build a trace, sorting by `(t_s, id)` and checking id uniqueness.
    pub fn new(mut requests: Vec<Request>) -> Self {
        requests.sort_by(|a, b| {
            a.start()
                .partial_cmp(&b.start())
                .expect("finite start times")
                .then(a.id.cmp(&b.id))
        });
        for w in requests.windows(2) {
            assert!(w[0].id != w[1].id, "duplicate request id {}", w[0].id);
        }
        Trace { requests }
    }

    /// The requests in start-time order.
    #[inline]
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests `K`.
    #[inline]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace carries no requests.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Iterate over requests in start-time order.
    pub fn iter(&self) -> impl Iterator<Item = &Request> {
        self.requests.iter()
    }

    /// Latest requested finish time, i.e. the natural simulation horizon.
    pub fn horizon(&self) -> Time {
        self.requests.iter().map(|r| r.finish()).fold(0.0, f64::max)
    }

    /// Earliest start time.
    pub fn first_start(&self) -> Time {
        self.requests
            .iter()
            .map(|r| r.start())
            .fold(f64::INFINITY, f64::min)
    }

    /// Whether every request routes within `topo`.
    pub fn valid_for(&self, topo: &Topology) -> bool {
        self.requests.iter().all(|r| r.routed_in(topo))
    }

    /// The paper's **offered load** (§4.3): time-averaged total demanded
    /// bandwidth (at `MinRate`) divided by half the total port capacity.
    ///
    /// `load = Σ_r MinRate(r)·(t_f−t_s) / (horizon · (ΣB_in + ΣB_out)/2)`
    /// which equals the time average of
    /// `Σ_{r active at t} MinRate(r) / half_total_cap`.
    ///
    /// Note `MinRate·(t_f−t_s) = vol(r)`, so the numerator is simply the
    /// total volume of the trace — demanded work over available work.
    pub fn offered_load(&self, topo: &Topology) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        // Demand accrues over the arrival period. Dividing by the maximum
        // finish time instead would dilute the load whenever a late slow
        // transfer extends far past the last arrival. For degenerate traces
        // (a single burst), fall back to the longest window.
        let first = self.requests.first().expect("non-empty").start();
        let last = self.requests.last().expect("non-empty").start();
        let span = if last > first {
            last - first
        } else {
            // Degenerate trace (single burst): demand lasts as long as the
            // longest window.
            self.requests
                .iter()
                .map(|r| r.window.duration())
                .fold(0.0, f64::max)
        };
        let volume: Volume = self.requests.iter().map(|r| r.volume).sum();
        volume / (span * topo.half_total_cap())
    }

    /// Summary statistics of the trace.
    pub fn stats(&self) -> TraceStats {
        let n = self.len();
        if n == 0 {
            return TraceStats::default();
        }
        let total_volume: Volume = self.iter().map(|r| r.volume).sum();
        let mean_min_rate: Bandwidth = self.iter().map(|r| r.min_rate()).sum::<f64>() / n as f64;
        let mean_max_rate: Bandwidth = self.iter().map(|r| r.max_rate).sum::<f64>() / n as f64;
        let mean_slack = self.iter().map(|r| r.slack()).sum::<f64>() / n as f64;
        let mean_duration = self.iter().map(|r| r.window.duration()).sum::<f64>() / n as f64;
        let rigid = self.iter().filter(|r| r.is_rigid()).count();
        TraceStats {
            count: n,
            total_volume,
            mean_min_rate,
            mean_max_rate,
            mean_slack,
            mean_window: mean_duration,
            rigid_count: rigid,
            horizon: self.horizon(),
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serialization cannot fail")
    }

    /// Write the trace as JSON to any sink.
    pub fn write_json<W: Write>(&self, w: W) -> std::io::Result<()> {
        serde_json::to_writer_pretty(w, self).map_err(std::io::Error::other)
    }

    /// Read a trace back from JSON.
    pub fn read_json<R: Read>(r: R) -> std::io::Result<Trace> {
        serde_json::from_reader(r).map_err(std::io::Error::other)
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Request;
    type IntoIter = std::slice::Iter<'a, Request>;
    fn into_iter(self) -> Self::IntoIter {
        self.requests.iter()
    }
}

/// Aggregate numbers describing a trace, printed by the CLI and recorded in
/// experiment outputs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of requests.
    pub count: usize,
    /// Total volume (MB).
    pub total_volume: Volume,
    /// Mean `MinRate` (MB/s).
    pub mean_min_rate: Bandwidth,
    /// Mean `MaxRate` (MB/s).
    pub mean_max_rate: Bandwidth,
    /// Mean window slack ratio.
    pub mean_slack: f64,
    /// Mean window length (s).
    pub mean_window: Time,
    /// How many requests are rigid.
    pub rigid_count: usize,
    /// Latest finish time (s).
    pub horizon: Time,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::TimeWindow;
    use gridband_net::Route;

    fn r(id: u64, start: f64, finish: f64, vol: f64, max: f64) -> Request {
        Request::new(
            id,
            Route::new(0, 1),
            TimeWindow::new(start, finish),
            vol,
            max,
        )
    }

    #[test]
    fn trace_sorts_by_start_time() {
        let t = Trace::new(vec![
            r(2, 10.0, 20.0, 100.0, 50.0),
            r(1, 0.0, 5.0, 100.0, 50.0),
        ]);
        assert_eq!(t.requests()[0].id.0, 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.horizon(), 20.0);
        assert_eq!(t.first_start(), 0.0);
    }

    #[test]
    #[should_panic(expected = "duplicate request id")]
    fn duplicate_ids_rejected() {
        let _ = Trace::new(vec![
            r(1, 0.0, 5.0, 100.0, 50.0),
            r(1, 0.0, 6.0, 100.0, 50.0),
        ]);
    }

    #[test]
    fn offered_load_is_volume_over_capacity_time() {
        let topo = Topology::uniform(2, 2, 100.0); // half-total = 200 MB/s
                                                   // One request: 1000 MB over [0, 10]: load = 1000 / (10*200) = 0.5
        let t = Trace::new(vec![r(1, 0.0, 10.0, 1000.0, 100.0)]);
        assert!((t.offered_load(&topo) - 0.5).abs() < 1e-12);
        // Two of them: load 1.0.
        let t = Trace::new(vec![
            r(1, 0.0, 10.0, 1000.0, 100.0),
            r(2, 0.0, 10.0, 1000.0, 100.0),
        ]);
        assert!((t.offered_load(&topo) - 1.0).abs() < 1e-12);
        assert_eq!(Trace::new(vec![]).offered_load(&topo), 0.0);
    }

    #[test]
    fn stats_aggregate_correctly() {
        let t = Trace::new(vec![
            r(1, 0.0, 10.0, 100.0, 20.0), // MinRate 10, slack 2
            r(2, 0.0, 20.0, 100.0, 10.0), // MinRate 5, slack 2, rigid? 100/20=5 != 10
        ]);
        let s = t.stats();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_volume, 200.0);
        assert!((s.mean_min_rate - 7.5).abs() < 1e-12);
        assert!((s.mean_max_rate - 15.0).abs() < 1e-12);
        assert_eq!(s.rigid_count, 0);
        assert_eq!(s.horizon, 20.0);
        assert_eq!(Trace::new(vec![]).stats(), TraceStats::default());
    }

    #[test]
    fn json_round_trip() {
        let t = Trace::new(vec![r(1, 0.0, 10.0, 100.0, 20.0)]);
        let js = t.to_json();
        let back = Trace::read_json(js.as_bytes()).unwrap();
        assert_eq!(t, back);
        let mut buf = Vec::new();
        t.write_json(&mut buf).unwrap();
        assert_eq!(Trace::read_json(&buf[..]).unwrap(), t);
    }

    #[test]
    fn validity_against_topology() {
        let t = Trace::new(vec![r(1, 0.0, 10.0, 100.0, 20.0)]);
        assert!(t.valid_for(&Topology::uniform(1, 2, 100.0)));
        assert!(!t.valid_for(&Topology::uniform(1, 1, 100.0)));
    }
}
