//! Small descriptive-statistics helpers shared by reports and benches.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (n−1 denominator); 0.0 for fewer than two
/// samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Linear-interpolated quantile, `q ∈ [0, 1]`; panics on empty input.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = pos - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// Median (0.5 quantile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)` — 1.0 when all values are
/// equal, `1/n` when one value holds everything. 0.0 for empty input.
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq <= 0.0 {
        return 0.0;
    }
    sum * sum / (xs.len() as f64 * sq)
}

/// Mean ± sample-std summary of a set of replicate measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean of the replicates.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Number of replicates.
    pub n: usize,
}

impl Summary {
    /// Summarize a slice of replicate values.
    pub fn of(xs: &[f64]) -> Summary {
        Summary {
            mean: mean(xs),
            std: std_dev(xs),
            n: xs.len(),
        }
    }

    /// Half-width of a ~95% normal confidence interval (1.96 σ/√n).
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std / (self.n as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        // Known dataset: {2,4,4,4,5,5,7,9} has sample std ≈ 2.138.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert_eq!(quantile(&xs, 0.25), 1.75);
        // Unsorted input is fine.
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
    }

    #[test]
    fn summary_ci() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.n, 5);
        assert!(s.ci95() > 0.0);
        assert_eq!(Summary::of(&[1.0]).ci95(), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    fn jain_extremes_and_known_value() {
        assert_eq!(jain_index(&[]), 0.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 0.0);
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // Known: {1,2,3} → 36 / (3·14) = 6/7.
        assert!((jain_index(&[1.0, 2.0, 3.0]) - 6.0 / 7.0).abs() < 1e-12);
    }
}
