//! # gridband-workload — requests, traces and stochastic workload synthesis
//!
//! Implements §2.1 of *“Optimal Bandwidth Sharing in Grid Environments”*
//! (HPDC 2006): short-lived bulk-transfer requests with transmission
//! windows, plus the Poisson workload machinery behind the paper's
//! evaluation (§4.3, §5.3).
//!
//! * [`Request`] / [`TimeWindow`] — a transfer with route, window
//!   `[t_s, t_f]`, volume and host limit `MaxRate`; `MinRate` is derived.
//! * [`Dist`] — volume/rate/slack distributions, including the paper's
//!   discrete 10 GB–1 TB volume set and the [10 MB/s, 1 GB/s] rate range.
//! * [`ArrivalProcess`] — Poisson (and test) arrival processes.
//! * [`WorkloadBuilder`] — seeded trace generation with **load targeting**
//!   (`λ = load × capacity / E[vol]`), reproducing the §4.3 and §5.3 setups
//!   via [`WorkloadBuilder::paper_rigid`] and
//!   [`WorkloadBuilder::paper_flexible`].
//! * [`Trace`] — a sorted request batch with offered-load measurement and
//!   JSON (de)serialization.
//!
//! ```
//! use gridband_workload::WorkloadBuilder;
//! use gridband_net::Topology;
//!
//! let topo = Topology::paper_default();
//! let trace = WorkloadBuilder::new(topo.clone())
//!     .target_load(2.0)
//!     .horizon(5_000.0)
//!     .seed(42)
//!     .build();
//! assert!(trace.valid_for(&topo));
//! let measured = trace.offered_load(&topo);
//! assert!((measured - 2.0).abs() < 0.5);
//! ```

#![warn(missing_docs)]

pub mod arrival;
pub mod builder;
pub mod class;
pub mod dist;
pub mod lint;
pub mod ops;
pub mod request;
pub mod scenarios;
pub mod stats;
pub mod trace;

pub use arrival::{ArrivalProcess, OpenLoopSchedule};
pub use builder::WorkloadBuilder;
pub use class::{ClassMix, ServiceClass};
pub use dist::{Dist, RateDist, VolumeDist};
pub use request::{Request, RequestId, TimeWindow};
pub use trace::{Trace, TraceStats};
