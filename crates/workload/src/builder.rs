//! Stochastic workload synthesis with load targeting.
//!
//! [`WorkloadBuilder`] reproduces the paper's simulation settings:
//!
//! * §4.3 (rigid): Poisson arrivals, volumes from the discrete 10 GB–1 TB
//!   set, host rate uniform in [10 MB/s, 1 GB/s], window exactly sized so
//!   `MinRate = MaxRate`. The **system load** — time-averaged demanded
//!   bandwidth over half the total port capacity — is the control knob.
//! * §5.3 (flexible): same arrivals/volumes/rates, but the window carries
//!   slack so the scheduler can pick `bw ∈ [MinRate, MaxRate]`; the control
//!   knob is the mean inter-arrival time (the x-axis of Figures 5–7).

use crate::arrival::ArrivalProcess;
use crate::dist::Dist;
use crate::request::{Request, TimeWindow};
use crate::trace::Trace;
use gridband_net::units::Time;
use gridband_net::{Route, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configurable generator of request [`Trace`]s over a [`Topology`].
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    topology: Topology,
    arrival: ArrivalProcess,
    volumes: Dist,
    max_rates: Dist,
    slack: Dist,
    horizon: Time,
    avoid_loopback: bool,
    seed: u64,
}

impl WorkloadBuilder {
    /// Start from a topology with the paper's §4.3/§5.3 defaults:
    /// Poisson arrivals (1 s mean), paper volume set, rates uniform in
    /// [10, 1000] MB/s, rigid windows, 10 000 s horizon.
    pub fn new(topology: Topology) -> Self {
        WorkloadBuilder {
            topology,
            arrival: ArrivalProcess::Poisson {
                mean_interarrival: 1.0,
            },
            volumes: Dist::paper_volumes(),
            max_rates: Dist::paper_rates(),
            slack: Dist::Fixed(1.0),
            horizon: 10_000.0,
            avoid_loopback: true,
            seed: 0,
        }
    }

    /// Set the arrival process.
    pub fn arrival(mut self, p: ArrivalProcess) -> Self {
        self.arrival = p;
        self
    }

    /// Set the Poisson mean inter-arrival time (seconds) — the x-axis knob
    /// of Figures 5–7.
    pub fn mean_interarrival(mut self, secs: Time) -> Self {
        assert!(secs > 0.0);
        self.arrival = ArrivalProcess::Poisson {
            mean_interarrival: secs,
        };
        self
    }

    /// Choose the Poisson arrival rate so that the expected offered load
    /// (time-averaged demanded bandwidth / half total capacity) equals
    /// `load`. Uses `λ = load × half_total_cap / E[volume]`.
    pub fn target_load(mut self, load: f64) -> Self {
        assert!(load > 0.0, "load must be positive");
        let lambda = load * self.topology.half_total_cap() / self.volumes.mean();
        self.arrival = ArrivalProcess::poisson_rate(lambda);
        self
    }

    /// Set the volume distribution (MB).
    pub fn volumes(mut self, d: Dist) -> Self {
        self.volumes = d;
        self
    }

    /// Set the host-limit (`MaxRate`) distribution (MB/s).
    pub fn max_rates(mut self, d: Dist) -> Self {
        self.max_rates = d;
        self
    }

    /// Set the window-slack distribution. Slack `s ≥ 1` makes the window
    /// `s × vol/MaxRate` long; `Fixed(1.0)` yields rigid requests.
    pub fn slack(mut self, d: Dist) -> Self {
        self.slack = d;
        self
    }

    /// Generation horizon in seconds: arrivals are drawn in `[0, horizon)`.
    pub fn horizon(mut self, secs: Time) -> Self {
        assert!(secs > 0.0);
        self.horizon = secs;
        self
    }

    /// Whether a request may have the same site index on both sides
    /// (`false` allows i → e with i == e; the paper draws "any pair of
    /// different points", the default `true`).
    pub fn avoid_loopback(mut self, avoid: bool) -> Self {
        self.avoid_loopback = avoid;
        self
    }

    /// RNG seed; every build with the same configuration and seed yields an
    /// identical trace.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn sample_route<R: Rng + ?Sized>(&self, rng: &mut R) -> Route {
        let m = self.topology.num_ingress() as u32;
        let n = self.topology.num_egress() as u32;
        loop {
            let i = rng.gen_range(0..m);
            let e = rng.gen_range(0..n);
            if self.avoid_loopback && m > 1 && n > 1 && i == e {
                continue;
            }
            return Route::new(i, e);
        }
    }

    /// Generate the trace.
    pub fn build(&self) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let arrivals = self.arrival.arrivals_until(&mut rng, self.horizon);
        let mut requests = Vec::with_capacity(arrivals.len());
        for (k, t) in arrivals.into_iter().enumerate() {
            let route = self.sample_route(&mut rng);
            let volume = self.volumes.sample(&mut rng);
            let max_rate = self.max_rates.sample(&mut rng);
            let slack = self.slack.sample(&mut rng).max(1.0);
            // Cap the assignable rate by the route bottleneck so no request
            // is unschedulable by construction (the paper's host limits are
            // at most the 1 GB/s port capacity; heterogeneous topologies
            // need the explicit clamp).
            let max_rate = max_rate.min(self.topology.route_bottleneck(route));
            let window = TimeWindow::new(t, t + slack * volume / max_rate);
            requests.push(Request::new(k as u64, route, window, volume, max_rate));
        }
        Trace::new(requests)
    }

    /// The paper's §4.3 rigid-request scenario at a given system load.
    pub fn paper_rigid(topology: Topology, load: f64, seed: u64) -> Trace {
        WorkloadBuilder::new(topology)
            .target_load(load)
            .slack(Dist::Fixed(1.0))
            .seed(seed)
            .build()
    }

    /// The paper's §5.3 flexible-request scenario at a given mean
    /// inter-arrival time, with window slack uniform in [2, 4].
    pub fn paper_flexible(topology: Topology, mean_interarrival: Time, seed: u64) -> Trace {
        WorkloadBuilder::new(topology)
            .mean_interarrival(mean_interarrival)
            .slack(Dist::Uniform { lo: 2.0, hi: 4.0 })
            .seed(seed)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic_per_seed() {
        let topo = Topology::paper_default();
        let a = WorkloadBuilder::new(topo.clone())
            .seed(1)
            .horizon(500.0)
            .build();
        let b = WorkloadBuilder::new(topo.clone())
            .seed(1)
            .horizon(500.0)
            .build();
        let c = WorkloadBuilder::new(topo).seed(2).horizon(500.0).build();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rigid_preset_produces_rigid_requests() {
        let trace = WorkloadBuilder::paper_rigid(Topology::paper_default(), 2.0, 7);
        assert!(!trace.is_empty());
        assert!(trace.iter().all(|r| r.is_rigid()));
        assert!(trace.iter().all(|r| r.max_rate <= 1000.0 + 1e-9));
    }

    #[test]
    fn flexible_preset_has_slack() {
        let trace = WorkloadBuilder::paper_flexible(Topology::paper_default(), 2.0, 7);
        assert!(!trace.is_empty());
        assert!(trace.iter().all(|r| r.slack() >= 2.0 - 1e-9));
        assert!(trace.iter().all(|r| r.slack() <= 4.0 + 1e-9));
    }

    #[test]
    fn target_load_is_hit_within_sampling_error() {
        let topo = Topology::paper_default();
        for &load in &[0.5, 1.0, 3.0] {
            let trace = WorkloadBuilder::new(topo.clone())
                .target_load(load)
                .horizon(20_000.0)
                .seed(11)
                .build();
            let measured = trace.offered_load(&topo);
            assert!(
                (measured - load).abs() / load < 0.15,
                "target {load}, measured {measured}"
            );
        }
    }

    #[test]
    fn loopback_avoidance() {
        let topo = Topology::paper_default();
        let trace = WorkloadBuilder::new(topo.clone())
            .seed(3)
            .horizon(2_000.0)
            .build();
        assert!(trace.iter().all(|r| r.route.ingress.0 != r.route.egress.0));
        let trace = WorkloadBuilder::new(topo)
            .avoid_loopback(false)
            .seed(3)
            .horizon(2_000.0)
            .build();
        // With 10×10 ports, ~10% of pairs collide; seed 3 over ~2000
        // arrivals will hit at least one.
        assert!(trace.iter().any(|r| r.route.ingress.0 == r.route.egress.0));
    }

    #[test]
    fn rates_clamped_to_bottleneck_on_heterogeneous_topologies() {
        let topo = Topology::grid5000_like();
        let trace = WorkloadBuilder::new(topo.clone())
            .seed(5)
            .horizon(2_000.0)
            .build();
        for r in &trace {
            assert!(r.max_rate <= topo.route_bottleneck(r.route) + 1e-9);
            assert!(r.min_rate() <= r.max_rate + 1e-9);
        }
    }

    #[test]
    fn all_requests_route_within_topology() {
        let topo = Topology::uniform(3, 7, 500.0);
        let trace = WorkloadBuilder::new(topo.clone())
            .seed(9)
            .horizon(1_000.0)
            .build();
        assert!(trace.valid_for(&topo));
    }
}
