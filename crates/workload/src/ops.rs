//! Trace algebra: composing, slicing and exporting workloads.
//!
//! Experiment pipelines frequently need to overlay a campaign on
//! background traffic, replay a shifted copy, or cut a warm-up prefix;
//! these operations keep ids unique and start-time ordering intact.

use crate::request::Request;
use crate::trace::Trace;
use gridband_net::units::Time;
use gridband_net::Route;

/// Merge traces into one, re-numbering ids to stay unique (requests keep
/// their relative order and all other fields).
pub fn merge(traces: &[&Trace]) -> Trace {
    let mut all: Vec<Request> = Vec::with_capacity(traces.iter().map(|t| t.len()).sum());
    let mut next_id = 0u64;
    for t in traces {
        for r in *t {
            let mut r = *r;
            r.id = crate::request::RequestId(next_id);
            next_id += 1;
            all.push(r);
        }
    }
    Trace::new(all)
}

/// Shift every window by `dt` seconds (negative shifts allowed as long as
/// windows stay finite).
pub fn shift(trace: &Trace, dt: Time) -> Trace {
    Trace::new(
        trace
            .iter()
            .map(|r| {
                Request::new(
                    r.id.0,
                    r.route,
                    crate::request::TimeWindow::new(r.start() + dt, r.finish() + dt),
                    r.volume,
                    r.max_rate,
                )
            })
            .collect(),
    )
}

/// Keep only requests whose start lies in `[from, to)`.
pub fn clip(trace: &Trace, from: Time, to: Time) -> Trace {
    Trace::new(
        trace
            .iter()
            .filter(|r| r.start() >= from && r.start() < to)
            .copied()
            .collect(),
    )
}

/// Keep only requests on the given route.
pub fn on_route(trace: &Trace, route: Route) -> Trace {
    Trace::new(trace.iter().filter(|r| r.route == route).copied().collect())
}

/// Render a trace as CSV (`id,ingress,egress,start,finish,volume,max_rate`).
pub fn to_csv(trace: &Trace) -> String {
    let mut out = String::from("id,ingress,egress,start,finish,volume_mb,max_rate_mbps\n");
    for r in trace {
        out.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            r.id.0,
            r.route.ingress.0,
            r.route.egress.0,
            r.start(),
            r.finish(),
            r.volume,
            r.max_rate
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::TimeWindow;

    fn req(id: u64, i: u32, e: u32, start: f64) -> Request {
        Request::new(
            id,
            Route::new(i, e),
            TimeWindow::new(start, start + 10.0),
            100.0,
            50.0,
        )
    }

    #[test]
    fn merge_renumbers_and_sorts() {
        let a = Trace::new(vec![req(0, 0, 1, 5.0), req(1, 0, 1, 1.0)]);
        let b = Trace::new(vec![req(0, 1, 0, 3.0)]);
        let m = merge(&[&a, &b]);
        assert_eq!(m.len(), 3);
        // Ids unique and sorted output by start time.
        let starts: Vec<f64> = m.iter().map(|r| r.start()).collect();
        assert_eq!(starts, vec![1.0, 3.0, 5.0]);
        let mut ids: Vec<u64> = m.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn shift_moves_windows_rigidly() {
        let t = Trace::new(vec![req(0, 0, 1, 5.0)]);
        let s = shift(&t, 100.0);
        assert_eq!(s.requests()[0].start(), 105.0);
        assert_eq!(s.requests()[0].finish(), 115.0);
        assert_eq!(s.requests()[0].volume, 100.0);
        // Negative shift.
        let s = shift(&t, -2.0);
        assert_eq!(s.requests()[0].start(), 3.0);
    }

    #[test]
    fn clip_selects_by_start() {
        let t = Trace::new(vec![
            req(0, 0, 1, 1.0),
            req(1, 0, 1, 5.0),
            req(2, 0, 1, 9.0),
        ]);
        let c = clip(&t, 2.0, 9.0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.requests()[0].id.0, 1);
    }

    #[test]
    fn on_route_filters() {
        let t = Trace::new(vec![req(0, 0, 1, 1.0), req(1, 1, 0, 2.0)]);
        let f = on_route(&t, Route::new(1, 0));
        assert_eq!(f.len(), 1);
        assert_eq!(f.requests()[0].id.0, 1);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let t = Trace::new(vec![req(7, 2, 3, 1.5)]);
        let csv = to_csv(&t);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("id,ingress"));
        assert_eq!(lines[1], "7,2,3,1.5,11.5,100,50");
    }
}
