//! Trace linting: surface workload problems before they waste a run.
//!
//! A trace can be structurally valid (the type invariants hold) yet
//! operationally hopeless — requests whose `MinRate` exceeds their route
//! bottleneck can never be accepted, a single pair of sites may dominate
//! the demand, or the windows may be so tight that every scheduler
//! degenerates to rigid accept/reject. The linter reports such findings
//! with severities so the CLI and tests can flag them.

use crate::trace::Trace;
use gridband_net::units::approx_le;
use gridband_net::Topology;
use serde::Serialize;
use std::fmt;

/// Severity of a lint finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Severity {
    /// Informational: worth knowing, nothing is wrong.
    Info,
    /// The workload will behave oddly (e.g. unschedulable requests).
    Warning,
    /// The workload cannot be used with this topology at all.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Finding {
    /// How serious it is.
    pub severity: Severity,
    /// Stable machine-readable code (e.g. `unroutable`).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// Lint a trace against a topology; findings are ordered most severe
/// first.
pub fn lint(trace: &Trace, topo: &Topology) -> Vec<Finding> {
    let mut findings = Vec::new();
    if trace.is_empty() {
        findings.push(Finding {
            severity: Severity::Warning,
            code: "empty",
            message: "trace contains no requests".into(),
        });
        return findings;
    }

    // Errors: requests that cannot exist on this platform.
    let unroutable = trace.iter().filter(|r| !r.routed_in(topo)).count();
    if unroutable > 0 {
        findings.push(Finding {
            severity: Severity::Error,
            code: "unroutable",
            message: format!("{unroutable} request(s) reference ports outside the topology"),
        });
    }

    // Warnings: structurally fine but unschedulable or degenerate.
    let doomed = trace
        .iter()
        .filter(|r| r.routed_in(topo) && !approx_le(r.min_rate(), topo.route_bottleneck(r.route)))
        .count();
    if doomed > 0 {
        findings.push(Finding {
            severity: Severity::Warning,
            code: "minrate-above-bottleneck",
            message: format!(
                "{doomed} request(s) need more than their route bottleneck even at MinRate \
                 — no scheduler can ever accept them"
            ),
        });
    }
    let rigid = trace.iter().filter(|r| r.is_rigid()).count();
    if rigid == trace.len() {
        findings.push(Finding {
            severity: Severity::Info,
            code: "all-rigid",
            message: "every request is rigid (MinRate = MaxRate): bandwidth policies are moot"
                .into(),
        });
    }

    // Info: demand concentration and load.
    let load = trace.offered_load(topo);
    if load > 5.0 {
        findings.push(Finding {
            severity: Severity::Info,
            code: "overload",
            message: format!(
                "offered load is {load:.1}× system capacity — most requests must be rejected"
            ),
        });
    }
    let mut per_in = vec![0.0f64; topo.num_ingress()];
    for r in trace {
        if r.routed_in(topo) {
            per_in[r.route.ingress.index()] += r.volume;
        }
    }
    let total: f64 = per_in.iter().sum();
    if let Some((idx, &max)) = per_in
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
    {
        if total > 0.0 && max / total > 0.5 && topo.num_ingress() > 2 {
            findings.push(Finding {
                severity: Severity::Info,
                code: "hot-ingress",
                message: format!(
                    "ingress {idx} carries {:.0}% of the demanded volume — a hot spot",
                    100.0 * max / total
                ),
            });
        }
    }

    findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
    findings
}

/// Highest severity among findings (`None` for a clean trace).
pub fn worst_severity(findings: &[Finding]) -> Option<Severity> {
    findings.iter().map(|f| f.severity).max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Request, TimeWindow};
    use gridband_net::Route;

    fn topo() -> Topology {
        Topology::uniform(4, 4, 100.0)
    }

    #[test]
    fn clean_trace_has_no_findings_above_info() {
        let trace = Trace::new(vec![
            Request::new(
                0,
                Route::new(0, 1),
                TimeWindow::new(0.0, 100.0),
                1000.0,
                50.0,
            ),
            Request::new(1, Route::new(1, 2), TimeWindow::new(5.0, 80.0), 500.0, 50.0),
            Request::new(2, Route::new(2, 3), TimeWindow::new(9.0, 90.0), 500.0, 50.0),
        ]);
        let findings = lint(&trace, &topo());
        assert!(
            worst_severity(&findings).is_none_or(|s| s <= Severity::Info),
            "{findings:?}"
        );
    }

    #[test]
    fn unroutable_requests_are_errors() {
        let trace = Trace::new(vec![Request::new(
            0,
            Route::new(9, 0),
            TimeWindow::new(0.0, 10.0),
            100.0,
            50.0,
        )]);
        let findings = lint(&trace, &topo());
        assert_eq!(worst_severity(&findings), Some(Severity::Error));
        assert!(findings.iter().any(|f| f.code == "unroutable"));
    }

    #[test]
    fn minrate_above_bottleneck_is_flagged() {
        // MinRate 200 on a 100 MB/s route: MaxRate must be ≥ MinRate for
        // the request to construct, so set MaxRate = 250.
        let trace = Trace::new(vec![Request::new(
            0,
            Route::new(0, 1),
            TimeWindow::new(0.0, 10.0),
            2_000.0,
            250.0,
        )]);
        let findings = lint(&trace, &topo());
        assert!(
            findings
                .iter()
                .any(|f| f.code == "minrate-above-bottleneck"),
            "{findings:?}"
        );
    }

    #[test]
    fn all_rigid_and_overload_are_informational() {
        let trace = Trace::new(vec![
            Request::rigid(0, Route::new(0, 1), 0.0, 50_000.0, 100.0),
            Request::rigid(1, Route::new(1, 2), 0.1, 50_000.0, 100.0),
        ]);
        let findings = lint(&trace, &topo());
        assert!(findings.iter().any(|f| f.code == "all-rigid"));
        assert!(
            findings.iter().any(|f| f.code == "overload"),
            "{findings:?}"
        );
        assert_eq!(worst_severity(&findings), Some(Severity::Info));
    }

    #[test]
    fn hot_ingress_detected() {
        let reqs: Vec<Request> = (0..10)
            .map(|k| {
                Request::new(
                    k,
                    Route::new(0, 1 + (k % 3) as u32),
                    TimeWindow::new(k as f64, k as f64 + 100.0),
                    5_000.0,
                    100.0,
                )
            })
            .collect();
        let findings = lint(&Trace::new(reqs), &topo());
        assert!(findings.iter().any(|f| f.code == "hot-ingress"));
    }

    #[test]
    fn empty_trace_warns() {
        let findings = lint(&Trace::new(vec![]), &topo());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code, "empty");
        assert_eq!(findings[0].severity.to_string(), "warning");
    }
}
