//! Service classes for leftover-bandwidth redistribution.
//!
//! Admission itself is class-blind — every request gets the same
//! guaranteed-rate treatment the paper specifies — but the QoS overlay
//! (`gridband-qos`) resells unreserved port capacity in strict class
//! order: `Gold` transfers drink first, `Silver` next, and `BestEffort`
//! rides only on what is left. The class travels on `Submit` in both
//! codecs; a request that does not name one is `Silver`.

use serde::{Deserialize, Serialize};

/// Priority tier of a transfer in the redistribution overlay.
///
/// Ordering is by priority: `Gold < Silver < BestEffort` sorts
/// highest-priority first, so `ServiceClass::ALL` iterates in fill
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum ServiceClass {
    /// Fills first from every round's leftover pool.
    Gold,
    /// The default tier; fills from what gold left.
    #[default]
    Silver,
    /// Rides only on capacity neither paid tier wanted.
    BestEffort,
}

impl ServiceClass {
    /// Every class, highest priority first — the fill order.
    pub const ALL: [ServiceClass; 3] = [
        ServiceClass::Gold,
        ServiceClass::Silver,
        ServiceClass::BestEffort,
    ];

    /// Stable wire code (`GBWIR01` submit trailer).
    pub fn code(self) -> u8 {
        match self {
            ServiceClass::Gold => 0,
            ServiceClass::Silver => 1,
            ServiceClass::BestEffort => 2,
        }
    }

    /// Decode a wire code; `None` for bytes no release has assigned.
    pub fn from_code(code: u8) -> Option<ServiceClass> {
        match code {
            0 => Some(ServiceClass::Gold),
            1 => Some(ServiceClass::Silver),
            2 => Some(ServiceClass::BestEffort),
            _ => None,
        }
    }

    /// Index into per-class arrays (`ALL[self.index()] == self`).
    pub fn index(self) -> usize {
        self.code() as usize
    }

    /// Lower-case name, stable for reports and flags.
    pub fn name(self) -> &'static str {
        match self {
            ServiceClass::Gold => "gold",
            ServiceClass::Silver => "silver",
            ServiceClass::BestEffort => "besteffort",
        }
    }
}

// Manual serde impls (same encoding the derive would emit: the variant
// name as a JSON string) so the missing-field hook can default to
// `Silver` — a pre-class client's `Submit` must keep decoding.
impl Serialize for ServiceClass {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(
            match self {
                ServiceClass::Gold => "Gold",
                ServiceClass::Silver => "Silver",
                ServiceClass::BestEffort => "BestEffort",
            }
            .to_string(),
        )
    }
}

impl Deserialize for ServiceClass {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::String(s) => match s.as_str() {
                "Gold" => Ok(ServiceClass::Gold),
                "Silver" => Ok(ServiceClass::Silver),
                "BestEffort" => Ok(ServiceClass::BestEffort),
                other => Err(serde::Error::msg(format!(
                    "unknown service class `{other}`"
                ))),
            },
            other => Err(serde::Error::ty("string", other, "ServiceClass")),
        }
    }

    fn from_missing_field(_field: &str) -> Result<Self, serde::Error> {
        Ok(ServiceClass::Silver)
    }
}

impl std::fmt::Display for ServiceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ServiceClass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "g" | "gold" => Ok(ServiceClass::Gold),
            "s" | "silver" => Ok(ServiceClass::Silver),
            "b" | "besteffort" | "best-effort" | "best_effort" => Ok(ServiceClass::BestEffort),
            other => Err(format!("unknown service class {other:?}")),
        }
    }
}

/// A weighted class mix (`G:S:B`), assigning classes to request ids
/// deterministically: the same mix, seed and id always yield the same
/// class, on any host — which is what lets a boosted and an unboosted
/// run replay byte-identical workloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassMix {
    /// Non-negative weights in `ServiceClass::ALL` order; at least one
    /// must be positive.
    pub weights: [f64; 3],
}

impl ClassMix {
    /// Everything silver — the behaviour of a classless workload.
    pub fn all_silver() -> ClassMix {
        ClassMix {
            weights: [0.0, 1.0, 0.0],
        }
    }

    /// The class of request `id` under seed `seed`.
    ///
    /// Uses a splitmix64 hash of `(seed, id)` mapped to `[0, 1)` and
    /// bucketed by cumulative weight, so assignment is i.i.d. across
    /// ids but a pure function of the inputs.
    pub fn class_for(&self, id: u64, seed: u64) -> ServiceClass {
        let total: f64 = self.weights.iter().sum();
        assert!(
            total > 0.0 && self.weights.iter().all(|w| *w >= 0.0 && w.is_finite()),
            "class mix weights must be non-negative with a positive sum"
        );
        let mut x = seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        let mut acc = 0.0;
        for (k, &w) in self.weights.iter().enumerate() {
            acc += w / total;
            if u < acc {
                return ServiceClass::ALL[k];
            }
        }
        ServiceClass::BestEffort
    }

    /// Annotate a trace: one class per request, in trace order.
    pub fn annotate(&self, trace: &crate::Trace, seed: u64) -> Vec<ServiceClass> {
        trace
            .requests()
            .iter()
            .map(|r| self.class_for(r.id.0, seed))
            .collect()
    }
}

impl std::str::FromStr for ClassMix {
    type Err = String;

    /// Parse `G:S:B` weights, e.g. `1:2:1`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 3 {
            return Err(format!("class mix {s:?} must be G:S:B, e.g. 1:2:1"));
        }
        let mut weights = [0.0f64; 3];
        for (k, p) in parts.iter().enumerate() {
            let w: f64 = p
                .parse()
                .map_err(|_| format!("class mix weight {p:?} is not a number"))?;
            if !(w.is_finite() && w >= 0.0) {
                return Err(format!("class mix weight {w} must be finite and >= 0"));
            }
            weights[k] = w;
        }
        if weights.iter().sum::<f64>() <= 0.0 {
            return Err(format!("class mix {s:?} has no positive weight"));
        }
        Ok(ClassMix { weights })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadBuilder;
    use gridband_net::Topology;

    #[test]
    fn codes_round_trip_and_absent_defaults_silver() {
        for c in ServiceClass::ALL {
            assert_eq!(ServiceClass::from_code(c.code()), Some(c));
            assert_eq!(ServiceClass::ALL[c.index()], c);
        }
        assert_eq!(ServiceClass::from_code(7), None);
        assert_eq!(ServiceClass::default(), ServiceClass::Silver);
    }

    #[test]
    fn serde_round_trips_and_missing_field_is_silver() {
        for c in ServiceClass::ALL {
            let v = c.to_value();
            assert_eq!(ServiceClass::from_value(&v).unwrap(), c);
        }
        assert!(ServiceClass::from_value(&serde::Value::String("Platinum".into())).is_err());
        // The version-tolerance hook: a JSON object with no `class`
        // field must decode as Silver, not error.
        assert_eq!(
            serde::de_field::<ServiceClass>(&[], "class").unwrap(),
            ServiceClass::Silver
        );
    }

    #[test]
    fn names_parse_back() {
        for c in ServiceClass::ALL {
            assert_eq!(c.name().parse::<ServiceClass>().unwrap(), c);
        }
        assert_eq!("G".parse::<ServiceClass>().unwrap(), ServiceClass::Gold);
        assert!("platinum".parse::<ServiceClass>().is_err());
    }

    #[test]
    fn priority_order_sorts_gold_first() {
        let mut v = vec![
            ServiceClass::BestEffort,
            ServiceClass::Gold,
            ServiceClass::Silver,
        ];
        v.sort();
        assert_eq!(v, ServiceClass::ALL.to_vec());
    }

    #[test]
    fn mix_parses_and_rejects_junk() {
        let m: ClassMix = "1:2:1".parse().unwrap();
        assert_eq!(m.weights, [1.0, 2.0, 1.0]);
        assert!("1:2".parse::<ClassMix>().is_err());
        assert!("1:x:1".parse::<ClassMix>().is_err());
        assert!("0:0:0".parse::<ClassMix>().is_err());
        assert!("-1:2:1".parse::<ClassMix>().is_err());
    }

    #[test]
    fn assignment_is_deterministic_and_roughly_weighted() {
        let m: ClassMix = "1:2:1".parse().unwrap();
        let mut counts = [0usize; 3];
        for id in 0..4000u64 {
            let c = m.class_for(id, 42);
            assert_eq!(c, m.class_for(id, 42), "same inputs, same class");
            counts[c.index()] += 1;
        }
        // 25/50/25 split with generous slack.
        assert!((800..1200).contains(&counts[0]), "{counts:?}");
        assert!((1700..2300).contains(&counts[1]), "{counts:?}");
        assert!((800..1200).contains(&counts[2]), "{counts:?}");
        // A different seed reshuffles at least some ids.
        assert!((0..4000u64).any(|id| m.class_for(id, 42) != m.class_for(id, 43)));
    }

    #[test]
    fn degenerate_mixes_pin_the_class() {
        let gold: ClassMix = "1:0:0".parse().unwrap();
        let best: ClassMix = "0:0:1".parse().unwrap();
        for id in 0..100u64 {
            assert_eq!(gold.class_for(id, 1), ServiceClass::Gold);
            assert_eq!(best.class_for(id, 1), ServiceClass::BestEffort);
        }
    }

    #[test]
    fn trace_annotation_matches_per_id_assignment() {
        let topo = Topology::paper_default();
        let trace = WorkloadBuilder::new(topo)
            .mean_interarrival(5.0)
            .horizon(200.0)
            .seed(7)
            .build();
        let m: ClassMix = "1:1:1".parse().unwrap();
        let classes = m.annotate(&trace, 9);
        assert_eq!(classes.len(), trace.requests().len());
        for (r, c) in trace.requests().iter().zip(&classes) {
            assert_eq!(*c, m.class_for(r.id.0, 9));
        }
    }
}
