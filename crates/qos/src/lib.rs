//! # gridband-qos — leftover-bandwidth redistribution with service classes
//!
//! The paper's admission model (§2, §5) is binary: a transfer either
//! gets its constant guaranteed rate or nothing, and unreserved port
//! capacity idles. This crate resells that slack. Each admission round,
//! after the WINDOW/GREEDY decision has committed, a [`Redistributor`]
//! reads the per-port residual capacity of the upcoming interval from
//! the `CapacityLedger` and spreads it across live transfers by
//! progressive filling ([`gridband_maxmin::progressive_fill`]) — §1's
//! max-min statistical sharing, but applied *only to capacity no
//! guarantee wants*.
//!
//! Three mechanisms ride on the fill:
//!
//! * **Service classes** ([`ServiceClass`]): the pool is filled in
//!   strict priority order — gold drinks first, silver next, best-effort
//!   rides only on what is left.
//! * **Accumulated allowance**: every active transfer banks a fair
//!   share of each round's pool whether or not it could use it, capped
//!   at a configurable horizon; a round's boost spends the bank. A
//!   transfer starved behind a saturated port accrues credit and
//!   catches up when capacity appears, instead of losing its share
//!   forever.
//! * **Per-tenant policing**: a token bucket per ingress port
//!   ([`gridband_control::TokenBucket`]) caps the boost volume any one
//!   tenant can draw, folded into the fill as an extra port constraint.
//!
//! Boosted rates are an **overlay**. The guaranteed profile in the
//! ledger is never touched: admission decisions with the overlay on are
//! byte-identical to a run without it, by construction. A transfer that
//! finishes early under boost goes silent — its remaining guaranteed
//! reservation stays charged in the ledger but stops moving bytes, and
//! the redistributor resells exactly that silence as a *credit* in
//! later rounds. The invariant, checked every round and counted in
//! [`QosStats`]:
//!
//! > Redistribution never delays any admitted request's guaranteed
//! > finish time and never oversubscribes a port.

#![warn(missing_docs)]

pub mod redistribute;
pub mod verify;

pub use gridband_workload::{ClassMix, ServiceClass};
pub use redistribute::{
    AcceptedTransfer, Boost, Completion, QosConfig, QosStats, Redistributor, RoundPlan,
};
pub use verify::{check_completions, check_round};
