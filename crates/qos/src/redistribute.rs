//! The per-round redistribution engine.
//!
//! [`Redistributor`] shadows the admission engine's round loop: accepts
//! are registered as they commit, and once per round the engine hands
//! it the upcoming interval plus the ledger's per-port residuals. It
//! settles the interval that just elapsed (moving bytes, detecting
//! early completions), turns completed-but-still-charged reservations
//! into residual credits, and plans the next interval's boosts by
//! class-tiered progressive filling under allowance and token-bucket
//! caps.

use std::collections::BTreeMap;

use gridband_control::TokenBucket;
use gridband_maxmin::{progressive_fill, FillFlow};
use gridband_net::units::{Bandwidth, Time, Volume};
use gridband_workload::ServiceClass;

/// Rates below this (MB/s) are treated as zero.
const EPS_RATE: f64 = 1e-9;
/// Volumes below this (MB) are treated as zero.
const EPS_VOL: f64 = 1e-6;
/// Slack for the guaranteed-finish check (virtual seconds).
const EPS_TIME: f64 = 1e-6;

/// Tuning knobs of the overlay. The defaults boost as aggressively as
/// feasibility allows while still shaping per-transfer shares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosConfig {
    /// How many seconds of banked fair-share credit a transfer may
    /// hold. The bank is capped at `headroom × allowance_horizon`, so a
    /// transfer can catch up after at most this long a starvation
    /// stretch at full headroom.
    pub allowance_horizon: f64,
    /// Per-tenant (ingress port) sustained boost-rate cap in MB/s;
    /// `None` leaves tenants unpoliced.
    pub tenant_rate: Option<Bandwidth>,
    /// Per-tenant bucket depth in MB; defaults to one round at
    /// `tenant_rate` when unset.
    pub tenant_burst: Option<Volume>,
}

impl Default for QosConfig {
    fn default() -> Self {
        QosConfig {
            allowance_horizon: 200.0,
            tenant_rate: None,
            tenant_burst: None,
        }
    }
}

/// One admitted transfer, as the engine registers it at decision time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceptedTransfer {
    /// Request id.
    pub id: u64,
    /// Ingress port index (the tenant).
    pub ingress: usize,
    /// Egress port index.
    pub egress: usize,
    /// Service class carried on the submit.
    pub class: ServiceClass,
    /// Guaranteed constant rate (MB/s).
    pub bw: Bandwidth,
    /// Scheduled start (virtual seconds).
    pub start: Time,
    /// Guaranteed finish (virtual seconds).
    pub finish: Time,
    /// Host rate limit `MaxRate` — the boost ceiling.
    pub max_rate: Bandwidth,
    /// Transfer volume (MB).
    pub volume: Volume,
}

/// One transfer's boost grant for a round interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Boost {
    /// Request id.
    pub id: u64,
    /// Ingress port index.
    pub ingress: usize,
    /// Egress port index.
    pub egress: usize,
    /// Service class the grant was filled under.
    pub class: ServiceClass,
    /// Extra rate on top of the guarantee (MB/s), constant over the
    /// round interval (or until the transfer completes).
    pub rate: Bandwidth,
}

/// What one call to [`Redistributor::round`] planned.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundPlan {
    /// Interval start (virtual seconds).
    pub t0: Time,
    /// Interval end.
    pub t1: Time,
    /// Boost grants, ordered by request id.
    pub boosts: Vec<Boost>,
    /// Effective per-ingress residual the fill ran against (ledger
    /// residual plus early-release credits, tenant caps folded in).
    pub residual_in: Vec<Bandwidth>,
    /// Effective per-egress residual.
    pub residual_out: Vec<Bandwidth>,
    /// Guaranteed rate (MB/s), per ingress port, of transfers that
    /// completed early and whose silent reservation backs part of the
    /// residual this round.
    pub credits_in: Vec<Bandwidth>,
    /// Same, per egress port.
    pub credits_out: Vec<Bandwidth>,
}

/// A transfer's observed completion, for completion-time studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Request id.
    pub id: u64,
    /// Service class.
    pub class: ServiceClass,
    /// When the last byte moved (virtual seconds).
    pub done_at: Time,
    /// The guaranteed finish the admission decision promised.
    pub guaranteed_finish: Time,
}

/// Counters the overlay accumulates across rounds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QosStats {
    /// Rounds in which at least one boost was granted.
    pub boost_rounds: u64,
    /// Volume actually moved above guarantees (MB).
    pub boosted_bytes: f64,
    /// Transfers that completed before their guaranteed finish.
    pub early_releases: u64,
    /// Transfers observed completing *after* their guaranteed finish —
    /// must stay zero; a boost can only add bandwidth.
    pub finish_violations: u64,
    /// Rounds where planned boosts exceeded the effective residual on
    /// some port — must stay zero; the fill is feasible by
    /// construction and this counter is the built-in audit of that.
    pub oversubscriptions: u64,
}

#[derive(Debug, Clone, Copy)]
struct Transfer {
    ingress: usize,
    egress: usize,
    class: ServiceClass,
    bw: Bandwidth,
    start: Time,
    finish: Time,
    max_rate: Bandwidth,
    remaining: Volume,
    /// Banked fair-share credit (MB).
    allowance: Volume,
    /// Boost granted for the currently planned interval.
    boost: Bandwidth,
    done_at: Option<Time>,
}

/// The redistribution engine. See the crate docs for the model.
#[derive(Debug)]
pub struct Redistributor {
    cfg: QosConfig,
    num_ingress: usize,
    num_egress: usize,
    transfers: BTreeMap<u64, Transfer>,
    buckets: BTreeMap<usize, TokenBucket>,
    /// The interval the current `boost` values were planned for.
    planned: Option<(Time, Time)>,
    stats: QosStats,
    completions: Vec<Completion>,
}

impl Redistributor {
    /// A fresh overlay over `num_ingress × num_egress` ports.
    pub fn new(num_ingress: usize, num_egress: usize, cfg: QosConfig) -> Redistributor {
        assert!(
            cfg.allowance_horizon.is_finite() && cfg.allowance_horizon >= 0.0,
            "allowance horizon must be finite and non-negative"
        );
        Redistributor {
            cfg,
            num_ingress,
            num_egress,
            transfers: BTreeMap::new(),
            buckets: BTreeMap::new(),
            planned: None,
            stats: QosStats::default(),
            completions: Vec::new(),
        }
    }

    /// Register an admitted transfer. Call at decision-commit time;
    /// re-registering an id replaces the old entry.
    pub fn on_accept(&mut self, a: AcceptedTransfer) {
        debug_assert!(a.ingress < self.num_ingress && a.egress < self.num_egress);
        self.transfers.insert(
            a.id,
            Transfer {
                ingress: a.ingress,
                egress: a.egress,
                class: a.class,
                bw: a.bw,
                start: a.start,
                finish: a.finish,
                max_rate: a.max_rate,
                remaining: a.volume,
                allowance: 0.0,
                boost: 0.0,
                done_at: None,
            },
        );
    }

    /// Drop a transfer whose reservation was cancelled (its capacity
    /// returns through the ledger's own residuals, not as a credit).
    pub fn on_cancel(&mut self, id: u64) {
        self.transfers.remove(&id);
    }

    /// Transfers currently tracked (live or completed-but-charged).
    pub fn tracked(&self) -> usize {
        self.transfers.len()
    }

    /// Accumulated counters.
    pub fn stats(&self) -> QosStats {
        self.stats
    }

    /// Every completion observed so far, in completion order.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Move bytes for `[a, b)` where boosts from the last plan apply up
    /// to `cut` (= the planned interval's end) and only guarantees
    /// apply after it.
    fn drain(&mut self, a: Time, b: Time, cut: Time) {
        for (&id, tr) in self.transfers.iter_mut() {
            if tr.done_at.is_some() || tr.remaining <= EPS_VOL {
                continue;
            }
            let mut at = a.max(tr.start);
            let mut boosted_bytes = 0.0;
            // Two segments: [at, cut) with boost, [cut, b) without.
            for (seg_end, boost) in [(b.min(cut), tr.boost), (b, 0.0)] {
                if at >= seg_end || tr.remaining <= EPS_VOL {
                    continue;
                }
                let rate = tr.bw + boost;
                if rate <= EPS_RATE {
                    at = seg_end;
                    continue;
                }
                let span = seg_end - at;
                let sent = rate * span;
                if sent + EPS_VOL >= tr.remaining {
                    let used = tr.remaining / rate;
                    boosted_bytes += boost * used;
                    tr.done_at = Some(at + used);
                    tr.remaining = 0.0;
                } else {
                    boosted_bytes += boost * span;
                    tr.remaining -= sent;
                }
                at = seg_end;
            }
            self.stats.boosted_bytes += boosted_bytes;
            if let Some(done) = tr.done_at {
                if done + EPS_TIME < tr.finish {
                    self.stats.early_releases += 1;
                } else if done > tr.finish + EPS_TIME {
                    self.stats.finish_violations += 1;
                }
                self.completions.push(Completion {
                    id,
                    class: tr.class,
                    done_at: done,
                    guaranteed_finish: tr.finish,
                });
            }
        }
    }

    /// Settle elapsed time up to `now` and plan boosts for `[t0, t1)`
    /// against the ledger's per-port residuals for that interval
    /// (`residuals = ledger.residuals(t0, t1)`), then return the plan.
    ///
    /// `t0` must be non-decreasing across calls and `t1 > t0`.
    pub fn round(
        &mut self,
        t0: Time,
        t1: Time,
        residual_in: &[Bandwidth],
        residual_out: &[Bandwidth],
    ) -> RoundPlan {
        assert!(t1 > t0, "round interval [{t0}, {t1}) is empty");
        assert_eq!(residual_in.len(), self.num_ingress);
        assert_eq!(residual_out.len(), self.num_egress);

        // 1. Settle the interval that just elapsed: the previous plan's
        // boosts apply up to its own end, guarantees alone after that
        // (rounds the engine fast-forwarded past never had boosts).
        if let Some((p0, p1)) = self.planned {
            assert!(t0 + EPS_TIME >= p0, "rounds moved backwards");
            self.drain(p0, t0.max(p0), p1);
        }
        for tr in self.transfers.values_mut() {
            tr.boost = 0.0;
        }
        // A transfer whose guaranteed window has fully passed no longer
        // charges the ledger; nothing left to track or credit.
        self.transfers.retain(|_, tr| tr.finish > t0 + EPS_TIME);

        // 2. Early-release credits: a completed transfer's reservation
        // still charges the ledger until its guaranteed finish, but
        // moves no bytes. Credit it back only when the charge covers
        // the whole interval — crediting a partial overlap could lend
        // capacity to the uncovered tail.
        let dt = t1 - t0;
        let mut credits_in = vec![0.0; self.num_ingress];
        let mut credits_out = vec![0.0; self.num_egress];
        for tr in self.transfers.values() {
            if tr.done_at.is_some() && tr.start <= t0 + EPS_TIME && tr.finish + EPS_TIME >= t1 {
                credits_in[tr.ingress] += tr.bw;
                credits_out[tr.egress] += tr.bw;
            }
        }
        let mut pool_in: Vec<f64> = residual_in
            .iter()
            .zip(&credits_in)
            .map(|(r, c)| (r + c).max(0.0))
            .collect();
        let mut pool_out: Vec<f64> = residual_out
            .iter()
            .zip(&credits_out)
            .map(|(r, c)| (r + c).max(0.0))
            .collect();

        // 3. Candidates: live transfers active at t0 with headroom.
        let ids: Vec<u64> = self
            .transfers
            .iter()
            .filter(|(_, tr)| {
                tr.done_at.is_none()
                    && tr.remaining > EPS_VOL
                    && tr.start <= t0 + EPS_TIME
                    && tr.max_rate - tr.bw > EPS_RATE
            })
            .map(|(&id, _)| id)
            .collect();

        // 4. Accrue allowance in class order: gold candidates split the
        // bottleneck pool's estimate first, silver banks from what gold
        // could not use, best-effort from what is left after both —
        // "drinks first" applies to the bank, not just the fill. Each
        // bank is capped at headroom × horizon. Unused credit is what
        // lets a starved transfer catch up later (snippet-3's
        // accumulated allowance).
        let mut est = pool_in
            .iter()
            .sum::<f64>()
            .min(pool_out.iter().sum::<f64>());
        for class in ServiceClass::ALL {
            let tier: Vec<u64> = ids
                .iter()
                .copied()
                .filter(|id| self.transfers[id].class == class)
                .collect();
            if tier.is_empty() {
                continue;
            }
            let grant_rate = est / tier.len() as f64;
            for id in &tier {
                let tr = self.transfers.get_mut(id).expect("candidate exists");
                let headroom = tr.max_rate - tr.bw;
                let usable = grant_rate.min(headroom.min((tr.remaining / dt - tr.bw).max(0.0)));
                tr.allowance =
                    (tr.allowance + grant_rate * dt).min(headroom * self.cfg.allowance_horizon);
                est = (est - usable).max(0.0);
            }
        }

        // 5. Fold per-tenant policing into the ingress pool: the
        // bucket's balance is the most boost volume the tenant may draw
        // this round, i.e. an extra rate bound of balance / dt.
        if let Some(rate) = self.cfg.tenant_rate {
            let burst = self.cfg.tenant_burst.unwrap_or(rate * dt);
            for id in &ids {
                let p = self.transfers[id].ingress;
                let bucket = self
                    .buckets
                    .entry(p)
                    .or_insert_with(|| TokenBucket::new(rate, burst, t0));
                pool_in[p] = pool_in[p].min(bucket.available(t0) / dt);
            }
        }

        // 6. Class-tiered progressive fill: gold drinks first; each
        // tier runs max-min over what the previous tiers left.
        let mut boosts: Vec<Boost> = Vec::new();
        for class in ServiceClass::ALL {
            let tier: Vec<u64> = ids
                .iter()
                .copied()
                .filter(|id| self.transfers[id].class == class)
                .collect();
            if tier.is_empty() {
                continue;
            }
            let flows: Vec<FillFlow> = tier
                .iter()
                .map(|id| {
                    let tr = &self.transfers[id];
                    // No more than the host can push, no more than the
                    // transfer still needs by t1, no more than the bank
                    // covers.
                    let cap = (tr.max_rate - tr.bw)
                        .min((tr.remaining / dt - tr.bw).max(0.0))
                        .min(tr.allowance / dt);
                    FillFlow {
                        ingress: tr.ingress,
                        egress: tr.egress,
                        cap,
                    }
                })
                .collect();
            let rates = progressive_fill(&pool_in, &pool_out, &flows);
            for (id, (flow, rate)) in tier.iter().zip(flows.iter().zip(&rates)) {
                if *rate <= EPS_RATE {
                    continue;
                }
                pool_in[flow.ingress] = (pool_in[flow.ingress] - rate).max(0.0);
                pool_out[flow.egress] = (pool_out[flow.egress] - rate).max(0.0);
                let tr = self.transfers.get_mut(id).expect("candidate exists");
                tr.boost = *rate;
                tr.allowance = (tr.allowance - rate * dt).max(0.0);
                boosts.push(Boost {
                    id: *id,
                    ingress: tr.ingress,
                    egress: tr.egress,
                    class,
                    rate: *rate,
                });
            }
        }

        // 7. Charge tenant buckets for what the fill actually granted.
        if self.cfg.tenant_rate.is_some() {
            let mut spent = vec![0.0f64; self.num_ingress];
            for b in &boosts {
                spent[b.ingress] += b.rate * dt;
            }
            for (p, &v) in spent.iter().enumerate() {
                if v > 0.0 {
                    let bucket = self.buckets.get_mut(&p).expect("bucket exists");
                    let admitted = bucket.offer(t0, v);
                    debug_assert!(
                        admitted + EPS_VOL >= v,
                        "fill exceeded tenant bucket: {v} > {admitted}"
                    );
                }
            }
        }

        if !boosts.is_empty() {
            self.stats.boost_rounds += 1;
        }
        self.planned = Some((t0, t1));

        let plan = RoundPlan {
            t0,
            t1,
            boosts,
            residual_in: residual_in.to_vec(),
            residual_out: residual_out.to_vec(),
            credits_in,
            credits_out,
        };
        // 8. Audit the invariant the fill guarantees by construction.
        self.stats.oversubscriptions += crate::verify::check_round(&plan).len() as u64;
        plan
    }

    /// Settle everything up to `now` without planning a new interval —
    /// the end-of-run flush (a drained engine, the end of a bench).
    pub fn finish(&mut self, now: Time) {
        if let Some((p0, p1)) = self.planned {
            self.drain(p0, now.max(p0), p1);
        }
        // Anything still unfinished completes at its guaranteed rate.
        self.drain(now, f64::INFINITY, now);
        self.planned = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accept(
        id: u64,
        class: ServiceClass,
        bw: f64,
        max_rate: f64,
        volume: f64,
    ) -> AcceptedTransfer {
        AcceptedTransfer {
            id,
            ingress: 0,
            egress: 0,
            class,
            bw,
            start: 0.0,
            finish: volume / bw,
            max_rate,
            volume,
        }
    }

    #[test]
    fn lone_transfer_takes_all_residual_up_to_max_rate() {
        // Port capacity 100, guarantee 20, MaxRate 60: residual 80 but
        // the host can only add 40.
        let mut rd = Redistributor::new(1, 1, QosConfig::default());
        rd.on_accept(accept(1, ServiceClass::Silver, 20.0, 60.0, 2000.0));
        let plan = rd.round(0.0, 10.0, &[80.0], &[80.0]);
        assert_eq!(plan.boosts.len(), 1);
        assert!((plan.boosts[0].rate - 40.0).abs() < 1e-6, "{plan:?}");
    }

    #[test]
    fn boost_is_limited_by_remaining_volume() {
        // 50 MB left, guarantee 20 MB/s over a 10 s round: the transfer
        // can use at most 5 MB/s total, so no boost is useful... and a
        // tiny one would still finish it inside the round. remaining/dt
        // (5) < bw (20) → cap 0.
        let mut rd = Redistributor::new(1, 1, QosConfig::default());
        let mut a = accept(1, ServiceClass::Silver, 20.0, 100.0, 50.0);
        a.finish = 2.5;
        rd.on_accept(a);
        let plan = rd.round(0.0, 10.0, &[80.0], &[80.0]);
        assert!(plan.boosts.is_empty(), "{plan:?}");
    }

    #[test]
    fn gold_drinks_before_best_effort() {
        // Two transfers share one port with 30 residual; both could take
        // 30. Gold gets it all, best-effort rides on nothing.
        let mut rd = Redistributor::new(1, 1, QosConfig::default());
        rd.on_accept(accept(1, ServiceClass::BestEffort, 10.0, 100.0, 10_000.0));
        rd.on_accept(accept(2, ServiceClass::Gold, 10.0, 100.0, 10_000.0));
        let plan = rd.round(0.0, 10.0, &[30.0], &[30.0]);
        let by_id: BTreeMap<u64, f64> = plan.boosts.iter().map(|b| (b.id, b.rate)).collect();
        assert!(
            (by_id.get(&2).copied().unwrap_or(0.0) - 30.0).abs() < 1e-6,
            "{plan:?}"
        );
        assert_eq!(by_id.get(&1), None, "{plan:?}");
    }

    #[test]
    fn same_class_shares_maxmin_fairly() {
        let mut rd = Redistributor::new(2, 1, QosConfig::default());
        let mut a = accept(1, ServiceClass::Silver, 10.0, 1000.0, 100_000.0);
        a.finish = 10_000.0;
        let mut b = a;
        b.id = 2;
        b.ingress = 1;
        rd.on_accept(a);
        rd.on_accept(b);
        // Shared egress of 60 residual; ample ingress on both sides.
        let plan = rd.round(0.0, 10.0, &[500.0, 500.0], &[60.0]);
        assert_eq!(plan.boosts.len(), 2);
        assert!((plan.boosts[0].rate - 30.0).abs() < 1e-6, "{plan:?}");
        assert!((plan.boosts[1].rate - 30.0).abs() < 1e-6, "{plan:?}");
    }

    #[test]
    fn early_finish_turns_into_credit_and_release() {
        // Guarantee 10 MB/s for 100 s (1000 MB). Boosted by 90 → done
        // in 10 s. The next full round inside [start, finish) must see
        // the 10 MB/s charge credited back, and stats must count one
        // early release with zero violations.
        let cfg = QosConfig::default();
        let mut rd = Redistributor::new(1, 1, cfg);
        rd.on_accept(accept(1, ServiceClass::Gold, 10.0, 100.0, 1000.0));
        let plan = rd.round(0.0, 10.0, &[90.0], &[90.0]);
        assert!((plan.boosts[0].rate - 90.0).abs() < 1e-6);
        let plan = rd.round(10.0, 20.0, &[90.0], &[90.0]);
        assert_eq!(plan.credits_in, vec![10.0]);
        assert_eq!(plan.credits_out, vec![10.0]);
        assert!(plan.boosts.is_empty(), "nobody left to boost");
        let st = rd.stats();
        assert_eq!(st.early_releases, 1);
        assert_eq!(st.finish_violations, 0);
        assert_eq!(st.oversubscriptions, 0);
        assert_eq!(st.boost_rounds, 1);
        assert!((st.boosted_bytes - 900.0).abs() < 1e-6, "{st:?}");
        let c = rd.completions();
        assert_eq!(c.len(), 1);
        assert!((c[0].done_at - 10.0).abs() < 1e-6);
        assert_eq!(c[0].guaranteed_finish, 100.0);
    }

    #[test]
    fn unboosted_transfer_completes_exactly_at_guaranteed_finish() {
        let mut rd = Redistributor::new(1, 1, QosConfig::default());
        rd.on_accept(accept(1, ServiceClass::Silver, 10.0, 10.0, 100.0));
        for k in 0..11 {
            let t = k as f64;
            rd.round(t, t + 1.0, &[0.0], &[0.0]);
        }
        rd.finish(11.0);
        let c = rd.completions();
        assert_eq!(c.len(), 1);
        assert!((c[0].done_at - 10.0).abs() < 1e-6, "{c:?}");
        assert_eq!(rd.stats().finish_violations, 0);
        assert_eq!(rd.stats().early_releases, 0);
    }

    #[test]
    fn allowance_lets_a_starved_transfer_catch_up() {
        // Two silver transfers on separate ingress ports, shared egress.
        // For 5 rounds transfer 2's ingress is dead, so transfer 1
        // drinks alone — but both bank the same fair grant (the
        // bottleneck pool is 10, i.e. 50 MB per round each). When the
        // roles flip, transfer 2's boost cap is its bank plus the fresh
        // grant, so it out-boosts what a freshly fair share would be.
        let cfg = QosConfig {
            allowance_horizon: 1000.0,
            ..QosConfig::default()
        };
        let mut rd = Redistributor::new(2, 1, cfg);
        let mut a = accept(1, ServiceClass::Silver, 5.0, 1000.0, 1_000_000.0);
        a.finish = 200_000.0;
        let mut b = a;
        b.id = 2;
        b.ingress = 1;
        rd.on_accept(a);
        rd.on_accept(b);
        for k in 0..5 {
            let t = 10.0 * k as f64;
            let plan = rd.round(t, t + 10.0, &[100.0, 0.0], &[10.0]);
            let by_id: BTreeMap<u64, f64> = plan.boosts.iter().map(|b| (b.id, b.rate)).collect();
            assert!(!by_id.contains_key(&2), "starved behind its dead port");
            assert!((by_id[&1] - 5.0).abs() < 1e-6, "{plan:?}");
        }
        let banked = rd.transfers[&2].allowance;
        assert!((banked - 250.0).abs() < 1e-6, "5 rounds × 50 MB banked");
        // Roles flip: the fresh grant alone would cap the round at
        // 50 MB/s; the bank lifts transfer 2 to 75.
        let plan = rd.round(50.0, 60.0, &[0.0, 100.0], &[100.0]);
        let by_id: BTreeMap<u64, f64> = plan.boosts.iter().map(|b| (b.id, b.rate)).collect();
        let r2 = by_id[&2];
        assert!(
            (r2 - 75.0).abs() < 1e-6,
            "catch-up boost {r2} should spend the {banked} MB bank"
        );
        assert!(rd.transfers[&2].allowance < 1e-6, "bank spent");
    }

    #[test]
    fn tenant_bucket_caps_a_port_hog() {
        // One tenant, huge residual, but policed to 5 MB/s of boost.
        let cfg = QosConfig {
            tenant_rate: Some(5.0),
            tenant_burst: Some(50.0),
            ..QosConfig::default()
        };
        let mut rd = Redistributor::new(1, 1, cfg);
        rd.on_accept(accept(1, ServiceClass::Gold, 10.0, 1000.0, 1_000_000.0));
        // Round 1: full bucket (50 MB) over 10 s → 5 MB/s boost.
        let plan = rd.round(0.0, 10.0, &[500.0], &[500.0]);
        assert!((plan.boosts[0].rate - 5.0).abs() < 1e-6, "{plan:?}");
        // Round 2: the bucket refilled exactly what was spent → same.
        let plan = rd.round(10.0, 20.0, &[500.0], &[500.0]);
        assert!((plan.boosts[0].rate - 5.0).abs() < 1e-6, "{plan:?}");
        assert_eq!(rd.stats().oversubscriptions, 0);
    }

    #[test]
    fn cancel_withdraws_the_transfer() {
        let mut rd = Redistributor::new(1, 1, QosConfig::default());
        rd.on_accept(accept(1, ServiceClass::Gold, 10.0, 100.0, 1000.0));
        rd.on_cancel(1);
        let plan = rd.round(0.0, 10.0, &[90.0], &[90.0]);
        assert!(plan.boosts.is_empty());
        assert_eq!(rd.tracked(), 0);
    }

    #[test]
    fn fast_forward_gap_settles_at_guaranteed_rate() {
        // Plan a boosted round [0, 10), then jump to t=50: the boost
        // applies only inside its own interval, the gap drains at the
        // guarantee, so 10×(10+40) + 40×10 = 900 of 1000 MB are done.
        let mut rd = Redistributor::new(1, 1, QosConfig::default());
        let mut a = accept(1, ServiceClass::Silver, 10.0, 50.0, 1000.0);
        a.finish = 100.0;
        rd.on_accept(a);
        let plan = rd.round(0.0, 10.0, &[40.0], &[40.0]);
        assert!((plan.boosts[0].rate - 40.0).abs() < 1e-6);
        rd.round(50.0, 60.0, &[40.0], &[40.0]);
        let tr = rd.transfers[&1];
        assert!((tr.remaining - 100.0).abs() < 1e-6, "{tr:?}");
    }
}
