//! The conservation verifier.
//!
//! Redistribution is only safe if two things hold every round:
//!
//! 1. **No port oversubscription** — the boosts granted on a port,
//!    together with the still-active guaranteed rates, never exceed its
//!    capacity. Because boosts are drawn from the ledger's residual
//!    (capacity minus every guaranteed charge, holds included) plus the
//!    guaranteed rates of transfers that already finished and went
//!    silent, the equivalent check is: per port,
//!    `Σ boosts ≤ residual + credits`.
//! 2. **No guaranteed finish delayed** — a boost only ever *adds* rate
//!    on top of an untouched guaranteed profile, so every transfer
//!    completes at or before the finish time its admission decision
//!    promised.
//!
//! [`Redistributor::round`](crate::Redistributor::round) runs
//! [`check_round`] itself and counts failures in
//! [`QosStats::oversubscriptions`](crate::QosStats::oversubscriptions);
//! tests and the bench run both checks independently.

use crate::redistribute::{Completion, RoundPlan};

/// Feasibility slack (MB/s) for summed float rates.
const TOL_RATE: f64 = 1e-6;
/// Slack (virtual seconds) for the finish-time comparison.
const TOL_TIME: f64 = 1e-6;

/// Check one round's plan for port oversubscription. Returns one
/// human-readable violation per offending port (empty = clean).
pub fn check_round(plan: &RoundPlan) -> Vec<String> {
    let mut out = Vec::new();
    let mut used_in = vec![0.0f64; plan.residual_in.len()];
    let mut used_out = vec![0.0f64; plan.residual_out.len()];
    for b in &plan.boosts {
        if !(b.rate.is_finite() && b.rate >= 0.0) {
            out.push(format!("boost for {} has unlawful rate {}", b.id, b.rate));
            continue;
        }
        used_in[b.ingress] += b.rate;
        used_out[b.egress] += b.rate;
    }
    for (p, &u) in used_in.iter().enumerate() {
        let limit = plan.residual_in[p].max(0.0) + plan.credits_in[p];
        if u > limit + TOL_RATE {
            out.push(format!(
                "ingress {p} oversubscribed in [{}, {}): boosts {u} > residual {} + credits {}",
                plan.t0, plan.t1, plan.residual_in[p], plan.credits_in[p]
            ));
        }
    }
    for (p, &u) in used_out.iter().enumerate() {
        let limit = plan.residual_out[p].max(0.0) + plan.credits_out[p];
        if u > limit + TOL_RATE {
            out.push(format!(
                "egress {p} oversubscribed in [{}, {}): boosts {u} > residual {} + credits {}",
                plan.t0, plan.t1, plan.residual_out[p], plan.credits_out[p]
            ));
        }
    }
    out
}

/// Check that no observed completion landed after its guaranteed
/// finish. Returns one violation per late transfer (empty = clean).
pub fn check_completions(completions: &[Completion]) -> Vec<String> {
    completions
        .iter()
        .filter(|c| c.done_at > c.guaranteed_finish + TOL_TIME)
        .map(|c| {
            format!(
                "transfer {} finished at {} — after its guaranteed {}",
                c.id, c.done_at, c.guaranteed_finish
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::redistribute::Boost;
    use gridband_workload::ServiceClass;

    fn plan(boosts: Vec<Boost>, residual: f64, credit: f64) -> RoundPlan {
        RoundPlan {
            t0: 0.0,
            t1: 10.0,
            boosts,
            residual_in: vec![residual],
            residual_out: vec![residual],
            credits_in: vec![credit],
            credits_out: vec![credit],
        }
    }

    fn boost(id: u64, rate: f64) -> Boost {
        Boost {
            id,
            ingress: 0,
            egress: 0,
            class: ServiceClass::Silver,
            rate,
        }
    }

    #[test]
    fn feasible_plans_pass() {
        assert!(check_round(&plan(vec![], 0.0, 0.0)).is_empty());
        assert!(check_round(&plan(vec![boost(1, 30.0), boost(2, 20.0)], 50.0, 0.0)).is_empty());
        // Credits extend the pool past the ledger residual.
        assert!(check_round(&plan(vec![boost(1, 60.0)], 50.0, 10.0)).is_empty());
    }

    #[test]
    fn oversubscription_is_reported_per_port() {
        let v = check_round(&plan(vec![boost(1, 30.0), boost(2, 30.0)], 50.0, 0.0));
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("ingress 0"), "{v:?}");
        assert!(v[1].contains("egress 0"), "{v:?}");
    }

    #[test]
    fn unlawful_rates_are_reported() {
        assert_eq!(
            check_round(&plan(vec![boost(1, f64::NAN)], 50.0, 0.0)).len(),
            1
        );
        assert_eq!(check_round(&plan(vec![boost(1, -1.0)], 50.0, 0.0)).len(), 1);
    }

    #[test]
    fn late_completions_are_reported() {
        let cs = [
            Completion {
                id: 1,
                class: ServiceClass::Gold,
                done_at: 5.0,
                guaranteed_finish: 10.0,
            },
            Completion {
                id: 2,
                class: ServiceClass::Silver,
                done_at: 10.0 + 1e-9,
                guaranteed_finish: 10.0,
            },
            Completion {
                id: 3,
                class: ServiceClass::Silver,
                done_at: 11.0,
                guaranteed_finish: 10.0,
            },
        ];
        let v = check_completions(&cs);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("transfer 3"), "{v:?}");
    }
}
