//! End-to-end overlay properties against a real `CapacityLedger`.
//!
//! A randomized greedy admitter books guaranteed reservations; the
//! redistributor resells each round's residual on top. Across every
//! instance: no port physically oversubscribed (guarantees of transfers
//! still moving bytes, plus boosts, within capacity), no guaranteed
//! finish delayed, and the overlay never mutates the ledger.

use std::collections::BTreeMap;

use gridband_net::{CapacityLedger, Route, Topology};
use gridband_qos::{check_completions, AcceptedTransfer, QosConfig, Redistributor, ServiceClass};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
struct Arrival {
    ingress: u32,
    egress: u32,
    volume: f64,
    max_rate: f64,
    start: f64,
    class: ServiceClass,
}

fn arrivals() -> impl Strategy<Value = Vec<Arrival>> {
    prop::collection::vec(
        (
            0u32..3,
            0u32..2,
            50.0f64..400.0,
            5.0f64..40.0,
            0.0f64..60.0,
            0u8..3,
        ),
        1..14,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(i, e, volume, max_rate, start, class)| Arrival {
                ingress: i,
                egress: e,
                volume,
                max_rate,
                start,
                class: ServiceClass::ALL[class as usize],
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn overlay_conserves_capacity_and_finish_times(arrivals in arrivals()) {
        let topo = Topology::new(&[60.0, 40.0, 25.0], &[50.0, 45.0]);
        let mut ledger = CapacityLedger::new(topo.clone());
        let mut rd = Redistributor::new(
            topo.num_ingress(),
            topo.num_egress(),
            QosConfig {
                tenant_rate: Some(30.0),
                ..QosConfig::default()
            },
        );
        let step = 10.0;

        // Greedy admission at half the host rate (MinRate-flavoured:
        // leaves headroom for the overlay), aligned to round starts.
        let mut admitted: BTreeMap<u64, (f64, f64, f64, usize, usize)> = BTreeMap::new();
        for (k, a) in arrivals.iter().enumerate() {
            let route = Route::new(a.ingress, a.egress);
            let start = (a.start / step).ceil() * step;
            let bw = (a.max_rate * 0.5).min(ledger.max_fit(route, start, start + a.volume));
            // Skip slivers: a sub-1 MB/s guarantee would stretch the
            // horizon (and the round count) into the thousands.
            if bw < 1.0 {
                continue;
            }
            let finish = start + a.volume / bw;
            if ledger.reserve(route, start, finish, bw).is_ok() {
                admitted.insert(k as u64, (bw, start, finish, a.ingress as usize, a.egress as usize));
                rd.on_accept(AcceptedTransfer {
                    id: k as u64,
                    ingress: a.ingress as usize,
                    egress: a.egress as usize,
                    class: a.class,
                    bw,
                    start,
                    finish,
                    max_rate: a.max_rate,
                    volume: a.volume,
                });
            }
        }
        let before = ledger.export_state();

        let horizon = admitted
            .values()
            .map(|&(_, _, f, _, _)| f)
            .fold(100.0f64, f64::max);
        let rounds = (horizon / step).ceil() as usize + 2;
        let mut done_at: BTreeMap<u64, f64> = BTreeMap::new();
        for r in 0..rounds {
            let t0 = r as f64 * step;
            let t1 = t0 + step;
            let (rin, rout) = ledger.residuals(t0, t1);
            let plan = rd.round(t0, t1, &rin, &rout);
            for c in rd.completions() {
                done_at.entry(c.id).or_insert(c.done_at);
            }
            // Physical conservation, from first principles (not via the
            // verifier's residual algebra): per port, guarantees of
            // transfers still moving bytes + boosts ≤ capacity.
            let boosted: BTreeMap<u64, f64> =
                plan.boosts.iter().map(|b| (b.id, b.rate)).collect();
            let mut used_in = vec![0.0f64; topo.num_ingress()];
            let mut used_out = vec![0.0f64; topo.num_egress()];
            for (id, &(bw, start, finish, ing, eg)) in &admitted {
                let silent = done_at.get(id).is_some_and(|&d| d <= t0 + 1e-9);
                let active = start <= t0 + 1e-9 && finish > t0 + 1e-9 && !silent;
                if active {
                    used_in[ing] += bw;
                    used_out[eg] += bw;
                }
                if let Some(&b) = boosted.get(id) {
                    used_in[ing] += b;
                    used_out[eg] += b;
                }
            }
            for (p, &u) in used_in.iter().enumerate() {
                let cap = topo.ingress_cap(gridband_net::IngressId(p as u32));
                prop_assert!(u <= cap + 1e-6, "ingress {p}: {u} > {cap} at t={t0}");
            }
            for (p, &u) in used_out.iter().enumerate() {
                let cap = topo.egress_cap(gridband_net::EgressId(p as u32));
                prop_assert!(u <= cap + 1e-6, "egress {p}: {u} > {cap} at t={t0}");
            }
        }
        rd.finish(rounds as f64 * step);

        let st = rd.stats();
        prop_assert_eq!(st.oversubscriptions, 0);
        prop_assert_eq!(st.finish_violations, 0);
        let late = check_completions(rd.completions());
        prop_assert!(late.is_empty(), "{late:?}");
        // Every admitted transfer completed, never after its guarantee.
        prop_assert_eq!(rd.completions().len(), admitted.len());
        for c in rd.completions() {
            let (_, _, finish, _, _) = admitted[&c.id];
            prop_assert!(c.done_at <= finish + 1e-6);
        }
        // The overlay never wrote to the ledger.
        prop_assert_eq!(&ledger.export_state(), &before);
    }
}
