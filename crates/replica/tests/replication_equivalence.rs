//! Replication equivalence: kill the primary at any point — a round
//! boundary, inside a torn record, under a hostile link — promote the
//! follower, finish the workload against it, and the merged outcome must
//! be bit-identical to a run where the primary never died: same
//! decisions with the same `bw`/`start`/`finish` on every acceptance,
//! same rejection reasons, same final engine snapshot, and a follower
//! store that is byte-for-byte the primary's durable WAL prefix.
//!
//! The failover client protocol extends the recovery one: replies the
//! primary sent before dying are durable (log-before-reply); everything
//! unanswered is resubmitted, in original order, to the promoted
//! follower. Promotion happens after the replication stream has drained,
//! so the follower resumes from the exact round the primary last logged.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver};
use gridband_net::Topology;
use gridband_replica::{
    encode_frame, FaultInjector, FaultPlan, FollowerConfig, FollowerCore, Replica, ReplicaConfig,
    ShipperConfig, ShipperCore, WalShipper,
};
use gridband_serve::engine::Command;
use gridband_serve::protocol::{decode_server, encode_client};
use gridband_serve::{
    ClientMsg, Engine, EngineConfig, FsyncPolicy, MemDir, MetricsRegistry, RejectReason, Role,
    ServerMsg, StoreConfig, SubmitReq,
};
use gridband_store::wal::{scan_records, MAGIC_WAL};
use gridband_store::{Dir, EngineSnapshot};
use rand::{rngs::StdRng, Rng, SeedableRng};

const STEP: f64 = 10.0;
const EVENTS: usize = 36;
const HISTORY: usize = 1 << 20;

fn topology() -> Topology {
    Topology::uniform(3, 3, 100.0)
}

#[derive(Debug, Clone)]
enum Event {
    Submit(SubmitReq),
    Cancel {
        id: u64,
    },
    Amend {
        id: u64,
        volume: f64,
        max_rate: f64,
        deadline: Option<f64>,
    },
}

/// The flex-recovery suite's workload: Poisson-ish arrivals on a 3×3
/// topology where every third submission is a long-lived malleable
/// request, amends renegotiate malleable reservations that are decided
/// and still live at their deciding round, and cancels only touch
/// requests decided long ago. Segmented grants and `Amend` swaps land
/// in the shipped WAL stream, so failover replays them too.
fn workload(seed: u64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::with_capacity(EVENTS);
    let mut clock = 0.0f64;
    let mut submitted: Vec<(u64, f64)> = Vec::new();
    // (id, start, start + volume/max_rate): the third field is a lower
    // bound on the plan's end — a plan can never run above MaxRate.
    let mut malleable: Vec<(u64, f64, f64)> = Vec::new();
    let mut cancelled: Vec<u64> = Vec::new();
    let mut amended: Vec<u64> = Vec::new();
    for i in 0..EVENTS {
        if i % 9 == 5 {
            if let Some(id) = submitted
                .iter()
                .find(|(id, start)| *start < clock - 2.0 * STEP && !cancelled.contains(id))
                .map(|(id, _)| *id)
            {
                cancelled.push(id);
                events.push(Event::Cancel { id });
                continue;
            }
        }
        if i % 3 == 0 && i > 0 {
            if let Some((id, _, _)) = malleable
                .iter()
                .find(|(id, start, min_end)| {
                    *start < clock - 2.0 * STEP
                        && *min_end > clock + 2.0 * STEP
                        && !cancelled.contains(id)
                        && !amended.contains(id)
                })
                .copied()
            {
                amended.push(id);
                let volume = rng.gen_range(400.0..2400.0);
                let max_rate = rng.gen_range(20.0..60.0);
                let deadline = rng
                    .gen_bool(0.5)
                    .then(|| clock + rng.gen_range(2.0..6.0) * STEP);
                events.push(Event::Amend {
                    id,
                    volume,
                    max_rate,
                    deadline,
                });
                continue;
            }
        }
        clock += rng.gen_range(1.0..8.0);
        let id = i as u64 + 1;
        if i % 3 == 1 {
            let volume = rng.gen_range(1200.0..2200.0);
            let max_rate = rng.gen_range(20.0..32.0);
            let deadline = rng
                .gen_bool(0.5)
                .then(|| clock + rng.gen_range(1.5..3.0) * volume / max_rate);
            events.push(Event::Submit(SubmitReq {
                id,
                ingress: rng.gen_range(0u32..3),
                egress: rng.gen_range(0u32..3),
                volume,
                max_rate,
                start: Some(clock),
                deadline,
                class: Default::default(),
                malleable: Some(true),
            }));
            malleable.push((id, clock, clock + volume / max_rate));
        } else {
            let volume = rng.gen_range(50.0..400.0);
            let max_rate = rng.gen_range(20.0..90.0);
            let slack = rng.gen_range(1.2..3.5);
            events.push(Event::Submit(SubmitReq {
                id,
                ingress: rng.gen_range(0u32..3),
                egress: rng.gen_range(0u32..3),
                volume,
                max_rate,
                start: Some(clock),
                deadline: Some(clock + slack * volume / max_rate),
                class: Default::default(),
                malleable: None,
            }));
        }
        submitted.push((id, clock));
    }
    events
}

fn config(dir: Arc<MemDir>, snapshot_every: u64, gc_horizon: Option<f64>) -> EngineConfig {
    let mut cfg = EngineConfig::new(topology());
    cfg.step = STEP;
    cfg.history_capacity = HISTORY;
    cfg.malleable = true;
    cfg.gc_horizon = gc_horizon;
    cfg.store = Some(StoreConfig {
        dir,
        fsync: FsyncPolicy::Round,
        snapshot_every,
    });
    cfg
}

fn shipper_cfg(dir: Arc<MemDir>) -> ShipperConfig {
    ShipperConfig {
        dir,
        topology: topology(),
        step: STEP,
        history_capacity: HISTORY,
        beacon_every: 1,
    }
}

fn follower_cfg(dir: Arc<MemDir>) -> FollowerConfig {
    FollowerConfig {
        dir,
        topology: topology(),
        step: STEP,
        history_capacity: HISTORY,
        fsync: FsyncPolicy::Round,
    }
}

/// Reply channels of one client session: submit decisions keyed by
/// request id, cancel acks and amend outcomes keyed by event index.
#[derive(Default)]
struct Session {
    submits: Vec<(u64, Receiver<ServerMsg>)>,
    cancels: Vec<(usize, Receiver<ServerMsg>)>,
    amends: Vec<(usize, Receiver<ServerMsg>)>,
}

impl Session {
    fn send(&mut self, engine: &Engine, idx: usize, event: &Event) -> bool {
        let (tx, rx) = channel::unbounded();
        let msg = match event {
            Event::Submit(s) => {
                self.submits.push((s.id, rx));
                ClientMsg::Submit(s.clone())
            }
            Event::Cancel { id } => {
                self.cancels.push((idx, rx));
                ClientMsg::Cancel { id: *id }
            }
            Event::Amend {
                id,
                volume,
                max_rate,
                deadline,
            } => {
                self.amends.push((idx, rx));
                ClientMsg::Amend {
                    id: *id,
                    volume: *volume,
                    max_rate: *max_rate,
                    deadline: *deadline,
                }
            }
        };
        engine
            .sender()
            .send(Command::Client {
                msg,
                reply: tx.into(),
            })
            .is_ok()
    }

    fn harvest(
        &mut self,
        decisions: &mut BTreeMap<u64, ServerMsg>,
        acked_cancels: &mut Vec<usize>,
        amend_replies: &mut BTreeMap<usize, ServerMsg>,
    ) {
        for (id, rx) in &self.submits {
            if let Ok(msg) = rx.try_recv() {
                let prev = decisions.insert(*id, msg);
                assert!(prev.is_none(), "two decisions for request {id}");
            }
        }
        for (idx, rx) in &self.cancels {
            if rx.try_recv().is_ok() {
                acked_cancels.push(*idx);
            }
        }
        for (idx, rx) in &self.amends {
            if let Ok(msg) = rx.try_recv() {
                let prev = amend_replies.insert(*idx, msg);
                assert!(prev.is_none(), "two replies for amend event {idx}");
            }
        }
    }
}

fn drain(engine: &Engine) {
    let (tx, rx) = channel::unbounded();
    engine
        .sender()
        .send(Command::Client {
            msg: ClientMsg::Drain,
            reply: tx.into(),
        })
        .expect("engine alive for drain");
    rx.recv_timeout(Duration::from_secs(10)).expect("drain ack");
}

fn export(engine: &Engine) -> EngineSnapshot {
    let (tx, rx) = channel::unbounded();
    engine
        .sender()
        .send(Command::Export { reply: tx })
        .expect("engine alive for export");
    rx.recv_timeout(Duration::from_secs(10)).expect("export")
}

fn run_uninterrupted(
    events: &[Event],
    snapshot_every: u64,
    gc_horizon: Option<f64>,
) -> (
    BTreeMap<u64, ServerMsg>,
    BTreeMap<usize, ServerMsg>,
    EngineSnapshot,
) {
    let dir = Arc::new(MemDir::new());
    let engine = Engine::spawn(config(dir, snapshot_every, gc_horizon));
    let mut session = Session::default();
    for (idx, event) in events.iter().enumerate() {
        assert!(session.send(&engine, idx, event), "engine died mid-run");
    }
    drain(&engine);
    let mut decisions = BTreeMap::new();
    let mut amend_replies = BTreeMap::new();
    session.harvest(&mut decisions, &mut Vec::new(), &mut amend_replies);
    let snap = export(&engine);
    engine.shutdown();
    (decisions, amend_replies, snap)
}

/// How the primary dies.
#[derive(Clone, Copy, Debug)]
enum Kill {
    /// `Engine::kill()` after this many events: every decided round is
    /// committed, the crash lands on a record boundary.
    Clean(usize),
    /// After this many events the store device accepts only a few more
    /// bytes: the next append tears mid-record.
    Torn(usize),
}

/// Drive the sans-IO cores until the follower has everything the
/// primary's store durably holds, pushing every primary→follower frame
/// through the fault injector. Returns the follower's metrics (the
/// shipper's are folded into `shipper_metrics`).
fn replicate(
    primary_dir: Arc<MemDir>,
    follower_dir: Arc<MemDir>,
    plan: FaultPlan,
) -> (Arc<MetricsRegistry>, Arc<MetricsRegistry>) {
    let sm = Arc::new(MetricsRegistry::new());
    let fm = Arc::new(MetricsRegistry::new());
    let mut shipper = ShipperCore::new(shipper_cfg(primary_dir), sm.clone());
    let mut follower = FollowerCore::open(follower_cfg(follower_dir), fm.clone())
        .expect("follower opens its local store");
    let mut inj = FaultInjector::new(plan);
    follower.reset_session();

    let mut to_follower: VecDeque<Vec<u8>> = VecDeque::new();
    for f in inj.push(&encode_frame(&shipper.hello())) {
        to_follower.push_back(f);
    }
    let mut quiet = 0u32;
    for _ in 0..10_000 {
        // Deliver primary → follower (the faulty direction).
        let mut to_shipper = Vec::new();
        while let Some(frame) = to_follower.pop_front() {
            to_shipper.extend(
                follower
                    .handle_frame(&frame)
                    .expect("follower must survive the fault schedule"),
            );
        }
        // Deliver follower → primary (reliable) and poll the tail.
        let mut produced = Vec::new();
        for reply in &to_shipper {
            produced.extend(
                shipper
                    .handle_frame(&encode_frame(reply))
                    .expect("shipper must survive follower feedback"),
            );
        }
        produced.extend(shipper.pump().expect("primary store is intact"));
        if produced.is_empty() {
            // Nothing in flight: release any reorder-held frame, then
            // probe with a heartbeat (which is how real gaps surface).
            for f in inj.flush() {
                to_follower.push_back(f);
            }
            if to_follower.is_empty() {
                if shipper.subscribed() && shipper.position() == Some(follower.cursor()) {
                    return (sm, fm);
                }
                for f in inj.push(&encode_frame(&shipper.tick())) {
                    to_follower.push_back(f);
                }
                quiet += 1;
                assert!(quiet < 2_000, "replication failed to converge");
            }
        } else {
            quiet = 0;
            for msg in &produced {
                for f in inj.push(&encode_frame(msg)) {
                    to_follower.push_back(f);
                }
            }
        }
    }
    panic!("replication did not converge within the iteration bound");
}

/// The follower's store must be byte-for-byte the primary's durable
/// prefix: same latest generation, same snapshot bytes, and a WAL equal
/// to the primary's valid prefix (the primary may additionally hold a
/// torn tail that was never durable).
fn assert_store_mirrors(primary: &MemDir, follower: &MemDir, ctx: &str) {
    let latest = |d: &MemDir, prefix: &str| -> Option<String> {
        d.list()
            .expect("list dir")
            .into_iter()
            .filter(|f| f.starts_with(prefix))
            .max()
    };
    let p_wal = latest(primary, "wal-");
    let f_wal = latest(follower, "wal-");
    assert_eq!(p_wal, f_wal, "{ctx}: WAL generations differ");
    let p_snap = latest(primary, "snap-");
    let f_snap = latest(follower, "snap-");
    assert_eq!(p_snap, f_snap, "{ctx}: snapshot generations differ");
    if let (Some(ps), Some(fs)) = (&p_snap, &f_snap) {
        assert_eq!(
            primary.contents(ps),
            follower.contents(fs),
            "{ctx}: snapshot bytes differ"
        );
    }
    let (Some(pw), Some(fw)) = (&p_wal, &f_wal) else {
        return;
    };
    let p_bytes = primary.contents(pw).expect("primary WAL readable");
    let f_bytes = follower.contents(fw).expect("follower WAL readable");
    let scan = scan_records(pw, &p_bytes, MAGIC_WAL.len()).expect("primary WAL scans");
    assert_eq!(
        f_bytes.len() as u64,
        scan.valid_len,
        "{ctx}: follower WAL length is not the primary's valid prefix"
    );
    assert_eq!(
        f_bytes[..],
        p_bytes[..scan.valid_len as usize],
        "{ctx}: follower WAL bytes diverge from the primary's"
    );
}

/// The full drill: run a prefix on the primary, kill it per `kill`,
/// replicate the surviving store to a follower across `plan`, promote
/// the follower, finish the workload against it, and compare everything
/// against the uninterrupted run.
fn assert_failover_equivalent(seed: u64, kill: Kill, snapshot_every: u64, plan: FaultPlan) {
    assert_failover_equivalent_gc(seed, kill, snapshot_every, plan, None)
}

/// Like [`assert_failover_equivalent`], with the primary (and the
/// reference run, and the promoted follower) GC-ing its ledger behind a
/// watermark. The `WalRecord::Gc` records ship like any other record;
/// both standby mirrors — the shipper's beacon mirror and the
/// follower's — replay them, so a compaction the follower missed would
/// fire a divergence beacon long before the final snapshot comparison.
fn assert_failover_equivalent_gc(
    seed: u64,
    kill: Kill,
    snapshot_every: u64,
    plan: FaultPlan,
    gc_horizon: Option<f64>,
) {
    let ctx = format!("seed {seed} {kill:?} snap_every {snapshot_every} gc {gc_horizon:?}");
    let events = workload(seed);
    let (want_decisions, want_amends, want_snap) =
        run_uninterrupted(&events, snapshot_every, gc_horizon);
    if gc_horizon.is_some() {
        assert!(
            want_snap.ledger.watermark.is_some(),
            "{ctx}: the GC'd reference run never advanced a watermark — \
             the scenario exercises nothing"
        );
    }
    // The comparison must not be vacuous: segmented grants and amend
    // outcomes have to flow through the shipped stream.
    assert!(
        want_decisions
            .values()
            .any(|d| matches!(d, ServerMsg::AcceptedSegments { .. })),
        "{ctx}: no malleable submission was granted — workload too thin"
    );
    assert!(!want_amends.is_empty(), "{ctx}: workload queued no amends");

    // Phase 1: the primary runs a prefix and dies.
    let primary_dir = Arc::new(MemDir::new());
    let engine = Engine::spawn(config(primary_dir.clone(), snapshot_every, gc_horizon));
    let mut session = Session::default();
    match kill {
        Kill::Clean(after) => {
            for (idx, event) in events.iter().enumerate().take(after) {
                assert!(session.send(&engine, idx, event), "primary died too early");
            }
        }
        Kill::Torn(after) => {
            for (idx, event) in events.iter().enumerate().take(after) {
                assert!(session.send(&engine, idx, event), "primary died too early");
            }
            primary_dir.set_write_budget(12);
            for (idx, event) in events.iter().enumerate().skip(after) {
                if !session.send(&engine, idx, event) {
                    break;
                }
            }
        }
    }
    engine.kill();
    primary_dir.clear_write_budget();
    let mut decisions = BTreeMap::new();
    let mut acked_cancels = Vec::new();
    let mut amend_replies = BTreeMap::new();
    session.harvest(&mut decisions, &mut acked_cancels, &mut amend_replies);

    // Phase 2: stream the surviving store to a fresh follower across the
    // fault plan, to full sync.
    let follower_dir = Arc::new(MemDir::new());
    let (sm, fm) = replicate(primary_dir.clone(), follower_dir.clone(), plan);
    assert_eq!(
        fm.repl_divergence.load(Ordering::Relaxed),
        0,
        "{ctx}: divergence beacons fired"
    );
    let shipped = sm.repl_records_shipped.load(Ordering::Relaxed);
    if shipped > 0 {
        assert!(
            fm.repl_beacons_checked.load(Ordering::Relaxed) > 0,
            "{ctx}: records were shipped but no beacon was ever checked"
        );
    }
    assert_store_mirrors(&primary_dir, &follower_dir, &ctx);

    // Phase 3: promote — recover an engine over the follower's store —
    // and finish the workload via the resubmission protocol.
    let mut cfg = config(follower_dir, snapshot_every, gc_horizon);
    cfg.role = Role::Primary;
    let engine =
        Engine::try_spawn(cfg).expect("promoted follower must recover from its mirrored store");
    let mut session = Session::default();
    for (idx, event) in events.iter().enumerate() {
        let answered = match event {
            Event::Submit(s) => decisions.contains_key(&s.id),
            Event::Cancel { .. } => acked_cancels.contains(&idx),
            Event::Amend { .. } => amend_replies.contains_key(&idx),
        };
        if !answered {
            assert!(session.send(&engine, idx, event), "promoted engine died");
        }
    }
    drain(&engine);
    session.harvest(&mut decisions, &mut Vec::new(), &mut amend_replies);
    let got_snap = export(&engine);
    engine.shutdown();

    assert_eq!(
        decisions, want_decisions,
        "{ctx}: failover decisions diverge from the uninterrupted run"
    );
    assert_eq!(
        amend_replies, want_amends,
        "{ctx}: failover amend outcomes diverge from the uninterrupted run"
    );
    assert_eq!(
        got_snap, want_snap,
        "{ctx}: final engine state diverges after failover"
    );
}

// ---------------------------------------------------------------------
// Clean kills at every event boundary, three seeds.
// ---------------------------------------------------------------------

#[test]
fn every_kill_point_fails_over_bit_identically_seed_11() {
    for k in 0..=EVENTS {
        assert_failover_equivalent(11, Kill::Clean(k), 0, FaultPlan::default());
    }
}

#[test]
fn every_kill_point_fails_over_bit_identically_seed_22() {
    // Frequent snapshots: failover crosses snapshot install + tail replay.
    for k in 0..=EVENTS {
        assert_failover_equivalent(22, Kill::Clean(k), 3, FaultPlan::default());
    }
}

#[test]
fn every_kill_point_fails_over_bit_identically_seed_33() {
    for k in 0..=EVENTS {
        assert_failover_equivalent(33, Kill::Clean(k), 5, FaultPlan::default());
    }
}

// ---------------------------------------------------------------------
// Torn final records: the tear is never shipped, the follower holds the
// valid prefix, and failover still matches the uninterrupted run.
// ---------------------------------------------------------------------

#[test]
fn torn_primary_tails_fail_over_bit_identically() {
    for (seed, snapshot_every) in [(11u64, 0u64), (22, 3), (33, 1)] {
        for k in [4, 9, 14, 19, 24, 29, 34] {
            assert_failover_equivalent(seed, Kill::Torn(k), snapshot_every, FaultPlan::default());
        }
    }
}

// ---------------------------------------------------------------------
// Watermark GC on the primary: `WalRecord::Gc` ships like any other
// record, both standby mirrors replay it, and the follower lands on the
// same compacted store bytes — snapshot and WAL — as the primary.
// `assert_store_mirrors` pins the bytes; the zero-divergence check pins
// the replayed (compacted) state at every beacon along the way.
// ---------------------------------------------------------------------

/// Two rounds behind `now`: old enough that truncation only ever sees
/// fully-expired segments, young enough that the 36-event workload
/// advances the watermark many times.
const GC_HORIZON: f64 = 2.0 * STEP;

#[test]
fn gc_watermark_records_fail_over_bit_identically() {
    for k in 0..=EVENTS {
        assert_failover_equivalent_gc(
            11,
            Kill::Clean(k),
            0,
            FaultPlan::default(),
            Some(GC_HORIZON),
        );
    }
}

#[test]
fn gc_watermark_records_fail_over_bit_identically_with_snapshots() {
    // Frequent snapshots: the follower receives *compacted* snapshot
    // bytes (expired reservations dropped, profiles truncated) plus a
    // WAL tail that still carries Gc records.
    for k in 0..=EVENTS {
        assert_failover_equivalent_gc(
            22,
            Kill::Clean(k),
            3,
            FaultPlan::default(),
            Some(GC_HORIZON),
        );
    }
}

#[test]
fn gc_watermark_records_survive_torn_tails_and_faulty_links() {
    for k in [9, 19, 29] {
        assert_failover_equivalent_gc(33, Kill::Torn(k), 3, FaultPlan::default(), Some(GC_HORIZON));
    }
    let hostile = FaultPlan {
        drop_every: 5,
        dup_every: 7,
        reorder_every: 11,
        truncate_every: 13,
        partition: Some((20, 30)),
    };
    for k in [12, 27, EVENTS] {
        assert_failover_equivalent_gc(44, Kill::Clean(k), 3, hostile, Some(GC_HORIZON));
    }
}

// ---------------------------------------------------------------------
// Hostile links: deterministic drop / duplicate / reorder / truncate /
// partition schedules. Lost frames are re-requested, duplicates and
// stale seqs discarded, and the outcome still bit-identical.
// ---------------------------------------------------------------------

fn fault_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "drop",
            FaultPlan {
                drop_every: 3,
                ..FaultPlan::default()
            },
        ),
        (
            "dup",
            FaultPlan {
                dup_every: 4,
                ..FaultPlan::default()
            },
        ),
        (
            "reorder",
            FaultPlan {
                reorder_every: 5,
                ..FaultPlan::default()
            },
        ),
        (
            "truncate",
            FaultPlan {
                truncate_every: 7,
                ..FaultPlan::default()
            },
        ),
        (
            "partition",
            FaultPlan {
                partition: Some((10, 25)),
                ..FaultPlan::default()
            },
        ),
        (
            "combined",
            FaultPlan {
                drop_every: 5,
                dup_every: 7,
                reorder_every: 11,
                truncate_every: 13,
                partition: Some((20, 30)),
            },
        ),
    ]
}

#[test]
fn faulty_links_still_fail_over_bit_identically() {
    for (name, plan) in fault_plans() {
        for k in [12, 27, EVENTS] {
            eprintln!("fault plan {name}, kill at {k}");
            assert_failover_equivalent(44, Kill::Clean(k), 3, plan);
        }
    }
}

#[test]
fn fault_schedules_actually_engage() {
    // Guard against a fault injector that silently stopped injecting:
    // the duplicate plan must produce discarded frames, the truncate
    // plan damaged frames, and the drop plan resync round-trips.
    let events = workload(44);
    let primary_dir = Arc::new(MemDir::new());
    let engine = Engine::spawn(config(primary_dir.clone(), 0, None));
    let mut session = Session::default();
    for (idx, event) in events.iter().enumerate() {
        assert!(session.send(&engine, idx, event));
    }
    drain(&engine);
    engine.kill();

    let dup = FaultPlan {
        dup_every: 2,
        ..FaultPlan::default()
    };
    let (_, fm) = replicate(primary_dir.clone(), Arc::new(MemDir::new()), dup);
    assert!(
        fm.repl_frames_discarded.load(Ordering::Relaxed) > 0,
        "duplicated frames must be discarded by the seq guard"
    );

    // Odd periods: an even period with `beacon_every: 1` aligns the
    // fault parity with the strict record/beacon alternation so that
    // every record (and never a beacon) is hit — a zero-measure
    // adversary no retransmission protocol without randomized timing can
    // beat. Real links mix frame kinds; the acceptance schedules (3, 4,
    // 5, 7, partitions) are covered above.
    let truncate = FaultPlan {
        truncate_every: 3,
        ..FaultPlan::default()
    };
    let (_, fm) = replicate(primary_dir.clone(), Arc::new(MemDir::new()), truncate);
    assert!(
        fm.repl_frames_damaged.load(Ordering::Relaxed) > 0,
        "truncated frames must be detected as damage"
    );

    let drop = FaultPlan {
        drop_every: 3,
        ..FaultPlan::default()
    };
    let (_, fm) = replicate(primary_dir, Arc::new(MemDir::new()), drop);
    assert!(
        fm.repl_resyncs.load(Ordering::Relaxed) > 0,
        "dropped records must force resync round-trips"
    );
}

// ---------------------------------------------------------------------
// The threaded daemons over real sockets: WalShipper → Replica, live
// catch-up, read-only service while following, promotion over the wire,
// and a finished workload identical to the uninterrupted run.
// ---------------------------------------------------------------------

/// One-line client protocol helper over a TCP stream.
struct WireClient {
    stream: std::net::TcpStream,
    reader: std::io::BufReader<std::net::TcpStream>,
}

impl WireClient {
    fn connect(addr: std::net::SocketAddr) -> WireClient {
        let stream = std::net::TcpStream::connect(addr).expect("connect to replica");
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        let reader = std::io::BufReader::new(stream.try_clone().unwrap());
        WireClient { stream, reader }
    }

    fn send(&mut self, msg: &ClientMsg) {
        use std::io::Write;
        let mut line = encode_client(msg);
        line.push('\n');
        self.stream
            .write_all(line.as_bytes())
            .expect("write request");
    }

    fn recv(&mut self) -> ServerMsg {
        use std::io::BufRead;
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        decode_server(line.trim()).expect("parse reply")
    }
}

#[test]
fn tcp_failover_promotes_and_finishes_bit_identically() {
    let events = workload(55);
    let (want_decisions, want_amends, want_snap) = run_uninterrupted(&events, 0, None);

    // The primary: a store-backed engine plus a shipper.
    let primary_dir = Arc::new(MemDir::new());
    let engine = Engine::spawn(config(primary_dir.clone(), 0, None));

    // The follower daemon with both listeners on ephemeral ports.
    let follower_dir = Arc::new(MemDir::new());
    let replica = Replica::bind(
        ReplicaConfig {
            engine: config(follower_dir.clone(), 0, None),
            promote_after: None,
        },
        "127.0.0.1:0",
        Some("127.0.0.1:0"),
    )
    .expect("replica binds");
    let client_addr = replica.client_addr().expect("client listener requested");

    let shipper = WalShipper::spawn(
        {
            let mut cfg = shipper_cfg(primary_dir.clone());
            cfg.beacon_every = 4;
            cfg
        },
        replica.repl_addr().to_string(),
        engine.metrics(),
    );

    // Run a prefix on the primary and wait for the follower to catch up.
    let mut session = Session::default();
    let prefix = 24;
    for (idx, event) in events.iter().enumerate().take(prefix) {
        assert!(session.send(&engine, idx, event), "primary died too early");
    }
    let metrics = engine.metrics();
    let deadline = Instant::now() + Duration::from_secs(20);
    while metrics.repl_synced.load(Ordering::Relaxed) != 1 {
        assert!(
            Instant::now() < deadline,
            "follower never caught up over TCP"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Read-only service while following.
    {
        let mut client = WireClient::connect(client_addr);
        client.send(&ClientMsg::Stats);
        match client.recv() {
            ServerMsg::Stats(stats) => {
                assert_eq!(stats.role, "follower");
                assert!(stats.repl_records_applied > 0, "standby applied records");
            }
            other => panic!("expected Stats, got {other:?}"),
        }
        client.send(&ClientMsg::Submit(SubmitReq {
            id: 9_999,
            ingress: 0,
            egress: 1,
            volume: 10.0,
            max_rate: 10.0,
            start: None,
            deadline: None,
            class: Default::default(),
            malleable: None,
        }));
        match client.recv() {
            ServerMsg::Rejected { id, reason, .. } => {
                assert_eq!(id, 9_999);
                assert_eq!(reason, RejectReason::NotPrimary);
            }
            other => panic!("expected NotPrimary rejection, got {other:?}"),
        }
    }

    // Barrier: a Stats round-trip through the same command queue proves
    // every prefix event was *processed* (not necessarily decided)
    // before the kill. That keeps reply routing after promotion
    // unambiguous — an unanswered amend's target submission was decided
    // when the amend was queued, so its decision reply predates the
    // kill and only the amend is re-sent under that id.
    {
        let (tx, rx) = channel::unbounded();
        engine
            .sender()
            .send(Command::Client {
                msg: ClientMsg::Stats,
                reply: tx.into(),
            })
            .expect("engine alive for stats barrier");
        rx.recv_timeout(Duration::from_secs(10))
            .expect("stats barrier");
    }

    // Kill the primary mid-workload.
    engine.kill();
    shipper.shutdown();
    let mut decisions = BTreeMap::new();
    let mut acked_cancels = Vec::new();
    let mut amend_replies = BTreeMap::new();
    session.harvest(&mut decisions, &mut acked_cancels, &mut amend_replies);

    // Promote over the wire (twice: the second must be idempotent), then
    // finish the workload through the promoted daemon.
    let mut client = WireClient::connect(client_addr);
    client.send(&ClientMsg::Promote);
    let rounds = match client.recv() {
        ServerMsg::Promoted { rounds } => rounds,
        other => panic!("expected Promoted, got {other:?}"),
    };
    client.send(&ClientMsg::Promote);
    match client.recv() {
        ServerMsg::Promoted { rounds: again } => assert_eq!(again, rounds),
        other => panic!("expected idempotent Promoted, got {other:?}"),
    }

    let mut outstanding = 0usize;
    // In-flight requests by reservation id. The same id can be open as
    // a submission *and* an amend (the kill landed before the target's
    // round, so the loop below re-drives both, in original order); the
    // reply loop routes the id's two replies by the uninterrupted run's
    // expected outcomes — a wrong route still fails the final equality
    // asserts.
    let mut open_submits: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    let mut amend_idx_by_id: BTreeMap<u64, usize> = BTreeMap::new();
    for (idx, event) in events.iter().enumerate() {
        match event {
            Event::Submit(s) => {
                if !decisions.contains_key(&s.id) {
                    client.send(&ClientMsg::Submit(s.clone()));
                    open_submits.insert(s.id);
                    outstanding += 1;
                }
            }
            Event::Cancel { id } => {
                if !acked_cancels.contains(&idx) {
                    client.send(&ClientMsg::Cancel { id: *id });
                    outstanding += 1;
                }
            }
            Event::Amend {
                id,
                volume,
                max_rate,
                deadline,
            } => {
                if !amend_replies.contains_key(&idx) {
                    client.send(&ClientMsg::Amend {
                        id: *id,
                        volume: *volume,
                        max_rate: *max_rate,
                        deadline: *deadline,
                    });
                    amend_idx_by_id.insert(*id, idx);
                    outstanding += 1;
                }
            }
        }
    }
    client.send(&ClientMsg::Drain);
    outstanding += 1;
    for _ in 0..outstanding {
        match client.recv() {
            msg @ (ServerMsg::Accepted { .. }
            | ServerMsg::AcceptedSegments { .. }
            | ServerMsg::Rejected { .. }) => {
                let id = match &msg {
                    ServerMsg::Accepted { id, .. }
                    | ServerMsg::AcceptedSegments { id, .. }
                    | ServerMsg::Rejected { id, .. } => *id,
                    _ => unreachable!(),
                };
                let sub_open = open_submits.contains(&id) && !decisions.contains_key(&id);
                let amend_open = amend_idx_by_id
                    .get(&id)
                    .is_some_and(|idx| !amend_replies.contains_key(idx));
                let route_to_amend = match (sub_open, amend_open) {
                    (true, false) => false,
                    (false, true) => true,
                    (true, true) => {
                        let idx = amend_idx_by_id[&id];
                        want_decisions.get(&id) != Some(&msg) && want_amends.get(&idx) == Some(&msg)
                    }
                    (false, false) => panic!("reply for {id}, which has nothing in flight"),
                };
                if route_to_amend {
                    let idx = amend_idx_by_id[&id];
                    amend_replies.insert(idx, msg);
                } else {
                    decisions.insert(id, msg);
                }
            }
            ServerMsg::CancelResult { .. } | ServerMsg::Draining { .. } => {}
            other => panic!("unexpected reply finishing the workload: {other:?}"),
        }
    }
    drop(client);
    assert_eq!(
        decisions, want_decisions,
        "TCP failover: decisions diverge from the uninterrupted run"
    );
    assert_eq!(
        amend_replies, want_amends,
        "TCP failover: amend outcomes diverge from the uninterrupted run"
    );

    replica.shutdown();
    let engine = Engine::try_spawn(config(follower_dir, 0, None))
        .expect("the promoted store must recover once more");
    let got_snap = export(&engine);
    engine.shutdown();
    assert_eq!(
        got_snap, want_snap,
        "TCP failover: final engine state diverges from the uninterrupted run"
    );
}

#[test]
fn auto_promotion_fires_after_primary_silence() {
    let follower_dir = Arc::new(MemDir::new());
    let replica = Replica::bind(
        ReplicaConfig {
            engine: config(follower_dir, 0, None),
            promote_after: Some(Duration::from_millis(200)),
        },
        "127.0.0.1:0",
        Some("127.0.0.1:0"),
    )
    .expect("replica binds");
    let deadline = Instant::now() + Duration::from_secs(10);
    while !replica.is_promoted() {
        assert!(Instant::now() < deadline, "auto-promotion never fired");
        std::thread::sleep(Duration::from_millis(10));
    }
    // The promoted daemon accepts submissions.
    let mut client = WireClient::connect(replica.client_addr().unwrap());
    client.send(&ClientMsg::Submit(SubmitReq {
        id: 1,
        ingress: 0,
        egress: 1,
        volume: 10.0,
        max_rate: 50.0,
        start: None,
        deadline: None,
        class: Default::default(),
        malleable: None,
    }));
    client.send(&ClientMsg::Drain);
    let mut decided = false;
    for _ in 0..2 {
        match client.recv() {
            ServerMsg::Accepted { id: 1, .. } => decided = true,
            ServerMsg::Rejected { id: 1, .. } => decided = true,
            ServerMsg::Draining { .. } => {}
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    assert!(
        decided,
        "submission to the auto-promoted daemon was decided"
    );
    replica.shutdown();
}
