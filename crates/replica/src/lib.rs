//! WAL-streaming replication: hot-standby followers with bit-identical
//! failover.
//!
//! The serve daemon's durability story ends at its own disk: the
//! write-ahead log survives a crash of the process, but not of the
//! machine. This crate extends it across machines. A primary-side
//! [`WalShipper`] tails the store directory — the same `GBWAL01` /
//! `GBSNAP1` files, the same generations — and streams snapshot-then-
//! records to a follower over a length-prefixed, CRC-checked protocol.
//! The follower writes an *identical* local store and replays every
//! record through the same engine-state code the primary's recovery
//! uses, so at any instant its standby state is the state a restarted
//! primary would recover to.
//!
//! Bit-identical is a claim, not a hope: the shipper interleaves
//! divergence beacons — hashes of the full engine snapshot at a store
//! position — and the follower verifies each one it is positioned for.
//! The replication equivalence suite kills the primary at every round
//! boundary (and inside torn records, and under dropped / duplicated /
//! reordered / truncated frames) and proves the promoted follower makes
//! exactly the decisions an uninterrupted primary would have made.
//!
//! Module map:
//! - [`proto`]: the framed wire protocol ([`ShipMsg`] / [`FollowerMsg`]).
//! - [`link`]: transport abstraction — [`TcpLink`] for real sockets,
//!   [`MemLink`] for tests, [`FaultLink`] for injected drops,
//!   duplicates, reorders, truncations, and partitions.
//! - [`shipper`]: primary side — sans-IO [`ShipperCore`] plus the
//!   threaded [`WalShipper`].
//! - [`follower`]: follower side — sans-IO [`FollowerCore`] plus the
//!   threaded [`Replica`] daemon with promotion.

pub mod follower;
pub mod link;
pub mod proto;
pub mod shipper;

pub use follower::{FollowerConfig, FollowerCore, Replica, ReplicaConfig};
pub use link::{FaultInjector, FaultLink, FaultPlan, Link, MemLink, Recv, TcpLink};
pub use proto::{
    decode_frame, encode_frame, FollowerMsg, FrameError, ShipMsg, REPL_PROTOCOL_VERSION,
};
pub use shipper::{ShipperConfig, ShipperCore, WalShipper};
