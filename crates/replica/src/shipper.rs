//! Primary-side WAL shipping.
//!
//! [`ShipperCore`] is the sans-IO protocol engine: it tails the
//! primary's store directory with a [`WalTail`], turns tail events into
//! [`ShipMsg`] frames, and repositions on follower feedback. It also
//! maintains its *own* [`EngineState`] mirror, replaying every record
//! it ships, purely to hash it into divergence beacons: the follower
//! replays the same bytes through the same code, so matching hashes
//! prove the standby is bit-identical — and a mismatch is caught within
//! one beacon interval instead of at failover.
//!
//! [`WalShipper`] is the threaded wrapper the daemon runs: it dials the
//! follower, speaks the handshake, pumps the tail, and reconnects with
//! exponential backoff when the link drops. When the store publishes a
//! [`DirSignal`](gridband_store::DirSignal) (both `FsDir` and `MemDir`
//! do), an idle session blocks on it and wakes the instant the engine
//! appends, instead of discovering new records on a fixed poll timer. The primary's engine never
//! waits on any of this — replication is asynchronous by design; the
//! `repl_synced` gauge tells operators (and the failover smoke test)
//! when the follower has caught up.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gridband_net::Topology;
use gridband_serve::{EngineState, MetricsRegistry, ReplayTally};
use gridband_store::wal::{parse_snapshot, scan_records, MAGIC_WAL, RECORD_HEADER};
use gridband_store::{
    crc32, snap_name, wal_name, Dir, EngineSnapshot, StoreError, StoreResult, TailEvent, WalRecord,
    WalTail,
};

use crate::link::{Link, Recv, TcpLink};
use crate::proto::{decode_frame, encode_frame, FollowerMsg, ShipMsg, REPL_PROTOCOL_VERSION};

/// What a shipper needs to know about the store it tails and the engine
/// whose state it mirrors.
#[derive(Debug, Clone)]
pub struct ShipperConfig {
    /// The primary's store directory (shared with its engine).
    pub dir: Arc<dyn Dir>,
    /// Topology of the mirrored engine (must match the follower's).
    pub topology: Topology,
    /// Admission interval `t_step` of the mirrored engine.
    pub step: f64,
    /// History bound of the mirrored engine; the beacon hash covers the
    /// decided-request history, so primary and follower must evict
    /// identically.
    pub history_capacity: usize,
    /// Emit a divergence beacon every this many shipped records
    /// (0 = only after snapshots).
    pub beacon_every: u64,
}

/// Sans-IO shipping state machine: feed it follower messages, drain the
/// ship messages it produces.
#[derive(Debug)]
pub struct ShipperCore {
    cfg: ShipperConfig,
    metrics: Arc<MetricsRegistry>,
    tail: WalTail,
    /// Mirror of the engine state implied by everything shipped so far;
    /// hashed into beacons.
    state: EngineState,
    next_seq: u64,
    subscribed: bool,
    /// Store position `(gen, offset)` right after the last shipped
    /// content frame; `None` until something ships.
    shipped: Option<(u64, u64)>,
    records_since_beacon: u64,
}

impl ShipperCore {
    /// A core tailing `cfg.dir`, reporting into `metrics`.
    pub fn new(cfg: ShipperConfig, metrics: Arc<MetricsRegistry>) -> ShipperCore {
        let tail = WalTail::new(cfg.dir.clone());
        let state = EngineState::new(cfg.topology.clone(), cfg.step, cfg.history_capacity);
        ShipperCore {
            cfg,
            metrics,
            tail,
            state,
            next_seq: 0,
            subscribed: false,
            shipped: None,
            records_since_beacon: 0,
        }
    }

    /// The handshake frame that opens every connection.
    pub fn hello(&self) -> ShipMsg {
        ShipMsg::Hello {
            protocol: REPL_PROTOCOL_VERSION,
            step: self.cfg.step,
        }
    }

    /// Whether the follower has subscribed on this connection.
    pub fn subscribed(&self) -> bool {
        self.subscribed
    }

    /// The position the shipper has shipped up to (falling back to the
    /// tail cursor before anything has shipped).
    pub fn position(&self) -> Option<(u64, u64)> {
        self.shipped
            .or_else(|| self.tail.cursor().map(|c| (c.gen, c.offset)))
    }

    fn next_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.metrics
            .repl_shipped_seq
            .store(self.next_seq, Ordering::Relaxed);
        self.next_seq
    }

    /// Decode and handle one raw frame off the link. Damage in the
    /// follower→primary direction is counted and skipped.
    pub fn handle_frame(&mut self, frame: &[u8]) -> StoreResult<Vec<ShipMsg>> {
        match decode_frame::<FollowerMsg>(frame) {
            Ok(msg) => self.handle(&msg),
            Err(_) => {
                MetricsRegistry::inc(&self.metrics.repl_frames_damaged);
                Ok(Vec::new())
            }
        }
    }

    /// Handle one follower message; returns frames to send back.
    pub fn handle(&mut self, msg: &FollowerMsg) -> StoreResult<Vec<ShipMsg>> {
        match *msg {
            FollowerMsg::Subscribe {
                protocol,
                gen,
                offset,
            } => {
                if protocol != REPL_PROTOCOL_VERSION {
                    return Err(StoreError::corrupt(
                        "repl",
                        0,
                        format!(
                            "follower speaks replication protocol {protocol}, \
                             this shipper speaks {REPL_PROTOCOL_VERSION}"
                        ),
                    ));
                }
                self.subscribed = true;
                self.reposition(gen, offset)?;
                self.pump()
            }
            FollowerMsg::Ack {
                seq,
                gen,
                offset,
                rounds: _,
            } => {
                self.metrics.repl_acked_seq.store(seq, Ordering::Relaxed);
                if self.position() == Some((gen, offset)) {
                    self.metrics.repl_synced.store(1, Ordering::Relaxed);
                }
                Ok(Vec::new())
            }
            FollowerMsg::Resync { gen, offset } => {
                self.reposition(gen, offset)?;
                self.pump()
            }
        }
    }

    /// Move the stream to the follower's position: resume exactly there
    /// when it is a record boundary the store still holds, else rewind
    /// and re-ship from the latest snapshot.
    fn reposition(&mut self, gen: u64, offset: u64) -> StoreResult<()> {
        if !self.try_resume(gen, offset)? {
            self.tail.rewind();
            self.state = EngineState::new(
                self.cfg.topology.clone(),
                self.cfg.step,
                self.cfg.history_capacity,
            );
            self.shipped = None;
            self.records_since_beacon = 0;
        }
        Ok(())
    }

    /// Resume at `(gen, offset)` if possible: the generation's files
    /// must still exist and the offset must be a record boundary within
    /// the valid prefix. Rebuilds the beacon mirror by replaying the
    /// records before the resume point.
    fn try_resume(&mut self, gen: u64, offset: u64) -> StoreResult<bool> {
        let wal_file = wal_name(gen);
        let Ok(data) = self.cfg.dir.read(&wal_file) else {
            return Ok(false);
        };
        if data.len() < MAGIC_WAL.len() || data[..MAGIC_WAL.len()] != MAGIC_WAL[..] {
            return Ok(false);
        }
        // Generations above 0 always open with a snapshot; without it
        // (swept, or a racing install) there is nothing to resume onto.
        let snap_payload = if gen == 0 {
            None
        } else {
            let file = snap_name(gen);
            match self.cfg.dir.read(&file) {
                Ok(d) => Some(parse_snapshot(&file, &d)?),
                Err(_) => return Ok(false),
            }
        };
        // Mid-log corruption in the primary's own store is fatal, not a
        // resume failure.
        let scan = scan_records(&wal_file, &data, MAGIC_WAL.len())?;
        let boundary = offset == MAGIC_WAL.len() as u64
            || offset == scan.valid_len
            || scan.records.iter().any(|(o, _)| *o == offset);
        if offset > scan.valid_len || !boundary {
            return Ok(false);
        }
        let mut state = EngineState::new(
            self.cfg.topology.clone(),
            self.cfg.step,
            self.cfg.history_capacity,
        );
        if let Some(payload) = snap_payload {
            let file = snap_name(gen);
            let snapshot = EngineSnapshot::decode(&file, &payload)?;
            state.restore(snapshot, &file)?;
        }
        let mut tally = ReplayTally::default();
        for (o, payload) in &scan.records {
            if *o >= offset {
                break;
            }
            let record = WalRecord::decode(&wal_file, *o, payload)?;
            state.apply(record, &wal_file, *o, &mut tally)?;
        }
        self.state = state;
        self.tail.seek(gen, offset);
        self.shipped = Some((gen, offset));
        self.records_since_beacon = 0;
        Ok(true)
    }

    /// Poll the tail and frame whatever appeared: snapshots, records,
    /// and the beacons due between them. Empty until subscribed.
    pub fn pump(&mut self) -> StoreResult<Vec<ShipMsg>> {
        if !self.subscribed {
            return Ok(Vec::new());
        }
        let events = self.tail.poll()?;
        let mut out = Vec::new();
        for event in events {
            match event {
                TailEvent::Snapshot { gen, payload } => {
                    let file = snap_name(gen);
                    let snapshot = EngineSnapshot::decode(&file, &payload)?;
                    let mut state = EngineState::new(
                        self.cfg.topology.clone(),
                        self.cfg.step,
                        self.cfg.history_capacity,
                    );
                    state.restore(snapshot, &file)?;
                    self.state = state;
                    let crc = crc32(&payload);
                    let text = String::from_utf8(payload).map_err(|_| {
                        StoreError::corrupt(&file, 0, "snapshot payload is not UTF-8")
                    })?;
                    let seq = self.next_seq();
                    out.push(ShipMsg::Snapshot {
                        seq,
                        gen,
                        crc,
                        payload: text,
                    });
                    self.shipped = Some((gen, MAGIC_WAL.len() as u64));
                    MetricsRegistry::inc(&self.metrics.repl_snapshots_shipped);
                    // A beacon right after the snapshot: the follower
                    // verifies the install before any records build on it.
                    out.push(self.beacon());
                }
                TailEvent::Record {
                    gen,
                    offset,
                    payload,
                } => {
                    let file = wal_name(gen);
                    let record = WalRecord::decode(&file, offset, &payload)?;
                    let mut tally = ReplayTally::default();
                    self.state.apply(record, &file, offset, &mut tally)?;
                    let framed = (RECORD_HEADER + payload.len()) as u64;
                    let crc = crc32(&payload);
                    let text = String::from_utf8(payload).map_err(|_| {
                        StoreError::corrupt(&file, offset, "record payload is not UTF-8")
                    })?;
                    let seq = self.next_seq();
                    out.push(ShipMsg::Record {
                        seq,
                        gen,
                        offset,
                        crc,
                        payload: text,
                    });
                    self.shipped = Some((gen, offset + framed));
                    MetricsRegistry::inc(&self.metrics.repl_records_shipped);
                    MetricsRegistry::add(&self.metrics.repl_bytes_shipped, framed);
                    self.records_since_beacon += 1;
                    if self.cfg.beacon_every > 0
                        && self.records_since_beacon >= self.cfg.beacon_every
                    {
                        out.push(self.beacon());
                    }
                }
            }
        }
        if !out.is_empty() {
            self.metrics.repl_synced.store(0, Ordering::Relaxed);
        }
        Ok(out)
    }

    /// A divergence beacon for the current shipped position.
    fn beacon(&mut self) -> ShipMsg {
        self.records_since_beacon = 0;
        let (gen, offset) = self.shipped.expect("beacons only follow shipped content");
        let state_crc = crc32(&self.state.export().encode());
        ShipMsg::Beacon {
            seq: self.next_seq(),
            gen,
            offset,
            rounds: self.state.rounds,
            state_crc,
        }
    }

    /// The idle-time frame: a heartbeat carrying the shipped position —
    /// or a fresh hello when the follower has not subscribed yet (the
    /// first hello may have been lost in transit).
    pub fn tick(&mut self) -> ShipMsg {
        if !self.subscribed {
            return self.hello();
        }
        match self.position() {
            Some((gen, offset)) => ShipMsg::Heartbeat {
                seq: self.next_seq(),
                gen,
                offset,
            },
            None => self.hello(),
        }
    }
}

/// How often the threaded shipper sends a heartbeat on an idle link.
const HEARTBEAT: Duration = Duration::from_millis(200);
/// Socket wait when follower traffic is expected (pre-subscription
/// frames, acks for in-flight content): the link itself wakes the loop,
/// so this only bounds how late a concurrent WAL append is noticed.
const SOCKET_POLL: Duration = Duration::from_millis(50);
/// Socket drain when the link is quiet and the loop is about to block
/// on the store's append signal instead.
const SOCKET_SKIM: Duration = Duration::from_millis(1);
/// Initial reconnect backoff; doubles per failed dial up to [`BACKOFF_MAX`].
const BACKOFF_MIN: Duration = Duration::from_millis(100);
/// Reconnect backoff ceiling.
const BACKOFF_MAX: Duration = Duration::from_secs(5);

enum SessionEnd {
    /// Link lost; dial again.
    Disconnected,
    /// The primary's own store is corrupt (or the peer speaks another
    /// protocol); retrying cannot help.
    Fatal,
}

/// The primary daemon's shipping thread: dials the follower's
/// replication address, reconnecting with backoff, until shut down.
pub struct WalShipper {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl WalShipper {
    /// Start shipping `cfg.dir` to the follower listening at `addr`.
    /// `metrics` is normally the primary engine's registry, so `Stats`
    /// reports replication progress alongside admission counters.
    pub fn spawn(cfg: ShipperConfig, addr: String, metrics: Arc<MetricsRegistry>) -> WalShipper {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = stop.clone();
        let thread = std::thread::spawn(move || ship_loop(cfg, addr, metrics, thread_stop));
        WalShipper {
            stop,
            thread: Some(thread),
        }
    }

    /// Stop the shipping thread and wait for it.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WalShipper {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn ship_loop(
    cfg: ShipperConfig,
    addr: String,
    metrics: Arc<MetricsRegistry>,
    stop: Arc<AtomicBool>,
) {
    let mut backoff = BACKOFF_MIN;
    while !stop.load(Ordering::Relaxed) {
        if let Ok(stream) = TcpStream::connect(&addr) {
            backoff = BACKOFF_MIN;
            let link = TcpLink::new(stream);
            match run_session(&cfg, link, &metrics, &stop) {
                SessionEnd::Disconnected => {}
                SessionEnd::Fatal => return,
            }
        }
        // Interruptible backoff sleep.
        let until = Instant::now() + backoff;
        while Instant::now() < until && !stop.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(20));
        }
        backoff = (backoff * 2).min(BACKOFF_MAX);
    }
}

fn run_session(
    cfg: &ShipperConfig,
    mut link: impl Link,
    metrics: &Arc<MetricsRegistry>,
    stop: &AtomicBool,
) -> SessionEnd {
    let mut core = ShipperCore::new(cfg.clone(), metrics.clone());
    let signal = cfg.dir.signal();
    if link.send(&encode_frame(&core.hello())).is_err() {
        return SessionEnd::Disconnected;
    }
    let mut last_sent = Instant::now();
    while !stop.load(Ordering::Relaxed) {
        // Sample the write sequence *before* draining the tail: an
        // append landing after this sample bumps the sequence past
        // `seen`, so the blocking wait below returns immediately — the
        // wakeup cannot be lost between the pump and the sleep.
        let seen = signal.map(|s| s.seq());
        // Decide what to sleep on this iteration. The follower acks
        // every content frame, so `acked < shipped` means a frame is due
        // on the socket any moment; before subscription the next event
        // is a socket frame too. In both cases the socket is the thing
        // to wait on. Once subscribed, drained, and fully acked, the
        // only possible next events are a WAL append (the dir signal)
        // and the heartbeat deadline — sleep on the condvar instead of
        // burning fixed poll cycles.
        let acked = metrics.repl_acked_seq.load(Ordering::Relaxed);
        let shipped = metrics.repl_shipped_seq.load(Ordering::Relaxed);
        let socket_bound = signal.is_none() || !core.subscribed() || acked < shipped;
        let recv_wait = if socket_bound {
            SOCKET_POLL
        } else {
            SOCKET_SKIM
        };
        let mut active = false;
        match link.recv(recv_wait) {
            Ok(Recv::Frame(frame)) => {
                active = true;
                match core.handle_frame(&frame) {
                    Ok(msgs) => {
                        for msg in &msgs {
                            if link.send(&encode_frame(msg)).is_err() {
                                return SessionEnd::Disconnected;
                            }
                            last_sent = Instant::now();
                        }
                    }
                    Err(e) => {
                        eprintln!("gridband-replica: shipping halted: {e}");
                        return SessionEnd::Fatal;
                    }
                }
            }
            Ok(Recv::Idle) => {}
            Ok(Recv::Closed) | Err(_) => return SessionEnd::Disconnected,
        }
        match core.pump() {
            Ok(msgs) => {
                if msgs.is_empty() {
                    if last_sent.elapsed() >= HEARTBEAT {
                        let msg = core.tick();
                        if link.send(&encode_frame(&msg)).is_err() {
                            return SessionEnd::Disconnected;
                        }
                        last_sent = Instant::now();
                        active = true;
                    }
                } else {
                    for msg in &msgs {
                        if link.send(&encode_frame(msg)).is_err() {
                            return SessionEnd::Disconnected;
                        }
                        last_sent = Instant::now();
                    }
                    active = true;
                }
            }
            Err(e) => {
                eprintln!("gridband-replica: shipping halted: {e}");
                return SessionEnd::Fatal;
            }
        }
        if active || socket_bound {
            continue;
        }
        if let (Some(sig), Some(seen)) = (signal, seen) {
            // Fully idle: sleep until the next append or until the
            // heartbeat is due, whichever comes first. A `stop` during
            // the wait is seen after at most one heartbeat interval.
            let wait = HEARTBEAT.saturating_sub(last_sent.elapsed());
            if !wait.is_zero() {
                sig.wait_past(seen, wait);
            }
        }
    }
    SessionEnd::Disconnected
}
