//! Replication wire protocol: framed, CRC-checked JSON messages.
//!
//! Every frame on a replication link reuses the store's WAL framing —
//! `[len: u32 LE][crc32: u32 LE][payload]` — with a JSON-serialized
//! message as the payload. The receiver re-verifies the CRC before
//! parsing, so a frame damaged in transit is classified (and counted)
//! as damage, never misapplied. Record and snapshot messages carry a
//! *second* CRC over the store payload itself: the bytes the follower
//! writes to its local WAL are verified independently of the envelope
//! that delivered them.
//!
//! Sequencing is two-level. Each frame carries a per-connection `seq`
//! (strictly increasing; the follower discards any frame at or below
//! the highest seq it has seen, which kills duplicates and reorders).
//! Content messages additionally carry the `(gen, offset)` store
//! position they apply at; the follower's own cursor — not the seq —
//! decides whether a record is applied, a duplicate, or a gap that
//! needs a [`FollowerMsg::Resync`].

use gridband_store::wal::{crc32, frame_record, MAX_RECORD, RECORD_HEADER};
use serde::{Deserialize, Serialize};

/// Version of the replication protocol spoken by this build. Checked in
/// the [`ShipMsg::Hello`] / [`FollowerMsg::Subscribe`] handshake; bump
/// on any wire-incompatible change.
///
/// v2: the shipped WAL stream gained the `Gc` record variant and
/// snapshots the ledger `watermark` field; a v1 follower would abort
/// mid-stream on the first sweep, so the handshake refuses the pairing
/// up front.
///
/// v3: malleable reservations — round records may carry segmented
/// `AcceptSegments`/`Amend` decisions and snapshots a `live_seg` table.
/// A v2 follower would abort on the first segmented grant, so the
/// handshake refuses the pairing up front.
pub const REPL_PROTOCOL_VERSION: u32 = 3;

/// Primary → follower messages.
///
/// Store payloads travel as `String` rather than raw bytes: WAL records
/// and snapshots are JSON text already, and the vendored serde has no
/// byte-array representation that round-trips more compactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ShipMsg {
    /// First frame of every connection: what the shipper speaks.
    Hello {
        /// Replication protocol version ([`REPL_PROTOCOL_VERSION`]).
        protocol: u32,
        /// The primary engine's `t_step`; a follower configured with a
        /// different step would replay a different round schedule, so a
        /// mismatch aborts the session instead of diverging later.
        step: f64,
    },
    /// A snapshot opening generation `gen`: the follower installs it
    /// (replacing everything it holds) before any of that generation's
    /// records.
    Snapshot {
        /// Per-connection frame sequence number.
        seq: u64,
        /// Generation the snapshot opens.
        gen: u64,
        /// CRC32 of the snapshot payload bytes.
        crc: u32,
        /// The snapshot payload (JSON text, as stored).
        payload: String,
    },
    /// One WAL record, shipped byte-for-byte.
    Record {
        /// Per-connection frame sequence number.
        seq: u64,
        /// Generation of the WAL holding the record.
        gen: u64,
        /// Byte offset of the record's header in `wal-<gen>` — the
        /// follower applies it only when this equals its own cursor.
        offset: u64,
        /// CRC32 of the record payload bytes.
        crc: u32,
        /// The record payload (JSON text, as stored).
        payload: String,
    },
    /// Divergence check: a hash of the shipper's mirrored engine state
    /// at a store position. A follower at the same position must hash
    /// to the same value or the stream is corrupt.
    Beacon {
        /// Per-connection frame sequence number.
        seq: u64,
        /// Generation of the position the beacon describes.
        gen: u64,
        /// WAL offset *after* the last shipped record.
        offset: u64,
        /// Rounds the mirrored engine state has executed.
        rounds: u64,
        /// CRC32 of the mirrored state's encoded [`EngineSnapshot`].
        ///
        /// [`EngineSnapshot`]: gridband_store::EngineSnapshot
        state_crc: u32,
    },
    /// Idle keep-alive carrying the shipper's position, so a follower
    /// that missed frames can notice the gap and ask for a resync.
    Heartbeat {
        /// Per-connection frame sequence number.
        seq: u64,
        /// Generation of the shipper's position.
        gen: u64,
        /// WAL offset of the shipper's position.
        offset: u64,
    },
}

/// Follower → primary messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FollowerMsg {
    /// Reply to [`ShipMsg::Hello`]: where the follower's local store
    /// ends, i.e. where shipping should resume.
    Subscribe {
        /// Replication protocol version the follower speaks.
        protocol: u32,
        /// Generation of the follower's local store.
        gen: u64,
        /// Length of the follower's local `wal-<gen>` (its cursor).
        offset: u64,
    },
    /// Progress report: the highest frame seq seen and the follower's
    /// store position after applying it.
    Ack {
        /// Highest frame sequence number received on this connection.
        seq: u64,
        /// Generation of the follower's position.
        gen: u64,
        /// WAL offset of the follower's position.
        offset: u64,
        /// Rounds the follower's standby state has executed.
        rounds: u64,
    },
    /// The follower detected a gap (a frame it needed never arrived):
    /// re-ship everything from this position.
    Resync {
        /// Generation to resume from.
        gen: u64,
        /// WAL offset to resume from.
        offset: u64,
    },
}

/// Why an incoming frame could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The frame is shorter than its header claims, its CRC does not
    /// match, or the payload fails to parse: transit damage.
    Damaged(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Damaged(why) => write!(f, "damaged frame: {why}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Frame a message for the wire: `[len][crc][json]`, same layout as a
/// store WAL record.
pub fn encode_frame<T: Serialize>(msg: &T) -> Vec<u8> {
    let json = serde_json::to_string(msg).expect("replication message serialization is infallible");
    frame_record(json.as_bytes())
}

/// Verify and parse one whole frame (header included).
pub fn decode_frame<T: Deserialize>(frame: &[u8]) -> Result<T, FrameError> {
    if frame.len() < RECORD_HEADER {
        return Err(FrameError::Damaged(format!(
            "{} bytes is shorter than the frame header",
            frame.len()
        )));
    }
    let len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
    let want_crc = u32::from_le_bytes(frame[4..8].try_into().unwrap());
    if len > MAX_RECORD as usize {
        return Err(FrameError::Damaged(format!(
            "declared length {len} exceeds the record bound"
        )));
    }
    if frame.len() != RECORD_HEADER + len {
        return Err(FrameError::Damaged(format!(
            "frame is {} bytes, header declares {}",
            frame.len(),
            RECORD_HEADER + len
        )));
    }
    let payload = &frame[RECORD_HEADER..];
    if crc32(payload) != want_crc {
        return Err(FrameError::Damaged("payload checksum mismatch".to_string()));
    }
    let text = std::str::from_utf8(payload)
        .map_err(|_| FrameError::Damaged("payload is not UTF-8".to_string()))?;
    serde_json::from_str(text)
        .map_err(|e| FrameError::Damaged(format!("payload does not parse: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ship_messages_round_trip_through_frames() {
        let msgs = vec![
            ShipMsg::Hello {
                protocol: REPL_PROTOCOL_VERSION,
                step: 10.0,
            },
            ShipMsg::Snapshot {
                seq: 1,
                gen: 2,
                crc: 0xDEAD_BEEF,
                payload: "{\"state\":1}".to_string(),
            },
            ShipMsg::Record {
                seq: 2,
                gen: 2,
                offset: 8,
                crc: 7,
                payload: "{\"Round\":{}}".to_string(),
            },
            ShipMsg::Beacon {
                seq: 3,
                gen: 2,
                offset: 40,
                rounds: 5,
                state_crc: 123,
            },
            ShipMsg::Heartbeat {
                seq: 4,
                gen: 2,
                offset: 40,
            },
        ];
        for msg in msgs {
            let frame = encode_frame(&msg);
            let back: ShipMsg = decode_frame(&frame).expect("decode own frame");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn follower_messages_round_trip_through_frames() {
        let msgs = vec![
            FollowerMsg::Subscribe {
                protocol: REPL_PROTOCOL_VERSION,
                gen: 0,
                offset: 8,
            },
            FollowerMsg::Ack {
                seq: 9,
                gen: 1,
                offset: 90,
                rounds: 4,
            },
            FollowerMsg::Resync { gen: 1, offset: 8 },
        ];
        for msg in msgs {
            let frame = encode_frame(&msg);
            let back: FollowerMsg = decode_frame(&frame).expect("decode own frame");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn damage_is_detected_not_misparsed() {
        let frame = encode_frame(&ShipMsg::Heartbeat {
            seq: 1,
            gen: 0,
            offset: 8,
        });
        // Truncated frame.
        assert!(matches!(
            decode_frame::<ShipMsg>(&frame[..frame.len() / 2]),
            Err(FrameError::Damaged(_))
        ));
        // Flipped payload bit: CRC catches it.
        let mut bad = frame.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(
            decode_frame::<ShipMsg>(&bad),
            Err(FrameError::Damaged(_))
        ));
        // Header shorter than 8 bytes.
        assert!(matches!(
            decode_frame::<ShipMsg>(&frame[..5]),
            Err(FrameError::Damaged(_))
        ));
        // Absurd declared length.
        let mut huge = frame;
        huge[0..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            decode_frame::<ShipMsg>(&huge),
            Err(FrameError::Damaged(_))
        ));
    }
}
