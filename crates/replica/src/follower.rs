//! Follower-side replication: the hot standby.
//!
//! [`FollowerCore`] is the sans-IO state machine. It keeps a local store
//! directory byte-identical to the primary's durable prefix — every
//! shipped record is CRC-verified and appended with the exact same
//! framing the primary wrote, every snapshot installed with the same
//! `replace`-then-reset sequence `Store` itself uses — and replays each
//! record through the shared [`EngineState`] code so the standby's
//! in-memory state tracks the primary round for round. Beacons from the
//! primary are checked against a hash of the local state whenever the
//! positions line up; a mismatch is counted as divergence and kills the
//! stream rather than letting a corrupt standby be promoted later.
//!
//! [`Replica`] is the threaded daemon: a replication listener the
//! primary dials, an optional client listener serving read-only
//! `Query`/`Stats`, and a promotion path — explicit `Promote` command or
//! primary-silence timeout — that drops the follower, re-opens the local
//! store through the ordinary [`Engine`] recovery path, and starts
//! accepting submissions at the exact round the primary last logged.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender};
use gridband_net::Topology;
use gridband_serve::engine::Command;
use gridband_serve::protocol::{decode_client, encode_server, ReqState};
use gridband_serve::{
    ClientMsg, Engine, EngineConfig, EngineState, MetricsRegistry, RejectReason, ReplayTally, Role,
    ServerMsg,
};
use gridband_store::wal::{frame_record, MAGIC_SNAP, MAGIC_WAL, RECORD_HEADER};
use gridband_store::{
    crc32, snap_name, wal_name, Dir, EngineSnapshot, FsyncPolicy, Store, StoreError, StoreResult,
    WalRecord,
};

use crate::link::{Link, Recv, TcpLink};
use crate::proto::{decode_frame, encode_frame, FollowerMsg, ShipMsg, REPL_PROTOCOL_VERSION};

/// What a follower needs to mirror the primary's store and state.
#[derive(Debug, Clone)]
pub struct FollowerConfig {
    /// The follower's local store directory.
    pub dir: Arc<dyn Dir>,
    /// Topology of the standby engine state (must match the primary's).
    pub topology: Topology,
    /// Admission interval `t_step`; checked against the primary's hello.
    pub step: f64,
    /// History bound of the standby state; must match the primary's so
    /// beacon hashes cover the same decided-request window.
    pub history_capacity: usize,
    /// Durability of mirrored writes. `Round` fsyncs after every applied
    /// record, mirroring the primary's per-round policy.
    pub fsync: FsyncPolicy,
}

/// Sans-IO follower state machine: feed it ship messages, drain the
/// replies (acks and resync requests) it produces.
#[derive(Debug)]
pub struct FollowerCore {
    cfg: FollowerConfig,
    metrics: Arc<MetricsRegistry>,
    /// Generation of the local store.
    gen: u64,
    /// Byte length of the local `wal-<gen>` — the apply cursor.
    offset: u64,
    /// Standby engine state, replayed record by record.
    state: EngineState,
    /// Highest frame seq seen on the current connection.
    max_seq: u64,
    /// Whether the current connection has completed the handshake.
    hello_seen: bool,
    /// Cursor position of the last `Resync` sent. A burst of ahead
    /// frames (everything after one lost record) must produce one
    /// resync, not one per frame — each would make the shipper re-pump
    /// the whole remainder, and the volume compounds. Cleared when the
    /// cursor advances or a heartbeat probes.
    last_resync: Option<(u64, u64)>,
}

impl FollowerCore {
    /// Open (or create) the local store, replay whatever it holds into a
    /// standby state, and position the cursor at the end of the local
    /// WAL. Torn tails are truncated by the store's own recovery, so the
    /// cursor always lands on a record boundary.
    pub fn open(cfg: FollowerConfig, metrics: Arc<MetricsRegistry>) -> StoreResult<FollowerCore> {
        let (_store, recovered) = Store::open(cfg.dir.clone(), FsyncPolicy::Off)?;
        let gen = recovered.gen;
        let mut state = EngineState::new(cfg.topology.clone(), cfg.step, cfg.history_capacity);
        if let Some(payload) = &recovered.snapshot {
            let file = snap_name(gen);
            let snapshot = EngineSnapshot::decode(&file, payload)?;
            state.restore(snapshot, &file)?;
        }
        let wal_file = wal_name(gen);
        let mut offset = MAGIC_WAL.len() as u64;
        let mut tally = ReplayTally::default();
        for (o, payload) in &recovered.records {
            let record = WalRecord::decode(&wal_file, *o, payload)?;
            state.apply(record, &wal_file, *o, &mut tally)?;
            offset = *o + (RECORD_HEADER + payload.len()) as u64;
        }
        Ok(FollowerCore {
            cfg,
            metrics,
            gen,
            offset,
            state,
            max_seq: 0,
            hello_seen: false,
            last_resync: None,
        })
    }

    /// The follower's store position `(gen, offset)`.
    pub fn cursor(&self) -> (u64, u64) {
        (self.gen, self.offset)
    }

    /// Rounds the standby state has executed.
    pub fn rounds(&self) -> u64 {
        self.state.rounds
    }

    /// Virtual time of the standby state.
    pub fn now(&self) -> f64 {
        self.state.now
    }

    /// Live reservations in the standby ledger.
    pub fn live_count(&self) -> u64 {
        self.state.ledger.live_count() as u64
    }

    /// Lifecycle state of a request id, as the standby knows it.
    pub fn state_of(&self, id: u64) -> Option<ReqState> {
        self.state.state_of(id)
    }

    /// Live allocation of an accepted request, as the standby knows it.
    pub fn alloc_of(&self, id: u64) -> Option<(f64, f64, f64)> {
        self.state.alloc_of(id)
    }

    /// Export the standby state (for equivalence checks).
    pub fn export(&self) -> EngineSnapshot {
        self.state.export()
    }

    /// Reset per-connection protocol state. Call when the primary
    /// (re)connects: each connection numbers its frames from 1.
    pub fn reset_session(&mut self) {
        self.max_seq = 0;
        self.hello_seen = false;
        self.last_resync = None;
    }

    /// The subscribe message answering a hello: where our store ends.
    pub fn subscribe_msg(&self) -> FollowerMsg {
        FollowerMsg::Subscribe {
            protocol: REPL_PROTOCOL_VERSION,
            gen: self.gen,
            offset: self.offset,
        }
    }

    fn ack(&self) -> FollowerMsg {
        FollowerMsg::Ack {
            seq: self.max_seq,
            gen: self.gen,
            offset: self.offset,
            rounds: self.state.rounds,
        }
    }

    /// Request a resync at the current cursor — unless one is already
    /// outstanding for this exact position (`force` overrides, for
    /// heartbeat probes: if the first request's reshipments were all
    /// lost, the periodic heartbeat is what retries).
    fn resync(&mut self, force: bool) -> Vec<FollowerMsg> {
        let cursor = self.cursor();
        if !force && self.last_resync == Some(cursor) {
            return Vec::new();
        }
        self.last_resync = Some(cursor);
        MetricsRegistry::inc(&self.metrics.repl_resyncs);
        vec![FollowerMsg::Resync {
            gen: cursor.0,
            offset: cursor.1,
        }]
    }

    /// Decode and handle one raw frame off the link. Transit damage is
    /// counted and dropped; the seq guard never sees a damaged frame, so
    /// the intact retransmission (or a resync) still applies.
    pub fn handle_frame(&mut self, frame: &[u8]) -> StoreResult<Vec<FollowerMsg>> {
        match decode_frame::<ShipMsg>(frame) {
            Ok(msg) => self.handle(msg),
            Err(_) => {
                MetricsRegistry::inc(&self.metrics.repl_frames_damaged);
                Ok(Vec::new())
            }
        }
    }

    /// Handle one primary message; returns frames to send back. An error
    /// means the stream must drop: local store trouble, a protocol
    /// mismatch, or a divergence beacon.
    pub fn handle(&mut self, msg: ShipMsg) -> StoreResult<Vec<FollowerMsg>> {
        // Level one: the per-connection seq guard kills duplicates and
        // reordered stragglers outright.
        match &msg {
            ShipMsg::Hello { .. } => {}
            ShipMsg::Snapshot { seq, .. }
            | ShipMsg::Record { seq, .. }
            | ShipMsg::Beacon { seq, .. }
            | ShipMsg::Heartbeat { seq, .. } => {
                if *seq <= self.max_seq || !self.hello_seen {
                    MetricsRegistry::inc(&self.metrics.repl_frames_discarded);
                    return Ok(Vec::new());
                }
                self.max_seq = *seq;
            }
        }
        // Level two: the content cursor decides what actually applies.
        match msg {
            ShipMsg::Hello { protocol, step } => {
                if protocol != REPL_PROTOCOL_VERSION {
                    return Err(StoreError::corrupt(
                        "repl",
                        0,
                        format!(
                            "primary speaks replication protocol {protocol}, \
                             this follower speaks {REPL_PROTOCOL_VERSION}"
                        ),
                    ));
                }
                if step != self.cfg.step {
                    return Err(StoreError::corrupt(
                        "repl",
                        0,
                        format!(
                            "primary admission step is {step}, follower configured with {}; \
                             replaying a different round schedule would diverge",
                            self.cfg.step
                        ),
                    ));
                }
                self.hello_seen = true;
                self.max_seq = 0;
                Ok(vec![self.subscribe_msg()])
            }
            ShipMsg::Snapshot {
                seq: _,
                gen,
                crc,
                payload,
            } => {
                let bytes = payload.into_bytes();
                if crc32(&bytes) != crc {
                    MetricsRegistry::inc(&self.metrics.repl_frames_damaged);
                    return Ok(Vec::new());
                }
                if gen <= self.gen {
                    // A snapshot we already hold (or older): duplicate.
                    MetricsRegistry::inc(&self.metrics.repl_frames_discarded);
                    return Ok(vec![self.ack()]);
                }
                self.install_snapshot(gen, &bytes)?;
                Ok(vec![self.ack()])
            }
            ShipMsg::Record {
                seq: _,
                gen,
                offset,
                crc,
                payload,
            } => {
                let bytes = payload.into_bytes();
                if crc32(&bytes) != crc {
                    MetricsRegistry::inc(&self.metrics.repl_frames_damaged);
                    return Ok(Vec::new());
                }
                if gen < self.gen || (gen == self.gen && offset < self.offset) {
                    MetricsRegistry::inc(&self.metrics.repl_frames_discarded);
                    return Ok(vec![self.ack()]);
                }
                if gen > self.gen || offset > self.offset {
                    // A gap: a frame between here and there never made it.
                    return Ok(self.resync(false));
                }
                self.apply_record(&bytes)?;
                Ok(vec![self.ack()])
            }
            ShipMsg::Beacon {
                seq: _,
                gen,
                offset,
                rounds: _,
                state_crc,
            } => {
                if (gen, offset) == (self.gen, self.offset) {
                    MetricsRegistry::inc(&self.metrics.repl_beacons_checked);
                    let ours = crc32(&self.state.export().encode());
                    if ours != state_crc {
                        MetricsRegistry::inc(&self.metrics.repl_divergence);
                        eprintln!(
                            "gridband-replica: DIVERGENCE at gen {gen} offset {offset}: \
                             primary state hash {state_crc:#010x}, local {ours:#010x}"
                        );
                        return Err(StoreError::corrupt(
                            &wal_name(gen),
                            offset,
                            "standby state diverged from primary beacon",
                        ));
                    }
                    Ok(vec![self.ack()])
                } else if gen > self.gen || (gen == self.gen && offset > self.offset) {
                    Ok(self.resync(false))
                } else {
                    MetricsRegistry::inc(&self.metrics.repl_frames_discarded);
                    Ok(vec![self.ack()])
                }
            }
            ShipMsg::Heartbeat {
                seq: _,
                gen,
                offset,
            } => {
                if gen > self.gen || (gen == self.gen && offset > self.offset) {
                    Ok(self.resync(true))
                } else {
                    Ok(vec![self.ack()])
                }
            }
        }
    }

    /// Install a shipped snapshot, mirroring the store's own sequence:
    /// durable snapshot first, then a fresh WAL, then sweep our old
    /// generation.
    fn install_snapshot(&mut self, gen: u64, payload: &[u8]) -> StoreResult<()> {
        let snap_file = snap_name(gen);
        let snapshot = EngineSnapshot::decode(&snap_file, payload)?;
        let mut state = EngineState::new(
            self.cfg.topology.clone(),
            self.cfg.step,
            self.cfg.history_capacity,
        );
        state.restore(snapshot, &snap_file)?;
        let mut snap_bytes = MAGIC_SNAP.to_vec();
        snap_bytes.extend_from_slice(&frame_record(payload));
        self.cfg
            .dir
            .replace(&snap_file, &snap_bytes)
            .map_err(|e| StoreError::io(&snap_file, e))?;
        let wal_file = wal_name(gen);
        self.cfg
            .dir
            .replace(&wal_file, MAGIC_WAL)
            .map_err(|e| StoreError::io(&wal_file, e))?;
        let old = self.gen;
        if old != gen {
            let _ = self.cfg.dir.remove(&wal_name(old));
            let _ = self.cfg.dir.remove(&snap_name(old));
        }
        self.gen = gen;
        self.offset = MAGIC_WAL.len() as u64;
        self.state = state;
        MetricsRegistry::inc(&self.metrics.repl_snapshots_applied);
        Ok(())
    }

    /// Append one verified record to the local WAL — byte-identical to
    /// the primary's framing — and replay it into the standby state.
    fn apply_record(&mut self, payload: &[u8]) -> StoreResult<()> {
        let file = wal_name(self.gen);
        let record = WalRecord::decode(&file, self.offset, payload)?;
        let framed = frame_record(payload);
        self.cfg
            .dir
            .append(&file, &framed)
            .map_err(|e| StoreError::io(&file, e))?;
        if !matches!(self.cfg.fsync, FsyncPolicy::Off) {
            self.cfg
                .dir
                .sync(&file)
                .map_err(|e| StoreError::io(&file, e))?;
        }
        let mut tally = ReplayTally::default();
        self.state.apply(record, &file, self.offset, &mut tally)?;
        self.offset += framed.len() as u64;
        MetricsRegistry::inc(&self.metrics.repl_records_applied);
        MetricsRegistry::add(&self.metrics.repl_bytes_applied, framed.len() as u64);
        Ok(())
    }
}

/// Configuration of a [`Replica`] daemon.
#[derive(Clone)]
pub struct ReplicaConfig {
    /// The engine the follower becomes when promoted. `store` must be
    /// set — a replica without a local store has nothing to replicate
    /// into. Topology, step, and history bounds also parameterize the
    /// standby state while following.
    pub engine: EngineConfig,
    /// Promote automatically after this much primary silence (measured
    /// from the last replication frame, or from startup if the primary
    /// never connected). `None` waits for an explicit `Promote`.
    pub promote_after: Option<Duration>,
}

/// Which side of failover the daemon is on.
enum Mode {
    /// Still following: the standby core, fed by the replication listener.
    Following(Box<FollowerCore>),
    /// Promoted: a real engine over the local store.
    Promoted { engine: Engine, rounds: u64 },
    /// Promotion was attempted and failed; the daemon can only report
    /// errors.
    Failed(String),
}

struct Shared {
    cfg: ReplicaConfig,
    metrics: Arc<MetricsRegistry>,
    mode: Mutex<Mode>,
    stop: AtomicBool,
    /// Instant of the last replication frame (or startup).
    last_frame: Mutex<Instant>,
}

/// Read timeout on client connections; bounds how long a connection
/// thread lingers after shutdown.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_millis(500);
/// Longest client request line accepted, mirroring the serve daemon.
const MAX_LINE_LEN: usize = 64 * 1024;
/// Client reply queue bound per connection.
const REPLY_CAPACITY: usize = 1024;

/// The hot-standby daemon.
pub struct Replica {
    shared: Arc<Shared>,
    repl_addr: SocketAddr,
    client_addr: Option<SocketAddr>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Replica {
    /// Bind the replication listener (and, when `client_addr` is given,
    /// the read-only client listener), open the local store, and start
    /// following.
    pub fn bind(
        cfg: ReplicaConfig,
        repl_addr: &str,
        client_addr: Option<&str>,
    ) -> std::io::Result<Replica> {
        let Some(store_cfg) = cfg.engine.store.clone() else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a replica needs a store: set EngineConfig::store",
            ));
        };
        let metrics = Arc::new(MetricsRegistry::new());
        metrics.set_role(Role::Follower);
        let follower_cfg = FollowerConfig {
            dir: store_cfg.dir,
            topology: cfg.engine.topology.clone(),
            step: cfg.engine.step,
            history_capacity: cfg.engine.history_capacity,
            fsync: store_cfg.fsync,
        };
        let core = FollowerCore::open(follower_cfg, metrics.clone())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let repl_listener = TcpListener::bind(repl_addr)?;
        let repl_local = repl_listener.local_addr()?;
        let client_listener = match client_addr {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        let client_local = match &client_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let shared = Arc::new(Shared {
            cfg,
            metrics,
            mode: Mutex::new(Mode::Following(Box::new(core))),
            stop: AtomicBool::new(false),
            last_frame: Mutex::new(Instant::now()),
        });
        let mut threads = Vec::new();
        {
            let shared = shared.clone();
            threads.push(std::thread::spawn(move || {
                repl_accept_loop(repl_listener, shared)
            }));
        }
        if let Some(listener) = client_listener {
            let shared = shared.clone();
            threads.push(std::thread::spawn(move || {
                client_accept_loop(listener, shared)
            }));
        }
        if let Some(after) = shared.cfg.promote_after {
            let shared = shared.clone();
            threads.push(std::thread::spawn(move || promote_timer(shared, after)));
        }
        Ok(Replica {
            shared,
            repl_addr: repl_local,
            client_addr: client_local,
            threads: Vec::from_iter(threads),
        })
    }

    /// Address of the replication listener.
    pub fn repl_addr(&self) -> SocketAddr {
        self.repl_addr
    }

    /// Address of the client listener, when one was requested.
    pub fn client_addr(&self) -> Option<SocketAddr> {
        self.client_addr
    }

    /// The replica's metrics registry.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        self.shared.metrics.clone()
    }

    /// Whether the replica has been promoted to primary.
    pub fn is_promoted(&self) -> bool {
        matches!(&*self.shared.mode.lock().unwrap(), Mode::Promoted { .. })
    }

    /// Promote now. Idempotent: repeated calls return the rounds the
    /// engine resumed at the first time.
    pub fn promote(&self) -> Result<u64, String> {
        let mut mode = self.shared.mode.lock().unwrap();
        promote_locked(&self.shared, &mut mode)
    }

    /// Block until the daemon is shut down (for CLI use).
    pub fn run(mut self) {
        let threads = std::mem::take(&mut self.threads);
        for t in threads {
            let _ = t.join();
        }
    }

    /// Stop all threads, close listeners, and shut down the promoted
    /// engine if there is one.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        // Nudge the blocking accept loops awake.
        let _ = TcpStream::connect(self.repl_addr);
        if let Some(addr) = self.client_addr {
            let _ = TcpStream::connect(addr);
        }
        let threads = std::mem::take(&mut self.threads);
        for t in threads {
            let _ = t.join();
        }
        let mut mode = self.shared.mode.lock().unwrap();
        if let Mode::Promoted { engine, rounds } =
            std::mem::replace(&mut *mode, Mode::Failed("shut down".to_string()))
        {
            drop(mode);
            let _ = rounds;
            engine.shutdown();
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.repl_addr);
        if let Some(addr) = self.client_addr {
            let _ = TcpStream::connect(addr);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Promote with the mode lock held: capture the standby's round count,
/// drop the follower, and re-open the store through the ordinary engine
/// recovery path. The promoted engine accepts submissions from the exact
/// round the primary last logged.
fn promote_locked(shared: &Shared, mode: &mut Mode) -> Result<u64, String> {
    match mode {
        Mode::Promoted { rounds, .. } => Ok(*rounds),
        Mode::Failed(why) => Err(why.clone()),
        Mode::Following(core) => {
            let rounds = core.rounds();
            let mut ecfg = shared.cfg.engine.clone();
            ecfg.role = Role::Primary;
            match Engine::try_spawn(ecfg) {
                Ok(engine) => {
                    shared.metrics.set_role(Role::Primary);
                    *mode = Mode::Promoted { engine, rounds };
                    Ok(rounds)
                }
                Err(e) => {
                    let why = format!("promotion failed: {e}");
                    eprintln!("gridband-replica: {why}");
                    *mode = Mode::Failed(why.clone());
                    Err(why)
                }
            }
        }
    }
}

fn promote_timer(shared: Arc<Shared>, after: Duration) {
    while !shared.stop.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(50));
        let mut mode = shared.mode.lock().unwrap();
        if !matches!(&*mode, Mode::Following(_)) {
            return;
        }
        let silent = shared.last_frame.lock().unwrap().elapsed();
        if silent >= after {
            eprintln!(
                "gridband-replica: no primary frames for {:.1}s, promoting",
                silent.as_secs_f64()
            );
            let _ = promote_locked(&shared, &mut mode);
            return;
        }
    }
}

/// Accept loop for the replication listener. One primary at a time:
/// connections are served sequentially, and each new connection starts a
/// fresh protocol session.
fn repl_accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        if let Ok(stream) = stream {
            serve_primary(stream, &shared);
        }
    }
}

fn serve_primary(stream: TcpStream, shared: &Arc<Shared>) {
    let mut link = TcpLink::new(stream);
    {
        let mut mode = shared.mode.lock().unwrap();
        match &mut *mode {
            Mode::Following(core) => core.reset_session(),
            // Promoted (or failed): no longer a follower; refuse the
            // stream by dropping it.
            _ => return,
        }
    }
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        match link.recv(Duration::from_millis(100)) {
            Ok(Recv::Frame(frame)) => {
                *shared.last_frame.lock().unwrap() = Instant::now();
                let replies = {
                    let mut mode = shared.mode.lock().unwrap();
                    let Mode::Following(core) = &mut *mode else {
                        return;
                    };
                    match core.handle_frame(&frame) {
                        Ok(replies) => replies,
                        Err(e) => {
                            eprintln!("gridband-replica: dropping replication stream: {e}");
                            return;
                        }
                    }
                };
                for reply in &replies {
                    if link.send(&encode_frame(reply)).is_err() {
                        return;
                    }
                }
            }
            Ok(Recv::Idle) => {}
            Ok(Recv::Closed) | Err(_) => return,
        }
    }
}

/// Accept loop for the read-only client listener. Connections are
/// served by detached threads (they exit within the read timeout after
/// shutdown).
fn client_accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        if let Ok(stream) = stream {
            let shared = shared.clone();
            std::thread::spawn(move || serve_client(stream, shared));
        }
    }
}

fn serve_client(stream: TcpStream, shared: Arc<Shared>) {
    MetricsRegistry::inc(&shared.metrics.connections);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // Same shape as the serve daemon: replies flow through a bounded
    // queue drained by a writer thread, so a slow reader never blocks
    // frame handling.
    let (reply_tx, reply_rx) = channel::bounded::<ServerMsg>(REPLY_CAPACITY);
    let writer = std::thread::spawn(move || client_writer(write_half, reply_rx));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        line.clear();
        match read_line_bounded(&mut reader, &mut line, &shared) {
            LineRead::Line => {}
            LineRead::Closed => break,
            LineRead::TooLong => {
                MetricsRegistry::inc(&shared.metrics.protocol_errors);
                let _ = reply_tx.send(ServerMsg::Error {
                    code: "line-too-long".to_string(),
                    message: format!("request lines are limited to {MAX_LINE_LEN} bytes"),
                });
                break;
            }
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match decode_client(trimmed) {
            Ok(msg) => {
                if !dispatch(&shared, msg, &reply_tx) {
                    break;
                }
            }
            Err(err_reply) => {
                MetricsRegistry::inc(&shared.metrics.protocol_errors);
                let _ = reply_tx.send(err_reply);
            }
        }
    }
    drop(reply_tx);
    let _ = writer.join();
}

enum LineRead {
    Line,
    Closed,
    TooLong,
}

/// Read one line with the connection's read timeout, preserving partial
/// data across timeouts so shutdown checks don't corrupt the stream.
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    shared: &Shared,
) -> LineRead {
    loop {
        match reader.read_line(line) {
            Ok(0) => return LineRead::Closed,
            Ok(_) => {
                if line.len() > MAX_LINE_LEN {
                    return LineRead::TooLong;
                }
                return LineRead::Line;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.stop.load(Ordering::Relaxed) {
                    return LineRead::Closed;
                }
                if line.len() > MAX_LINE_LEN {
                    return LineRead::TooLong;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return LineRead::Closed,
        }
    }
}

fn client_writer(mut stream: TcpStream, replies: Receiver<ServerMsg>) {
    let mut buf = Vec::new();
    loop {
        let msg = match replies.recv_timeout(Duration::from_millis(200)) {
            Ok(msg) => Some(msg),
            Err(channel::RecvTimeoutError::Timeout) => None,
            Err(channel::RecvTimeoutError::Disconnected) => break,
        };
        if let Some(msg) = &msg {
            buf.extend_from_slice(encode_server(msg).as_bytes());
            buf.push(b'\n');
        }
        if !buf.is_empty() && (replies.is_empty() || msg.is_none()) {
            if stream.write_all(&buf).is_err() {
                return;
            }
            buf.clear();
        }
    }
    if !buf.is_empty() {
        let _ = stream.write_all(&buf);
    }
    let _ = stream.flush();
}

/// Handle one client request. Returns `false` to close the connection.
fn dispatch(shared: &Arc<Shared>, msg: ClientMsg, reply_tx: &Sender<ServerMsg>) -> bool {
    // Promote is the replica's own command in every mode: idempotent
    // once promoted, never forwarded to the engine (which would refuse
    // it as `not-follower`).
    if matches!(msg, ClientMsg::Promote) {
        let reply = {
            let mut mode = shared.mode.lock().unwrap();
            match promote_locked(shared, &mut mode) {
                Ok(rounds) => ServerMsg::Promoted { rounds },
                Err(why) => ServerMsg::Error {
                    code: "promotion-failed".to_string(),
                    message: why,
                },
            }
        };
        return reply_tx.send(reply).is_ok();
    }
    // Everything else depends on the mode. Engine forwarding must not
    // hold the mode lock, so grab what we need and drop it.
    enum Route {
        Reply(Box<ServerMsg>),
        Forward(Sender<Command>),
    }
    let route = {
        let mut mode = shared.mode.lock().unwrap();
        match &mut *mode {
            Mode::Promoted { engine, .. } => Route::Forward(engine.sender()),
            Mode::Failed(why) => Route::Reply(Box::new(ServerMsg::Error {
                code: "unavailable".to_string(),
                message: why.clone(),
            })),
            Mode::Following(core) => Route::Reply(Box::new(match &msg {
                ClientMsg::Query { id } => {
                    MetricsRegistry::inc(&shared.metrics.queries);
                    ServerMsg::Status {
                        id: *id,
                        state: core.state_of(*id).unwrap_or(ReqState::Unknown),
                        alloc: core.alloc_of(*id),
                    }
                }
                ClientMsg::Stats => {
                    let snap = shared.metrics.snapshot(0, core.live_count(), core.now());
                    ServerMsg::Stats(snap)
                }
                ClientMsg::Submit(req) => {
                    MetricsRegistry::inc(&shared.metrics.submitted);
                    ServerMsg::Rejected {
                        id: req.id,
                        reason: RejectReason::NotPrimary,
                        retry_after: None,
                    }
                }
                // A follower holds no reservations to renegotiate.
                ClientMsg::Amend { id, .. } => ServerMsg::Rejected {
                    id: *id,
                    reason: RejectReason::NotPrimary,
                    retry_after: None,
                },
                // A follower holds no capacity: the two-phase prepare is
                // denied outright and its acks report `ok: false`, so a
                // cluster router talking to a not-yet-promoted standby
                // backs off instead of half-committing.
                ClientMsg::HoldOpen(req) => ServerMsg::HoldDenied {
                    txn: req.id,
                    reason: RejectReason::NotPrimary,
                },
                ClientMsg::HoldAttach { txn, .. }
                | ClientMsg::HoldCommit { txn, .. }
                | ClientMsg::HoldRelease { txn, .. } => ServerMsg::HoldAck {
                    txn: *txn,
                    ok: false,
                },
                ClientMsg::Cancel { .. } | ClientMsg::Drain => ServerMsg::Error {
                    code: "not-primary".to_string(),
                    message: "this daemon is a follower; promote it or talk to the primary"
                        .to_string(),
                },
                ClientMsg::Promote => unreachable!("handled above"),
            })),
        }
    };
    match route {
        Route::Reply(reply) => reply_tx.send(*reply).is_ok(),
        Route::Forward(tx) => forward(shared, &tx, msg, reply_tx),
    }
}

/// Forward a client message to the promoted engine, mirroring the serve
/// daemon's backpressure: submissions bounce with `QueueFull` when the
/// engine queue is full; control messages retry briefly.
fn forward(
    shared: &Arc<Shared>,
    tx: &Sender<Command>,
    msg: ClientMsg,
    reply_tx: &Sender<ServerMsg>,
) -> bool {
    let is_submit = matches!(msg, ClientMsg::Submit(_));
    let submit_id = match &msg {
        ClientMsg::Submit(req) => req.id,
        _ => 0,
    };
    let mut cmd = Command::Client {
        msg,
        reply: reply_tx.clone().into(),
    };
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match tx.try_send(cmd) {
            Ok(()) => return true,
            Err(channel::TrySendError::Full(back)) => {
                if is_submit {
                    MetricsRegistry::inc(&shared.metrics.queue_full);
                    let retry = shared.cfg.engine.step;
                    return reply_tx
                        .send(ServerMsg::Rejected {
                            id: submit_id,
                            reason: RejectReason::QueueFull,
                            retry_after: Some(retry),
                        })
                        .is_ok();
                }
                if Instant::now() >= deadline || shared.stop.load(Ordering::Relaxed) {
                    return reply_tx
                        .send(ServerMsg::Error {
                            code: "engine-busy".to_string(),
                            message: "engine queue stayed full".to_string(),
                        })
                        .is_ok();
                }
                cmd = back;
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(channel::TrySendError::Disconnected(_)) => {
                let _ = reply_tx.send(ServerMsg::Error {
                    code: "engine-gone".to_string(),
                    message: "the promoted engine has stopped".to_string(),
                });
                return false;
            }
        }
    }
}
