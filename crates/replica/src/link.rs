//! Transport abstraction for replication sessions.
//!
//! The shipper and follower cores are sans-IO; everything that actually
//! moves bytes sits behind [`Link`]. Three implementations:
//!
//! * [`TcpLink`] — production: length-prefixed frames over a TCP
//!   stream, with an internal reassembly buffer (a frame may arrive
//!   split across reads or coalesced with its neighbours).
//! * [`MemLink`] — tests: a crossbeam channel pair delivering whole
//!   frames in-process.
//! * [`FaultLink`] — tests: wraps any link and runs every outgoing
//!   frame through a deterministic [`FaultInjector`] that drops,
//!   duplicates, reorders, truncates, or partitions.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use gridband_store::wal::{MAX_RECORD, RECORD_HEADER};

/// Outcome of a [`Link::recv`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// One whole frame, header included.
    Frame(Vec<u8>),
    /// The timeout expired with no complete frame available.
    Idle,
    /// The peer is gone; no more frames will arrive.
    Closed,
}

/// A bidirectional, frame-oriented transport.
pub trait Link: Send {
    /// Send one whole frame (as produced by
    /// [`encode_frame`](crate::proto::encode_frame)).
    fn send(&mut self, frame: &[u8]) -> io::Result<()>;
    /// Wait up to `timeout` for the next frame.
    fn recv(&mut self, timeout: Duration) -> io::Result<Recv>;
}

/// Frame transport over a TCP stream.
///
/// TCP gives a reliable byte pipe, not a frame pipe: `recv` reassembles
/// frames from the stream using the 4-byte length prefix. A declared
/// length beyond the store's record bound is unrecoverable framing loss
/// (there is no way to find the next frame boundary) and surfaces as an
/// error; the session layer drops the connection and reconnects.
pub struct TcpLink {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl TcpLink {
    /// Wrap a connected stream.
    pub fn new(stream: TcpStream) -> TcpLink {
        let _ = stream.set_nodelay(true);
        TcpLink {
            stream,
            buf: Vec::new(),
        }
    }

    /// Pop one complete frame off the reassembly buffer, if present.
    fn take_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.buf.len() < RECORD_HEADER {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[0..4].try_into().unwrap()) as usize;
        if len > MAX_RECORD as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame declares {len} bytes; stream framing is lost"),
            ));
        }
        let total = RECORD_HEADER + len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let frame = self.buf[..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(frame))
    }
}

impl Link for TcpLink {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        self.stream.write_all(frame)
    }

    fn recv(&mut self, timeout: Duration) -> io::Result<Recv> {
        loop {
            if let Some(frame) = self.take_frame()? {
                return Ok(Recv::Frame(frame));
            }
            // A zero timeout means "non-blocking poll"; set_read_timeout
            // rejects Duration::ZERO, so round up to something tiny.
            self.stream
                .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
            let mut chunk = [0u8; 64 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(Recv::Closed),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(Recv::Idle)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// In-process frame transport: each side sends into the other's queue.
pub struct MemLink {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl MemLink {
    /// A connected pair of endpoints.
    pub fn pair() -> (MemLink, MemLink) {
        let (a_tx, a_rx) = channel::unbounded();
        let (b_tx, b_rx) = channel::unbounded();
        (
            MemLink { tx: a_tx, rx: b_rx },
            MemLink { tx: b_tx, rx: a_rx },
        )
    }
}

impl Link for MemLink {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        self.tx
            .send(frame.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer gone"))
    }

    fn recv(&mut self, timeout: Duration) -> io::Result<Recv> {
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => Ok(Recv::Frame(frame)),
            Err(RecvTimeoutError::Timeout) => Ok(Recv::Idle),
            Err(RecvTimeoutError::Disconnected) => Ok(Recv::Closed),
        }
    }
}

/// A deterministic schedule of transit faults, keyed on the 1-based
/// count of frames pushed through the injector. All-zero (the default)
/// injects nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Drop every n-th frame (0 = never).
    pub drop_every: u64,
    /// Deliver every n-th frame twice (0 = never).
    pub dup_every: u64,
    /// Hold every n-th frame and deliver it *after* its successor
    /// (0 = never).
    pub reorder_every: u64,
    /// Cut every n-th frame to half its length (0 = never).
    pub truncate_every: u64,
    /// Drop *every* frame whose count falls in this inclusive range —
    /// a transient network partition.
    pub partition: Option<(u64, u64)>,
}

/// Applies a [`FaultPlan`] to a stream of frames. Deterministic: the
/// same plan over the same frame sequence yields the same deliveries,
/// so every fault schedule in the tests is exactly reproducible.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    count: u64,
    held: Option<Vec<u8>>,
}

impl FaultInjector {
    /// An injector following `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            count: 0,
            held: None,
        }
    }

    /// Push one frame through; returns what actually gets delivered (0,
    /// 1, or 2 frames, possibly including a previously held one). Each
    /// frame matches at most one fault, checked in order: partition,
    /// drop, truncate, dup, reorder.
    pub fn push(&mut self, frame: &[u8]) -> Vec<Vec<u8>> {
        self.count += 1;
        let n = self.count;
        let hit = |every: u64| every != 0 && n.is_multiple_of(every);
        let mut out = Vec::new();
        if let Some((a, b)) = self.plan.partition {
            if n >= a && n <= b {
                return out;
            }
        }
        if hit(self.plan.drop_every) {
            return out;
        }
        if hit(self.plan.truncate_every) {
            out.push(frame[..frame.len() / 2].to_vec());
        } else if hit(self.plan.dup_every) {
            out.push(frame.to_vec());
            out.push(frame.to_vec());
        } else if hit(self.plan.reorder_every) {
            // Swap with the next frame: hold this one, release on the
            // next push (or on flush).
            if let Some(prev) = self.held.replace(frame.to_vec()) {
                out.push(prev);
            }
            return out;
        } else {
            out.push(frame.to_vec());
        }
        if let Some(held) = self.held.take() {
            out.push(held);
        }
        out
    }

    /// Release a frame still held for reordering (end of a burst).
    pub fn flush(&mut self) -> Vec<Vec<u8>> {
        self.held.take().into_iter().collect()
    }
}

/// A [`Link`] that runs every *outgoing* frame through a
/// [`FaultInjector`]. Intended over [`MemLink`] (frame-preserving);
/// over [`TcpLink`] a truncated frame poisons the byte stream, exactly
/// as a real half-written send before a connection loss would.
pub struct FaultLink<L: Link> {
    inner: L,
    injector: FaultInjector,
}

impl<L: Link> FaultLink<L> {
    /// Wrap `inner`, faulting its sends per `plan`.
    pub fn new(inner: L, plan: FaultPlan) -> FaultLink<L> {
        FaultLink {
            inner,
            injector: FaultInjector::new(plan),
        }
    }
}

impl<L: Link> Link for FaultLink<L> {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        for f in self.injector.push(frame) {
            self.inner.send(&f)?;
        }
        Ok(())
    }

    fn recv(&mut self, timeout: Duration) -> io::Result<Recv> {
        self.inner.recv(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{decode_frame, encode_frame, ShipMsg};

    fn frame(seq: u64) -> Vec<u8> {
        encode_frame(&ShipMsg::Heartbeat {
            seq,
            gen: 0,
            offset: 8,
        })
    }

    fn seq_of(f: &[u8]) -> u64 {
        match decode_frame::<ShipMsg>(f).expect("intact frame") {
            ShipMsg::Heartbeat { seq, .. } => seq,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mem_link_delivers_frames_in_order() {
        let (mut a, mut b) = MemLink::pair();
        a.send(&frame(1)).unwrap();
        a.send(&frame(2)).unwrap();
        for want in [1, 2] {
            match b.recv(Duration::from_millis(100)).unwrap() {
                Recv::Frame(f) => assert_eq!(seq_of(&f), want),
                other => panic!("expected frame, got {other:?}"),
            }
        }
        assert_eq!(b.recv(Duration::from_millis(10)).unwrap(), Recv::Idle);
        drop(a);
        assert_eq!(b.recv(Duration::from_millis(10)).unwrap(), Recv::Closed);
    }

    #[test]
    fn injector_drops_and_duplicates_on_schedule() {
        let mut inj = FaultInjector::new(FaultPlan {
            drop_every: 3,
            dup_every: 4,
            ..FaultPlan::default()
        });
        let mut delivered = Vec::new();
        for seq in 1..=8 {
            for f in inj.push(&frame(seq)) {
                delivered.push(seq_of(&f));
            }
        }
        // 3 and 6 dropped; 4 and 8 doubled.
        assert_eq!(delivered, vec![1, 2, 4, 4, 5, 7, 8, 8]);
    }

    #[test]
    fn injector_reorders_adjacent_frames() {
        let mut inj = FaultInjector::new(FaultPlan {
            reorder_every: 2,
            ..FaultPlan::default()
        });
        let mut delivered = Vec::new();
        for seq in 1..=4 {
            for f in inj.push(&frame(seq)) {
                delivered.push(seq_of(&f));
            }
        }
        for f in inj.flush() {
            delivered.push(seq_of(&f));
        }
        assert_eq!(delivered, vec![1, 3, 2, 4]);
    }

    #[test]
    fn injector_truncates_and_partitions() {
        let mut inj = FaultInjector::new(FaultPlan {
            truncate_every: 2,
            partition: Some((3, 4)),
            ..FaultPlan::default()
        });
        let whole = frame(1);
        let out = inj.push(&whole);
        assert_eq!(out, vec![whole.clone()]);
        let out = inj.push(&whole);
        assert_eq!(out[0].len(), whole.len() / 2, "truncated to half");
        assert!(decode_frame::<ShipMsg>(&out[0]).is_err());
        assert!(inj.push(&whole).is_empty(), "partition eats frame 3");
        assert!(inj.push(&whole).is_empty(), "partition eats frame 4");
        assert_eq!(inj.push(&whole), vec![whole.clone()], "partition healed");
    }

    #[test]
    fn fault_link_applies_the_plan_to_sends() {
        let (a, mut b) = MemLink::pair();
        let mut faulty = FaultLink::new(
            a,
            FaultPlan {
                drop_every: 2,
                ..FaultPlan::default()
            },
        );
        for seq in 1..=4 {
            faulty.send(&frame(seq)).unwrap();
        }
        let mut got = Vec::new();
        while let Recv::Frame(f) = b.recv(Duration::from_millis(10)).unwrap() {
            got.push(seq_of(&f));
        }
        assert_eq!(got, vec![1, 3]);
    }
}
