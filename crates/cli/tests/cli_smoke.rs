//! Subprocess tests of the `gridband` binary: every subcommand must
//! parse, run, and print what its contract promises.

use std::process::{Command, Output};

fn gridband(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gridband"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn help_lists_all_subcommands() {
    let out = gridband(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    for cmd in ["fig4", "tuning", "run", "compare", "trace", "stats"] {
        assert!(text.contains(cmd), "help missing {cmd}:\n{text}");
    }
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = gridband(&["fig99"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn run_prints_summary_and_guarantees() {
    let out = gridband(&[
        "run",
        "--interarrival",
        "5",
        "--horizon",
        "200",
        "--seed",
        "3",
        "--sched",
        "window:20",
        "--policy",
        "f:0.8",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("offered load"), "{text}");
    assert!(text.contains("window[t_step=20"), "{text}");
    assert!(text.contains("guaranteed rate at f=0.8"), "{text}");
}

#[test]
fn run_json_is_machine_readable() {
    let out = gridband(&["run", "--interarrival", "5", "--horizon", "150", "--json"]);
    assert!(out.status.success());
    let v: serde_json::Value =
        serde_json::from_str(&stdout(&out)).expect("stdout is a JSON report");
    assert!(v.get("accept_rate").is_some());
    assert!(v.get("assignments").is_some());
}

#[test]
fn trace_and_stats_round_trip() {
    let dir = std::env::temp_dir().join("gridband-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.json");
    let path_s = path.to_str().unwrap();
    let out = gridband(&[
        "trace",
        "--interarrival",
        "5",
        "--horizon",
        "200",
        "--seed",
        "9",
        "--out",
        path_s,
    ]);
    assert!(out.status.success());
    let out = gridband(&["stats", path_s]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("requests:"), "{text}");
    assert!(text.contains("mean MaxRate:"), "{text}");
}

#[test]
fn compare_lists_each_requested_scheduler() {
    let out = gridband(&[
        "compare",
        "--scheds",
        "greedy,window:30",
        "--interarrival",
        "5",
        "--horizon",
        "150",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("greedy"), "{text}");
    assert!(text.contains("window:30"), "{text}");
    assert!(text.contains("accept"), "{text}");
}

#[test]
fn figure_quick_csv_has_headers() {
    let out = gridband(&["fig5", "--quick", "--csv", "--seeds", "1"]);
    assert!(out.status.success());
    let text = stdout(&out);
    let first = text.lines().next().unwrap_or("");
    assert_eq!(first, "interarrival,scheduler,accept", "{text}");
    assert!(text.lines().count() > 3);
}

#[test]
fn custom_topology_string_is_honoured() {
    let out = gridband(&[
        "run",
        "--topo",
        "2x3x250",
        "--interarrival",
        "10",
        "--horizon",
        "100",
        "--json",
    ]);
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_str(&stdout(&out)).unwrap();
    // 2×250 + 3×250 halved = 625 → load denominator reflects it; just
    // check the run produced a well-formed report.
    assert!(v["total_requests"].as_u64().is_some());
}

#[test]
fn timeline_export_writes_csv() {
    let dir = std::env::temp_dir().join("gridband-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tl.csv");
    let path_s = path.to_str().unwrap();
    let out = gridband(&[
        "run",
        "--interarrival",
        "5",
        "--horizon",
        "150",
        "--timeline",
        path_s,
    ]);
    assert!(out.status.success());
    let csv = std::fs::read_to_string(&path).expect("timeline file written");
    assert!(
        csv.starts_with("time,total,in0"),
        "{}",
        &csv[..60.min(csv.len())]
    );
}
