//! Argument parsing for `gridband run` / `gridband trace`.

use gridband_algos::BandwidthPolicy;
use gridband_net::Topology;
use gridband_workload::{ArrivalProcess, Dist, Trace, WorkloadBuilder};

/// Which scheduler a custom run uses.
#[derive(Debug, Clone, PartialEq)]
pub enum Scheduler {
    /// Algorithm 2 (decide on arrival).
    Greedy,
    /// Algorithm 3 with the given `t_step`.
    Window(f64),
}

/// Fully parsed configuration of a custom run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    pub topology: Topology,
    pub scheduler: Scheduler,
    pub policy: BandwidthPolicy,
    pub load: Option<f64>,
    pub interarrival: Option<f64>,
    pub slack: (f64, f64),
    pub horizon: f64,
    pub seed: u64,
    pub json: bool,
    pub out: Option<String>,
    pub timeline: Option<String>,
    pub diurnal: Option<(f64, f64)>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            topology: Topology::paper_default(),
            scheduler: Scheduler::Greedy,
            policy: BandwidthPolicy::MAX_RATE,
            load: None,
            interarrival: None,
            slack: (2.0, 4.0),
            horizon: 2_000.0,
            seed: 42,
            json: false,
            out: None,
            timeline: None,
            diurnal: None,
        }
    }
}

fn bail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: gridband run [--topo paper|grid5000|MxNxCAP|@file.json] [--sched greedy|window:STEP]
                    [--policy min|f:X] [--interarrival S | --load L] [--slack LO:HI]
                    [--horizon S] [--seed N] [--json] [--out FILE]"
    );
    std::process::exit(2);
}

pub(crate) fn parse_topo(s: &str) -> Topology {
    match s {
        "paper" => Topology::paper_default(),
        "grid5000" => Topology::grid5000_like(),
        file if file.starts_with('@') => {
            let path = &file[1..];
            let data = std::fs::read_to_string(path)
                .unwrap_or_else(|e| bail(&format!("cannot read topology {path}: {e}")));
            serde_json::from_str(&data)
                .unwrap_or_else(|e| bail(&format!("invalid topology JSON in {path}: {e}")))
        }
        custom => {
            // MxNxCAP, e.g. 4x6x500
            let parts: Vec<&str> = custom.split('x').collect();
            if parts.len() != 3 {
                bail("topology must be paper, grid5000, or MxNxCAP (e.g. 4x6x500)");
            }
            let m: usize = parts[0].parse().unwrap_or_else(|_| bail("bad M"));
            let n: usize = parts[1].parse().unwrap_or_else(|_| bail("bad N"));
            let cap: f64 = parts[2].parse().unwrap_or_else(|_| bail("bad CAP"));
            Topology::uniform(m, n, cap)
        }
    }
}

impl RunConfig {
    /// Parse flags; aborts the process with a usage message on errors.
    pub fn parse(args: Vec<String>) -> RunConfig {
        let mut cfg = RunConfig::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            let mut val = |name: &str| -> String {
                it.next()
                    .unwrap_or_else(|| bail(&format!("{name} needs a value")))
            };
            match a.as_str() {
                "--topo" => cfg.topology = parse_topo(&val("--topo")),
                "--sched" => {
                    let v = val("--sched");
                    cfg.scheduler = if v == "greedy" {
                        Scheduler::Greedy
                    } else if let Some(step) = v.strip_prefix("window:") {
                        Scheduler::Window(step.parse().unwrap_or_else(|_| bail("bad window step")))
                    } else {
                        bail("--sched takes greedy or window:STEP")
                    };
                }
                "--policy" => {
                    let v = val("--policy");
                    cfg.policy = if v == "min" {
                        BandwidthPolicy::MinRate
                    } else if let Some(f) = v.strip_prefix("f:") {
                        BandwidthPolicy::FractionOfMax(
                            f.parse().unwrap_or_else(|_| bail("bad f value")),
                        )
                    } else {
                        bail("--policy takes min or f:X")
                    };
                }
                "--load" => {
                    cfg.load = Some(val("--load").parse().unwrap_or_else(|_| bail("bad load")))
                }
                "--interarrival" => {
                    cfg.interarrival = Some(
                        val("--interarrival")
                            .parse()
                            .unwrap_or_else(|_| bail("bad interarrival")),
                    )
                }
                "--slack" => {
                    let v = val("--slack");
                    let (lo, hi) = v
                        .split_once(':')
                        .unwrap_or_else(|| bail("--slack takes LO:HI"));
                    cfg.slack = (
                        lo.parse().unwrap_or_else(|_| bail("bad slack lo")),
                        hi.parse().unwrap_or_else(|_| bail("bad slack hi")),
                    );
                    if cfg.slack.0 < 1.0 || cfg.slack.1 < cfg.slack.0 {
                        bail("slack must satisfy 1 <= LO <= HI");
                    }
                }
                "--horizon" => {
                    cfg.horizon = val("--horizon")
                        .parse()
                        .unwrap_or_else(|_| bail("bad horizon"))
                }
                "--seed" => cfg.seed = val("--seed").parse().unwrap_or_else(|_| bail("bad seed")),
                "--json" => cfg.json = true,
                "--out" => cfg.out = Some(val("--out")),
                "--timeline" => cfg.timeline = Some(val("--timeline")),
                "--diurnal" => {
                    let v = val("--diurnal");
                    let (d, p) = v
                        .split_once(':')
                        .unwrap_or_else(|| bail("--diurnal takes DEPTH:PERIOD"));
                    cfg.diurnal = Some((
                        d.parse().unwrap_or_else(|_| bail("bad diurnal depth")),
                        p.parse().unwrap_or_else(|_| bail("bad diurnal period")),
                    ));
                }
                "--help" | "-h" => bail(""),
                other => bail(&format!("unknown flag {other}")),
            }
        }
        if cfg.load.is_some() && cfg.interarrival.is_some() {
            bail("--load and --interarrival are mutually exclusive");
        }
        cfg
    }

    /// Build the workload this configuration describes.
    pub fn build_trace(&self) -> Trace {
        let mut b = WorkloadBuilder::new(self.topology.clone())
            .horizon(self.horizon)
            .seed(self.seed);
        b = match (self.load, self.interarrival) {
            (Some(l), None) => b.target_load(l),
            (None, Some(ia)) => b.mean_interarrival(ia),
            (None, None) => b.mean_interarrival(2.0),
            (Some(_), Some(_)) => unreachable!("rejected in parse"),
        };
        if let Some((depth, period)) = self.diurnal {
            let base = match (self.load, self.interarrival) {
                (None, Some(ia)) => ia,
                _ => 2.0,
            };
            b = b.arrival(ArrivalProcess::Diurnal {
                mean_interarrival: base,
                depth,
                period,
            });
        }
        b = if self.slack == (1.0, 1.0) {
            b.slack(Dist::Fixed(1.0))
        } else {
            b.slack(Dist::Uniform {
                lo: self.slack.0,
                hi: self.slack.1,
            })
        };
        b.build()
    }
}
