//! `gridband` — the command-line experiment runner.
//!
//! ```text
//! gridband fig4|fig5|fig6|fig7|tuning|optgap|npc|maxmin [--quick] [--csv] [--seeds N]
//! gridband run   [--topo paper|grid5000|MxNxCAP] [--sched greedy|window:STEP]
//!                [--policy min|f:X] [--interarrival S | --load L]
//!                [--slack LO:HI] [--horizon S] [--seed N] [--json]
//!                [--timeline FILE.csv] [--diurnal DEPTH:PERIOD]
//! gridband trace [--load L | --interarrival S] [--horizon S] [--seed N] [--out FILE]
//! gridband stats FILE
//! ```

use gridband_algos::{AdaptiveGreedy, BandwidthPolicy, BookAhead, Greedy, WindowScheduler};
use gridband_bench::opts::FigureOpts;
use gridband_bench::{experiments as exp, extensions as ext, table::ResultTable};
use gridband_sim::{Simulation, Timeline};
use gridband_workload::Trace;

mod runcfg;
use runcfg::{RunConfig, Scheduler};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage(0);
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "fig4" | "fig5" | "fig6" | "fig7" | "tuning" | "optgap" | "npc" | "maxmin"
        | "bookahead" | "distributed" | "longlived" | "hotspot" | "mice" | "retry"
        | "malleable" | "sensitivity" => figure(&cmd, args),
        "run" => run_custom(args),
        "compare" => compare(args),
        "serve" => serve(args),
        "cluster" => cluster(args),
        "promote" => promote(args),
        "trace" => gen_trace(args),
        "stats" => trace_stats(args),
        "--help" | "-h" | "help" => usage(0),
        other => {
            eprintln!("error: unknown command {other}");
            usage(2);
        }
    }
}

/// Print a CLI error and exit with status 2.
fn fail(msg: std::fmt::Arguments<'_>) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn usage(code: i32) -> ! {
    eprintln!(
        "gridband — bandwidth sharing in grid environments (HPDC'06 reproduction)

commands:
  fig4|fig5|fig6|fig7       regenerate a paper figure   [--quick] [--csv] [--seeds N]
  tuning|optgap|npc|maxmin  extension studies           (same flags)
  bookahead|distributed|longlived|hotspot|mice|retry|malleable  extension studies
  run                       one custom simulation       (gridband run --help)
  compare                   several schedulers on one workload
                            (--scheds greedy,window:50,bookahead + run flags)
  serve                     run the reservation daemon  (gridband serve --help)
                            drive it with the `loadgen` binary from gridband-serve
  cluster                   route a workload over topology shards
                            (gridband cluster --help)
  promote [--addr H:P]      promote a hot-standby follower to primary
  trace                     generate a workload trace JSON
  stats FILE                summarize a trace file"
    );
    std::process::exit(code);
}

fn figure(cmd: &str, args: Vec<String>) {
    let opts = FigureOpts::parse(args.into_iter());
    let emit = |t: ResultTable| opts.emit(&t);
    match cmd {
        "fig4" => {
            let (loads, horizon): (Vec<f64>, f64) = if opts.quick {
                (vec![1.0, 4.0, 8.0], 1_500.0)
            } else {
                (vec![0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0], 4_000.0)
            };
            emit(exp::fig4_table(&exp::fig4(&opts.seeds, &loads, horizon)));
        }
        "fig5" => {
            let (ias, steps, horizon): (Vec<f64>, Vec<f64>, f64) = if opts.quick {
                (vec![0.5, 2.0], vec![20.0, 100.0], 400.0)
            } else {
                (
                    vec![0.1, 0.25, 0.5, 1.0, 2.0, 5.0],
                    vec![10.0, 50.0, 100.0, 400.0],
                    1_000.0,
                )
            };
            emit(exp::fig5_table(&exp::fig5(
                &opts.seeds,
                &ias,
                &steps,
                horizon,
            )));
        }
        "fig6" | "fig7" => {
            let (heavy, light, horizon): (Vec<f64>, Vec<f64>, f64) = if opts.quick {
                (vec![0.5, 2.0], vec![5.0, 15.0], 500.0)
            } else {
                (
                    vec![0.1, 0.25, 0.5, 1.0, 2.0, 5.0],
                    vec![3.0, 5.0, 8.0, 12.0, 16.0, 20.0],
                    1_500.0,
                )
            };
            for (pane, ias) in [("left/heavy", &heavy), ("right/light", &light)] {
                let rows = if cmd == "fig6" {
                    exp::fig6(&opts.seeds, ias, horizon)
                } else {
                    exp::fig7(&opts.seeds, ias, 400.0, horizon)
                };
                emit(exp::policy_table(
                    &format!("{} {pane} — accept rate per policy", cmd.to_uppercase()),
                    &rows,
                ));
            }
        }
        "tuning" => {
            let (fs, horizon): (Vec<f64>, f64) = if opts.quick {
                (vec![0.0, 0.5, 1.0], 1_000.0)
            } else {
                ((0..=10).map(|k| k as f64 / 10.0).collect(), 4_000.0)
            };
            emit(exp::tuning_table(&exp::tuning(
                &opts.seeds,
                &fs,
                15.0,
                50.0,
                horizon,
            )));
        }
        "optgap" => {
            let sizes: Vec<usize> = if opts.quick {
                vec![8, 12]
            } else {
                vec![8, 12, 16, 20]
            };
            emit(exp::optgap_table(&exp::optgap(&opts.seeds, &sizes)));
        }
        "npc" => {
            let (ns, per_seed) = if opts.quick {
                (vec![2, 3], 2)
            } else {
                (vec![2, 3, 4], 4)
            };
            let rows = exp::npc(&opts.seeds, &ns, per_seed);
            let ok = rows.iter().all(|r| r.solvable == r.reached_target);
            emit(exp::npc_table(&rows));
            assert!(ok, "Theorem 1 equivalence violated — this is a bug");
        }
        "maxmin" => {
            let (ias, horizon): (Vec<f64>, f64) = if opts.quick {
                (vec![1.0, 10.0], 400.0)
            } else {
                (vec![0.5, 1.0, 2.0, 5.0, 10.0, 20.0], 1_500.0)
            };
            emit(exp::maxmin_table(&exp::maxmin_cmp(
                &opts.seeds,
                &ias,
                100.0,
                horizon,
            )));
        }
        "bookahead" => {
            let (ias, horizon): (Vec<f64>, f64) = if opts.quick {
                (vec![0.5, 2.0], 400.0)
            } else {
                (vec![0.25, 0.5, 1.0, 2.0, 5.0, 10.0], 1_200.0)
            };
            emit(ext::bookahead_table(&ext::bookahead(
                &opts.seeds,
                &ias,
                horizon,
            )));
        }
        "distributed" => {
            let (delays, horizon): (Vec<f64>, f64) = if opts.quick {
                (vec![0.0, 1.0], 400.0)
            } else {
                (vec![0.0, 0.05, 0.2, 0.5, 1.0, 2.0, 5.0], 1_200.0)
            };
            emit(ext::distributed_table(&ext::distributed(
                &opts.seeds,
                &delays,
                horizon,
            )));
        }
        "longlived" => {
            let sizes: Vec<usize> = if opts.quick {
                vec![40, 120]
            } else {
                vec![20, 40, 80, 160, 320]
            };
            emit(ext::longlived_table(&ext::longlived(&opts.seeds, &sizes)));
        }
        "hotspot" => {
            let n = if opts.quick { 60 } else { 300 };
            emit(ext::hotspot_table(&ext::hotspot(&opts.seeds, n)));
        }
        "mice" => {
            let (ias, horizon): (Vec<f64>, f64) = if opts.quick {
                (vec![0.5, 10.0], 300.0)
            } else {
                (vec![0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0], 1_000.0)
            };
            emit(ext::mice_table(&ext::mice(&opts.seeds, &ias, horizon)));
        }
        "retry" => {
            let (attempts, horizon): (Vec<usize>, f64) = if opts.quick {
                (vec![1, 3], 300.0)
            } else {
                (vec![1, 2, 3, 5, 8], 1_200.0)
            };
            emit(ext::retry_table(&ext::retry_study(
                &opts.seeds,
                &attempts,
                30.0,
                horizon,
            )));
        }
        "malleable" => {
            let (ias, horizon): (Vec<f64>, f64) = if opts.quick {
                (vec![0.5, 2.0], 300.0)
            } else {
                (vec![0.25, 0.5, 1.0, 2.0, 5.0, 10.0], 1_200.0)
            };
            emit(ext::malleable_table(&ext::malleable(
                &opts.seeds,
                &ias,
                horizon,
            )));
        }
        "sensitivity" => {
            let horizon = if opts.quick { 400.0 } else { 1_500.0 };
            emit(ext::sensitivity_table(&ext::sensitivity(
                &opts.seeds,
                horizon,
            )));
        }
        _ => unreachable!(),
    }
}

fn run_custom(args: Vec<String>) {
    let cfg = RunConfig::parse(args);
    let trace = cfg.build_trace();
    let sim = Simulation::new(cfg.topology.clone());
    let report = match &cfg.scheduler {
        Scheduler::Greedy => sim.run(&trace, &mut Greedy::new(cfg.policy)),
        Scheduler::Window(step) => {
            let mut w = WindowScheduler::new(*step, cfg.policy);
            sim.run(&trace, &mut w)
        }
    };
    if let Some(path) = &cfg.timeline {
        let tl = Timeline::sample(
            &trace,
            &cfg.topology,
            &report.assignments,
            trace.first_start(),
            trace.horizon(),
            (trace.horizon() - trace.first_start()).max(1.0) / 500.0,
        );
        std::fs::write(path, tl.to_csv())
            .unwrap_or_else(|e| fail(format_args!("cannot write {path}: {e}")));
        eprintln!("timeline written to {path} (peak {:.0} MB/s)", tl.peak());
    }
    if cfg.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serializes")
        );
    } else {
        println!(
            "trace: {} requests, offered load {:.2}",
            trace.len(),
            report.offered_load
        );
        println!("{}", report.summary());
        for f in [0.5, 0.8, 1.0] {
            println!(
                "  guaranteed rate at f={f:.1}: {:.3}",
                report.guaranteed_rate(&trace, f)
            );
        }
    }
}

fn compare(mut args: Vec<String>) {
    // Extract --scheds LIST; remaining flags configure the workload.
    let mut scheds = vec![
        "greedy".to_string(),
        "minrate".to_string(),
        "adaptive".to_string(),
        "window:50".to_string(),
        "window:400".to_string(),
        "bookahead".to_string(),
    ];
    if let Some(pos) = args.iter().position(|a| a == "--scheds") {
        if pos + 1 >= args.len() {
            fail(format_args!("--scheds requires a comma-separated list"));
        }
        scheds = args[pos + 1].split(',').map(|s| s.to_string()).collect();
        args.drain(pos..=pos + 1);
    }
    let cfg = RunConfig::parse(args);
    let trace = cfg.build_trace();
    let sim = Simulation::new(cfg.topology.clone());
    println!(
        "workload: {} requests, offered load {:.2}, policy {}",
        trace.len(),
        trace.offered_load(&cfg.topology),
        cfg.policy
    );
    println!(
        "{:<14} {:>8} {:>8} {:>9} {:>12}",
        "scheduler", "accept", "util", "speedup", "start delay"
    );
    for spec in &scheds {
        let report = match spec.as_str() {
            "greedy" => sim.run(&trace, &mut Greedy::new(cfg.policy)),
            "bookahead" => sim.run(&trace, &mut BookAhead::new(cfg.policy)),
            "minrate" => sim.run(&trace, &mut Greedy::new(BandwidthPolicy::MinRate)),
            "adaptive" => sim.run(&trace, &mut AdaptiveGreedy::full_range()),
            w if w.starts_with("window:") => {
                let step: f64 = w["window:".len()..]
                    .parse()
                    .unwrap_or_else(|_| fail(format_args!("bad window step in {w}")));
                let mut c = WindowScheduler::new(step, cfg.policy);
                sim.run(&trace, &mut c)
            }
            other => fail(format_args!(
                "unknown scheduler {other} (greedy|minrate|adaptive|window:STEP|bookahead)"
            )),
        };
        println!(
            "{:<14} {:>7.1}% {:>7.1}% {:>8.2}x {:>11.1}s",
            spec,
            100.0 * report.accept_rate,
            100.0 * report.resource_util,
            report.mean_speedup,
            report.mean_start_delay
        );
    }
}

fn gen_trace(args: Vec<String>) {
    let cfg = RunConfig::parse(args);
    let trace = cfg.build_trace();
    match &cfg.out {
        Some(path) => {
            let file = std::fs::File::create(path)
                .unwrap_or_else(|e| fail(format_args!("cannot create {path}: {e}")));
            trace
                .write_json(file)
                .unwrap_or_else(|e| fail(format_args!("writing {path} failed: {e}")));
            eprintln!("wrote {} requests to {path}", trace.len());
        }
        None => println!("{}", trace.to_json()),
    }
}

fn trace_stats(args: Vec<String>) {
    let Some(path) = args.first() else {
        eprintln!("usage: gridband stats FILE");
        std::process::exit(2);
    };
    let file =
        std::fs::File::open(path).unwrap_or_else(|e| fail(format_args!("cannot open {path}: {e}")));
    let trace = Trace::read_json(file)
        .unwrap_or_else(|e| fail(format_args!("{path} is not a valid trace: {e}")));
    let s = trace.stats();
    println!("requests:       {}", s.count);
    println!("total volume:   {:.1} GB", s.total_volume / 1000.0);
    println!("mean MinRate:   {:.1} MB/s", s.mean_min_rate);
    println!("mean MaxRate:   {:.1} MB/s", s.mean_max_rate);
    println!("mean slack:     {:.2}", s.mean_slack);
    println!("mean window:    {:.0} s", s.mean_window);
    println!("rigid requests: {}", s.rigid_count);
    println!("horizon:        {:.0} s", s.horizon);
    // Lint against the paper topology (the default platform) so obvious
    // workload problems surface right here.
    let findings = gridband_workload::lint::lint(&trace, &gridband_net::Topology::paper_default());
    if findings.is_empty() {
        println!("lint:           clean");
    } else {
        for f in findings {
            println!("lint {}:   [{}] {}", f.severity, f.code, f.message);
        }
    }
}

fn serve(args: Vec<String>) {
    use gridband_serve::{EngineConfig, Server, ServerConfig, TimeMode};
    use std::time::Duration;

    let mut addr = "127.0.0.1:7421".to_string();
    let mut topo = gridband_net::Topology::paper_default();
    let mut step = 50.0f64;
    let mut policy = BandwidthPolicy::MAX_RATE;
    let mut mode = TimeMode::Virtual;
    let mut queue = 1024usize;
    let mut snapshot: Option<Duration> = None;
    let mut wal_dir: Option<String> = None;
    let mut fsync = gridband_serve::FsyncPolicy::Round;
    let mut snapshot_every = 64u64;
    let mut gc_horizon: Option<f64> = None;
    let mut admit_threads = gridband_net::default_admit_threads();
    let mut io_threads = 2usize;
    let mut replicate_to: Option<String> = None;
    let mut follow: Option<String> = None;
    let mut promote_after: Option<Duration> = None;
    let mut shard_of: Option<(usize, usize)> = None;
    let mut qos: Option<gridband_qos::QosConfig> = None;
    let mut malleable = false;

    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| fail(format_args!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => addr = val("--addr"),
            "--topo" => topo = runcfg::parse_topo(&val("--topo")),
            "--step" => {
                step = val("--step")
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("bad --step: {e}")))
            }
            "--policy" => {
                let v = val("--policy");
                policy = if v == "min" {
                    BandwidthPolicy::MinRate
                } else if let Some(x) = v.strip_prefix("f:") {
                    BandwidthPolicy::FractionOfMax(
                        x.parse()
                            .unwrap_or_else(|e| fail(format_args!("bad --policy: {e}"))),
                    )
                } else if v == "max" {
                    BandwidthPolicy::MAX_RATE
                } else {
                    fail(format_args!("--policy must be min, max, or f:X"))
                };
            }
            "--tick-ms" => {
                let ms: u64 = val("--tick-ms")
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("bad --tick-ms: {e}")));
                mode = TimeMode::RealTime {
                    tick: Duration::from_millis(ms),
                };
            }
            "--queue" => {
                queue = val("--queue")
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("bad --queue: {e}")))
            }
            "--snapshot-secs" => {
                let s: u64 = val("--snapshot-secs")
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("bad --snapshot-secs: {e}")));
                snapshot = Some(Duration::from_secs(s));
            }
            "--wal-dir" => wal_dir = Some(val("--wal-dir")),
            "--fsync" => {
                fsync = val("--fsync")
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("bad --fsync: {e}")));
            }
            "--snapshot-every" => {
                snapshot_every = val("--snapshot-every")
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("bad --snapshot-every: {e}")));
            }
            "--gc-horizon" => {
                let s: f64 = val("--gc-horizon")
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("bad --gc-horizon: {e}")));
                if !(s.is_finite() && s >= 0.0) {
                    fail(format_args!("--gc-horizon must be finite and >= 0"));
                }
                gc_horizon = Some(s);
            }
            "--admit-threads" => {
                admit_threads = val("--admit-threads")
                    .parse::<usize>()
                    .unwrap_or_else(|e| fail(format_args!("bad --admit-threads: {e}")))
                    .max(1);
            }
            "--io-threads" => {
                io_threads = val("--io-threads")
                    .parse::<usize>()
                    .unwrap_or_else(|e| fail(format_args!("bad --io-threads: {e}")))
                    .max(1);
            }
            "--replicate-to" => replicate_to = Some(val("--replicate-to")),
            "--follow" => follow = Some(val("--follow")),
            "--shard-of" => {
                let v = val("--shard-of");
                let (i, n) = v
                    .split_once('/')
                    .unwrap_or_else(|| fail(format_args!("--shard-of wants I/N, got {v}")));
                let i: usize = i
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("bad --shard-of index: {e}")));
                let n: usize = n
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("bad --shard-of count: {e}")));
                if n == 0 || i >= n {
                    fail(format_args!("--shard-of wants I/N with I < N, got {v}"));
                }
                shard_of = Some((i, n));
            }
            "--promote-after" => {
                let s: u64 = val("--promote-after")
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("bad --promote-after: {e}")));
                promote_after = Some(Duration::from_secs(s));
            }
            "--malleable" => {
                malleable = true;
            }
            "--qos" => {
                qos.get_or_insert_with(gridband_qos::QosConfig::default);
            }
            "--qos-allowance" => {
                let s: f64 = val("--qos-allowance")
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("bad --qos-allowance: {e}")));
                if !(s.is_finite() && s >= 0.0) {
                    fail(format_args!("--qos-allowance must be finite and >= 0"));
                }
                qos.get_or_insert_with(gridband_qos::QosConfig::default)
                    .allowance_horizon = s;
            }
            "--qos-tenant-cap" => {
                let v = val("--qos-tenant-cap");
                let (rate, burst) = match v.split_once(':') {
                    Some((r, b)) => (r.to_string(), Some(b.to_string())),
                    None => (v, None),
                };
                let rate: f64 = rate
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("bad --qos-tenant-cap rate: {e}")));
                let burst: Option<f64> = burst.map(|b| {
                    b.parse()
                        .unwrap_or_else(|e| fail(format_args!("bad --qos-tenant-cap burst: {e}")))
                });
                if !(rate.is_finite() && rate > 0.0)
                    || burst.is_some_and(|b| !(b.is_finite() && b > 0.0))
                {
                    fail(format_args!(
                        "--qos-tenant-cap wants RATE[:BURST], both > 0"
                    ));
                }
                let cfg = qos.get_or_insert_with(gridband_qos::QosConfig::default);
                cfg.tenant_rate = Some(rate);
                cfg.tenant_burst = burst;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: gridband serve [--addr HOST:PORT] [--topo paper|grid5000|MxNxCAP]
                      [--step S] [--policy min|max|f:X] [--tick-ms MS]
                      [--queue N] [--snapshot-secs S]
                      [--wal-dir DIR] [--fsync always|round|off]
                      [--snapshot-every ROUNDS] [--gc-horizon SECS]
                      [--admit-threads N]
                      [--io-threads N] [--replicate-to HOST:PORT]
                      [--follow HOST:PORT [--promote-after SECS]]
                      [--shard-of I/N]
                      [--qos] [--qos-allowance SECS]
                      [--qos-tenant-cap RATE[:BURST]] [--malleable]

Runs the reservation daemon: batched WINDOW admission every t_step,
served over TCP. Every connection speaks either the JSON-lines compat
protocol or the length-prefixed binary frame codec — the daemon
auto-detects from the first bytes (binary clients open with the
GBWIR01 preamble), so one port serves both and no flag is needed.
Connections are multiplexed by a readiness-driven poll loop;
--io-threads N sizes the reader pool (default 2).
Without --tick-ms the clock is virtual
(submission timestamps drive it — deterministic replay); with it a
wall-clock ticker fires one admission round every MS milliseconds.

With --wal-dir every admission round is committed to a checksummed
write-ahead log in DIR before its replies go out, a state snapshot is
installed (and the log truncated) every ROUNDS rounds (default 64),
and a restarted daemon recovers its exact pre-crash commitments.
--fsync sets when the log is flushed to disk: per append (always),
once per round before replies (round, the default), or never (off).

--gc-horizon SECS garbage-collects the capacity ledger behind a
watermark lagging SECS of virtual time behind each round: expired
reservations are dropped and fully-past profile segments truncated, so
memory stays flat over unbounded runs. Each watermark advance is
committed to the WAL before it is applied, so recovery — and any
replication follower — replays to the identical compacted state, and
no answer at or after the watermark ever changes. Off by default
(the ledger keeps its full history).

--admit-threads N runs each admission round shard-parallel on up to N
OS threads (default: GRIDBAND_ADMIT_THREADS, else 1). Decisions are
bit-identical for every N, so WAL records and recovery are unaffected.

--replicate-to streams the WAL to a hot-standby follower listening at
HOST:PORT (requires --wal-dir); the daemon runs as the primary.
--follow runs this daemon as the follower instead: it listens for the
primary's replication stream on HOST:PORT, mirrors the WAL into
--wal-dir (required), serves read-only Query/Stats on --addr, and
rejects submissions with `not-primary`. `gridband promote --addr ...`
(or --promote-after SECS of primary silence) turns it into a primary
that resumes from the exact round the old primary last logged.

--shard-of I/N runs this daemon as shard I of an N-way topology-sharded
cluster: it owns contiguous blocks of the ingress and egress port space
and expects a `gridband cluster` router in front, which forwards
single-shard submissions whole and coordinates cross-shard ones with
two-phase holds. Composes with --wal-dir and --replicate-to: each shard
keeps its own WAL and may stream it to its own standby.

--qos turns on the leftover-bandwidth redistribution overlay: after
each round commits, per-port residual capacity is resold to live
transfers by class-priority progressive filling (Gold > Silver >
BestEffort, classes carried on submits), capped per transfer by its
MaxRate. Boosts never change an admission decision or delay any
guaranteed finish — the overlay only reads the ledger. --qos-allowance
SECS bounds how much banked fair-share credit a transfer may hold
(default 200); --qos-tenant-cap RATE[:BURST] token-bucket-polices each
ingress port's total boost rate (MB/s, bucket depth in MB).

--malleable accepts variable-rate reservations: a submit carrying
\"malleable\": true is water-filled into a stepwise plan over the
ledger's residual capacity (never above its MaxRate), granted as an
AcceptedSegments plan, and may later be renegotiated in place with the
atomic Amend op — a rejected amend leaves the original plan untouched.
Rigid submissions decide bit-identically with or without the flag."
                );
                std::process::exit(0);
            }
            other => fail(format_args!("unknown serve flag {other}")),
        }
    }

    if replicate_to.is_some() && follow.is_some() {
        fail(format_args!(
            "--replicate-to (primary) and --follow (follower) are mutually exclusive"
        ));
    }
    let mut engine = EngineConfig::new(topo);
    engine.step = step;
    engine.policy = policy;
    engine.mode = mode;
    engine.queue_capacity = queue;
    engine.admit_threads = admit_threads;
    engine.gc_horizon = gc_horizon;
    engine.qos = qos;
    engine.malleable = malleable;
    if let Some(dir) = wal_dir {
        let fs = gridband_serve::FsDir::new(&dir)
            .unwrap_or_else(|e| fail(format_args!("cannot open --wal-dir {dir}: {e}")));
        engine.store = Some(gridband_serve::StoreConfig {
            dir: std::sync::Arc::new(fs),
            fsync,
            snapshot_every,
        });
        eprintln!("gridband serve: write-ahead log in {dir} (fsync {fsync}, snapshot every {snapshot_every} rounds)");
    }

    if let Some(repl_addr) = follow {
        // Follower mode: mirror the primary's WAL, serve read-only
        // queries on --addr, promote on command or primary silence.
        if engine.store.is_none() {
            fail(format_args!("--follow requires --wal-dir"));
        }
        let replica = gridband_replica::Replica::bind(
            gridband_replica::ReplicaConfig {
                engine,
                promote_after,
            },
            &repl_addr,
            Some(&addr),
        )
        .unwrap_or_else(|e| fail(format_args!("cannot start follower: {e}")));
        eprintln!(
            "gridband serve: follower — replication on {}, read-only clients on {}{}",
            replica.repl_addr(),
            replica.client_addr().map(|a| a.to_string()).unwrap_or(addr),
            match promote_after {
                Some(d) => format!(", auto-promote after {}s of silence", d.as_secs()),
                None => String::new(),
            }
        );
        replica.run();
        return;
    }

    if replicate_to.is_some() && engine.store.is_none() {
        fail(format_args!("--replicate-to requires --wal-dir"));
    }
    if replicate_to.is_some() {
        engine.role = gridband_serve::Role::Primary;
    }
    if let Some((i, n)) = shard_of {
        engine.role = gridband_serve::Role::Shard;
        let map = gridband_cluster::ShardMap::new(&engine.topology, n);
        let ports = |v: Vec<u32>| match (v.first(), v.last()) {
            (Some(lo), Some(hi)) => format!("{lo}-{hi}"),
            _ => "none".to_string(),
        };
        eprintln!(
            "gridband serve: shard {i}/{n} — ingress {}, egress {}",
            ports(map.ingress_ports(i).collect()),
            ports(map.egress_ports(i).collect()),
        );
    }
    let shipper_cfg = engine
        .store
        .as_ref()
        .map(|store| gridband_replica::ShipperConfig {
            dir: store.dir.clone(),
            topology: engine.topology.clone(),
            step: engine.step,
            history_capacity: engine.history_capacity,
            beacon_every: 16,
        });
    let mut cfg = ServerConfig::new(addr.clone(), engine);
    cfg.snapshot_period = snapshot;
    cfg.io_threads = io_threads;
    let server =
        Server::bind(cfg).unwrap_or_else(|e| fail(format_args!("cannot bind {addr}: {e}")));
    eprintln!(
        "gridband serve: listening on {} (step {step}s)",
        server.local_addr().map(|a| a.to_string()).unwrap_or(addr)
    );
    let _shipper = replicate_to.map(|target| {
        eprintln!("gridband serve: primary — shipping WAL to {target}");
        gridband_replica::WalShipper::spawn(
            shipper_cfg.expect("--replicate-to requires --wal-dir"),
            target,
            server.metrics(),
        )
    });
    if let Err(e) = server.run() {
        fail(format_args!("server error: {e}"));
    }
}

/// `gridband cluster`: route a generated workload over N topology
/// shards — in-process engines by default, real `serve --shard-of`
/// daemons with --connect — and report decisions plus conservation.
fn cluster(args: Vec<String>) {
    use gridband_cluster::{
        conservation_violations, Cluster, ClusterConfig, Decision, EngineShards, LossSchedule,
        ShardMap, TcpShardLink,
    };
    use gridband_serve::SubmitReq;
    use gridband_workload::{Dist, Request, WorkloadBuilder};

    let mut shards = 2usize;
    let mut shards_given = false;
    let mut topo = gridband_net::Topology::paper_default();
    let mut step = 50.0f64;
    let mut horizon = 200.0f64;
    let mut seed = 7u64;
    let mut interarrival = 1.0f64;
    let mut cross = 0.1f64;
    let mut loss = 0.0f64;
    let mut loss_seed = 0u64;
    let mut drop_releases = false;
    let mut connect: Option<String> = None;
    let mut gc_horizon: Option<f64> = None;
    let mut decisions = false;
    let mut map_shards: Option<usize> = None;
    let mut wire = gridband_serve::wire::WireMode::Json;
    let mut cluster_malleable = false;

    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| fail(format_args!("{name} needs a value")))
        };
        let num = |name: &str, v: String| -> f64 {
            v.parse()
                .unwrap_or_else(|e| fail(format_args!("bad {name}: {e}")))
        };
        match flag.as_str() {
            "--shards" => {
                shards = num("--shards", val("--shards")) as usize;
                shards_given = true;
            }
            "--topo" => topo = runcfg::parse_topo(&val("--topo")),
            "--step" => step = num("--step", val("--step")),
            "--horizon" => horizon = num("--horizon", val("--horizon")),
            "--seed" => seed = num("--seed", val("--seed")) as u64,
            "--interarrival" => interarrival = num("--interarrival", val("--interarrival")),
            "--cross" => cross = num("--cross", val("--cross")),
            "--loss" => loss = num("--loss", val("--loss")),
            "--loss-seed" => loss_seed = num("--loss-seed", val("--loss-seed")) as u64,
            "--drop-releases" => drop_releases = true,
            "--connect" => connect = Some(val("--connect")),
            "--gc-horizon" => {
                let s = num("--gc-horizon", val("--gc-horizon"));
                if !(s.is_finite() && s >= 0.0) {
                    fail(format_args!("--gc-horizon must be finite and >= 0"));
                }
                gc_horizon = Some(s);
            }
            "--decisions" => decisions = true,
            "--malleable" => cluster_malleable = true,
            "--map" => map_shards = Some(num("--map", val("--map")) as usize),
            "--wire" => {
                wire = val("--wire")
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("bad --wire: {e}")))
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: gridband cluster [--shards N] [--topo paper|grid5000|MxNxCAP]
                        [--step S] [--horizon S] [--seed N] [--interarrival S]
                        [--cross F] [--loss P] [--loss-seed N] [--drop-releases]
                        [--connect H:P,H:P,...] [--wire json|binary] [--decisions]
                        [--gc-horizon SECS] [--malleable]

Generates a workload, steers a --cross fraction of it across the shard
cut (the rest stays partition-respecting), and routes it through a
topology-sharded cluster: single-shard submissions are forwarded whole,
cross-shard ones run the two-phase hold/commit protocol. By default the
shards are in-process engines and every shard's ledger is checked for
conservation (no port over-commit, no orphaned hold) after the run;
with --connect the router drives real `gridband serve --shard-of I/N`
daemons instead (one address per shard, in shard order), speaking the
JSON-lines protocol or, with --wire binary, the binary frame codec
(decisions are byte-identical either way).

--loss drops each prepare leg with probability P (seeded by
--loss-seed); --drop-releases extends the loss to release legs, leaving
orphaned holds for the shard-side expiry sweep. --decisions prints one
line per request (sorted by id) for diffing runs against each other,
e.g. a 4-shard cluster against --shards 1. For such a diff, pin the
workload with --map N: the trace is remapped against an N-shard map no
matter how many shards actually run it, so both runs see the same
requests (`--shards 1 --map 4 --cross 0` is the solo baseline of a
partition-respecting 4-shard run).

--gc-horizon SECS has each in-process shard garbage-collect its ledger
behind a watermark lagging SECS behind its clock (see `gridband serve
--help`); decisions are identical with or without it. Ignored with
--connect — real daemons own their GC via their own --gc-horizon.

--malleable enables variable-rate reservations on every in-process
shard (see `gridband serve --help`). Only single-shard routes qualify:
the router rejects cross-shard malleable submissions as Invalid, since
the two-phase protocol prepares constant-rate windows, not stepwise
plans. The generated workload stays rigid, so this flag only matters
for --connect-less conservation runs exercising the engine flag."
                );
                std::process::exit(0);
            }
            other => fail(format_args!("unknown cluster flag {other}")),
        }
    }
    if let Some(c) = &connect {
        let n = c.split(',').filter(|a| !a.is_empty()).count();
        if shards_given && n != shards {
            fail(format_args!(
                "--connect lists {n} shard addresses but --shards says {shards}"
            ));
        }
        shards = n;
    }
    if shards == 0 {
        fail(format_args!("a cluster needs at least one shard"));
    }

    // Workload: remap each request's egress so that an exact --cross
    // fraction (deterministically chosen) straddles the shard cut.
    // --map pins the cut the workload is built against, so runs with
    // different live shard counts can share one trace; without it the
    // map defaults to the live shard count.
    let wl_shards = map_shards.unwrap_or(shards);
    if decisions && map_shards.is_none() {
        eprintln!(
            "warning: --decisions without --map steers the workload against the live \
             {shards}-shard map; a diff against a run with a different shard count would \
             compare different traces. Pin --map N on both runs to share one trace."
        );
    }
    let base = WorkloadBuilder::new(topo.clone())
        .mean_interarrival(interarrival)
        .slack(Dist::Uniform { lo: 2.0, hi: 4.0 })
        .horizon(horizon)
        .seed(seed)
        .build();
    let trace = gridband_cluster::steer(&base, &topo, wl_shards, cross);
    let submit = |r: &Request| SubmitReq {
        id: r.id.0,
        ingress: r.route.ingress.0,
        egress: r.route.egress.0,
        volume: r.volume,
        max_rate: r.max_rate,
        start: Some(r.start()),
        deadline: Some(r.finish()),
        class: Default::default(),
        malleable: None,
    };
    let flush = trace.iter().map(|r| r.finish()).fold(0.0f64, f64::max);

    let mut cfg = ClusterConfig::new(topo.clone(), shards);
    cfg.step = step;
    cfg.queue_capacity = trace.len() + 16;
    cfg.loss = loss;
    cfg.loss_seed = loss_seed;
    cfg.drop_releases = drop_releases;
    cfg.gc_horizon = gc_horizon;
    cfg.malleable = cluster_malleable;

    let or_die = |r: Result<(), String>| r.unwrap_or_else(|e| fail(format_args!("{e}")));
    let (report, violations) = if let Some(c) = &connect {
        let links: Vec<TcpShardLink> = c
            .split(',')
            .filter(|a| !a.is_empty())
            .map(|a| {
                TcpShardLink::connect_with(a, wire).unwrap_or_else(|e| fail(format_args!("{e}")))
            })
            .collect();
        let mut cl = Cluster::new(
            ShardMap::new(&topo, shards),
            links,
            LossSchedule::new(loss, loss_seed),
            drop_releases,
        );
        for r in trace.iter() {
            or_die(cl.submit(submit(r)));
        }
        or_die(cl.advance_to(flush + cfg.hold_timeout + 2.0 * step));
        let report = cl.finish().unwrap_or_else(|e| fail(format_args!("{e}")));
        (report, Vec::new())
    } else {
        let engines = EngineShards::spawn(&cfg);
        let mut cl = Cluster::in_process(&cfg, &engines);
        for r in trace.iter() {
            or_die(cl.submit(submit(r)));
        }
        // Advance past every window plus the hold timeout so the expiry
        // sweep has reclaimed anything a lost release orphaned.
        or_die(cl.advance_to(flush + cfg.hold_timeout + 2.0 * step));
        let mut violations = Vec::new();
        for s in 0..engines.len() {
            violations.extend(conservation_violations(&engines.export(s), &topo));
        }
        let report = cl.finish().unwrap_or_else(|e| fail(format_args!("{e}")));
        engines.shutdown();
        (report, violations)
    };

    let granted = report
        .decisions
        .values()
        .filter(|d| matches!(d, Decision::Granted { .. }))
        .count();
    eprintln!(
        "cluster: {shards} shards, {} requests — {granted} granted ({} cross), {} denied, {} timed out",
        trace.len(),
        report.cross_grants,
        report.decisions.len() - granted - report.timeouts as usize,
        report.timeouts,
    );
    eprintln!(
        "routing: {} single-shard, {} cross-shard; protocol legs dropped: {}",
        report.singles, report.crosses, report.dropped_legs
    );
    if decisions {
        for (id, d) in &report.decisions {
            match d {
                Decision::Granted { bw, start, finish } => {
                    println!("{id} granted {bw} {start} {finish}")
                }
                Decision::Denied(reason) => println!("{id} denied {reason:?}"),
                Decision::TimedOut => println!("{id} timeout"),
            }
        }
    }
    for v in &violations {
        eprintln!("CONSERVATION VIOLATION: {v}");
    }
    if connect.is_none() {
        eprintln!(
            "conservation: {}",
            if violations.is_empty() {
                "ok"
            } else {
                "VIOLATED"
            }
        );
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
}

/// `gridband promote [--addr HOST:PORT]`: ask a follower daemon to
/// finish recovery and start accepting submissions.
fn promote(args: Vec<String>) {
    use std::io::{BufRead, BufReader, Write};

    let mut addr = "127.0.0.1:7421".to_string();
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => {
                addr = it
                    .next()
                    .unwrap_or_else(|| fail(format_args!("--addr needs a value")))
            }
            "--help" | "-h" => {
                eprintln!("usage: gridband promote [--addr HOST:PORT]");
                std::process::exit(0);
            }
            other => fail(format_args!("unknown promote flag {other}")),
        }
    }
    let stream = std::net::TcpStream::connect(&addr)
        .unwrap_or_else(|e| fail(format_args!("cannot connect to {addr}: {e}")));
    let mut line = gridband_serve::protocol::encode_client(&gridband_serve::ClientMsg::Promote);
    line.push('\n');
    let mut write_half = stream
        .try_clone()
        .unwrap_or_else(|e| fail(format_args!("socket clone failed: {e}")));
    write_half
        .write_all(line.as_bytes())
        .unwrap_or_else(|e| fail(format_args!("cannot send promote: {e}")));
    let mut reply = String::new();
    BufReader::new(stream)
        .read_line(&mut reply)
        .unwrap_or_else(|e| fail(format_args!("no reply from {addr}: {e}")));
    match gridband_serve::protocol::decode_server(reply.trim()) {
        Ok(gridband_serve::ServerMsg::Promoted { rounds }) => {
            println!("promoted: accepting submissions (resumed at round {rounds})");
        }
        Ok(gridband_serve::ServerMsg::Error { code, message }) => {
            fail(format_args!("promotion refused ({code}): {message}"));
        }
        Ok(other) => fail(format_args!("unexpected reply: {other:?}")),
        Err(e) => fail(format_args!("unparseable reply: {e}")),
    }
}
