//! Operating the tuning factor f (§2.3, §5.3): the accept-rate /
//! transfer-speed trade-off a grid manager actually turns.
//!
//! ```text
//! cargo run --release --example tuning_factor
//! ```
//!
//! Sweeps f from 0 (grant only the requested minimum) to 1 (grant the
//! full host rate) on an underloaded platform, then reports the knee: the
//! largest f whose accept-rate sacrifice stays under 10% of the MIN BW
//! baseline.

use gridband::prelude::*;

fn run_at(f: f64, trace: &Trace, sim: &Simulation) -> SimReport {
    let policy = if f <= 0.0 {
        BandwidthPolicy::MinRate
    } else {
        BandwidthPolicy::FractionOfMax(f)
    };
    let mut w = WindowScheduler::new(50.0, policy);
    sim.run(trace, &mut w)
}

fn main() {
    let topo = Topology::paper_default();
    let trace = WorkloadBuilder::new(topo.clone())
        .mean_interarrival(15.0)
        .slack(Dist::Uniform { lo: 2.0, hi: 4.0 })
        .horizon(4_000.0)
        .seed(7)
        .build();
    let sim = Simulation::new(topo);

    println!("   f  accept  speedup  (window scheduler, underloaded)");
    let baseline = run_at(0.0, &trace, &sim);
    let mut knee = 0.0;
    for k in 0..=10 {
        let f = k as f64 / 10.0;
        let rep = run_at(f, &trace, &sim);
        println!(
            "{f:4.1}  {:5.1}%  {:6.2}x",
            100.0 * rep.accept_rate,
            rep.mean_speedup
        );
        if rep.accept_rate >= 0.9 * baseline.accept_rate {
            knee = f;
        }
    }
    println!();
    println!(
        "suggested operating point: f = {knee:.1} — transfers finish faster \
         (releasing CPUs and disks early, the §2.3 argument) while keeping \
         ≥90% of the MIN BW accept rate"
    );
}
