//! Quickstart: schedule a bulk-transfer workload on the paper's platform.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the 10×10 grid edge of §4.3, generates a flexible Poisson
//! workload (§5.3), and compares the two online heuristics of the paper
//! under the same bandwidth policy.

use gridband::prelude::*;

fn main() {
    // The evaluation platform of §4.3: 10 ingress + 10 egress points,
    // each a 1 GB/s access link in front of a lossless core.
    let topo = Topology::paper_default();

    // A heavily loaded flexible workload: Poisson arrivals every 0.5 s
    // on average, volumes 10 GB–1 TB, host rates 10 MB/s–1 GB/s, windows
    // 2–4× the minimum transmission time.
    let trace = WorkloadBuilder::new(topo.clone())
        .mean_interarrival(0.5)
        .slack(Dist::Uniform { lo: 2.0, hi: 4.0 })
        .horizon(1_000.0)
        .seed(42)
        .build();
    println!(
        "workload: {} requests, offered load {:.2}",
        trace.len(),
        trace.offered_load(&topo)
    );

    let sim = Simulation::new(topo);

    // Algorithm 2: decide each request the moment it arrives, granting
    // the full host rate (tuning factor f = 1).
    let greedy = sim.run(&trace, &mut Greedy::fraction(1.0));
    println!("{}", greedy.summary());

    // Algorithm 3: batch arrivals into 100-second windows and admit
    // candidates in order of least port saturation.
    let mut window = WindowScheduler::new(100.0, BandwidthPolicy::MAX_RATE);
    let windowed = sim.run(&trace, &mut window);
    println!("{}", windowed.summary());

    // Every accepted request holds a hard reservation: re-verify the
    // schedule against the §2.1 constraints from scratch.
    verify_schedule(&trace, sim.topology(), &windowed.assignments)
        .expect("the runner already verified this; it must pass again");
    println!(
        "window gains {:+.1} accepted requests over greedy",
        windowed.accepted_count() as f64 - greedy.accepted_count() as f64
    );
}
