//! A data-grid replication campaign on a Grid'5000-like platform.
//!
//! ```text
//! cargo run --release --example grid5000_campaign
//! ```
//!
//! The scenario the paper's introduction motivates: a tier-0 site
//! produces large experiment datasets that must be replicated to the
//! other sites before their compute reservations start, while the sites
//! also exchange background transfers among themselves. The grid
//! middleware must decide which replications it can guarantee.

use gridband::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Eight sites with heterogeneous access links (10 Gb/s-class for the
    // three big sites down to 1 Gb/s-class for the three small ones).
    let topo = Topology::grid5000_like();
    let mut rng = StdRng::seed_from_u64(7);
    let mut requests = Vec::new();
    let mut id = 0u64;

    // Campaign: every 600 s, site 0 (tier-0) publishes a 100–400 GB
    // dataset that must reach three target sites within 2 hours.
    for epoch in 0..12 {
        let t0 = 600.0 * epoch as f64;
        let volume = 100_000.0 + rng.gen_range(0..4) as f64 * 100_000.0; // MB
        for _ in 0..3 {
            let dst = rng.gen_range(1..8);
            let route = Route::new(0, dst);
            let max_rate: f64 = 1000.0_f64.min(125.0 * 10.0); // tier-0 uplink class
            requests.push(Request::new(
                id,
                route,
                TimeWindow::new(t0, t0 + 7_200.0),
                volume,
                max_rate.min(1_250.0),
            ));
            id += 1;
        }
    }
    // Background site-to-site traffic: Poisson-ish small transfers.
    let mut t = 0.0;
    while t < 7_200.0 {
        t += rng.gen_range(20.0..120.0);
        let src = rng.gen_range(0..8);
        let mut dst = rng.gen_range(0..8);
        while dst == src {
            dst = rng.gen_range(0..8);
        }
        let route = Route::new(src, dst);
        let volume = rng.gen_range(5_000.0..50_000.0); // 5–50 GB
        let cap = topo.route_bottleneck(route);
        let max_rate = rng.gen_range(10.0..cap);
        let slack = rng.gen_range(2.0..5.0);
        requests.push(Request::new(
            id,
            route,
            TimeWindow::new(t, t + slack * volume / max_rate),
            volume,
            max_rate,
        ));
        id += 1;
    }
    let trace = Trace::new(requests);
    println!(
        "campaign: {} transfers ({:.1} TB total), offered load {:.2}",
        trace.len(),
        trace.stats().total_volume / 1e6,
        trace.offered_load(&topo)
    );

    let sim = Simulation::new(topo.clone());
    for (label, report) in [
        ("greedy f=1 ", sim.run(&trace, &mut Greedy::fraction(1.0))),
        ("greedy min ", sim.run(&trace, &mut Greedy::min_rate())),
        ("window 120s", {
            let mut w = WindowScheduler::new(120.0, BandwidthPolicy::FractionOfMax(0.8));
            sim.run(&trace, &mut w)
        }),
    ] {
        println!("{label}: {}", report.summary());
    }

    // Per-destination acceptance of the campaign replications under the
    // window scheduler (the decision a grid operator actually reads).
    let mut w = WindowScheduler::new(120.0, BandwidthPolicy::FractionOfMax(0.8));
    let report = sim.run(&trace, &mut w);
    let mut per_site = [(0usize, 0usize); 8]; // (accepted, total)
    for r in &trace {
        if r.route.ingress.0 == 0 && r.volume >= 100_000.0 {
            let site = r.route.egress.index();
            per_site[site].1 += 1;
            if matches!(report.outcome_of(r.id), Outcome::Accepted(_)) {
                per_site[site].0 += 1;
            }
        }
    }
    println!("tier-0 replication acceptance per destination site:");
    for (site, (acc, tot)) in per_site.iter().enumerate().filter(|(_, x)| x.1 > 0) {
        println!("  site {site}: {acc}/{tot}");
    }
}
