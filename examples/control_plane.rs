//! The §5.4 deployment story, end to end: distributed RSVP-like
//! reservation signaling over the grid overlay, then token-bucket
//! policing of the granted flows at the access points.
//!
//! ```text
//! cargo run --release --example control_plane
//! ```

use gridband::control::{police_constant_sources, ControlPlane};
use gridband::prelude::*;

fn main() {
    let topo = Topology::paper_default();
    let trace = WorkloadBuilder::new(topo.clone())
        .mean_interarrival(2.0)
        .slack(Dist::Uniform { lo: 2.0, hi: 4.0 })
        .horizon(1_000.0)
        .seed(21)
        .build();

    // Signaling: the same workload decided through access routers that
    // only see their local port state, for several one-way delays.
    println!("distributed reservation protocol (ingress/egress routers):");
    println!("delay  accept  msgs/req  decision latency");
    for delay in [0.0, 0.1, 1.0, 5.0] {
        let plane = ControlPlane::new(topo.clone(), delay, BandwidthPolicy::MAX_RATE);
        let rep = plane.run(&trace);
        // Independently re-check the distributed schedule.
        verify_schedule(&trace, &topo, &rep.assignments).expect("distributed schedule feasible");
        println!(
            "{delay:5.1}  {:5.1}%  {:8.2}  {:8.1}s",
            100.0 * rep.accept_rate(),
            rep.messages as f64 / trace.len() as f64,
            rep.decision_latency,
        );
    }

    // Enforcement: three granted flows share a 1 GB/s access port; one
    // of them ignores its contract and blasts at 4× the granted rate.
    // The token-bucket policer at the edge drops the excess so the
    // conforming flows keep their reservations ("automatically dropped
    // so as not to hurt other well behaving TCP flows").
    println!();
    println!("edge policing (contract 300/300/300 MB/s, flow #2 sends 1200):");
    let flows = [(300.0, 300.0), (300.0, 1_200.0), (300.0, 250.0)];
    let policed = police_constant_sources(&flows, 60.0, 0.5);
    for (k, p) in policed.iter().enumerate() {
        println!(
            "  flow {k}: offered {:6.0} MB, admitted {:6.0} MB, dropped {:4.1}%",
            p.offered,
            p.admitted,
            100.0 * p.drop_rate()
        );
    }
    let total_rate: f64 = policed.iter().map(|p| p.admitted / 60.0).sum();
    println!("  aggregate admitted rate: {total_rate:.0} MB/s (port capacity 1000)");
    assert!(total_rate <= 1_000.0 + 1.0);
}
