//! The paper's motivating comparison: statistical (TCP-like) sharing vs
//! reservation-based scheduling for deadline-bound bulk transfers.
//!
//! ```text
//! cargo run --release --example tcp_vs_reservation
//! ```
//!
//! The same workload is played twice: once through the max-min fluid
//! baseline (every transfer starts immediately and shares fairly — the
//! idealised behaviour of well-tuned TCP), and once through the paper's
//! interval-based reservation scheduler. The question is not who moves
//! more bytes but who meets the deadlines that compute and storage
//! co-allocations depend on.

use gridband::maxmin::{run_maxmin, MaxMinConfig};
use gridband::prelude::*;

fn main() {
    let topo = Topology::paper_default();
    println!("load  | maxmin on-time  stretch | reservation guaranteed");
    println!("------+-------------------------+-----------------------");
    for interarrival in [10.0, 5.0, 2.0, 1.0, 0.5] {
        let trace = WorkloadBuilder::new(topo.clone())
            .mean_interarrival(interarrival)
            .slack(Dist::Uniform { lo: 2.0, hi: 4.0 })
            .horizon(1_200.0)
            .seed(99)
            .build();
        let load = trace.offered_load(&topo);

        // Statistical sharing: everyone transmits immediately, rates are
        // max-min fair, deadlines are whatever they turn out to be.
        let mm = run_maxmin(&trace, &topo, MaxMinConfig::default());

        // Reservation: the WINDOW heuristic admits what it can guarantee
        // (f = 1: full host rate) and rejects the rest up front.
        let sim = Simulation::new(topo.clone());
        let mut w = WindowScheduler::new(60.0, BandwidthPolicy::MAX_RATE);
        let res = sim.run(&trace, &mut w);

        println!(
            "{load:5.1} |      {:5.1}%  {:7.2}x |                {:5.1}%",
            100.0 * mm.on_time_rate,
            mm.mean_stretch,
            100.0 * res.accept_rate,
        );
    }
    println!();
    println!("reading: every reservation-accepted transfer finishes by its");
    println!("deadline by construction; under overload statistical sharing");
    println!("stretches transfers far past their windows (the paper's §1");
    println!("argument for admission control at the grid edge).");
}
