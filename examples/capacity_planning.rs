//! Capacity planning with structured scenarios: when does the edge
//! saturate, which ports are the hot spots, and does a backup window
//! survive the nightly peak?
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use gridband::prelude::*;
use gridband::sim::Timeline;
use gridband::workload::scenarios;
use gridband::workload::Dist;

fn main() {
    let topo = Topology::grid5000_like();
    let day = 86_400.0;

    // Overlay three structured workloads on one platform:
    // nightly backups into site 7, a tier-0 distribution from site 0, and
    // an afternoon all-pairs shuffle.
    let backups = scenarios::nightly_backup(
        &topo,
        7,
        1,
        day,
        600.0,
        Dist::Uniform {
            lo: 10_000.0,
            hi: 80_000.0,
        },
        11,
    );
    let tier0 = scenarios::tier0_distribution(
        &topo,
        0,
        8,
        3.0 * 3_600.0,
        3,
        Dist::Uniform {
            lo: 50_000.0,
            hi: 200_000.0,
        },
        2.0 * 3_600.0,
        12,
    );
    let shuffle = scenarios::allpairs_shuffle(&topo, 5_000.0, 14.0 * 3_600.0, 3_600.0, 13);
    let trace = gridband::workload::ops::merge(&[&backups, &tier0, &shuffle]);
    println!(
        "one day of traffic: {} transfers, {:.1} TB, offered load {:.2}",
        trace.len(),
        trace.stats().total_volume / 1e6,
        trace.offered_load(&topo)
    );

    let sim = Simulation::new(topo.clone());
    let mut sched = WindowScheduler::new(300.0, BandwidthPolicy::FractionOfMax(0.8));
    let report = sim.run(&trace, &mut sched);
    println!("{}", report.summary());

    // Where does it hurt? Hot-spot ranking by demand ratio.
    let hotspots = HotspotReport::analyze(&trace, &topo, &report.assignments);
    println!("demand concentration (gini): {:.2}", hotspots.demand_gini);
    println!("hottest ports (demand ratio | granted share):");
    for p in hotspots.ranking().iter().take(4) {
        println!(
            "  {}: {:.2} | {:.0}%",
            p.port,
            p.demand_ratio,
            100.0 * p.grant_ratio()
        );
    }

    // When does it hurt? Sampled utilization over the day.
    let tl = Timeline::sample(&trace, &topo, &report.assignments, 0.0, day, day / 96.0);
    let peak = tl.peak();
    let peak_at = tl
        .times
        .iter()
        .zip(&tl.total_alloc)
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(t, _)| *t)
        .unwrap_or(0.0);
    println!(
        "edge allocation: mean {:.0}%, peak {:.0} MB/s at t = {:.1} h",
        100.0 * tl.mean_utilization(),
        peak,
        peak_at / 3_600.0
    );
    assert!(peak <= topo.total_ingress_cap() + 1e-6);
}
