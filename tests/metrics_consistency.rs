//! Cross-checks between independently implemented metrics: the same
//! quantity computed through different code paths must agree.

use gridband::net::CapacityLedger;
use gridband::prelude::*;
use gridband::sim::Timeline;

fn setup() -> (Topology, Trace, SimReport) {
    let topo = Topology::paper_default();
    let trace = WorkloadBuilder::new(topo.clone())
        .mean_interarrival(2.0)
        .slack(Dist::Uniform { lo: 2.0, hi: 4.0 })
        .horizon(600.0)
        .seed(77)
        .build();
    let sim = Simulation::new(topo.clone());
    let rep = sim.run(
        &trace,
        &mut WindowScheduler::new(30.0, BandwidthPolicy::FractionOfMax(0.8)),
    );
    (topo, trace, rep)
}

#[test]
fn carried_volume_agrees_between_report_and_assignments() {
    let (_, trace, rep) = setup();
    let offered: f64 = trace.iter().map(|r| r.volume).sum();
    let carried: f64 = rep.assignments.iter().map(|a| a.volume()).sum();
    assert!(
        (rep.volume_carried_fraction - carried / offered).abs() < 1e-12,
        "report fraction {} vs recomputed {}",
        rep.volume_carried_fraction,
        carried / offered
    );
}

#[test]
fn ledger_area_agrees_with_assignment_volumes() {
    let (topo, trace, rep) = setup();
    let mut ledger = CapacityLedger::new(topo);
    for a in &rep.assignments {
        let req = trace.iter().find(|r| r.id == a.id).unwrap();
        ledger.reserve(req.route, a.start, a.finish, a.bw).unwrap();
    }
    let horizon = rep
        .assignments
        .iter()
        .map(|a| a.finish)
        .fold(0.0f64, f64::max)
        + 1.0;
    let area = ledger.reserved_area(0.0, horizon);
    let carried: f64 = rep.assignments.iter().map(|a| a.volume()).sum();
    assert!(
        (area - carried).abs() < 1e-6 * carried.max(1.0),
        "ledger area {area} vs carried {carried}"
    );
}

#[test]
fn timeline_integral_agrees_with_carried_volume() {
    let (topo, trace, rep) = setup();
    // Fine sampling over the full activity span: the Riemann sum of the
    // sampled total allocation must approach the carried volume.
    let t1 = rep
        .assignments
        .iter()
        .map(|a| a.finish)
        .fold(0.0f64, f64::max);
    let step = 0.25;
    let tl = Timeline::sample(&trace, &topo, &rep.assignments, 0.0, t1 + 1.0, step);
    let integral: f64 = tl.total_alloc.iter().sum::<f64>() * step;
    let carried: f64 = rep.assignments.iter().map(|a| a.volume()).sum();
    assert!(
        (integral - carried).abs() < 0.02 * carried.max(1.0),
        "timeline integral {integral} vs carried {carried}"
    );
}

#[test]
fn hotspot_grants_match_report_acceptances() {
    let (topo, trace, rep) = setup();
    let hs = HotspotReport::analyze(&trace, &topo, &rep.assignments);
    let granted_in: f64 = hs
        .ports
        .iter()
        .filter(|p| matches!(p.port, gridband::net::PortRef::In(_)))
        .map(|p| p.granted)
        .sum();
    // Hotspot attributes each accepted request's *requested* volume to
    // its ingress; the report's carried volume equals requested volume
    // for every acceptance (exact delivery).
    let carried: f64 = rep.assignments.iter().map(|a| a.volume()).sum();
    assert!(
        (granted_in - carried).abs() < 1e-6 * carried.max(1.0),
        "hotspot grants {granted_in} vs carried {carried}"
    );
}

#[test]
fn busy_fraction_agrees_with_sampled_timeline() {
    let (topo, trace, rep) = setup();
    let mut ledger = CapacityLedger::new(topo.clone());
    for a in &rep.assignments {
        let req = trace.iter().find(|r| r.id == a.id).unwrap();
        ledger.reserve(req.route, a.start, a.finish, a.bw).unwrap();
    }
    let port = gridband::net::IngressId(0);
    let profile = ledger.ingress_profile(port);
    let threshold = 0.5 * topo.ingress_cap(port);
    let (t0, t1) = (0.0, 600.0);
    let exact = profile.busy_fraction(t0, t1, threshold);
    // Sampled estimate.
    let n = 6_000;
    let step = (t1 - t0) / n as f64;
    let sampled = (0..n)
        .filter(|k| profile.alloc_at(t0 + (*k as f64 + 0.5) * step) + 1e-9 >= threshold)
        .count() as f64
        / n as f64;
    assert!(
        (exact - sampled).abs() < 0.02,
        "exact {exact} vs sampled {sampled}"
    );
}
