//! End-to-end pipeline tests: workload synthesis → scheduling →
//! independent verification → reporting, across every scheduler in the
//! workspace.

use gridband::prelude::*;

fn flexible_trace(interarrival: f64, seed: u64, topo: &Topology) -> Trace {
    WorkloadBuilder::new(topo.clone())
        .mean_interarrival(interarrival)
        .slack(Dist::Uniform { lo: 2.0, hi: 4.0 })
        .horizon(600.0)
        .seed(seed)
        .build()
}

#[test]
fn every_flexible_scheduler_yields_a_verified_schedule() {
    let topo = Topology::paper_default();
    let trace = flexible_trace(1.0, 5, &topo);
    let sim = Simulation::new(topo.clone());

    let reports = vec![
        sim.run(&trace, &mut Greedy::min_rate()),
        sim.run(&trace, &mut Greedy::fraction(0.5)),
        sim.run(&trace, &mut Greedy::fraction(1.0)),
        sim.run(
            &trace,
            &mut WindowScheduler::new(20.0, BandwidthPolicy::MinRate),
        ),
        sim.run(
            &trace,
            &mut WindowScheduler::new(50.0, BandwidthPolicy::MAX_RATE),
        ),
    ];
    for rep in &reports {
        // The runner verified already; verify once more from scratch.
        verify_schedule(&trace, &topo, &rep.assignments)
            .unwrap_or_else(|v| panic!("{}: {v:?}", rep.policy));
        assert_eq!(
            rep.accepted_count() + rep.rejected.len(),
            trace.len(),
            "{}: outcomes must partition the trace",
            rep.policy
        );
        assert!(rep.accept_rate > 0.0 && rep.accept_rate <= 1.0);
    }
}

#[test]
fn every_rigid_heuristic_yields_a_verified_schedule() {
    let topo = Topology::paper_default();
    let trace = WorkloadBuilder::new(topo.clone())
        .target_load(3.0)
        .horizon(1_200.0)
        .seed(3)
        .build();
    for h in RigidHeuristic::ALL {
        let assignments = h.schedule(&trace, &topo);
        verify_schedule(&trace, &topo, &assignments)
            .unwrap_or_else(|v| panic!("{}: {v:?}", h.label()));
        // Rigid heuristics never alter the requested shape.
        for a in &assignments {
            let req = trace
                .iter()
                .find(|r| r.id == a.id)
                .expect("assignment maps to a request");
            assert_eq!(a.start, req.start());
            assert_eq!(a.finish, req.finish());
            assert!((a.bw - req.min_rate()).abs() < 1e-9);
        }
    }
}

#[test]
fn simulation_is_deterministic() {
    let topo = Topology::paper_default();
    let trace = flexible_trace(0.5, 11, &topo);
    let sim = Simulation::new(topo);
    let a = sim.run(
        &trace,
        &mut WindowScheduler::new(30.0, BandwidthPolicy::MAX_RATE),
    );
    let b = sim.run(
        &trace,
        &mut WindowScheduler::new(30.0, BandwidthPolicy::MAX_RATE),
    );
    assert_eq!(a.assignments, b.assignments);
    assert_eq!(a.rejected, b.rejected);
    assert_eq!(a.accept_rate, b.accept_rate);
}

#[test]
fn rigid_requests_make_policies_equivalent() {
    // With slack = 1 every request is rigid (MinRate = MaxRate), so the
    // bandwidth policy cannot matter.
    let topo = Topology::paper_default();
    let trace = WorkloadBuilder::new(topo.clone())
        .target_load(2.0)
        .slack(Dist::Fixed(1.0))
        .horizon(800.0)
        .seed(17)
        .build();
    assert!(trace.iter().all(|r| r.is_rigid()));
    let sim = Simulation::new(topo);
    let min = sim.run(&trace, &mut Greedy::min_rate());
    let max = sim.run(&trace, &mut Greedy::fraction(1.0));
    assert_assignments_equivalent(&min.assignments, &max.assignments);
}

/// Same accepted set; bandwidths may differ in the last ulp because the
/// two policy paths clamp through `min(needed, MaxRate)` differently.
fn assert_assignments_equivalent(a: &[Assignment], b: &[Assignment]) {
    assert_eq!(a.len(), b.len(), "different accepted counts");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id);
        assert!(
            (x.bw - y.bw).abs() <= 1e-9 * x.bw.max(1.0),
            "{x:?} vs {y:?}"
        );
        assert!((x.start - y.start).abs() <= 1e-9);
        assert!((x.finish - y.finish).abs() <= 1e-6 * x.finish.abs().max(1.0));
    }
}

#[test]
fn greedy_via_simulation_matches_fcfs_rigid_on_distinct_start_times() {
    // On a rigid trace with strictly distinct start times, the online
    // greedy controller and the offline FCFS function must agree (the
    // only difference between them is the same-start tie-break).
    let topo = Topology::paper_default();
    let trace = WorkloadBuilder::new(topo.clone())
        .target_load(4.0)
        .slack(Dist::Fixed(1.0))
        .horizon(800.0)
        .seed(23)
        .build();
    let starts: Vec<f64> = trace.iter().map(|r| r.start()).collect();
    let distinct = starts.windows(2).all(|w| w[0] != w[1]);
    assert!(distinct, "Poisson arrivals are a.s. distinct");

    let offline = fcfs_rigid(&trace, &topo);
    let sim = Simulation::new(topo);
    let online = sim.run(&trace, &mut Greedy::min_rate());
    assert_assignments_equivalent(&online.assignments, &offline);
}

#[test]
fn reports_survive_json_round_trips() {
    let topo = Topology::paper_default();
    let trace = flexible_trace(2.0, 31, &topo);
    let sim = Simulation::new(topo);
    let rep = sim.run(&trace, &mut Greedy::fraction(0.8));
    let js = serde_json::to_string(&rep).expect("report serializes");
    let back: SimReport = serde_json::from_str(&js).expect("report deserializes");
    assert_eq!(rep, back);

    // Traces round-trip through files too.
    let dir = std::env::temp_dir().join("gridband-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    trace
        .write_json(std::fs::File::create(&path).unwrap())
        .unwrap();
    let back = Trace::read_json(std::fs::File::open(&path).unwrap()).unwrap();
    assert_eq!(trace, back);
}

#[test]
fn guaranteed_rate_is_monotone_in_f() {
    let topo = Topology::paper_default();
    let trace = flexible_trace(2.0, 41, &topo);
    let sim = Simulation::new(topo);
    let rep = sim.run(&trace, &mut Greedy::fraction(1.0));
    let mut prev = f64::INFINITY;
    for f in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let g = rep.guaranteed_rate(&trace, f);
        assert!(g <= prev + 1e-12, "guaranteed rate must not grow with f");
        assert!(g <= rep.accept_rate + 1e-12);
        prev = g;
    }
}
