//! Property-based tests over the extension subsystems: malleable
//! packing, retries, the distributed control plane and edge policing.

use gridband::algos::flexible::{schedule_malleable, verify_malleable};
use gridband::control::{police_constant_sources, ControlPlane};
use gridband::prelude::*;
use proptest::prelude::*;

fn arb_requests() -> impl Strategy<Value = Vec<Request>> {
    prop::collection::vec(
        (
            0u32..3,
            0u32..3,
            0.0f64..150.0,
            10.0f64..3_000.0,
            10.0f64..100.0,
            1.0f64..5.0,
        ),
        1..30,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(k, (i, e, start, vol, rate, slack))| {
                Request::new(
                    k as u64,
                    Route::new(i, e),
                    TimeWindow::new(start, start + slack * vol / rate),
                    vol,
                    rate,
                )
            })
            .collect()
    })
}

fn topo() -> Topology {
    Topology::uniform(3, 3, 100.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Malleable schedules always verify, deliver exact volumes, and the
    /// accepted set contains every request greedy would accept.
    #[test]
    fn malleable_always_feasible_and_dominates_greedy_pointwise(
        reqs in arb_requests()
    ) {
        let trace = Trace::new(reqs);
        let rep = schedule_malleable(&trace, &topo(), None);
        prop_assert!(verify_malleable(&trace, &topo(), &rep).is_ok());
        prop_assert_eq!(rep.accepted.len() + rep.rejected.len(), trace.len());
        // Segments are time-ordered and inside the window.
        for a in &rep.accepted {
            let req = trace.iter().find(|r| r.id == a.id).expect("in trace");
            for w in a.segments.windows(2) {
                prop_assert!(w[0].end <= w[1].start + 1e-9);
            }
            prop_assert!(a.finish() <= req.finish() + 1e-6);
        }
    }

    /// A floor policy can only shrink the accepted set.
    #[test]
    fn malleable_floor_is_monotone(reqs in arb_requests(), f in 0.1f64..=1.0) {
        let trace = Trace::new(reqs);
        let free = schedule_malleable(&trace, &topo(), None);
        let floored =
            schedule_malleable(&trace, &topo(), Some(BandwidthPolicy::FractionOfMax(f)));
        prop_assert!(verify_malleable(&trace, &topo(), &floored).is_ok());
        // Not a subset guarantee (packing order effects), but the count
        // can never grow: every floored packing is also a free packing.
        prop_assert!(floored.accepted.len() <= free.accepted.len() + trace.len() / 4,
            "floored {} far above free {}", floored.accepted.len(), free.accepted.len());
    }

    /// The retry wrapper never produces an infeasible or double-booked
    /// schedule, for any backoff/attempt budget.
    #[test]
    fn retry_schedules_stay_feasible(
        reqs in arb_requests(),
        backoff in 1.0f64..60.0,
        attempts in 1usize..5,
    ) {
        let trace = Trace::new(reqs);
        let sim = Simulation::new(topo());
        let mut c = Retrying::new(
            Greedy::fraction(1.0),
            RetryPolicy { backoff, max_attempts: attempts },
        );
        // The runner panics on any double accept or capacity violation.
        let rep = sim.run(&trace, &mut c);
        prop_assert!(verify_schedule(&trace, sim.topology(), &rep.assignments).is_ok());
        prop_assert_eq!(rep.accepted_count() + rep.rejected.len(), trace.len());
    }

    /// The distributed control plane never over-commits any port, for any
    /// signaling delay, and resolves every transaction.
    #[test]
    fn control_plane_safe_under_any_delay(
        reqs in arb_requests(),
        delay in 0.0f64..10.0,
    ) {
        let trace = Trace::new(reqs);
        let plane = ControlPlane::new(topo(), delay, BandwidthPolicy::MAX_RATE);
        let rep = plane.run(&trace);
        prop_assert!(verify_schedule(&trace, &topo(), &rep.assignments).is_ok());
        prop_assert_eq!(rep.assignments.len() + rep.rejected.len(), trace.len());
        // Message budget: between 2 (Resv+Reply) and 5 per request.
        prop_assert!(rep.messages >= 2 * trace.len());
        prop_assert!(rep.messages <= 5 * trace.len());
    }

    /// Token buckets never admit more than contract × time + burst.
    #[test]
    fn policing_respects_the_arrival_curve(
        contract in 1.0f64..200.0,
        actual in 1.0f64..500.0,
        duration in 10.0f64..200.0,
    ) {
        let out = police_constant_sources(&[(contract, actual)], duration, 1.0);
        let p = out[0];
        prop_assert!(p.admitted <= p.offered + 1e-9);
        // Arrival-curve bound: rate × duration + one bucket of burst.
        prop_assert!(
            p.admitted <= contract * duration + contract * 1.0 + 1e-6,
            "admitted {} vs bound {}", p.admitted, contract * (duration + 1.0)
        );
        // A conforming source is never dropped.
        if actual <= contract {
            prop_assert!(p.drop_rate() < 1e-9);
        }
    }
}
