//! End-to-end tests of the extension subsystems working together:
//! control plane ↔ scheduler equivalence, hybrid traffic, timelines,
//! replica selection feeding the ordinary pipeline, and the long-lived
//! optimum consistency.

use gridband::control::{police_constant_sources, ControlPlane};
use gridband::maxmin::{hybrid_best_effort, BestEffortFlow};
use gridband::prelude::*;
use gridband::sim::Timeline;

fn topo() -> Topology {
    Topology::paper_default()
}

fn workload(seed: u64, ia: f64, horizon: f64) -> Trace {
    WorkloadBuilder::new(topo())
        .mean_interarrival(ia)
        .slack(Dist::Uniform { lo: 2.0, hi: 4.0 })
        .horizon(horizon)
        .seed(seed)
        .build()
}

#[test]
fn control_plane_schedule_feeds_the_standard_pipeline() {
    // A schedule produced by the distributed protocol must flow through
    // the same verification, reporting, timeline and hot-spot tooling as
    // a centralized one.
    let trace = workload(51, 2.0, 600.0);
    let plane = ControlPlane::new(topo(), 0.25, BandwidthPolicy::FractionOfMax(0.8));
    let rep = plane.run(&trace);
    verify_schedule(&trace, &topo(), &rep.assignments).expect("feasible");

    let sim_report = SimReport::from_assignments("control", &trace, &topo(), rep.assignments);
    assert!(sim_report.accept_rate > 0.0);
    // Decision latency shows up as a start delay ≥ 3 × one-way delay.
    assert!(
        sim_report.mean_start_delay >= 3.0 * 0.25 - 1e-9,
        "mean start delay {}",
        sim_report.mean_start_delay
    );

    let tl = Timeline::sample(&trace, &topo(), &sim_report.assignments, 0.0, 600.0, 10.0);
    assert!(tl.peak() > 0.0);
    assert!(tl.peak() <= topo().total_ingress_cap() + 1e-6);

    let hs = HotspotReport::analyze(&trace, &topo(), &sim_report.assignments);
    assert!(hs.demand_gini >= 0.0 && hs.demand_gini < 1.0);
}

#[test]
fn bookahead_reservations_show_up_in_the_future_of_the_timeline() {
    let topo = Topology::uniform(1, 1, 100.0);
    let trace = Trace::new(vec![
        Request::new(
            0,
            Route::new(0, 0),
            TimeWindow::new(0.0, 10.0),
            1_000.0,
            100.0,
        ),
        Request::new(
            1,
            Route::new(0, 0),
            TimeWindow::new(1.0, 31.0),
            1_000.0,
            100.0,
        ),
    ]);
    let sim = Simulation::new(topo.clone());
    let rep = sim.run(&trace, &mut BookAhead::new(BandwidthPolicy::MAX_RATE));
    assert_eq!(rep.accepted_count(), 2);
    let tl = Timeline::sample(&trace, &topo, &rep.assignments, 0.0, 25.0, 1.0);
    // Port fully busy for the whole [0, 20) span: first transfer then the
    // booked one, back to back.
    assert!(tl.total_alloc[..20]
        .iter()
        .all(|&x| (x - 100.0).abs() < 1e-6));
    assert_eq!(tl.total_alloc[22], 0.0);
    // The report records the wait of the second transfer.
    assert!((rep.mean_start_delay - 4.5).abs() < 1e-9); // (0 + 9)/2
}

#[test]
fn hybrid_mice_fill_exactly_what_reservations_leave() {
    let topo = Topology::uniform(2, 2, 100.0);
    let trace = Trace::new(vec![Request::rigid(0, Route::new(0, 1), 0.0, 700.0, 70.0)]);
    let sim = Simulation::new(topo.clone());
    let rep = sim.run(&trace, &mut Greedy::fraction(1.0));
    assert_eq!(rep.accepted_count(), 1);
    let mice = [
        BestEffortFlow {
            route: Route::new(0, 1),
            cap: f64::INFINITY,
        },
        BestEffortFlow {
            route: Route::new(1, 0),
            cap: f64::INFINITY,
        },
    ];
    let hy = hybrid_best_effort(&topo, &trace, &rep.assignments, &mice, 0.0, 10.0, 1.0);
    // While the 70 MB/s reservation runs, its route's mouse gets 30 and
    // the disjoint one 100; reservation + mice never exceed any port.
    for k in 0..hy.times.len() {
        assert!((hy.rates[0][k] - 30.0).abs() < 1e-6, "{:?}", hy.rates[0]);
        assert!((hy.rates[1][k] - 100.0).abs() < 1e-6);
    }
}

#[test]
fn policing_keeps_the_admitted_aggregate_within_the_grant_sum() {
    // Five flows, three of them cheating at various degrees.
    let contracts = [100.0, 150.0, 200.0, 50.0, 75.0];
    let actual = [100.0, 300.0, 200.0, 500.0, 80.0];
    let flows: Vec<(f64, f64)> = contracts.iter().copied().zip(actual).collect();
    let out = police_constant_sources(&flows, 120.0, 1.0);
    let admitted_rate: f64 = out.iter().map(|p| p.admitted / 120.0).sum();
    let grant_sum: f64 = contracts.iter().sum();
    assert!(
        admitted_rate <= grant_sum * 1.02,
        "admitted {admitted_rate} vs grants {grant_sum}"
    );
    // Conforming flows unharmed.
    assert_eq!(out[0].drop_rate(), 0.0);
    assert_eq!(out[2].drop_rate(), 0.0);
    assert!(out[3].drop_rate() > 0.85);
}

#[test]
fn replica_selection_composes_with_every_scheduler() {
    use gridband::net::IngressId;
    let topo = topo();
    // All primaries on site 0, replicas everywhere.
    let reqs: Vec<ReplicatedRequest> = workload(9, 2.0, 400.0)
        .iter()
        .map(|r| {
            let mut r = *r;
            r.route = Route::new(0, r.route.egress.0);
            ReplicatedRequest::new(r, (0..10).map(IngressId).collect())
        })
        .collect();
    let balanced = select_replicas(&topo, &reqs, ReplicaStrategy::LeastDemand);
    let sim = Simulation::new(topo.clone());
    // Every scheduler family accepts the rebalanced trace feasibly (the
    // runner verifies) and strictly beats the skewed primary placement.
    let primary = select_replicas(&topo, &reqs, ReplicaStrategy::Primary);
    for (label, accept_balanced, accept_primary) in [
        (
            "greedy",
            sim.run(&balanced, &mut Greedy::fraction(1.0)).accept_rate,
            sim.run(&primary, &mut Greedy::fraction(1.0)).accept_rate,
        ),
        (
            "window",
            sim.run(
                &balanced,
                &mut WindowScheduler::new(30.0, BandwidthPolicy::MAX_RATE),
            )
            .accept_rate,
            sim.run(
                &primary,
                &mut WindowScheduler::new(30.0, BandwidthPolicy::MAX_RATE),
            )
            .accept_rate,
        ),
        (
            "bookahead",
            sim.run(&balanced, &mut BookAhead::new(BandwidthPolicy::MAX_RATE))
                .accept_rate,
            sim.run(&primary, &mut BookAhead::new(BandwidthPolicy::MAX_RATE))
                .accept_rate,
        ),
    ] {
        assert!(
            accept_balanced > accept_primary,
            "{label}: balanced {accept_balanced} ≤ primary {accept_primary}"
        );
    }
}

#[test]
fn longlived_optimum_is_a_valid_simultaneous_schedule() {
    use gridband::exact::verify_uniform_longlived;
    let topo = Topology::grid5000_like();
    let routes: Vec<Route> = (0..60)
        .map(|k| Route::new((k % 8) as u32, ((k + 3) % 8) as u32))
        .collect();
    let b = 100.0;
    let (opt, accepted) = optimal_uniform_longlived(&topo, &routes, b);
    assert!(verify_uniform_longlived(&topo, &routes, b, &accepted));
    assert_eq!(accepted.iter().filter(|&&a| a).count(), opt);
    // Cross-check with the generic rigid machinery: the accepted flows,
    // expressed as simultaneous rigid requests, verify on the ledger too.
    let reqs: Vec<Request> = routes
        .iter()
        .enumerate()
        .filter(|(k, _)| accepted[*k])
        .map(|(k, &route)| Request::rigid(k as u64, route, 0.0, b * 100.0, b))
        .collect();
    let trace = Trace::new(reqs);
    let assignments: Vec<Assignment> = trace
        .iter()
        .map(|r| Assignment {
            id: r.id,
            bw: b,
            start: 0.0,
            finish: 100.0,
        })
        .collect();
    verify_schedule(&trace, &topo, &assignments).expect("long-lived optimum feasible");
}
