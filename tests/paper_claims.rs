//! Executable versions of the paper's qualitative claims — the "shape"
//! assertions the reproduction must preserve. Each test names the section
//! or figure it encodes.

use gridband::maxmin::{run_maxmin, MaxMinConfig};
use gridband::prelude::*;
use gridband_workload::stats::mean;

fn rigid_trace(load: f64, seed: u64, topo: &Topology) -> Trace {
    WorkloadBuilder::new(topo.clone())
        .target_load(load)
        .horizon(2_500.0)
        .seed(seed)
        .build()
}

fn flexible_trace(ia: f64, seed: u64, horizon: f64, topo: &Topology) -> Trace {
    WorkloadBuilder::new(topo.clone())
        .mean_interarrival(ia)
        .slack(Dist::Uniform { lo: 2.0, hi: 4.0 })
        .horizon(horizon)
        .seed(seed)
        .build()
}

/// §4.4 / Figure 4: under load, the slots heuristics beat FCFS on accept
/// rate (averaged over seeds — individual draws can tie).
#[test]
fn fig4_slots_beat_fcfs_under_load() {
    let topo = Topology::paper_default();
    let seeds = [1u64, 2, 3, 4];
    let mut fcfs = Vec::new();
    let mut minbw = Vec::new();
    let mut cumulated = Vec::new();
    for seed in seeds {
        let trace = rigid_trace(6.0, seed, &topo);
        fcfs.push(RigidHeuristic::Fcfs.report(&trace, &topo).accept_rate);
        minbw.push(RigidHeuristic::MinBwSlots.report(&trace, &topo).accept_rate);
        cumulated.push(
            RigidHeuristic::CumulatedSlots
                .report(&trace, &topo)
                .accept_rate,
        );
    }
    assert!(
        mean(&minbw) > mean(&fcfs),
        "minbw {} ≤ fcfs {}",
        mean(&minbw),
        mean(&fcfs)
    );
    assert!(
        mean(&cumulated) > mean(&fcfs),
        "cumulated {} ≤ fcfs {}",
        mean(&cumulated),
        mean(&fcfs)
    );
}

/// §4.4 / Figure 4: MINVOL-SLOTS is the weak variant — its utilization
/// falls clearly below MINBW-SLOTS and CUMULATED-SLOTS.
#[test]
fn fig4_minvol_utilization_is_worst() {
    let topo = Topology::paper_default();
    let seeds = [5u64, 6, 7];
    let mut minvol = Vec::new();
    let mut minbw = Vec::new();
    let mut cumulated = Vec::new();
    for seed in seeds {
        let trace = rigid_trace(4.0, seed, &topo);
        minvol.push(
            RigidHeuristic::MinVolSlots
                .report(&trace, &topo)
                .resource_util,
        );
        minbw.push(
            RigidHeuristic::MinBwSlots
                .report(&trace, &topo)
                .resource_util,
        );
        cumulated.push(
            RigidHeuristic::CumulatedSlots
                .report(&trace, &topo)
                .resource_util,
        );
    }
    assert!(
        mean(&minvol) < mean(&minbw),
        "{} vs {}",
        mean(&minvol),
        mean(&minbw)
    );
    assert!(mean(&minvol) < mean(&cumulated));
}

/// §4.4 / Figure 4: CUMULATED-SLOTS and MINBW-SLOTS "have very close
/// performance" — within a few points of accept rate.
#[test]
fn fig4_cumulated_and_minbw_are_close() {
    let topo = Topology::paper_default();
    let seeds = [8u64, 9, 10];
    let mut gap = Vec::new();
    for seed in seeds {
        let trace = rigid_trace(4.0, seed, &topo);
        let a = RigidHeuristic::CumulatedSlots
            .report(&trace, &topo)
            .accept_rate;
        let b = RigidHeuristic::MinBwSlots.report(&trace, &topo).accept_rate;
        gap.push((a - b).abs());
    }
    assert!(mean(&gap) < 0.08, "mean gap {}", mean(&gap));
}

/// §5.3 / Figure 5: in a heavily loaded network the interval-based
/// heuristic beats greedy, and longer intervals help.
#[test]
fn fig5_window_beats_greedy_when_heavy() {
    let topo = Topology::paper_default();
    let seeds = [1u64, 2, 3, 4];
    let mut greedy = Vec::new();
    let mut win_short = Vec::new();
    let mut win_long = Vec::new();
    for seed in seeds {
        let trace = flexible_trace(0.25, seed, 600.0, &topo);
        let sim = Simulation::new(topo.clone());
        greedy.push(sim.run(&trace, &mut Greedy::fraction(1.0)).accept_rate);
        win_short.push(
            sim.run(
                &trace,
                &mut WindowScheduler::new(10.0, BandwidthPolicy::MAX_RATE),
            )
            .accept_rate,
        );
        win_long.push(
            sim.run(
                &trace,
                &mut WindowScheduler::new(100.0, BandwidthPolicy::MAX_RATE),
            )
            .accept_rate,
        );
    }
    assert!(
        mean(&win_long) > mean(&greedy),
        "window(100) {} ≤ greedy {}",
        mean(&win_long),
        mean(&greedy)
    );
    assert!(
        mean(&win_long) > mean(&win_short),
        "window(100) {} ≤ window(10) {}",
        mean(&win_long),
        mean(&win_short)
    );
}

/// §5.3 / Figure 6: when the network is lightly loaded, granting only the
/// minimum bandwidth accepts more requests than granting the full host
/// rate.
#[test]
fn fig6_min_bw_wins_when_light() {
    let topo = Topology::paper_default();
    let seeds = [1u64, 2, 3];
    let mut min_bw = Vec::new();
    let mut full = Vec::new();
    for seed in seeds {
        let trace = flexible_trace(12.0, seed, 3_000.0, &topo);
        let sim = Simulation::new(topo.clone());
        min_bw.push(sim.run(&trace, &mut Greedy::min_rate()).accept_rate);
        full.push(sim.run(&trace, &mut Greedy::fraction(1.0)).accept_rate);
    }
    assert!(
        mean(&min_bw) > mean(&full),
        "min-bw {} ≤ f=1 {}",
        mean(&min_bw),
        mean(&full)
    );
}

/// §5.3 / Figure 6: the MIN BW advantage shrinks (or reverses) under
/// heavy load, because full-rate transfers leave the network sooner.
#[test]
fn fig6_min_bw_advantage_shrinks_when_heavy() {
    let topo = Topology::paper_default();
    let seeds = [4u64, 5, 6];
    let mut light_gap = Vec::new();
    let mut heavy_gap = Vec::new();
    for seed in seeds {
        let sim = Simulation::new(topo.clone());
        let light = flexible_trace(12.0, seed, 3_000.0, &topo);
        let a = sim.run(&light, &mut Greedy::min_rate()).accept_rate;
        let b = sim.run(&light, &mut Greedy::fraction(1.0)).accept_rate;
        light_gap.push(a - b);
        let heavy = flexible_trace(0.25, seed, 600.0, &topo);
        let a = sim.run(&heavy, &mut Greedy::min_rate()).accept_rate;
        let b = sim.run(&heavy, &mut Greedy::fraction(1.0)).accept_rate;
        heavy_gap.push(a - b);
    }
    assert!(
        mean(&heavy_gap) < mean(&light_gap),
        "heavy gap {} ≥ light gap {}",
        mean(&heavy_gap),
        mean(&light_gap)
    );
}

/// §5.3 / Figure 7: the same policy ordering holds for the interval-based
/// scheduler when lightly loaded.
#[test]
fn fig7_policy_ordering_under_window_scheduler() {
    let topo = Topology::paper_default();
    let seeds = [7u64, 8, 9];
    let mut rates = [Vec::new(), Vec::new(), Vec::new()];
    for seed in seeds {
        let trace = flexible_trace(12.0, seed, 3_000.0, &topo);
        let sim = Simulation::new(topo.clone());
        for (k, policy) in [
            BandwidthPolicy::MinRate,
            BandwidthPolicy::FractionOfMax(0.5),
            BandwidthPolicy::FractionOfMax(1.0),
        ]
        .iter()
        .enumerate()
        {
            let mut w = WindowScheduler::new(100.0, *policy);
            rates[k].push(sim.run(&trace, &mut w).accept_rate);
        }
    }
    let (minbw, f05, f10) = (mean(&rates[0]), mean(&rates[1]), mean(&rates[2]));
    assert!(minbw > f05, "min-bw {minbw} ≤ f=0.5 {f05}");
    assert!(f05 > f10, "f=0.5 {f05} ≤ f=1 {f10}");
}

/// §1 / §5.3: statistical (max-min) sharing degrades fast with load —
/// on-time completion collapses and stretch explodes — while reservation
/// guarantees hold for everything accepted.
#[test]
fn maxmin_baseline_degrades_with_load() {
    let topo = Topology::paper_default();
    let light = flexible_trace(10.0, 11, 1_000.0, &topo);
    let heavy = flexible_trace(0.5, 11, 400.0, &topo);
    let mm_light = run_maxmin(&light, &topo, MaxMinConfig::default());
    let mm_heavy = run_maxmin(&heavy, &topo, MaxMinConfig::default());
    assert!(
        mm_heavy.on_time_rate < 0.5 * mm_light.on_time_rate,
        "heavy on-time {} vs light {}",
        mm_heavy.on_time_rate,
        mm_light.on_time_rate
    );
    assert!(mm_heavy.mean_stretch > 2.0 * mm_light.mean_stretch);
}

/// §3 (yardstick): no heuristic exceeds the branch-and-bound optimum, and
/// CUMULATED-SLOTS stays close on small instances.
#[test]
fn heuristics_bounded_by_optimum() {
    use gridband::exact::{max_accepted, ExactInstance};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let topo = Topology::uniform(3, 3, 100.0);
    let mut cumulated_ratio = Vec::new();
    for seed in [1u64, 2, 3, 4, 5, 6] {
        let mut rng = StdRng::seed_from_u64(seed);
        let reqs: Vec<Request> = (0..12)
            .map(|k| {
                let i = rng.gen_range(0..3u32);
                let e = (i + rng.gen_range(1..3u32)) % 3;
                let start = rng.gen_range(0..10) as f64;
                let dur = rng.gen_range(1..=5) as f64;
                let bw = [25.0, 50.0, 75.0][rng.gen_range(0..3usize)];
                Request::rigid(k as u64, Route::new(i, e), start, bw * dur, bw)
            })
            .collect();
        let trace = Trace::new(reqs);
        let opt = max_accepted(&ExactInstance::from_rigid_trace(&trace, &topo));
        for h in RigidHeuristic::ALL {
            let acc = h.schedule(&trace, &topo).len();
            assert!(acc <= opt, "{} beat the optimum?!", h.label());
            if h == RigidHeuristic::CumulatedSlots {
                cumulated_ratio.push(acc as f64 / opt.max(1) as f64);
            }
        }
    }
    assert!(
        mean(&cumulated_ratio) > 0.85,
        "cumulated mean ratio {}",
        mean(&cumulated_ratio)
    );
}

/// §2.3: higher f buys faster transfers — mean speedup grows with f even
/// as the accept rate falls.
#[test]
fn tuning_factor_trades_accepts_for_speed() {
    let topo = Topology::paper_default();
    let trace = flexible_trace(12.0, 21, 3_000.0, &topo);
    let sim = Simulation::new(topo);
    let low = sim.run(&trace, &mut Greedy::fraction(0.2));
    let high = sim.run(&trace, &mut Greedy::fraction(1.0));
    assert!(high.mean_speedup > low.mean_speedup);
    assert!(high.accept_rate <= low.accept_rate + 1e-9);
}
