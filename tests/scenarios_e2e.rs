//! Structured scenarios through the full stack: generation → lint →
//! every scheduler family → verification → analysis.

use gridband::prelude::*;
use gridband::workload::lint::{lint, worst_severity, Severity};
use gridband::workload::scenarios;
use gridband::workload::{ops, Dist};

#[test]
fn tier0_distribution_through_all_schedulers() {
    let topo = Topology::paper_default();
    let trace = scenarios::tier0_distribution(
        &topo,
        0,
        10,
        600.0,
        4,
        Dist::Uniform {
            lo: 50_000.0,
            hi: 150_000.0,
        },
        3_600.0,
        5,
    );
    assert!(
        worst_severity(&lint(&trace, &topo)).is_none_or(|s| s < Severity::Error),
        "scenario generator produced an unusable trace"
    );
    let sim = Simulation::new(topo.clone());
    let greedy = sim.run(&trace, &mut Greedy::fraction(1.0));
    let mut window = WindowScheduler::new(120.0, BandwidthPolicy::FractionOfMax(0.8));
    let windowed = sim.run(&trace, &mut window);
    let booked = sim.run(&trace, &mut BookAhead::new(BandwidthPolicy::MAX_RATE));
    for rep in [&greedy, &windowed, &booked] {
        verify_schedule(&trace, &topo, &rep.assignments)
            .unwrap_or_else(|v| panic!("{}: {v:?}", rep.policy));
        assert!(rep.accept_rate > 0.0, "{} accepted nothing", rep.policy);
    }
    // The single-producer pattern makes ingress 0 the hot spot.
    let hs = HotspotReport::analyze(&trace, &topo, &greedy.assignments);
    assert_eq!(
        hs.hottest,
        gridband::net::PortRef::In(gridband::net::IngressId(0)),
        "tier-0 producer must dominate demand"
    );
}

#[test]
fn allpairs_shuffle_is_symmetric_and_schedulable() {
    let topo = Topology::paper_default();
    let trace = scenarios::allpairs_shuffle(&topo, 2_000.0, 0.0, 600.0, 7);
    assert_eq!(trace.len(), 90); // 10 × 9 ordered pairs
    let sim = Simulation::new(topo.clone());
    let rep = sim.run(&trace, &mut Greedy::min_rate());
    verify_schedule(&trace, &topo, &rep.assignments).unwrap();
    // A symmetric shuffle at this size fits comfortably at MinRate:
    // 9 × (2000/600) ≈ 30 MB/s per port.
    assert_eq!(rep.accept_rate, 1.0, "{}", rep.summary());
    // And demand is perfectly balanced.
    let hs = HotspotReport::analyze(&trace, &topo, &rep.assignments);
    assert!(hs.demand_gini < 0.01, "gini {}", hs.demand_gini);
}

#[test]
fn nightly_backup_peaks_hit_the_archive_and_diurnal_structure_shows() {
    let topo = Topology::paper_default();
    let day = 8_640.0; // compressed day for test speed
    let trace = scenarios::nightly_backup(
        &topo,
        9,
        2,
        day,
        30.0,
        Dist::Uniform {
            lo: 1_000.0,
            hi: 10_000.0,
        },
        11,
    );
    let sim = Simulation::new(topo.clone());
    let mut w = WindowScheduler::new(60.0, BandwidthPolicy::FractionOfMax(0.8));
    let rep = sim.run(&trace, &mut w);
    verify_schedule(&trace, &topo, &rep.assignments).unwrap();
    // Archive egress is the hot spot…
    let hs = HotspotReport::analyze(&trace, &topo, &rep.assignments);
    assert_eq!(
        hs.hottest,
        gridband::net::PortRef::Out(gridband::net::EgressId(9))
    );
    // …and the accepted traffic shows the diurnal swing: the busiest
    // sampled instant carries much more than the emptiest.
    let tl = gridband::sim::Timeline::sample(
        &trace,
        &topo,
        &rep.assignments,
        0.0,
        2.0 * day,
        day / 48.0,
    );
    let peak = tl.peak();
    let trough = tl.total_alloc.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(
        peak > 3.0 * (trough + 1.0),
        "peak {peak} vs trough {trough}"
    );
}

#[test]
fn merged_scenarios_keep_every_request_distinct() {
    let topo = Topology::paper_default();
    let a = scenarios::allpairs_shuffle(&topo, 1_000.0, 0.0, 300.0, 1);
    let b = scenarios::tier0_distribution(&topo, 2, 3, 100.0, 2, Dist::Fixed(10_000.0), 1_000.0, 2);
    let merged = ops::merge(&[&a, &b]);
    assert_eq!(merged.len(), a.len() + b.len());
    // Schedulable end to end.
    let sim = Simulation::new(topo.clone());
    let rep = sim.run(&merged, &mut Greedy::fraction(0.5));
    verify_schedule(&merged, &topo, &rep.assignments).unwrap();
    assert_eq!(
        rep.accepted_count() + rep.rejected.len(),
        merged.len(),
        "merge must not lose or duplicate requests"
    );
}
