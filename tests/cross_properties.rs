//! Property-based tests spanning crates: random workloads through every
//! scheduler must always yield feasible, internally consistent results.

use gridband::prelude::*;
use proptest::prelude::*;

/// Strategy: a random but well-formed flexible request set on a 3×3 grid.
fn arb_requests() -> impl Strategy<Value = Vec<Request>> {
    prop::collection::vec(
        (
            0u32..3,          // ingress
            0u32..3,          // egress
            0.0f64..200.0,    // start
            10.0f64..5_000.0, // volume (MB)
            10.0f64..100.0,   // max rate (MB/s)
            1.0f64..5.0,      // slack
        ),
        1..40,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(k, (i, e, start, vol, rate, slack))| {
                Request::new(
                    k as u64,
                    Route::new(i, e),
                    TimeWindow::new(start, start + slack * vol / rate),
                    vol,
                    rate,
                )
            })
            .collect()
    })
}

fn topo() -> Topology {
    Topology::uniform(3, 3, 100.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Greedy schedules over arbitrary workloads are always feasible and
    /// partition the trace.
    #[test]
    fn greedy_always_feasible(reqs in arb_requests(), f in 0.1f64..=1.0) {
        let trace = Trace::new(reqs);
        let sim = Simulation::new(topo());
        // The runner panics on any constraint violation, so completing is
        // the assertion; re-verify independently anyway.
        let rep = sim.run(&trace, &mut Greedy::fraction(f));
        prop_assert!(verify_schedule(&trace, sim.topology(), &rep.assignments).is_ok());
        prop_assert_eq!(rep.accepted_count() + rep.rejected.len(), trace.len());
    }

    /// Window schedules over arbitrary workloads are always feasible, for
    /// any step size and policy.
    #[test]
    fn window_always_feasible(
        reqs in arb_requests(),
        step in 1.0f64..120.0,
        min_policy in any::<bool>(),
    ) {
        let trace = Trace::new(reqs);
        let sim = Simulation::new(topo());
        let policy = if min_policy {
            BandwidthPolicy::MinRate
        } else {
            BandwidthPolicy::MAX_RATE
        };
        let rep = sim.run(&trace, &mut WindowScheduler::new(step, policy));
        prop_assert!(verify_schedule(&trace, sim.topology(), &rep.assignments).is_ok());
        // Accepted transfers meet their deadlines with the right volume.
        for a in &rep.assignments {
            let r = trace.iter().find(|r| r.id == a.id).expect("in trace");
            prop_assert!(a.finish <= r.finish() + 1e-6);
            let delivered = a.bw * (a.finish - a.start);
            prop_assert!((delivered - r.volume).abs() < 1e-6 * r.volume.max(1.0) + 1e-6);
        }
    }

    /// The rigid heuristics accept subsets whose size never exceeds the
    /// trivial per-port packing bound, and all of them verify.
    #[test]
    fn rigid_heuristics_always_feasible(reqs in arb_requests()) {
        // Rigidify: pin every window to exactly vol/max_rate.
        let rigid: Vec<Request> = reqs
            .iter()
            .map(|r| Request::rigid(r.id.0, r.route, r.start(), r.volume, r.max_rate))
            .collect();
        let trace = Trace::new(rigid);
        for h in RigidHeuristic::ALL {
            let assignments = h.schedule(&trace, &topo());
            prop_assert!(verify_schedule(&trace, &topo(), &assignments).is_ok(),
                "{} infeasible", h.label());
        }
    }

    /// The max-min allocation is always feasible and saturated (no flow
    /// can be raised unilaterally).
    #[test]
    fn maxmin_allocation_feasible_and_saturated(reqs in arb_requests()) {
        use gridband::maxmin::{max_min_rates, FairFlow};
        let topo = topo();
        let flows: Vec<FairFlow> = reqs
            .iter()
            .map(|r| FairFlow { route: r.route, cap: r.max_rate })
            .collect();
        let rates = max_min_rates(&topo, &flows);
        let mut used_in = [0.0f64; 3];
        let mut used_out = vec![0.0f64; 3];
        for (f, r) in flows.iter().zip(&rates) {
            prop_assert!(*r >= 0.0 && *r <= f.cap + 1e-6);
            used_in[f.route.ingress.index()] += r;
            used_out[f.route.egress.index()] += r;
        }
        for u in used_in.iter().chain(&used_out) {
            prop_assert!(*u <= 100.0 + 1e-6, "port overloaded: {u}");
        }
        for (f, r) in flows.iter().zip(&rates) {
            let saturated = *r + 1e-6 >= f.cap
                || used_in[f.route.ingress.index()] + 1e-6 >= 100.0
                || used_out[f.route.egress.index()] + 1e-6 >= 100.0;
            prop_assert!(saturated, "flow with rate {r} could still grow");
        }
    }

    /// Exact solver dominance: branch-and-bound accepts at least as many
    /// requests as every heuristic on rigidified instances.
    #[test]
    fn exact_dominates_heuristics(reqs in prop::collection::vec(
        (0u32..2, 0u32..2, 0.0f64..20.0, 50.0f64..500.0, 25.0f64..100.0),
        1..10,
    )) {
        use gridband::exact::{max_accepted, ExactInstance};
        let topo = Topology::uniform(2, 2, 100.0);
        let rigid: Vec<Request> = reqs
            .into_iter()
            .enumerate()
            .map(|(k, (i, e, start, vol, rate))| {
                Request::rigid(k as u64, Route::new(i, e), start, vol, rate)
            })
            .collect();
        let trace = Trace::new(rigid);
        let opt = max_accepted(&ExactInstance::from_rigid_trace(&trace, &topo));
        for h in RigidHeuristic::ALL {
            prop_assert!(h.schedule(&trace, &topo).len() <= opt);
        }
    }
}
