#!/usr/bin/env bash
# Cluster smoke test: the topology-sharded router against real daemons.
#
# Phase 1 — partition-respecting bit-identity over real sockets: two
# `serve --shard-of i/2` daemons behind a `gridband cluster --connect`
# router must produce byte-identical decisions to a solo daemon fed the
# same trace (pinned with --map 2 so both runs see identical requests).
#
# Phase 2 — shard failover: shard 0 runs with a WAL and streams it to a
# hot standby (`--replicate-to` / `--follow`); a mixed workload (30%
# cross-shard, so real two-phase holds land in the WAL) runs through
# the router, the standby syncs, shard 0 is SIGKILLed, the standby is
# promoted with `gridband promote`, shard 1 is restarted from its own
# WAL, and a second router run against the promoted pair must decide
# every request.
#
# Usage: scripts/cluster_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

SEED=7
SOLO_PORT=7550
S0_PORT=7551
S1_PORT=7552
REPL_PORT=7553
STANDBY_PORT=7554

cargo build --release --quiet -p gridband-cli
GRIDBAND=target/release/gridband

WORK=$(mktemp -d "${TMPDIR:-/tmp}/gridband-cluster.XXXXXX")
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

wait_port() {
    for _ in $(seq 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then
            return 0
        fi
        sleep 0.1
    done
    echo "cluster_smoke: daemon on port $1 never came up" >&2
    return 1
}

stats_of() {
    (
        exec 3<>"/dev/tcp/127.0.0.1/$1"
        printf '{"v": 3, "body": "Stats"}\n' >&3
        head -n1 <&3
    ) 2>/dev/null || true
}

wait_synced() {
    for _ in $(seq 200); do
        if stats_of "$1" | grep -q '"repl_synced": *1'; then
            return 0
        fi
        sleep 0.1
    done
    echo "cluster_smoke: standby never reached repl_synced=1" >&2
    return 1
}

echo "== phase 1: 2-shard router vs solo daemon, partition-respecting ==" >&2
"$GRIDBAND" serve --addr "127.0.0.1:$SOLO_PORT" &
PIDS+=($!)
"$GRIDBAND" serve --addr "127.0.0.1:$S0_PORT" --shard-of 0/2 &
PIDS+=($!)
"$GRIDBAND" serve --addr "127.0.0.1:$S1_PORT" --shard-of 1/2 &
PIDS+=($!)
wait_port "$SOLO_PORT"; wait_port "$S0_PORT"; wait_port "$S1_PORT"

"$GRIDBAND" cluster --connect "127.0.0.1:$S0_PORT,127.0.0.1:$S1_PORT" \
    --cross 0 --seed "$SEED" --decisions >"$WORK/sharded.txt"
"$GRIDBAND" cluster --connect "127.0.0.1:$SOLO_PORT" --map 2 \
    --cross 0 --seed "$SEED" --decisions >"$WORK/solo.txt"
if ! diff -u "$WORK/solo.txt" "$WORK/sharded.txt" >&2; then
    echo "cluster_smoke: FAIL — sharded decisions diverge from the solo daemon" >&2
    exit 1
fi
REQS=$(wc -l <"$WORK/sharded.txt")
echo "phase 1 OK: $REQS decisions byte-identical across the shard cut" >&2
for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true; done
PIDS=()

echo "== phase 2: mixed workload, kill shard 0, promote its standby ==" >&2
"$GRIDBAND" serve --addr "127.0.0.1:$STANDBY_PORT" --wal-dir "$WORK/wal-standby" \
    --follow "127.0.0.1:$REPL_PORT" &
PIDS+=($!)
wait_port "$STANDBY_PORT"
"$GRIDBAND" serve --addr "127.0.0.1:$S0_PORT" --shard-of 0/2 \
    --wal-dir "$WORK/wal-s0" --replicate-to "127.0.0.1:$REPL_PORT" &
S0_PID=$!
PIDS+=($S0_PID)
"$GRIDBAND" serve --addr "127.0.0.1:$S1_PORT" --shard-of 1/2 \
    --wal-dir "$WORK/wal-s1" &
S1_PID=$!
PIDS+=($S1_PID)
wait_port "$S0_PORT"; wait_port "$S1_PORT"

"$GRIDBAND" cluster --connect "127.0.0.1:$S0_PORT,127.0.0.1:$S1_PORT" \
    --cross 0.3 --seed 9 --decisions >"$WORK/before.txt"
[ -s "$WORK/before.txt" ] || { echo "cluster_smoke: FAIL — mixed run decided nothing" >&2; exit 1; }

wait_synced "$S0_PORT"
if ! stats_of "$STANDBY_PORT" | grep -q '"role": *"follower"'; then
    echo "cluster_smoke: FAIL — standby does not report role=follower" >&2
    exit 1
fi
if ! stats_of "$S0_PORT" | grep -q '"role": *"shard"'; then
    echo "cluster_smoke: FAIL — shard 0 does not report role=shard" >&2
    exit 1
fi

kill -9 "$S0_PID" 2>/dev/null || true
wait "$S0_PID" 2>/dev/null || true
"$GRIDBAND" promote --addr "127.0.0.1:$STANDBY_PORT"
if stats_of "$STANDBY_PORT" | grep -q '"role": *"follower"'; then
    echo "cluster_smoke: FAIL — promoted standby still reports role=follower" >&2
    exit 1
fi

# Shard 1 was drained by the router's first run; restart it from its own
# WAL so the recovered pair can serve a fresh workload.
kill -9 "$S1_PID" 2>/dev/null || true
wait "$S1_PID" 2>/dev/null || true
"$GRIDBAND" serve --addr "127.0.0.1:$S1_PORT" --shard-of 1/2 \
    --wal-dir "$WORK/wal-s1" &
PIDS+=($!)
wait_port "$S1_PORT"

"$GRIDBAND" cluster --connect "127.0.0.1:$STANDBY_PORT,127.0.0.1:$S1_PORT" \
    --cross 0.3 --seed 9 --decisions >"$WORK/after.txt"
AFTER=$(wc -l <"$WORK/after.txt")
BEFORE=$(wc -l <"$WORK/before.txt")
if [ "$AFTER" != "$BEFORE" ]; then
    echo "cluster_smoke: FAIL — promoted pair decided $AFTER of $BEFORE requests" >&2
    exit 1
fi
echo "phase 2 OK: promoted standby + recovered shard decided all $AFTER requests" >&2
echo "cluster_smoke: OK — sharded routing matches solo, failover pair stays live" >&2
