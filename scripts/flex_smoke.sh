#!/usr/bin/env bash
# Malleable-reservation smoke test: the water-filling admission path and
# the atomic Amend op against live daemons, end to end.
#
# Three legs:
#
#   1. Rigid byte-identity — the same rigid-only workload runs against a
#      plain daemon and a `--malleable` daemon; `loadgen --decisions`
#      dumps every grant with f64s printed exactly, and the two dumps
#      are diffed. Turning the flag on must not move a single byte of a
#      rigid workload's decisions.
#
#   2. Mixed live run — a `--malleable` daemon on a WAL takes a workload
#      with `--malleable FRAC` submissions and `--amend-rate R`
#      mid-flight renegotiations. Gates: at least one segmented grant in
#      the dump and at least one amend sent *and* granted, so leg 3 is
#      not vacuously green.
#
#   3. Kill/recover byte-diff — with the leg-2 daemon still up (and
#      drained), every decided id is queried over the JSON protocol and
#      the Status replies (state + live alloc, synthesized as
#      peak/start/end for segmented reservations) are dumped. The daemon
#      is SIGKILLed, restarted on the same WAL, and queried again: the
#      two dumps must be byte-identical — segmented bookings and applied
#      amends must replay exactly, not approximately.
#
# Usage: scripts/flex_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

REQS=400
SEED=7
MALL_FRAC=0.4
AMEND_RATE=0.6
PLAIN_PORT=7590
FLAG_PORT=7591
RUN_PORT=7592
RESTART_PORT=7593

cargo build --release --quiet -p gridband-cli
cargo build --release --quiet -p gridband-serve --bin loadgen
GRIDBAND=target/release/gridband
LOADGEN=target/release/loadgen

WORK=$(mktemp -d "${TMPDIR:-/tmp}/gridband-flex.XXXXXX")
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill -9 "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

wait_port() {
    for _ in $(seq 100); do
        # The fd opens (and closes) inside the subshell only.
        if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then
            return 0
        fi
        sleep 0.1
    done
    echo "flex_smoke: daemon on port $1 never came up" >&2
    return 1
}

json_field() {
    grep -o "\"$2\": *[0-9.]*" "$1" | head -n1 | grep -o '[0-9.]*$'
}

# Query every id in $2 (one per line) against the daemon on port $1 and
# print the raw Status reply lines in id order.
query_dump() {
    local port=$1 ids=$2 n
    n=$(wc -l <"$ids")
    (
        exec 3<>"/dev/tcp/127.0.0.1/$port"
        while read -r id; do
            printf '{"v": 3, "body": {"Query": {"id": %s}}}\n' "$id" >&3
        done <"$ids"
        head -n "$n" <&3
    )
}

echo "== leg 1: rigid-only workload, --malleable vs plain ==" >&2
"$GRIDBAND" serve --addr "127.0.0.1:$PLAIN_PORT" &
PIDS+=($!)
"$GRIDBAND" serve --addr "127.0.0.1:$FLAG_PORT" --malleable &
PIDS+=($!)
wait_port "$PLAIN_PORT"; wait_port "$FLAG_PORT"

"$LOADGEN" --addr "127.0.0.1:$PLAIN_PORT" --requests "$REQS" --seed "$SEED" \
    --decisions "$WORK/plain.txt" --json >"$WORK/plain.json"
"$LOADGEN" --addr "127.0.0.1:$FLAG_PORT" --requests "$REQS" --seed "$SEED" \
    --decisions "$WORK/flag.txt" --json >"$WORK/flag.json"

if ! diff -u "$WORK/plain.txt" "$WORK/flag.txt" >&2; then
    echo "flex_smoke: FAIL — --malleable changed a rigid-only decision" >&2
    exit 1
fi
[ -s "$WORK/plain.txt" ] || { echo "flex_smoke: FAIL — no decisions produced" >&2; exit 1; }
if grep -q '^S ' "$WORK/flag.txt"; then
    echo "flex_smoke: FAIL — rigid-only run produced a segmented grant" >&2
    exit 1
fi

echo "== leg 2: mixed malleable workload with mid-flight amends ==" >&2
"$GRIDBAND" serve --addr "127.0.0.1:$RUN_PORT" --malleable --wal-dir "$WORK/wal" &
RUN_PID=$!
PIDS+=($RUN_PID)
wait_port "$RUN_PORT"

"$LOADGEN" --addr "127.0.0.1:$RUN_PORT" --requests "$REQS" --seed "$SEED" \
    --malleable "$MALL_FRAC" --amend-rate "$AMEND_RATE" \
    --decisions "$WORK/mall.txt" --json >"$WORK/mall.json"

SEGMENTED=$(grep -c '^S ' "$WORK/mall.txt" || true)
if [ "$SEGMENTED" -eq 0 ]; then
    echo "flex_smoke: FAIL — no segmented grants (malleable path vacuous)" >&2
    exit 1
fi
AMENDS_SENT=$(json_field "$WORK/mall.json" amends_sent)
AMENDS_GRANTED=$(json_field "$WORK/mall.json" amends_granted)
if [ -z "$AMENDS_SENT" ] || [ "$AMENDS_SENT" -eq 0 ]; then
    echo "flex_smoke: FAIL — no amends sent (renegotiation path vacuous)" >&2
    exit 1
fi
if [ -z "$AMENDS_GRANTED" ] || [ "$AMENDS_GRANTED" -eq 0 ]; then
    echo "flex_smoke: FAIL — $AMENDS_SENT amends sent, none granted" >&2
    exit 1
fi

echo "== leg 3: SIGKILL, recover from the WAL, byte-diff queried state ==" >&2
awk '{print $2}' "$WORK/mall.txt" | sort -n >"$WORK/ids.txt"
query_dump "$RUN_PORT" "$WORK/ids.txt" >"$WORK/pre.txt"
# The pre-kill dump must still hold live allocations (alloc is null once
# a reservation's window has passed) or the diff below proves nothing
# about the recovered ledger.
if ! grep -q '"alloc": *\[' "$WORK/pre.txt"; then
    echo "flex_smoke: FAIL — no live allocations at kill time (recovery diff vacuous)" >&2
    exit 1
fi

kill -9 "$RUN_PID" 2>/dev/null || true
wait "$RUN_PID" 2>/dev/null || true

# A fresh port sidesteps TIME_WAIT on the killed listener.
"$GRIDBAND" serve --addr "127.0.0.1:$RESTART_PORT" --malleable --wal-dir "$WORK/wal" &
PIDS+=($!)
wait_port "$RESTART_PORT"
query_dump "$RESTART_PORT" "$WORK/ids.txt" >"$WORK/post.txt"

if ! diff -u "$WORK/pre.txt" "$WORK/post.txt" >&2; then
    echo "flex_smoke: FAIL — recovered state diverged from the pre-kill daemon" >&2
    exit 1
fi

LIVE=$(grep -c '"alloc": *\[' "$WORK/pre.txt" || true)
echo "flex_smoke: OK — $REQS rigid decisions byte-identical under --malleable," \
    "$SEGMENTED segmented grants, $AMENDS_GRANTED/$AMENDS_SENT amends granted," \
    "$LIVE live allocations recovered byte-identically" >&2
