#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml: run the full verification
# gate. Any failure stops the script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt ==" >&2
cargo fmt --all -- --check

echo "== clippy ==" >&2
cargo clippy --workspace --all-targets -- -D warnings

echo "== build (release) ==" >&2
cargo build --workspace --release

echo "== test (GRIDBAND_ADMIT_THREADS=1) ==" >&2
GRIDBAND_ADMIT_THREADS=1 cargo test --workspace -q

echo "== test (GRIDBAND_ADMIT_THREADS=4) ==" >&2
GRIDBAND_ADMIT_THREADS=4 cargo test --workspace -q

echo "== parallel differential suite ==" >&2
cargo test --release -q -p gridband-algos --test parallel_differential
cargo test --release -q -p gridband-net --test partition_props

echo "== bench smoke ==" >&2
scripts/bench.sh --smoke --out=target/BENCH_admission.smoke.json

echo "== recovery smoke ==" >&2
scripts/recovery_smoke.sh

echo "== failover smoke ==" >&2
scripts/failover_smoke.sh

echo "== cluster smoke ==" >&2
scripts/cluster_smoke.sh

echo "== wire smoke ==" >&2
scripts/wire_smoke.sh

echo "== qos smoke ==" >&2
scripts/qos_smoke.sh

echo "== flex smoke ==" >&2
scripts/flex_smoke.sh

echo "== soak smoke ==" >&2
scripts/soak_smoke.sh

echo "verify: all green" >&2
