#!/usr/bin/env bash
# Wire smoke test: the binary frame codec against real daemons.
#
# Phase 1 — codec bit-identity over real sockets: the same pinned trace
# is routed through `gridband cluster --decisions` twice, once per
# codec, each against a fresh daemon (a drained daemon rejects new
# submissions, so the runs cannot share one). The decision outputs must
# be byte-identical, and the binary-run daemon must report the
# connection under `conns_binary` — proving auto-detection actually
# took the binary path rather than silently falling back to JSON.
#
# Phase 2 — loadgen parity: the same §5.3 workload replayed by
# `loadgen --wire json` and `--wire binary` against fresh daemons must
# accept the same number of requests.
#
# Usage: scripts/wire_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

SEED=7
JSON_PORT=7560
BIN_PORT=7561
LG_JSON_PORT=7562
LG_BIN_PORT=7563

cargo build --release --quiet -p gridband-cli
cargo build --release --quiet -p gridband-serve --bin loadgen
GRIDBAND=target/release/gridband
LOADGEN=target/release/loadgen

WORK=$(mktemp -d "${TMPDIR:-/tmp}/gridband-wire.XXXXXX")
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

wait_port() {
    for _ in $(seq 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then
            return 0
        fi
        sleep 0.1
    done
    echo "wire_smoke: daemon on port $1 never came up" >&2
    return 1
}

stats_of() {
    (
        exec 3<>"/dev/tcp/127.0.0.1/$1"
        printf '{"v": 3, "body": "Stats"}\n' >&3
        head -n1 <&3
    ) 2>/dev/null || true
}

echo "== phase 1: cluster --decisions, json vs binary codec ==" >&2
"$GRIDBAND" serve --addr "127.0.0.1:$JSON_PORT" &
PIDS+=($!)
"$GRIDBAND" serve --addr "127.0.0.1:$BIN_PORT" &
PIDS+=($!)
wait_port "$JSON_PORT"; wait_port "$BIN_PORT"

"$GRIDBAND" cluster --connect "127.0.0.1:$JSON_PORT" --map 1 \
    --cross 0 --seed "$SEED" --wire json --decisions >"$WORK/json.txt"
"$GRIDBAND" cluster --connect "127.0.0.1:$BIN_PORT" --map 1 \
    --cross 0 --seed "$SEED" --wire binary --decisions >"$WORK/binary.txt"
if ! diff -u "$WORK/json.txt" "$WORK/binary.txt" >&2; then
    echo "wire_smoke: FAIL — binary codec decisions diverge from JSON" >&2
    exit 1
fi
[ -s "$WORK/json.txt" ] || { echo "wire_smoke: FAIL — no decisions produced" >&2; exit 1; }
if ! stats_of "$BIN_PORT" | grep -q '"conns_binary": *[1-9]'; then
    echo "wire_smoke: FAIL — daemon never detected a binary connection" >&2
    exit 1
fi
REQS=$(wc -l <"$WORK/json.txt")
echo "phase 1 OK: $REQS decisions byte-identical across codecs" >&2
for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true; done
PIDS=()

echo "== phase 2: loadgen parity, json vs binary codec ==" >&2
"$GRIDBAND" serve --addr "127.0.0.1:$LG_JSON_PORT" &
PIDS+=($!)
"$GRIDBAND" serve --addr "127.0.0.1:$LG_BIN_PORT" &
PIDS+=($!)
wait_port "$LG_JSON_PORT"; wait_port "$LG_BIN_PORT"

"$LOADGEN" --addr "127.0.0.1:$LG_JSON_PORT" --requests 400 --seed "$SEED" \
    --wire json --json >"$WORK/lg-json.json"
"$LOADGEN" --addr "127.0.0.1:$LG_BIN_PORT" --requests 400 --seed "$SEED" \
    --wire binary --json >"$WORK/lg-binary.json"
ACC_JSON=$(grep -o '"accepted": *[0-9]*' "$WORK/lg-json.json" | head -n1 | grep -o '[0-9]*')
ACC_BIN=$(grep -o '"accepted": *[0-9]*' "$WORK/lg-binary.json" | head -n1 | grep -o '[0-9]*')
if [ -z "$ACC_JSON" ] || [ "$ACC_JSON" -eq 0 ]; then
    echo "wire_smoke: FAIL — JSON loadgen accepted nothing" >&2
    exit 1
fi
if [ "$ACC_JSON" != "$ACC_BIN" ]; then
    echo "wire_smoke: FAIL — loadgen accepted $ACC_JSON over JSON but $ACC_BIN over binary" >&2
    exit 1
fi
echo "phase 2 OK: both codecs accepted $ACC_JSON of 400 requests" >&2
echo "wire_smoke: OK — binary codec is decision-identical to JSON over live daemons" >&2
