#!/usr/bin/env bash
# QoS smoke test: the leftover-bandwidth redistribution overlay against
# live daemons.
#
# Two fresh daemons run the same §5.3 mixed-class workload under
# `--policy min` (minimal guarantees leave residual headroom), one with
# `--qos` and one without. The boosted daemon must:
#
#   * make byte-identical admission decisions — `loadgen --decisions`
#     dumps every (id, bw, start, finish) grant with f64s printed
#     exactly, and the two dumps are diffed;
#   * report zero guaranteed-finish-time violations and zero port
#     oversubscriptions — the conservation verifier runs inside the
#     daemon every round;
#   * actually boost (boosted_mb > 0), so the two gates above are not
#     vacuously green.
#
# Usage: scripts/qos_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

SEED=7
PLAIN_PORT=7570
QOS_PORT=7571
CLASSES="2:1:1"

cargo build --release --quiet -p gridband-cli
cargo build --release --quiet -p gridband-serve --bin loadgen
GRIDBAND=target/release/gridband
LOADGEN=target/release/loadgen

WORK=$(mktemp -d "${TMPDIR:-/tmp}/gridband-qos.XXXXXX")
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill -9 "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

wait_port() {
    for _ in $(seq 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then
            return 0
        fi
        sleep 0.1
    done
    echo "qos_smoke: daemon on port $1 never came up" >&2
    return 1
}

json_field() {
    grep -o "\"$2\": *[0-9.]*" "$1" | head -n1 | grep -o '[0-9.]*$'
}

echo "== qos smoke: mixed-class loadgen, --qos vs plain ==" >&2
"$GRIDBAND" serve --addr "127.0.0.1:$PLAIN_PORT" --policy min &
PIDS+=($!)
"$GRIDBAND" serve --addr "127.0.0.1:$QOS_PORT" --policy min --qos &
PIDS+=($!)
wait_port "$PLAIN_PORT"; wait_port "$QOS_PORT"

"$LOADGEN" --addr "127.0.0.1:$PLAIN_PORT" --requests 400 --seed "$SEED" \
    --classes "$CLASSES" --decisions "$WORK/plain.txt" --json >"$WORK/plain.json"
"$LOADGEN" --addr "127.0.0.1:$QOS_PORT" --requests 400 --seed "$SEED" \
    --classes "$CLASSES" --decisions "$WORK/qos.txt" --json >"$WORK/qos.json"

if ! diff -u "$WORK/plain.txt" "$WORK/qos.txt" >&2; then
    echo "qos_smoke: FAIL — --qos changed an admission decision" >&2
    exit 1
fi
[ -s "$WORK/plain.txt" ] || { echo "qos_smoke: FAIL — no decisions produced" >&2; exit 1; }

ACCEPTED=$(json_field "$WORK/qos.json" accepted)
if [ -z "$ACCEPTED" ] || [ "$ACCEPTED" -eq 0 ]; then
    echo "qos_smoke: FAIL — boosted daemon accepted nothing" >&2
    exit 1
fi
BOOSTED_MB=$(json_field "$WORK/qos.json" qos_boosted_mb)
if [ -z "$BOOSTED_MB" ] || [ "$BOOSTED_MB" -eq 0 ]; then
    echo "qos_smoke: FAIL — boosted daemon never resold residual capacity (gates vacuous)" >&2
    exit 1
fi
VIOLATIONS=$(json_field "$WORK/qos.json" qos_finish_violations)
OVERSUB=$(json_field "$WORK/qos.json" qos_oversubscriptions)
if [ "$VIOLATIONS" != 0 ] || [ "$OVERSUB" != 0 ]; then
    echo "qos_smoke: FAIL — $VIOLATIONS finish violations, $OVERSUB oversubscriptions" >&2
    exit 1
fi

REQS=$(wc -l <"$WORK/plain.txt")
echo "qos_smoke: OK — $REQS decisions byte-identical, $ACCEPTED accepted, ${BOOSTED_MB} MB resold, 0 violations" >&2
