#!/usr/bin/env bash
# Regenerate BENCH_admission.json: micro indexed-vs-linear profile query
# timings, an indexed/linear differential check, the §5.3 end-to-end
# admission rounds (decisions/sec, p50/p99 round latency) cross-checked
# against the event-driven simulator, and the shard-parallel thread sweep
# (rounds/sec and p99 at 1/2/4/8 threads, every threaded run compared
# round-by-round against the sequential reference — mismatches gate to 0),
# plus the WAL-streaming replication group (batch-to-standby sync lag,
# failover-to-first-decision time, hard-gated on zero divergence and a
# byte-identical follower store) and the topology-sharded cluster group
# (shards × cross-fraction router throughput, hard-gated on zero
# divergence vs a solo run and zero conservation violations) and the
# wire group (JSON-lines vs the binary frame codec against live daemons:
# submissions/sec and submit-to-decision p50/p99 per codec, hard-gated
# on zero bit-level decision divergence between the codecs and on the
# binary p99 beating the JSON baseline) and the long-horizon GC soak
# (≥10⁶ requests through a watermark-collected ledger: hard-gated on
# flat per-quintile breakpoint counts, RSS, and round p99, on the sweep
# actually collecting, and on zero decision divergence against a
# never-collecting reference replay of the same trace prefix) and the
# malleable group (water-filled admission across the §5.3 load grid:
# rigid vs mixed accept rates per seed and interarrival, hard-gated on
# zero rigid-workload divergence with `--malleable` enabled, on a
# non-vacuous count of segmented grants, and on a positive accept-rate
# delta over the all-rigid baseline at high load).
#
# Usage:
#   scripts/bench.sh                # full run, writes BENCH_admission.json
#   scripts/bench.sh --smoke        # reduced sizes, a few seconds
#   scripts/bench.sh --out=FILE     # write elsewhere
#
# The binary exits non-zero if the equivalence or speedup gates fail, so
# this script doubles as a CI smoke check.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release --quiet -p gridband-bench --bin admission -- "$@"
