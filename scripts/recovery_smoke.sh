#!/usr/bin/env bash
# Recovery smoke test: drive the daemon through a §5.3 workload, SIGKILL
# it mid-run (~round 5 of the virtual clock), restart it on the same WAL
# directory, and finish the workload with `loadgen --resume`. The resume
# phase hard-fails if any pre-kill acceptance flipped or changed its
# allocation, and this script additionally diffs the end-to-end
# accept counts against an uninterrupted reference run.
#
# Usage: scripts/recovery_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

REQS=400
KILL_AT=250        # ~ virtual time 250 s = round 5 at the 50 s default step
SEED=7
REF_PORT=7531
RUN_PORT=7532
RESTART_PORT=7533

cargo build --release --quiet -p gridband-cli -p gridband-serve
GRIDBAND=target/release/gridband
LOADGEN=target/release/loadgen

WORK=$(mktemp -d "${TMPDIR:-/tmp}/gridband-recovery.XXXXXX")
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

wait_port() {
    for _ in $(seq 100); do
        # The fd opens (and closes) inside the subshell only.
        if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then
            return 0
        fi
        sleep 0.1
    done
    echo "recovery_smoke: daemon on port $1 never came up" >&2
    return 1
}

accepted_of() { sed -n 's/.*"accepted": \([0-9]*\).*/\1/p' "$1" | head -1; }
requests_of() { sed -n 's/.*"requests": \([0-9]*\).*/\1/p' "$1" | head -1; }

echo "== reference run (uninterrupted) ==" >&2
"$GRIDBAND" serve --addr "127.0.0.1:$REF_PORT" --wal-dir "$WORK/wal-ref" &
DAEMON_PID=$!
wait_port "$REF_PORT"
"$LOADGEN" --addr "127.0.0.1:$REF_PORT" --requests "$REQS" --seed "$SEED" \
    --json >"$WORK/ref.json"
kill -9 "$DAEMON_PID" 2>/dev/null || true
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

echo "== crashed run: submit, SIGKILL at ~round 5, restart, resume ==" >&2
"$GRIDBAND" serve --addr "127.0.0.1:$RUN_PORT" --wal-dir "$WORK/wal" &
DAEMON_PID=$!
wait_port "$RUN_PORT"
"$LOADGEN" --addr "127.0.0.1:$RUN_PORT" --requests "$REQS" --seed "$SEED" \
    --kill-after "$KILL_AT" --state "$WORK/resume.json"
kill -9 "$DAEMON_PID" 2>/dev/null || true
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

# A fresh port sidesteps TIME_WAIT on the killed listener.
"$GRIDBAND" serve --addr "127.0.0.1:$RESTART_PORT" --wal-dir "$WORK/wal" &
DAEMON_PID=$!
wait_port "$RESTART_PORT"
"$LOADGEN" --addr "127.0.0.1:$RESTART_PORT" --resume --state "$WORK/resume.json" \
    --json >"$WORK/resumed.json"
kill -9 "$DAEMON_PID" 2>/dev/null || true
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

REF_REQ=$(requests_of "$WORK/ref.json")
REF_ACC=$(accepted_of "$WORK/ref.json")
RES_REQ=$(requests_of "$WORK/resumed.json")
RES_ACC=$(accepted_of "$WORK/resumed.json")
echo "reference:  $REF_ACC/$REF_REQ accepted" >&2
echo "recovered:  $RES_ACC/$RES_REQ accepted" >&2
if [ "$REF_REQ" != "$RES_REQ" ] || [ "$REF_ACC" != "$RES_ACC" ]; then
    echo "recovery_smoke: FAIL — recovered run diverged from uninterrupted run" >&2
    exit 1
fi
echo "recovery_smoke: OK — kill/recover/resume matches the uninterrupted run" >&2
