#!/usr/bin/env bash
# Recovery smoke test: drive the daemon through a §5.3 workload, SIGKILL
# it mid-run (~round 5 of the virtual clock), restart it on the same WAL
# directory, and finish the workload with `loadgen --resume`. The resume
# phase hard-fails if any pre-kill acceptance flipped or changed its
# allocation, and this script additionally diffs the end-to-end
# accept counts against an uninterrupted reference run.
#
# The kill/recover leg runs twice: once sequential and once with
# `--admit-threads 4`, both compared against the same sequential
# reference — crash recovery must be oblivious to admission parallelism
# (the WAL records decisions, not the execution strategy that made them).
#
# Usage: scripts/recovery_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

REQS=400
KILL_AT=250        # ~ virtual time 250 s = round 5 at the 50 s default step
SEED=7
REF_PORT=7531
RUN_PORT=7532
RESTART_PORT=7533
PAR_RUN_PORT=7534
PAR_RESTART_PORT=7535

cargo build --release --quiet -p gridband-cli -p gridband-serve
GRIDBAND=target/release/gridband
LOADGEN=target/release/loadgen

WORK=$(mktemp -d "${TMPDIR:-/tmp}/gridband-recovery.XXXXXX")
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

wait_port() {
    for _ in $(seq 100); do
        # The fd opens (and closes) inside the subshell only.
        if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then
            return 0
        fi
        sleep 0.1
    done
    echo "recovery_smoke: daemon on port $1 never came up" >&2
    return 1
}

accepted_of() { sed -n 's/.*"accepted": \([0-9]*\).*/\1/p' "$1" | head -1; }
requests_of() { sed -n 's/.*"requests": \([0-9]*\).*/\1/p' "$1" | head -1; }

echo "== reference run (uninterrupted) ==" >&2
"$GRIDBAND" serve --addr "127.0.0.1:$REF_PORT" --wal-dir "$WORK/wal-ref" &
DAEMON_PID=$!
wait_port "$REF_PORT"
"$LOADGEN" --addr "127.0.0.1:$REF_PORT" --requests "$REQS" --seed "$SEED" \
    --json >"$WORK/ref.json"
kill -9 "$DAEMON_PID" 2>/dev/null || true
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

# crash_leg LABEL WAL_DIR RUN_PORT RESTART_PORT OUT_JSON [extra serve flags...]
crash_leg() {
    local label=$1 wal=$2 run_port=$3 restart_port=$4 out=$5
    shift 5
    echo "== crashed run ($label): submit, SIGKILL at ~round 5, restart, resume ==" >&2
    "$GRIDBAND" serve --addr "127.0.0.1:$run_port" --wal-dir "$wal" "$@" &
    DAEMON_PID=$!
    wait_port "$run_port"
    "$LOADGEN" --addr "127.0.0.1:$run_port" --requests "$REQS" --seed "$SEED" \
        --kill-after "$KILL_AT" --state "$WORK/resume-$label.json"
    kill -9 "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
    DAEMON_PID=""

    # A fresh port sidesteps TIME_WAIT on the killed listener.
    "$GRIDBAND" serve --addr "127.0.0.1:$restart_port" --wal-dir "$wal" "$@" &
    DAEMON_PID=$!
    wait_port "$restart_port"
    "$LOADGEN" --addr "127.0.0.1:$restart_port" --resume --state "$WORK/resume-$label.json" \
        --json >"$out"
    kill -9 "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
    DAEMON_PID=""
}

crash_leg seq "$WORK/wal" "$RUN_PORT" "$RESTART_PORT" "$WORK/resumed.json"
crash_leg par "$WORK/wal-par" "$PAR_RUN_PORT" "$PAR_RESTART_PORT" "$WORK/resumed-par.json" \
    --admit-threads 4

REF_REQ=$(requests_of "$WORK/ref.json")
REF_ACC=$(accepted_of "$WORK/ref.json")
FAIL=0
for label in seq par; do
    case $label in
        seq) json="$WORK/resumed.json" ;;
        par) json="$WORK/resumed-par.json" ;;
    esac
    RES_REQ=$(requests_of "$json")
    RES_ACC=$(accepted_of "$json")
    echo "reference:        $REF_ACC/$REF_REQ accepted" >&2
    echo "recovered ($label): $RES_ACC/$RES_REQ accepted" >&2
    if [ "$REF_REQ" != "$RES_REQ" ] || [ "$REF_ACC" != "$RES_ACC" ]; then
        echo "recovery_smoke: FAIL — recovered $label run diverged from uninterrupted run" >&2
        FAIL=1
    fi
done
[ "$FAIL" -eq 0 ] || exit 1
echo "recovery_smoke: OK — kill/recover/resume matches the uninterrupted run (sequential and --admit-threads 4)" >&2
