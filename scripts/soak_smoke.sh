#!/usr/bin/env bash
# Soak smoke test: a real daemon with watermark GC active under an
# open-loop (coordinated-omission-safe) load.
#
# A `gridband serve --gc-horizon` daemon takes a §5.3 workload from
# `loadgen --open-loop --rate`, which timestamps every request with its
# intended send time and never skips sends when it falls behind. The
# gates:
#
#   1. GC engaged: the daemon's Stats report a non-null `gc_watermark`
#      after the run — the watermark actually advanced.
#   2. Memory flat: daemon RSS grows by less than RSS_LIMIT_KB between
#      the pre-load and post-load samples.
#   3. Latency flat: the intended-start-corrected p99 of the last
#      quintile of requests stays within P99_FACTOR x the first
#      quintile's (+ P99_SLACK_MS grace for scheduler noise).
#   4. The run did real work: accepted > 0.
#
# Usage: scripts/soak_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

PORT=7570
REQUESTS=20000
RATE=8000
SEED=11
GC_HORIZON=5
RSS_LIMIT_KB=65536
P99_FACTOR=3
P99_SLACK_MS=50

cargo build --release --quiet -p gridband-cli
cargo build --release --quiet -p gridband-serve --bin loadgen
GRIDBAND=target/release/gridband
LOADGEN=target/release/loadgen

WORK=$(mktemp -d "${TMPDIR:-/tmp}/gridband-soak.XXXXXX")
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill -9 "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

wait_port() {
    for _ in $(seq 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then
            return 0
        fi
        sleep 0.1
    done
    echo "soak_smoke: daemon on port $1 never came up" >&2
    return 1
}

stats_of() {
    (
        exec 3<>"/dev/tcp/127.0.0.1/$1"
        printf '{"v": 3, "body": "Stats"}\n' >&3
        head -n1 <&3
    ) 2>/dev/null || true
}

rss_kb() {
    awk '/^VmRSS:/ { print $2 }' "/proc/$1/status"
}

"$GRIDBAND" serve --addr "127.0.0.1:$PORT" --gc-horizon "$GC_HORIZON" &
DAEMON=$!
PIDS+=($DAEMON)
wait_port "$PORT"

RSS_BEFORE=$(rss_kb "$DAEMON")
"$LOADGEN" --addr "127.0.0.1:$PORT" --requests "$REQUESTS" --seed "$SEED" \
    --open-loop --rate "$RATE" --json >"$WORK/report.json"
RSS_AFTER=$(rss_kb "$DAEMON")
stats_of "$PORT" >"$WORK/stats.json"

ACCEPTED=$(grep -o '"accepted": *[0-9]*' "$WORK/report.json" | head -n1 | grep -o '[0-9]*')
if [ -z "$ACCEPTED" ] || [ "$ACCEPTED" -eq 0 ]; then
    echo "soak_smoke: FAIL — loadgen accepted nothing" >&2
    exit 1
fi

if ! grep -q '"gc_watermark": *[0-9]' "$WORK/stats.json"; then
    echo "soak_smoke: FAIL — daemon never advanced a GC watermark" >&2
    grep -o '"gc_watermark": *[^,}]*' "$WORK/stats.json" >&2 || true
    exit 1
fi
WATERMARK=$(grep -o '"gc_watermark": *[0-9.e+-]*' "$WORK/stats.json" | grep -o '[0-9.e+-]*$')

GROWTH=$((RSS_AFTER - RSS_BEFORE))
if [ "$GROWTH" -gt "$RSS_LIMIT_KB" ]; then
    echo "soak_smoke: FAIL — daemon RSS grew ${GROWTH} KB (${RSS_BEFORE} -> ${RSS_AFTER}), limit ${RSS_LIMIT_KB} KB" >&2
    exit 1
fi

# quintile_corrected_p99_ms is a 5-element JSON array (pretty-printed
# across lines — join them first); compare first vs last element.
QUINTILES=$(tr -d '\n ' <"$WORK/report.json" \
    | grep -o '"quintile_corrected_p99_ms":\[[^]]*\]' \
    | tr -d '[]' | cut -d: -f2 | tr ',' ' ' || true)
if [ -z "$QUINTILES" ]; then
    echo "soak_smoke: FAIL — report carries no quintile_corrected_p99_ms" >&2
    exit 1
fi
read -r FIRST_P99 _ _ _ LAST_P99 <<<"$QUINTILES"
FLAT=$(awk -v f="$FIRST_P99" -v l="$LAST_P99" -v k="$P99_FACTOR" -v s="$P99_SLACK_MS" \
    'BEGIN { print (l <= k * f + s) ? "ok" : "fail" }')
if [ "$FLAT" != "ok" ]; then
    echo "soak_smoke: FAIL — corrected p99 drifted: first quintile ${FIRST_P99} ms, last ${LAST_P99} ms (limit ${P99_FACTOR}x + ${P99_SLACK_MS} ms)" >&2
    exit 1
fi

echo "soak_smoke: OK — $ACCEPTED/$REQUESTS accepted, watermark $WATERMARK, RSS ${RSS_BEFORE} -> ${RSS_AFTER} KB (+${GROWTH}), corrected p99 ${FIRST_P99} -> ${LAST_P99} ms" >&2
