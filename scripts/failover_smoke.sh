#!/usr/bin/env bash
# Failover smoke test: run a primary/follower pair end to end through the
# real binaries — primary with `--replicate-to`, follower with `--follow`
# on the same machine — drive a §5.3 workload at the primary, SIGKILL the
# primary mid-run once the follower has acked its exact WAL position,
# promote the follower with `gridband promote`, and finish the workload
# against it with `loadgen --resume`. The resume phase hard-fails if any
# pre-kill acceptance flipped or changed its allocation, and this script
# additionally diffs the end-to-end accept counts against an
# uninterrupted solo reference run: a hot standby taking over must be
# indistinguishable from a primary that never died.
#
# Usage: scripts/failover_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

REQS=400
KILL_AT=250        # ~ virtual time 250 s = round 5 at the 50 s default step
SEED=7
REF_PORT=7540
PRIMARY_PORT=7541
REPL_PORT=7542
FOLLOWER_PORT=7543

cargo build --release --quiet -p gridband-cli -p gridband-serve
GRIDBAND=target/release/gridband
LOADGEN=target/release/loadgen

WORK=$(mktemp -d "${TMPDIR:-/tmp}/gridband-failover.XXXXXX")
PRIMARY_PID=""
FOLLOWER_PID=""
cleanup() {
    [ -n "$PRIMARY_PID" ] && kill -9 "$PRIMARY_PID" 2>/dev/null || true
    [ -n "$FOLLOWER_PID" ] && kill -9 "$FOLLOWER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

wait_port() {
    for _ in $(seq 100); do
        # The fd opens (and closes) inside the subshell only.
        if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then
            return 0
        fi
        sleep 0.1
    done
    echo "failover_smoke: daemon on port $1 never came up" >&2
    return 1
}

# One Stats round-trip over /dev/tcp; prints the raw reply line.
stats_of() {
    (
        exec 3<>"/dev/tcp/127.0.0.1/$1"
        printf '{"v": 3, "body": "Stats"}\n' >&3
        head -n1 <&3
    ) 2>/dev/null || true
}

# Block until the primary reports the follower has applied everything it
# shipped (repl_synced flips to 1 once the ack position matches).
wait_synced() {
    for _ in $(seq 200); do
        if stats_of "$1" | grep -q '"repl_synced": *1'; then
            return 0
        fi
        sleep 0.1
    done
    echo "failover_smoke: follower never reached repl_synced=1" >&2
    return 1
}

accepted_of() { sed -n 's/.*"accepted": \([0-9]*\).*/\1/p' "$1" | head -1; }
requests_of() { sed -n 's/.*"requests": \([0-9]*\).*/\1/p' "$1" | head -1; }

echo "== reference run (solo, uninterrupted) ==" >&2
"$GRIDBAND" serve --addr "127.0.0.1:$REF_PORT" --wal-dir "$WORK/wal-ref" &
PRIMARY_PID=$!
wait_port "$REF_PORT"
"$LOADGEN" --addr "127.0.0.1:$REF_PORT" --requests "$REQS" --seed "$SEED" \
    --json >"$WORK/ref.json"
kill -9 "$PRIMARY_PID" 2>/dev/null || true
wait "$PRIMARY_PID" 2>/dev/null || true
PRIMARY_PID=""

echo "== primary + hot standby: submit, sync, SIGKILL primary, promote, resume ==" >&2
"$GRIDBAND" serve --addr "127.0.0.1:$FOLLOWER_PORT" --wal-dir "$WORK/wal-follower" \
    --follow "127.0.0.1:$REPL_PORT" &
FOLLOWER_PID=$!
wait_port "$FOLLOWER_PORT"
"$GRIDBAND" serve --addr "127.0.0.1:$PRIMARY_PORT" --wal-dir "$WORK/wal-primary" \
    --replicate-to "127.0.0.1:$REPL_PORT" &
PRIMARY_PID=$!
wait_port "$PRIMARY_PORT"

"$LOADGEN" --addr "127.0.0.1:$PRIMARY_PORT" --requests "$REQS" --seed "$SEED" \
    --kill-after "$KILL_AT" --state "$WORK/resume.json"

# The standby must hold the primary's full durable log before the axe
# falls, and it must still be refusing writes.
wait_synced "$PRIMARY_PORT"
if ! stats_of "$FOLLOWER_PORT" | grep -q '"role": *"follower"'; then
    echo "failover_smoke: FAIL — standby does not report role=follower" >&2
    exit 1
fi
kill -9 "$PRIMARY_PID" 2>/dev/null || true
wait "$PRIMARY_PID" 2>/dev/null || true
PRIMARY_PID=""

"$GRIDBAND" promote --addr "127.0.0.1:$FOLLOWER_PORT"
"$LOADGEN" --addr "127.0.0.1:$FOLLOWER_PORT" --resume --state "$WORK/resume.json" \
    --json >"$WORK/resumed.json"

REF_REQ=$(requests_of "$WORK/ref.json")
REF_ACC=$(accepted_of "$WORK/ref.json")
RES_REQ=$(requests_of "$WORK/resumed.json")
RES_ACC=$(accepted_of "$WORK/resumed.json")
echo "reference (solo):     $REF_ACC/$REF_REQ accepted" >&2
echo "failed-over standby:  $RES_ACC/$RES_REQ accepted" >&2
if [ "$REF_REQ" != "$RES_REQ" ] || [ "$REF_ACC" != "$RES_ACC" ]; then
    echo "failover_smoke: FAIL — failed-over run diverged from the uninterrupted run" >&2
    exit 1
fi
echo "failover_smoke: OK — kill-primary/promote/resume matches the uninterrupted run" >&2
